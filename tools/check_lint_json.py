#!/usr/bin/env python3
"""Validate a wfens_lint --json report against the findings schema.

Usage: check_lint_json.py lint_findings.json

The report is the machine-readable half of the lint gate: an array of
finding objects, one per diagnostic, empty when the tree is clean. This
gate keeps the emitter honest — a refactor of the findings pipeline that
drops a field, emits a rule name the catalogue does not know, or produces
a non-positive line number fails the analysis CI job instead of silently
degrading the SARIF upload and any downstream tooling that parses the
report. Rule additions must be registered here; that is deliberate, so
every new pass also extends docs/ANALYSIS.md and this catalogue in the
same change.
"""
import json
import sys

# Every rule wfens_lint can emit: the per-file rules, the whole-project
# passes, and the suppression sweep. Mirrors the catalogue in
# docs/ANALYSIS.md.
KNOWN_RULES = {
    # Per-file rules.
    "banned-ident",
    "simengine-std-function",
    "event-queue-outside-simengine",
    "unordered-iter",
    "raw-mutex",
    "pragma-once",
    "include-parent",
    "iostream-in-header",
    "stage-record-outside-runtime",
    "lp-state-outside-simengine",
    # Whole-project passes.
    "layer-manifest",
    "layer-unknown-module",
    "layer-undeclared-edge",
    "layer-stale-edge",
    "layer-cycle",
    "lock-rank-static",
    "determinism-taint",
    # Suppression sweep.
    "stale-allow",
}


def fail(msg):
    print(f"check_lint_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_finding(path, i, finding):
    if not isinstance(finding, dict):
        fail(f"{path}: [{i}] must be an object, got {finding!r}")
    for key in ("file", "line", "rule", "message"):
        if key not in finding:
            fail(f"{path}: [{i}] missing field {key!r}")
    for key in ("file", "rule", "message"):
        value = finding[key]
        if not isinstance(value, str) or not value:
            fail(f"{path}: [{i}].{key} must be a non-empty string, "
                 f"got {value!r}")
    line = finding["line"]
    if not isinstance(line, int) or isinstance(line, bool) or line < 1:
        fail(f"{path}: [{i}].line must be a positive integer, got {line!r}")
    if finding["rule"] not in KNOWN_RULES:
        fail(f"{path}: [{i}].rule {finding['rule']!r} is not in the "
             f"catalogue (known: {sorted(KNOWN_RULES)})")
    if finding["file"].startswith("/") or ".." in finding["file"].split("/"):
        fail(f"{path}: [{i}].file must be repo-relative, "
             f"got {finding['file']!r}")


def main():
    if len(sys.argv) != 2:
        fail("usage: check_lint_json.py lint_findings.json")
    path = sys.argv[1]
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")

    if not isinstance(data, list):
        fail(f"{path}: top level must be an array of findings")
    for i, finding in enumerate(data):
        check_finding(path, i, finding)

    print(f"check_lint_json: OK ({path}: {len(data)} finding(s))")


if __name__ == "__main__":
    main()
