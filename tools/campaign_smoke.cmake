# Campaign smoke test (ctest -R campaign.smoke).
#
# Runs wfens_campaign twice against a fresh cache file: the first pass must
# simulate, the second must be served entirely from the persisted cache
# (0 fresh simulations). Uses the smallest unit (set1) to stay quick.
file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})
set(cache ${WORK_DIR}/cache)

execute_process(
  COMMAND ${CAMPAIGN_BIN} --units set1 --cache ${cache}
          --out ${WORK_DIR}/campaign1.json
  RESULT_VARIABLE rc1 OUTPUT_VARIABLE out1 ERROR_VARIABLE out1)
if(NOT rc1 EQUAL 0)
  message(FATAL_ERROR "first campaign run failed (${rc1}):\n${out1}")
endif()
if(NOT out1 MATCHES "campaign total: [1-9][0-9]* fresh simulations")
  message(FATAL_ERROR "first run should simulate:\n${out1}")
endif()
if(NOT EXISTS ${cache})
  message(FATAL_ERROR "campaign did not persist its cache to ${cache}")
endif()

execute_process(
  COMMAND ${CAMPAIGN_BIN} --units set1 --cache ${cache}
          --out ${WORK_DIR}/campaign2.json
  RESULT_VARIABLE rc2 OUTPUT_VARIABLE out2 ERROR_VARIABLE out2)
if(NOT rc2 EQUAL 0)
  message(FATAL_ERROR "second campaign run failed (${rc2}):\n${out2}")
endif()
if(NOT out2 MATCHES "campaign total: 0 fresh simulations")
  message(FATAL_ERROR "warm cache should serve everything:\n${out2}")
endif()
