#!/usr/bin/env bash
# Run clang-tidy (profile: .clang-tidy at the repo root) over src/ and
# tools/ using the compile database of an existing build tree.
#
#   tools/check_tidy.sh [--require] [build-dir]
#
# Defaults to build/. Configures the tree with compile-command export if it
# was configured without it. When clang-tidy is not installed the script
# SKIPS with exit 0 so developer machines without LLVM stay green;
# CI passes --require to turn the skip into a hard failure there.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
require=0
if [[ "${1:-}" == "--require" ]]; then
  require=1
  shift
fi
build_dir="${1:-${repo_root}/build}"

tidy_bin=""
for cand in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 clang-tidy-16; do
  if command -v "${cand}" > /dev/null 2>&1; then
    tidy_bin="${cand}"
    break
  fi
done
if [[ -z "${tidy_bin}" ]]; then
  if [[ "${require}" == 1 ]]; then
    echo "check_tidy: clang-tidy not found and --require set" >&2
    exit 1
  fi
  echo "check_tidy: clang-tidy not installed; skipping (CI runs it with --require)"
  exit 0
fi

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
fi

# run-clang-tidy parallelises over the compile database; fall back to a
# plain loop when only the bare binary is around.
mapfile -t files < <(cd "${repo_root}" && find src tools -name '*.cpp' | sort)
runner=""
for cand in run-clang-tidy run-clang-tidy-19 run-clang-tidy-18 run-clang-tidy-17; do
  if command -v "${cand}" > /dev/null 2>&1; then
    runner="${cand}"
    break
  fi
done

cd "${repo_root}"
if [[ -n "${runner}" ]]; then
  "${runner}" -clang-tidy-binary "${tidy_bin}" -p "${build_dir}" -quiet \
    "${files[@]/#/${repo_root}/}"
else
  status=0
  for f in "${files[@]}"; do
    "${tidy_bin}" -p "${build_dir}" --quiet "${repo_root}/${f}" || status=1
  done
  exit "${status}"
fi
