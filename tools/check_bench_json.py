#!/usr/bin/env python3
"""Validate a BENCH_*.json report against its bench's schema.

Usage: check_bench_json.py BENCH_file.json

The report's "bench" field selects the schema from the registry below.
Checks that every expected field is present with the right JSON type and
that rates/counts satisfy the bench's invariants, so a refactor that drops
a series (or emits NaN) fails the bench-smoke CI job instead of silently
thinning the trajectory. Schema additions are fine; removals are not.

Field markers: a plain type means "finite and strictly positive" for
numbers; ("nonneg", type) allows zero — for counters that legitimately
stay at zero in a healthy run (e.g. chunks lost with replication on).
"""
import json
import math
import sys

# Per-bench schemas, keyed on the report's "bench" field.
SCHEMAS = {
    "engine_throughput": {
        "queue_policy": str,
        "mode": str,
        "chain_events": int,
        "chain_events_per_s": float,
        "churn_cancellations": int,
        "churn_cancels_per_s": float,
        "cancel_heavy_events": int,
        "cancel_heavy_events_per_s": float,
        "mixed_horizon_events": int,
        "mixed_horizon_events_per_s": float,
        "replay_config": str,
        "replay_count": int,
        "replay_events": int,
        "replay_events_per_s": float,
        # LP-scaling series (bench_lp_scaling, merged into the same report):
        # the conservative LP runtime on the same C1.5 replay workload.
        # lp_bit_identical is the acceptance gate — the bench exits nonzero
        # on divergence, so a committed report always carries 1; the raw
        # speedup is informational (it depends on the host's core count,
        # see docs/PERF.md §8).
        "lp_replay_config": str,
        "lp_replay_count": int,
        "lp_replay_events": int,
        "lp_seq_events_per_s": float,
        "lp1_events_per_s": float,
        "lp2_events_per_s": float,
        "lp4_events_per_s": float,
        "lp4_speedup_vs_seq": float,
        "lp_bit_identical": int,
    },
    # Component-attributed replay profile (bench_replay_profile): wall time
    # split into engine dispatch + the three instrumented sections. The
    # percentage fields must sum to ~100 by construction; the invariant is
    # re-checked below so a report edited by hand (or a future field rename)
    # cannot silently desynchronize the breakdown.
    "replay_profile": {
        "mode": str,
        "replay_config": str,
        "replay_count": int,
        "replay_events": int,
        "wall_s": float,
        "engine_dispatch_ns": ("nonneg", float),
        "interference_ns": float,
        "stage_model_ns": float,
        "metrics_ns": float,
        "engine_dispatch_pct": ("nonneg", float),
        "interference_pct": float,
        "stage_model_pct": float,
        "metrics_pct": float,
        "interference_calls": int,
        "stage_model_calls": int,
        "metrics_calls": int,
    },
    # Google-benchmark microbenches (bench_micro): per-benchmark wall times
    # captured into one report so CI can schema-gate them alongside the
    # handwritten benches.
    "micro": {
        "mode": str,
        "benchmarks": list,
    },
    # Adaptive best-arm search (bench_search_efficiency): bai-search must
    # match the fixed-budget baseline's winner quality (objective_delta is
    # the deterministic full-depth score difference, >= 0) while saving
    # fresh replays (sims_saved_pct strictly positive; a committed
    # full-mode report must clear the 30% floor, checked below).
    "search_efficiency": {
        "mode": str,
        "threads": int,
        "jitter_cv": float,
        "probe_samples": int,
        "baseline_scheduler": str,
        "bai_fresh_sims": int,
        "baseline_fresh_sims": int,
        "exhaustive_fresh_sims": int,
        "bai_samples": int,
        "baseline_samples": int,
        "sims_saved_pct": float,
        "bai_objective": float,
        "baseline_objective": float,
        "objective_delta": ("nonneg", float),
        "wall_s": float,
    },
    # The node-fault sweep's headline acceptance rides on risk_aware_wins:
    # risk-aware placement must beat fault-oblivious placement on expected
    # makespan at >= 1 MTBF point, so the field is strictly positive.
    "node_faults": {
        "mode": str,
        "mtbf_points": int,
        "cells": int,
        "risk_aware_wins": int,
        "best_expected_gain_pct": float,
        "migrations_total": int,
        "chunks_lost_total": ("nonneg", int),
        "base_makespan_s": float,
        "wall_s": ("nonneg", float),
    },
}


def fail(msg):
    print(f"check_bench_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_field(path, key, value, want):
    nonneg = False
    if isinstance(want, tuple):
        nonneg, want = want[0] == "nonneg", want[1]
    if want is list:
        if not isinstance(value, list) or not value:
            fail(f"{path}: {key!r} must be a non-empty array, got {value!r}")
        for i, entry in enumerate(value):
            if not isinstance(entry, dict):
                fail(f"{path}: {key}[{i}] must be an object, got {entry!r}")
            check_field(path, f"{key}[{i}].name", entry.get("name"), str)
            check_field(path, f"{key}[{i}].real_time_ns",
                        entry.get("real_time_ns"), float)
            check_field(path, f"{key}[{i}].iterations",
                        entry.get("iterations"), int)
    elif want is float:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            fail(f"{path}: {key!r} must be a number, got {value!r}")
        if not math.isfinite(value) or value < 0 or (value == 0 and not nonneg):
            fail(f"{path}: {key!r} must be finite and "
                 f"{'non-negative' if nonneg else 'positive'}, got {value!r}")
    elif want is int:
        if not isinstance(value, int) or isinstance(value, bool):
            fail(f"{path}: {key!r} must be an integer, got {value!r}")
        if value < 0 or (value == 0 and not nonneg):
            fail(f"{path}: {key!r} must be "
                 f"{'non-negative' if nonneg else 'positive'}, got {value!r}")
    else:
        if not isinstance(value, str) or not value:
            fail(f"{path}: {key!r} must be a non-empty string, got {value!r}")


def main():
    if len(sys.argv) != 2:
        fail("usage: check_bench_json.py BENCH_file.json")
    path = sys.argv[1]
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")

    if not isinstance(data, dict):
        fail(f"{path}: top level must be an object")
    bench = data.get("bench")
    if bench not in SCHEMAS:
        fail(f"{path}: unknown bench {bench!r} "
             f"(registered: {sorted(SCHEMAS)})")
    for key, want in SCHEMAS[bench].items():
        if key not in data:
            fail(f"{path}: missing field {key!r}")
        check_field(path, key, data[key], want)

    if data["mode"] not in ("full", "quick"):
        fail(f"{path}: mode must be 'full' or 'quick', got {data['mode']!r}")

    # Cross-field invariants.
    if bench == "engine_throughput" and data["mode"] == "full":
        # Perf floor for the committed full-mode baseline: the data-oriented
        # replay hot path sustains >= 9.5M events/s on the C1.5 series
        # (2x the pre-SoA baseline); a committed report below the floor
        # means the hot path regressed and must be investigated, not
        # re-baselined.
        floor = 9.5e6
        if data["replay_events_per_s"] < floor:
            fail(f"{path}: replay_events_per_s "
                 f"{data['replay_events_per_s']:.3e} below the committed "
                 f"floor {floor:.1e}")
    if bench == "search_efficiency":
        # Equal-or-better winner quality is already enforced by the
        # ("nonneg", float) marker on objective_delta; re-derive it so a
        # hand-edited report cannot desynchronize the pair.
        delta = data["bai_objective"] - data["baseline_objective"]
        if abs(delta - data["objective_delta"]) > 1e-12:
            fail(f"{path}: objective_delta {data['objective_delta']!r} does "
                 f"not match bai_objective - baseline_objective ({delta!r})")
        if data["bai_fresh_sims"] >= data["baseline_fresh_sims"]:
            fail(f"{path}: bai_fresh_sims {data['bai_fresh_sims']} not below "
                 f"baseline_fresh_sims {data['baseline_fresh_sims']}")
        if data["mode"] == "full" and data["sims_saved_pct"] < 30.0:
            fail(f"{path}: sims_saved_pct {data['sims_saved_pct']:.1f} below "
                 f"the committed full-mode floor of 30")
    if bench == "replay_profile":
        pct_sum = (data["engine_dispatch_pct"] + data["interference_pct"] +
                   data["stage_model_pct"] + data["metrics_pct"])
        if abs(pct_sum - 100.0) > 0.5:
            fail(f"{path}: section percentages sum to {pct_sum:.3f}, "
                 f"expected ~100")

    print(f"check_bench_json: OK ({path}: bench={bench},"
          f" mode={data['mode']})")


if __name__ == "__main__":
    main()
