#!/usr/bin/env python3
"""Validate a BENCH_*.json report against its bench's schema.

Usage: check_bench_json.py BENCH_file.json

The report's "bench" field selects the schema from the registry below.
Checks that every expected field is present with the right JSON type and
that rates/counts satisfy the bench's invariants, so a refactor that drops
a series (or emits NaN) fails the bench-smoke CI job instead of silently
thinning the trajectory. Schema additions are fine; removals are not.

Field markers: a plain type means "finite and strictly positive" for
numbers; ("nonneg", type) allows zero — for counters that legitimately
stay at zero in a healthy run (e.g. chunks lost with replication on).
"""
import json
import math
import sys

# Per-bench schemas, keyed on the report's "bench" field.
SCHEMAS = {
    "engine_throughput": {
        "queue_policy": str,
        "mode": str,
        "chain_events": int,
        "chain_events_per_s": float,
        "churn_cancellations": int,
        "churn_cancels_per_s": float,
        "cancel_heavy_events": int,
        "cancel_heavy_events_per_s": float,
        "mixed_horizon_events": int,
        "mixed_horizon_events_per_s": float,
        "replay_config": str,
        "replay_count": int,
        "replay_events": int,
        "replay_events_per_s": float,
    },
    # The node-fault sweep's headline acceptance rides on risk_aware_wins:
    # risk-aware placement must beat fault-oblivious placement on expected
    # makespan at >= 1 MTBF point, so the field is strictly positive.
    "node_faults": {
        "mode": str,
        "mtbf_points": int,
        "cells": int,
        "risk_aware_wins": int,
        "best_expected_gain_pct": float,
        "migrations_total": int,
        "chunks_lost_total": ("nonneg", int),
        "base_makespan_s": float,
        "wall_s": ("nonneg", float),
    },
}


def fail(msg):
    print(f"check_bench_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_field(path, key, value, want):
    nonneg = False
    if isinstance(want, tuple):
        nonneg, want = want[0] == "nonneg", want[1]
    if want is float:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            fail(f"{path}: {key!r} must be a number, got {value!r}")
        if not math.isfinite(value) or value < 0 or (value == 0 and not nonneg):
            fail(f"{path}: {key!r} must be finite and "
                 f"{'non-negative' if nonneg else 'positive'}, got {value!r}")
    elif want is int:
        if not isinstance(value, int) or isinstance(value, bool):
            fail(f"{path}: {key!r} must be an integer, got {value!r}")
        if value < 0 or (value == 0 and not nonneg):
            fail(f"{path}: {key!r} must be "
                 f"{'non-negative' if nonneg else 'positive'}, got {value!r}")
    else:
        if not isinstance(value, str) or not value:
            fail(f"{path}: {key!r} must be a non-empty string, got {value!r}")


def main():
    if len(sys.argv) != 2:
        fail("usage: check_bench_json.py BENCH_file.json")
    path = sys.argv[1]
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")

    if not isinstance(data, dict):
        fail(f"{path}: top level must be an object")
    bench = data.get("bench")
    if bench not in SCHEMAS:
        fail(f"{path}: unknown bench {bench!r} "
             f"(registered: {sorted(SCHEMAS)})")
    for key, want in SCHEMAS[bench].items():
        if key not in data:
            fail(f"{path}: missing field {key!r}")
        check_field(path, key, data[key], want)

    if data["mode"] not in ("full", "quick"):
        fail(f"{path}: mode must be 'full' or 'quick', got {data['mode']!r}")

    print(f"check_bench_json: OK ({path}: bench={bench},"
          f" mode={data['mode']})")


if __name__ == "__main__":
    main()
