#!/usr/bin/env python3
"""Validate BENCH_engine.json against the schema the perf trajectory relies on.

Usage: check_bench_json.py BENCH_engine.json

Checks that every expected field is present with the right JSON type and
that rates/counts are positive, so a refactor that drops a series (or emits
NaN) fails the bench-smoke CI job instead of silently thinning the
trajectory. Schema additions are fine; removals are not.
"""
import json
import math
import sys

EXPECTED = {
    "bench": str,
    "queue_policy": str,
    "mode": str,
    "chain_events": int,
    "chain_events_per_s": float,
    "churn_cancellations": int,
    "churn_cancels_per_s": float,
    "cancel_heavy_events": int,
    "cancel_heavy_events_per_s": float,
    "mixed_horizon_events": int,
    "mixed_horizon_events_per_s": float,
    "replay_config": str,
    "replay_count": int,
    "replay_events": int,
    "replay_events_per_s": float,
}


def fail(msg):
    print(f"check_bench_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail("usage: check_bench_json.py BENCH_engine.json")
    path = sys.argv[1]
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")

    if not isinstance(data, dict):
        fail(f"{path}: top level must be an object")

    for key, want in EXPECTED.items():
        if key not in data:
            fail(f"{path}: missing field {key!r}")
        value = data[key]
        if want is float:
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                fail(f"{path}: {key!r} must be a number, got {value!r}")
            if not math.isfinite(value) or value <= 0:
                fail(f"{path}: {key!r} must be finite and positive, "
                     f"got {value!r}")
        elif want is int:
            if not isinstance(value, int) or isinstance(value, bool):
                fail(f"{path}: {key!r} must be an integer, got {value!r}")
            if value <= 0:
                fail(f"{path}: {key!r} must be positive, got {value!r}")
        else:
            if not isinstance(value, str) or not value:
                fail(f"{path}: {key!r} must be a non-empty string, "
                     f"got {value!r}")

    if data["bench"] != "engine_throughput":
        fail(f"{path}: bench must be 'engine_throughput'")
    if data["mode"] not in ("full", "quick"):
        fail(f"{path}: mode must be 'full' or 'quick', got {data['mode']!r}")

    print(f"check_bench_json: OK ({path}: queue_policy={data['queue_policy']},"
          f" mode={data['mode']})")


if __name__ == "__main__":
    main()
