#include "wfens_lint/layers.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <sstream>

namespace wfe::lint {

namespace {

/// Reporter that honors per-file allow() annotations for findings anchored
/// in project files; manifest-anchored findings have no allow channel.
void report(Project& project, std::vector<Finding>& findings,
            const std::string& file, int line, std::string rule,
            std::string message) {
  const int index = project.file_index(file);
  if (index >= 0 &&
      project.files[index].allows.allows(rule, line)) {
    return;
  }
  findings.push_back(Finding{file, line, std::move(rule), std::move(message)});
}

std::string trim(std::string_view s) {
  const std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string_view::npos) return "";
  const std::size_t e = s.find_last_not_of(" \t\r");
  return std::string(s.substr(b, e - b + 1));
}

}  // namespace

int LayerManifest::layer_of(std::string_view module) const {
  for (std::size_t i = 0; i < modules.size(); ++i) {
    if (modules[i] == module) return static_cast<int>(i);
  }
  return -1;
}

LayerManifest parse_layer_manifest(std::string_view text,
                                   const std::string& manifest_path,
                                   std::vector<Finding>& findings) {
  LayerManifest manifest;
  const auto bad = [&](int line, const std::string& message) {
    findings.push_back(Finding{manifest_path, line, "layer-manifest",
                               message});
  };

  int line_no = 0;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find('\n', begin);
    if (end == std::string_view::npos) end = text.size();
    ++line_no;
    std::string line(text.substr(begin, end - begin));
    begin = end + 1;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    line = trim(line);
    if (line.empty()) {
      if (end == text.size()) break;
      continue;
    }

    std::istringstream tokens(line);
    std::string directive;
    tokens >> directive;
    if (directive == "module") {
      std::string name, extra;
      tokens >> name;
      if (name.empty() || (tokens >> extra)) {
        bad(line_no, "expected `module <name>`, got: " + line);
      } else if (manifest.layer_of(name) >= 0) {
        bad(line_no, "module " + name + " declared twice");
      } else {
        manifest.modules.push_back(name);
      }
    } else if (directive == "edge") {
      std::string from, arrow, to, extra;
      tokens >> from >> arrow >> to;
      if (from.empty() || arrow != "->" || to.empty() || (tokens >> extra)) {
        bad(line_no, "expected `edge <from> -> <to>`, got: " + line);
        continue;
      }
      const int from_layer = manifest.layer_of(from);
      const int to_layer = manifest.layer_of(to);
      if (from_layer < 0 || to_layer < 0) {
        bad(line_no, "edge " + from + " -> " + to +
                         " names a module not declared above it");
        continue;
      }
      if (from_layer <= to_layer) {
        bad(line_no, "edge " + from + " -> " + to +
                         " points upward (or sideways) in the declared "
                         "layer order; a lower layer must not include a "
                         "higher one");
        continue;
      }
      const bool duplicate = std::any_of(
          manifest.edges.begin(), manifest.edges.end(),
          [&](const LayerManifest::Edge& e) { return e.from == from && e.to == to; });
      if (duplicate) {
        bad(line_no, "edge " + from + " -> " + to + " declared twice");
        continue;
      }
      manifest.edges.push_back(LayerManifest::Edge{from, to, line_no});
    } else {
      bad(line_no, "unknown directive `" + directive +
                       "` (expected `module` or `edge`)");
    }
    if (end == text.size()) break;
  }
  return manifest;
}

void run_layering_pass(Project& project, std::vector<Finding>& findings) {
  const std::string& manifest_path = project.manifest_path;
  if (!project.manifest_text) {
    findings.push_back(
        Finding{manifest_path, 1, "layer-manifest",
                "layering manifest not found; declare the module DAG "
                "(see docs/ANALYSIS.md)"});
    return;
  }
  const LayerManifest manifest =
      parse_layer_manifest(*project.manifest_text, manifest_path, findings);

  // Observed cross-module include edges: (from, to) -> first witness.
  struct Witness {
    std::string file;
    int line = 0;
    std::string target;
  };
  std::map<std::pair<std::string, std::string>, Witness> observed;
  std::set<std::string> unknown_reported;
  for (const ProjectFile& file : project.files) {
    if (file.module.empty()) continue;  // not under src/ or tools/
    if (manifest.layer_of(file.module) < 0 &&
        unknown_reported.insert(file.module).second) {
      report(project, findings, file.path, 1, "layer-unknown-module",
             "module `" + file.module +
                 "` is not declared in " + manifest_path);
    }
    for (const IncludeEdge& edge : file.includes) {
      if (edge.resolved < 0) continue;
      const std::string& to = project.files[edge.resolved].module;
      if (to.empty() || to == file.module) continue;
      const auto key = std::make_pair(file.module, to);
      if (!observed.count(key)) {
        observed.emplace(key, Witness{file.path, edge.line, edge.target});
      }
    }
  }

  // Undeclared edges, at the first #include that creates each.
  for (const auto& [key, witness] : observed) {
    const bool declared = std::any_of(
        manifest.edges.begin(), manifest.edges.end(),
        [&](const LayerManifest::Edge& e) {
          return e.from == key.first && e.to == key.second;
        });
    if (!declared) {
      report(project, findings, witness.file, witness.line,
             "layer-undeclared-edge",
             "#include \"" + witness.target + "\" creates module edge " +
                 key.first + " -> " + key.second + " which " +
                 manifest_path + " does not allow");
    }
  }

  // Stale manifest entries: declared edges no include exercises.
  for (const LayerManifest::Edge& edge : manifest.edges) {
    if (!observed.count({edge.from, edge.to})) {
      findings.push_back(Finding{
          manifest_path, edge.line, "layer-stale-edge",
          "declared edge " + edge.from + " -> " + edge.to +
              " is used by no #include; remove it from the manifest"});
    }
  }

  // Cycles in the observed module graph. Declared edges are forced
  // downward by the parser, so any cycle runs through an undeclared edge
  // — still worth its own finding: the cycle is the structural bug, the
  // undeclared edge just one symptom.
  std::vector<std::string> modules;
  for (const auto& [key, witness] : observed) {
    for (const std::string& m : {key.first, key.second}) {
      if (std::find(modules.begin(), modules.end(), m) == modules.end()) {
        modules.push_back(m);
      }
    }
  }
  std::map<std::string, int> state;  // 0 unvisited, 1 on stack, 2 done
  std::vector<std::string> stack;
  std::set<std::set<std::string>> seen_cycles;
  const std::function<void(const std::string&)> dfs =
      [&](const std::string& at) {
        state[at] = 1;
        stack.push_back(at);
        for (const auto& [key, witness] : observed) {
          if (key.first != at) continue;
          const std::string& next = key.second;
          if (state[next] == 1) {
            // Found a cycle: slice it out of the stack.
            const auto begin =
                std::find(stack.begin(), stack.end(), next);
            std::vector<std::string> cycle(begin, stack.end());
            if (seen_cycles
                    .insert(std::set<std::string>(cycle.begin(), cycle.end()))
                    .second) {
              std::string path;
              for (const std::string& m : cycle) path += m + " -> ";
              path += next;
              const Witness& w = observed.at(key);
              report(project, findings, w.file, w.line, "layer-cycle",
                     "module cycle: " + path);
            }
          } else if (state[next] == 0) {
            dfs(next);
          }
        }
        stack.pop_back();
        state[at] = 2;
      };
  for (const std::string& m : modules) {
    if (state[m] == 0) dfs(m);
  }
}

}  // namespace wfe::lint
