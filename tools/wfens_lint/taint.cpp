#include "wfens_lint/taint.hpp"

#include <cctype>
#include <string>
#include <string_view>

namespace wfe::lint {

namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

char next_nonspace(std::string_view s, std::size_t i) {
  while (i < s.size()) {
    if (s[i] != ' ' && s[i] != '\t' && s[i] != '\n') return s[i];
    ++i;
  }
  return '\0';
}

char prev_nonspace(std::string_view s, std::size_t i) {
  while (i > 0) {
    --i;
    if (s[i] != ' ' && s[i] != '\t' && s[i] != '\n') return s[i];
  }
  return '\0';
}

/// The direct banned use in [begin, end) of `mask`, if any — same token
/// heuristics as the banned-ident file rule. Returns the identifier and its
/// offset via out-params.
bool find_direct_use(std::string_view mask, std::size_t begin,
                     std::size_t end, std::string_view* ident_out,
                     std::size_t* offset_out) {
  std::size_t i = begin;
  while (i < end) {
    if (!is_ident_start(mask[i]) || (i > 0 && is_ident_char(mask[i - 1]))) {
      ++i;
      continue;
    }
    std::size_t e = i;
    while (e < mask.size() && is_ident_char(mask[e])) ++e;
    const std::string_view ident = mask.substr(i, e - i);
    bool hit = false;
    if ((ident == "rand" || ident == "srand") &&
        next_nonspace(mask, e) == '(') {
      hit = true;
    } else if (ident == "random_device" || ident == "system_clock") {
      hit = true;
    } else if (ident == "time" && next_nonspace(mask, e) == '(') {
      const char prev = prev_nonspace(mask, i);
      hit = prev != '.' && prev != '>';  // obj.time(...) is not the libc call
    }
    if (hit) {
      *ident_out = ident;
      *offset_out = i;
      return true;
    }
    i = e;
  }
  return false;
}

int line_of(std::string_view content, std::size_t offset) {
  int line = 1;
  for (std::size_t i = 0; i < offset; ++i) {
    if (content[i] == '\n') ++line;
  }
  return line;
}

}  // namespace

void run_taint_pass(Project& project, std::vector<Finding>& findings) {
  const std::size_t n = project.functions.size();

  // Sources: bodies with a direct banned use, described by "<ident> at
  // <file>:<line>" for the eventual finding message.
  std::vector<std::string> source(n);  // "" = not a direct source
  std::vector<std::string> witness(n);  // ultimate direct-use site
  for (std::size_t fn = 0; fn < n; ++fn) {
    const FunctionDef& def = project.functions[fn];
    const ProjectFile& file = project.files[def.file];
    std::string_view ident;
    std::size_t offset = 0;
    if (find_direct_use(file.mask, def.body_begin, def.body_end, &ident,
                        &offset)) {
      source[fn] = std::string(ident);
      witness[fn] = std::string(ident) + " at " + file.path + ":" +
                    std::to_string(line_of(file.content, offset));
    }
  }

  // Fixpoint: taint flows caller-ward over the call graph; each newly
  // tainted function inherits its callee's witness.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t fn = 0; fn < n; ++fn) {
      if (!witness[fn].empty()) continue;
      for (const CallSite& call : project.calls[fn]) {
        for (const int callee : call.candidates) {
          if (callee != static_cast<int>(fn) &&
              !witness[callee].empty()) {
            witness[fn] = witness[callee];
            changed = true;
            break;
          }
        }
        if (!witness[fn].empty()) break;
      }
    }
  }

  // Findings: transitively tainted src/ functions outside src/support/.
  for (std::size_t fn = 0; fn < n; ++fn) {
    if (witness[fn].empty() || !source[fn].empty()) continue;
    const FunctionDef& def = project.functions[fn];
    ProjectFile& file = project.files[def.file];
    if (!file.cls.in_src || file.cls.in_support) continue;

    // Anchor at the first call that imports the taint.
    for (const CallSite& call : project.calls[fn]) {
      const bool imports = [&] {
        for (const int callee : call.candidates) {
          if (callee != static_cast<int>(fn) && !witness[callee].empty()) {
            return true;
          }
        }
        return false;
      }();
      if (!imports) continue;
      if (!file.allows.allows("determinism-taint", call.line)) {
        findings.push_back(Finding{
            file.path, call.line, "determinism-taint",
            "call to " + call.name + "() makes " + def.name +
                "() reach " + witness[fn] +
                " through project calls; draw from support/rng or virtual "
                "time, or justify with allow(determinism-taint)"});
      }
      break;
    }
  }
}

}  // namespace wfe::lint
