#include "wfens_lint/fix.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "wfens_lint/lint.hpp"

namespace wfe::lint {

namespace {

constexpr std::size_t npos = std::string_view::npos;

/// Normalize "a/b/../c" -> "a/c" (lexically; no filesystem access).
std::string normalize_path(std::string_view path) {
  std::vector<std::string_view> parts;
  std::size_t b = 0;
  for (std::size_t i = 0; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/') {
      const std::string_view part = path.substr(b, i - b);
      if (part == ".." && !parts.empty() && parts.back() != "..") {
        parts.pop_back();
      } else if (!part.empty() && part != ".") {
        parts.push_back(part);
      }
      b = i + 1;
    }
  }
  std::string out;
  for (const std::string_view part : parts) {
    if (!out.empty()) out += '/';
    out.append(part);
  }
  return out;
}

struct Line {
  std::string_view content;  ///< without the trailing newline
  std::string_view mask;
  std::size_t begin = 0;  ///< offset of the line start in the file
};

std::vector<Line> split_lines(std::string_view content,
                              std::string_view mask) {
  std::vector<Line> lines;
  std::size_t b = 0;
  for (std::size_t i = 0; i <= content.size(); ++i) {
    if (i == content.size() || content[i] == '\n') {
      lines.push_back(
          {content.substr(b, i - b), mask.substr(b, i - b), b});
      b = i + 1;
    }
  }
  return lines;
}

bool is_include_line(std::string_view mask_line) {
  const std::size_t p = mask_line.find_first_not_of(" \t");
  return p != npos && mask_line.compare(p, 8, "#include") == 0;
}

bool is_pragma_once_line(std::string_view mask_line) {
  const std::size_t p = mask_line.find_first_not_of(" \t");
  if (p == npos || mask_line[p] != '#') return false;
  return mask_line.find("pragma") != npos && mask_line.find("once") != npos;
}

/// Rewrite one parent-relative include target, or return the line as-is.
std::string fix_include_line(std::string_view path, const Line& line,
                             int* edits) {
  const std::string_view text = line.content;
  const std::size_t q1 = text.find('"');
  if (q1 == npos || text.compare(q1, 4, "\"../") != 0) {
    return std::string(text);
  }
  const std::size_t q2 = text.find('"', q1 + 1);
  if (q2 == npos) return std::string(text);
  const std::string_view target = text.substr(q1 + 1, q2 - q1 - 1);

  const std::size_t slash = path.rfind('/');
  const std::string dir =
      slash == npos ? std::string() : std::string(path.substr(0, slash));
  std::string resolved = normalize_path(dir + "/" + std::string(target));
  if (resolved.starts_with("src/")) {
    resolved.erase(0, 4);
  } else if (resolved.starts_with("tools/")) {
    resolved.erase(0, 6);
  } else if (resolved.starts_with("..")) {
    return std::string(text);  // escapes the repo: nothing canonical to say
  }
  ++*edits;
  return std::string(text.substr(0, q1 + 1)) + resolved +
         std::string(text.substr(q2));
}

}  // namespace

FixResult fix_source(std::string_view relative_path,
                     std::string_view content) {
  const FileClass cls = classify_path(relative_path);
  const std::string mask = detail::code_mask(content);
  const std::vector<Line> lines = split_lines(content, mask);

  bool has_pragma_once = false;
  for (const Line& line : lines) {
    if (is_pragma_once_line(line.mask)) has_pragma_once = true;
  }

  FixResult result;
  std::string out;
  out.reserve(content.size() + 16);
  bool pragma_inserted = !cls.header || has_pragma_once;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const Line& line = lines[i];
    if (!pragma_inserted) {
      // The insertion point: after the leading // comment block (mask
      // all-blank, content starting with //), before the first real line.
      const std::size_t p = line.content.find_first_not_of(" \t");
      const bool doc_comment =
          p != npos && line.content.compare(p, 2, "//") == 0 &&
          line.mask.find_first_not_of(" \t") == npos;
      if (!doc_comment) {
        out += "#pragma once\n";
        pragma_inserted = true;
        ++result.edits;
      }
    }
    if (is_include_line(line.mask)) {
      out += fix_include_line(relative_path, line, &result.edits);
    } else {
      out.append(line.content);
    }
    if (i + 1 < lines.size()) out += '\n';
  }
  if (!pragma_inserted) {  // comment-only file
    out += "#pragma once\n";
    ++result.edits;
  }
  result.content = std::move(out);
  return result;
}

int fix_tree(const std::filesystem::path& repo_root) {
  namespace fs = std::filesystem;
  std::vector<fs::path> paths;
  for (const char* top : {"src", "tools"}) {
    const fs::path dir = repo_root / top;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const fs::path& p = entry.path();
      if (p.extension() == ".hpp" || p.extension() == ".cpp") {
        paths.push_back(p);
      }
    }
  }

  int changed = 0;
  for (const fs::path& p : paths) {
    std::ifstream in(p, std::ios::binary);
    if (!in) {
      throw std::runtime_error("wfens_lint: cannot read " + p.string());
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string before = buffer.str();
    const std::string relative = fs::relative(p, repo_root).generic_string();
    FixResult fixed = fix_source(relative, before);
    if (fixed.edits == 0 || fixed.content == before) continue;
    std::ofstream outf(p, std::ios::binary | std::ios::trunc);
    if (!outf) {
      throw std::runtime_error("wfens_lint: cannot write " + p.string());
    }
    outf << fixed.content;
    ++changed;
  }
  return changed;
}

}  // namespace wfe::lint
