// wfens_lint — the project's in-tree invariant scanner.
//
// WFEns' headline correctness claims (bit-identical replay, zero observer
// effect, deterministic pick_winner) are properties of the *source*, not of
// any one test run: a single stray rand() or an iteration over an
// unordered_map in an exporter breaks them silently on the next platform.
// This scanner mechanically enforces the invariants over src/ and tools/,
// runs as a ctest (lint.tree) and as a CLI, and emits a machine-readable
// findings report for CI.
//
// Rule catalogue (ids are what allow() annotations name; details in
// docs/ANALYSIS.md):
//
//   banned-ident          rand/srand/random_device calls anywhere, time()
//                         calls anywhere, std::chrono system_clock outside
//                         src/support/. Deterministic code must draw time
//                         and entropy from the engine or support/rng.
//   simengine-std-function
//                         std::function inside src/simengine/ — the event
//                         core uses SmallFn; std::function reintroduces
//                         per-callback heap traffic on the hot path.
//   event-queue-outside-simengine
//                         std::priority_queue or the raw heap algorithms
//                         (push_heap/pop_heap/make_heap/sort_heap) outside
//                         src/simengine/ — sim::Engine is the single event
//                         scheduler; ad-hoc queues would fork the ordering
//                         semantics (seq tie-break, cancellation).
//                         #include lines are exempt.
//   unordered-iter        any unordered_map/unordered_set use in an
//                         exporter/trace-emitting TU (src/obs/,
//                         src/metrics/trace_io.*): hash-order iteration
//                         leaks into golden traces. #include lines are
//                         exempt; lookup-only maps carry an allow().
//   raw-mutex             std::mutex / std::condition_variable (and their
//                         timed/recursive/shared variants) in src/ outside
//                         src/support/ — concurrency primitives go through
//                         support/lock_rank.hpp's RankedMutex/RankCv so
//                         the lock-rank checker sees every acquisition.
//                         #include lines are exempt.
//   pragma-once           every header opens with #pragma once.
//   include-parent        no #include "../..." — includes are rooted at
//                         src/ so self-containment checks and tooling see
//                         one canonical path per header.
//   iostream-in-header    headers must not include <iostream> (global
//                         stream objects drag static initializers into
//                         every TU; stream in .cpp files only).
//   stale-allow            an `// wfens-lint: allow(rule)` annotation that
//                         suppresses no finding (whole-project runs only:
//                         the cross-file passes must see every use first).
//   stage-record-outside-runtime
//                         met::StageRecord construction (brace init or a
//                         declaration) in src/ outside src/runtime/ and
//                         src/metrics/ — the replay hot path records
//                         stages through the columnar StageColumns
//                         buffer; per-event StageRecord construction
//                         elsewhere reintroduces the AoS path the
//                         data-oriented refactor removed. References
//                         (const StageRecord&, vector<StageRecord>) and
//                         #include lines are exempt.
//
// Whole-project passes (wfens_lint --root; built on the project model in
// project.hpp, documented in docs/ANALYSIS.md):
//
//   layer-*               layering manifest conformance: every cross-module
//                         #include edge must be declared in
//                         tools/wfens_lint/layers.conf (layer-undeclared-edge),
//                         every declared edge must be used (layer-stale-edge),
//                         the observed module graph must be acyclic
//                         (layer-cycle), every file must map to a declared
//                         module (layer-unknown-module), and the manifest
//                         itself must parse (layer-manifest).
//   lock-rank-static      a call path that can acquire a RankedMutex rank
//                         <= a rank already held — the runtime abort in
//                         src/support/lock_rank.hpp, found at lint time
//                         with both source sites (see ranks.hpp).
//   determinism-taint     a src/ function (outside src/support/) that
//                         reaches rand/time/system_clock/random_device
//                         through a chain of project calls (see taint.hpp).
//
// Escape hatch: a comment `// wfens-lint: allow(rule-id)` (comma-separated
// for several rules) suppresses findings of those rules on its own line,
// or — when the comment stands alone on a line — on the following line.
// The annotation must end its line; text after the closing paren (as in
// this very paragraph) makes it a mention, not an annotation.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace wfe::lint {

struct Finding {
  std::string file;  ///< path as passed in (repo-relative for lint_tree)
  int line = 0;      ///< 1-based
  std::string rule;
  std::string message;

  friend bool operator==(const Finding&, const Finding&) = default;
};

/// What a path is, for rule scoping. Derived from the repo-relative path
/// with forward slashes (e.g. "src/obs/export.cpp").
struct FileClass {
  bool header = false;        ///< *.hpp
  bool in_src = false;        ///< under src/
  bool in_support = false;    ///< under src/support/
  bool in_simengine = false;  ///< under src/simengine/
  bool in_runtime = false;    ///< under src/runtime/
  bool in_metrics = false;    ///< under src/metrics/
  bool in_sched = false;      ///< under src/sched/
  bool exporter = false;      ///< trace-emitting TU set (src/obs/,
                              ///< src/metrics/trace_io.*)
};

FileClass classify_path(std::string_view relative_path);

/// Lint one source text. `relative_path` scopes the rules and labels the
/// findings; findings come back in line order.
std::vector<Finding> lint_source(std::string_view relative_path,
                                 std::string_view content);

/// Lint every *.hpp / *.cpp under `repo_root`/src and `repo_root`/tools,
/// in sorted path order, then run the whole-project passes (layering
/// manifest, static lock rank, determinism taint, stale allows). Throws
/// wfe::lint errors as std::runtime_error on unreadable files.
std::vector<Finding> lint_tree(const std::filesystem::path& repo_root);

/// The findings as a JSON array (stable field order, sorted input order
/// preserved) for CI consumption.
std::string findings_to_json(const std::vector<Finding>& findings);

/// The findings as a SARIF 2.1.0 log (one run, one result per finding)
/// for inline PR annotations in CI.
std::string findings_to_sarif(const std::vector<Finding>& findings);

namespace detail {

/// Replace comment, string-literal and char-literal bytes with spaces
/// (newlines kept) so rule matching only ever sees code. Handles //, block
/// comments (including line continuations that extend a // comment),
/// escapes, adjacent literals, and (u8|u|U|L-prefixed)
/// R"delim(...)delim" raw strings.
std::string code_mask(std::string_view content);

/// Per-line allow() annotations harvested from comments. An annotation
/// covers its own line, plus the next line when the comment stands alone.
/// allows() records which entries actually suppressed something so
/// whole-project runs can flag the rest as stale-allow.
struct AllowMap {
  struct Entry {
    std::string rule;
    int line = 0;             ///< a 1-based line this annotation covers
    int annotation_line = 0;  ///< the comment's own line
    bool used = false;        ///< suppressed at least one finding
  };
  std::vector<Entry> entries;

  /// True when `rule` is suppressed on `line`; marks the entry used.
  bool allows(std::string_view rule, int line);
};
AllowMap collect_allows(std::string_view content);

/// Run the single-file rules (everything except the whole-project passes)
/// with caller-owned mask/allow state, so the project analyzer can share
/// one AllowMap per file across every pass.
std::vector<Finding> run_file_rules(std::string_view relative_path,
                                    std::string_view content,
                                    std::string_view mask, AllowMap& allows);

}  // namespace detail

}  // namespace wfe::lint
