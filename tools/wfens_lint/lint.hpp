// wfens_lint — the project's in-tree invariant scanner.
//
// WFEns' headline correctness claims (bit-identical replay, zero observer
// effect, deterministic pick_winner) are properties of the *source*, not of
// any one test run: a single stray rand() or an iteration over an
// unordered_map in an exporter breaks them silently on the next platform.
// This scanner mechanically enforces the invariants over src/ and tools/,
// runs as a ctest (lint.tree) and as a CLI, and emits a machine-readable
// findings report for CI.
//
// Rule catalogue (ids are what allow() annotations name; details in
// docs/ANALYSIS.md):
//
//   banned-ident          rand/srand/random_device calls anywhere, time()
//                         calls anywhere, std::chrono system_clock outside
//                         src/support/. Deterministic code must draw time
//                         and entropy from the engine or support/rng.
//   simengine-std-function
//                         std::function inside src/simengine/ — the event
//                         core uses SmallFn; std::function reintroduces
//                         per-callback heap traffic on the hot path.
//   event-queue-outside-simengine
//                         std::priority_queue or the raw heap algorithms
//                         (push_heap/pop_heap/make_heap/sort_heap) outside
//                         src/simengine/ — sim::Engine is the single event
//                         scheduler; ad-hoc queues would fork the ordering
//                         semantics (seq tie-break, cancellation).
//                         #include lines are exempt.
//   unordered-iter        any unordered_map/unordered_set use in an
//                         exporter/trace-emitting TU (src/obs/,
//                         src/metrics/trace_io.*): hash-order iteration
//                         leaks into golden traces. #include lines are
//                         exempt; lookup-only maps carry an allow().
//   raw-mutex             std::mutex / std::condition_variable (and their
//                         timed/recursive/shared variants) in src/ outside
//                         src/support/ — concurrency primitives go through
//                         support/lock_rank.hpp's RankedMutex/RankCv so
//                         the lock-rank checker sees every acquisition.
//                         #include lines are exempt.
//   pragma-once           every header opens with #pragma once.
//   include-parent        no #include "../..." — includes are rooted at
//                         src/ so self-containment checks and tooling see
//                         one canonical path per header.
//   iostream-in-header    headers must not include <iostream> (global
//                         stream objects drag static initializers into
//                         every TU; stream in .cpp files only).
//   stage-record-outside-runtime
//                         met::StageRecord construction (brace init or a
//                         declaration) in src/ outside src/runtime/ and
//                         src/metrics/ — the replay hot path records
//                         stages through the columnar StageColumns
//                         buffer; per-event StageRecord construction
//                         elsewhere reintroduces the AoS path the
//                         data-oriented refactor removed. References
//                         (const StageRecord&, vector<StageRecord>) and
//                         #include lines are exempt.
//
// Escape hatch: a comment `// wfens-lint: allow(rule-id)` (comma-separated
// for several rules) suppresses findings of those rules on its own line,
// or — when the comment stands alone on a line — on the following line.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace wfe::lint {

struct Finding {
  std::string file;  ///< path as passed in (repo-relative for lint_tree)
  int line = 0;      ///< 1-based
  std::string rule;
  std::string message;

  friend bool operator==(const Finding&, const Finding&) = default;
};

/// What a path is, for rule scoping. Derived from the repo-relative path
/// with forward slashes (e.g. "src/obs/export.cpp").
struct FileClass {
  bool header = false;        ///< *.hpp
  bool in_src = false;        ///< under src/
  bool in_support = false;    ///< under src/support/
  bool in_simengine = false;  ///< under src/simengine/
  bool in_runtime = false;    ///< under src/runtime/
  bool in_metrics = false;    ///< under src/metrics/
  bool exporter = false;      ///< trace-emitting TU set (src/obs/,
                              ///< src/metrics/trace_io.*)
};

FileClass classify_path(std::string_view relative_path);

/// Lint one source text. `relative_path` scopes the rules and labels the
/// findings; findings come back in line order.
std::vector<Finding> lint_source(std::string_view relative_path,
                                 std::string_view content);

/// Lint every *.hpp / *.cpp under `repo_root`/src and `repo_root`/tools,
/// in sorted path order. Throws wfe::lint errors as std::runtime_error on
/// unreadable files.
std::vector<Finding> lint_tree(const std::filesystem::path& repo_root);

/// The findings as a JSON array (stable field order, sorted input order
/// preserved) for CI consumption.
std::string findings_to_json(const std::vector<Finding>& findings);

namespace detail {

/// Replace comment, string-literal and char-literal bytes with spaces
/// (newlines kept) so rule matching only ever sees code. Handles //, block
/// comments, escapes, and R"delim(...)delim" raw strings.
std::string code_mask(std::string_view content);

/// Per-line allow() annotations harvested from comments: allowed[rule]
/// holds the 1-based lines on which that rule is suppressed (the comment's
/// line, plus the next line for stand-alone annotation comments).
struct AllowMap {
  std::vector<std::pair<std::string, int>> entries;
  bool allows(std::string_view rule, int line) const;
};
AllowMap collect_allows(std::string_view content);

}  // namespace detail

}  // namespace wfe::lint
