// Static lock-rank verification: the runtime abort in
// src/support/lock_rank.hpp, found at lint time.
//
// The runtime checker catches a rank inversion only when a schedule
// actually executes the offending path; this pass finds any path the
// source admits. It rebuilds the rank world from source alone:
//
//   * rank constants    `inline constexpr int kRankX = N;` anywhere in the
//                       project (in practice src/support/lock_rank.hpp);
//   * mutex aliases     `using M = support::RankedMutex<kRankX>;` and
//                       direct `RankedMutex<kRankX> member;` declarations;
//   * guard aliases     `using G = support::RankGuard<M>;` (and RankLock);
//   * acquisition sites `RankGuard<M> lock(m);`, `Guard lock(m);`, ... —
//                       template arguments and aliases resolved through
//                       the TU's visible files (include closure + twins).
//
// Held-rank sets then propagate over the conservative call graph:
// AcqStar(F) is every rank a call to F can acquire at any depth (with one
// witness site per rank). Walking each function body in order with
// brace-scoped guard lifetimes (`.unlock()` releases early), the pass
// reports `lock-rank-static` whenever
//
//   * an acquisition site takes a rank <= one already held in the same
//     function (the runtime checker's exact condition), or
//   * a call site can reach an acquisition of a rank <= one held here —
//     the two-calls-away inversion the per-file rules cannot see.
//
// Both source sites (the held lock's and the offending acquisition's) are
// in the message, mirroring the runtime abort report. src/support/ is
// exempt (it implements the machinery).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "wfens_lint/lint.hpp"
#include "wfens_lint/project.hpp"

namespace wfe::lint {

/// The rank world as rebuilt from source.
struct RankModel {
  /// kRankX -> value, sorted by name.
  std::map<std::string, int> constants;

  /// One RankedMutex<R> declaration (alias or member/variable).
  struct MutexDecl {
    int file = -1;
    int line = 0;
    int rank = 0;
  };
  std::vector<MutexDecl> declarations;

  /// One guard construction that acquires a rank.
  struct AcquisitionSite {
    int file = -1;
    int line = 0;
    std::size_t offset = 0;  ///< in the file's mask
    int rank = 0;
    std::string variable;  ///< guard variable name ("" when unnamed)
  };
  std::vector<AcquisitionSite> sites;

  /// Ranks with at least one declaration, ascending — the documented rank
  /// table, reproduced from source.
  std::vector<int> rank_order() const;
};

/// Rebuild the rank world from the project's masked sources.
RankModel extract_rank_model(const Project& project);

/// Run the static verification, appending lock-rank-static findings.
void run_lock_rank_pass(Project& project, std::vector<Finding>& findings);

}  // namespace wfe::lint
