// The shared whole-project model behind wfens_lint's cross-file passes.
//
// Every pass that reasons across translation units — the layering manifest
// (layers.hpp), the static lock-rank verifier (ranks.hpp) and the
// determinism taint audit (taint.hpp) — consumes the same three artifacts,
// built once per run:
//
//   * per-TU token streams: each file's content plus its code_mask()
//     (comments and literals blanked), so passes only ever match code;
//   * the include graph: every `#include "..."` edge resolved to a project
//     file, with the transitive closure per TU and each header's
//     implementation twin (src/a/x.hpp <-> src/a/x.cpp), which bounds
//     which definitions a TU can plausibly reach;
//   * a conservative identifier-level call graph: function definitions
//     found by a brace/paren-matching scan of the mask, call sites resolved
//     by bare name against the caller's visible files. Calls through
//     function pointers / std::function / templates-by-name are invisible,
//     and same-named functions merge — the passes are designed so both
//     stay conservative for their invariant.
//
// analyze_project() runs the single-file rules plus all cross-file passes
// and the stale-allow sweep over one Project; lint_tree() is
// load_project() + analyze_project().
#pragma once

#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "wfens_lint/lint.hpp"

namespace wfe::lint {

/// One `#include "..."` edge out of a file. Angle includes are not
/// recorded: only project-internal headers participate in the layering
/// and visibility analyses.
struct IncludeEdge {
  int line = 0;        ///< 1-based line of the directive
  std::string target;  ///< spelled include path (between the quotes)
  int resolved = -1;   ///< index of the included project file, or -1
};

/// One source file of the project, with everything the passes share.
struct ProjectFile {
  std::string path;     ///< repo-relative, forward slashes
  std::string content;  ///< raw bytes
  std::string mask;     ///< code_mask(content)
  FileClass cls;
  std::string module;  ///< "support", ..., "tools"; "" when unmapped
  detail::AllowMap allows;
  std::vector<IncludeEdge> includes;
};

/// A function definition discovered in the mask: `name(...) ... { body }`.
/// Qualified definitions (`Foo::bar`) keep only the last component, so the
/// call graph resolves member calls (`obj.bar(...)`) by bare name.
struct FunctionDef {
  int file = -1;
  std::string name;
  int line = 1;                ///< 1-based line of the name
  std::size_t body_begin = 0;  ///< offset of the body '{' in the mask
  std::size_t body_end = 0;    ///< offset one past the matching '}'
};

/// One call site inside a function body.
struct CallSite {
  std::string name;  ///< bare callee identifier
  int line = 1;
  std::size_t offset = 0;       ///< of the identifier in the mask
  std::vector<int> candidates;  ///< FunctionDef indices the name may reach
};

struct Project {
  std::vector<ProjectFile> files;  ///< sorted by path
  std::vector<FunctionDef> functions;
  std::vector<std::vector<CallSite>> calls;  ///< per function, offset order

  /// Per file: indices of every project file transitively reachable
  /// through resolved includes (self included).
  std::vector<std::vector<int>> closure;
  /// Per file: closure plus each closed-over header's implementation twin
  /// — the files whose function definitions a call in this TU can
  /// plausibly resolve to.
  std::vector<std::vector<int>> visible;

  /// Layering manifest (tools/wfens_lint/layers.conf) as loaded; nullopt
  /// when the tree has none.
  std::optional<std::string> manifest_text;
  std::string manifest_path;

  /// Index of `path` in files, or -1.
  int file_index(std::string_view path) const;
  /// Function definitions named `name` visible from file `file`.
  std::vector<int> visible_functions(std::string_view name, int file) const;
};

/// Module a repo-relative path belongs to: "src/obs/export.cpp" -> "obs",
/// anything under tools/ -> "tools", otherwise "".
std::string module_of(std::string_view path);

/// Build the model from in-memory (path, content) pairs — the test
/// fixtures' entry point. Paths are repo-relative; order is normalized to
/// sorted-by-path.
Project build_project(
    std::vector<std::pair<std::string, std::string>> sources,
    std::optional<std::string> manifest_text = std::nullopt);

/// Read every *.hpp/*.cpp under repo_root/src and repo_root/tools plus the
/// layering manifest, and build the model. Throws std::runtime_error on
/// unreadable files.
Project load_project(const std::filesystem::path& repo_root);

/// Which passes analyze_project() runs; all on by default.
struct AnalyzeOptions {
  bool file_rules = true;
  bool layering = true;
  bool lock_rank = true;
  bool taint = true;
  bool stale_allow = true;
};

/// Run the single-file rules on every file, then the layering / lock-rank
/// / taint passes, then flag allow() annotations that suppressed nothing.
/// Findings come back sorted by (file, line).
std::vector<Finding> analyze_project(Project& project,
                                     const AnalyzeOptions& options = {});

namespace detail {

/// Offset of the matching closer for the opener at `open` (one of ( [ { ),
/// counting only that bracket kind — the mask has no literals to confuse
/// the count. npos when unbalanced.
std::size_t match_bracket(std::string_view mask, std::size_t open);

/// Offsets in `mask` of the body '{' for a candidate whose parameter list
/// closed at `close_paren`; npos when the construct is not a definition
/// (declaration, call, initializer, ...). Skips cv/ref/noexcept trailers,
/// trailing return types and constructor member-init lists.
std::size_t find_body_brace(std::string_view mask, std::size_t close_paren);

}  // namespace detail

}  // namespace wfe::lint
