#include "wfens_lint/ranks.hpp"

#include <algorithm>
#include <cctype>
#include <set>
#include <tuple>

namespace wfe::lint {

namespace {

using detail::match_bracket;
constexpr std::size_t npos = std::string_view::npos;

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::size_t skip_ws(std::string_view s, std::size_t i) {
  while (i < s.size() &&
         (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r')) {
    ++i;
  }
  return i;
}

std::size_t skip_ws_back(std::string_view s, std::size_t i) {
  while (i > 0 &&
         (s[i - 1] == ' ' || s[i - 1] == '\t' || s[i - 1] == '\n' ||
          s[i - 1] == '\r')) {
    --i;
  }
  return i;
}

/// Start offset of the qualified-name chain whose last component begins at
/// `i` — for `support::RankedMutex` with `i` at RankedMutex, the offset of
/// `support`.
std::size_t qual_chain_start(std::string_view s, std::size_t i) {
  std::size_t p = i;
  while (true) {
    const std::size_t q = skip_ws_back(s, p);
    if (q < 2 || s[q - 1] != ':' || s[q - 2] != ':') return p;
    std::size_t r = skip_ws_back(s, q - 2);
    const std::size_t end = r;
    while (r > 0 && is_ident_char(s[r - 1])) --r;
    if (r == end) return p;  // global-qualified ::name
    p = r;
  }
}

int line_of(std::string_view content, std::size_t offset) {
  return 1 + static_cast<int>(
                 std::count(content.begin(), content.begin() + offset, '\n'));
}

/// The last identifier in `text` ("support::kRankExecPool" -> "kRankExecPool").
std::string_view last_identifier(std::string_view text) {
  std::size_t end = text.size();
  while (end > 0 && !is_ident_char(text[end - 1])) --end;
  std::size_t begin = end;
  while (begin > 0 && is_ident_char(text[begin - 1])) --begin;
  return text.substr(begin, end - begin);
}

/// Everything the extraction sweeps accumulate besides the public model.
struct RankWorld {
  RankModel model;
  /// Per file: mutex alias name -> rank.
  std::vector<std::map<std::string, int>> mutex_alias;
  /// Per file: guard alias name -> possible ranks.
  std::vector<std::map<std::string, std::vector<int>>> guard_alias;
};

/// Rank named by a RankedMutex template argument: an integer literal or a
/// (possibly qualified) kRank constant. -1 when unresolvable.
int resolve_rank_arg(const RankModel& model, std::string_view arg) {
  const std::string_view ident = last_identifier(arg);
  if (ident.empty()) return -1;
  if (std::isdigit(static_cast<unsigned char>(ident[0]))) {
    int value = 0;
    for (const char c : ident) {
      if (!std::isdigit(static_cast<unsigned char>(c))) return -1;
      value = value * 10 + (c - '0');
    }
    return value;
  }
  const auto it = model.constants.find(std::string(ident));
  return it == model.constants.end() ? -1 : it->second;
}

/// Index of the header twin of `file` (src/a/x.cpp -> src/a/x.hpp), or -1.
/// Alias lookups prefer the twin before falling back to every visible
/// file: a .cpp's unqualified `Mutex` / `Guard` names its own class's
/// alias, not one from some other included header.
int header_twin(const Project& project, int file) {
  const std::string& path = project.files[file].path;
  if (!path.ends_with(".cpp")) return -1;
  return project.file_index(path.substr(0, path.size() - 4) + ".hpp");
}

/// Ranks a guard template argument `T` can name: a nested RankedMutex<R>,
/// or a mutex alias resolved in `file` first, then its header twin, then
/// every visible file.
std::vector<int> resolve_mutex_type(const Project& project,
                                    const RankWorld& world, int file,
                                    std::string_view type_text) {
  const std::size_t at = type_text.find("RankedMutex");
  if (at != npos) {
    const std::size_t open = type_text.find('<', at);
    if (open == npos) return {};
    const std::size_t close = match_bracket(type_text, open);
    if (close == npos) return {};
    const int rank = resolve_rank_arg(
        world.model, type_text.substr(open + 1, close - open - 1));
    return rank < 0 ? std::vector<int>{} : std::vector<int>{rank};
  }
  const std::string name(last_identifier(type_text));
  if (name.empty()) return {};
  const auto own = world.mutex_alias[file].find(name);
  if (own != world.mutex_alias[file].end()) return {own->second};
  if (const int twin = header_twin(project, file); twin >= 0) {
    const auto it = world.mutex_alias[twin].find(name);
    if (it != world.mutex_alias[twin].end()) return {it->second};
  }
  std::vector<int> ranks;
  for (const int other : project.visible[file]) {
    const auto it = world.mutex_alias[other].find(name);
    if (it != world.mutex_alias[other].end() &&
        std::find(ranks.begin(), ranks.end(), it->second) == ranks.end()) {
      ranks.push_back(it->second);
    }
  }
  return ranks;
}

/// True when the qualified chain starting at `qstart` is the right-hand
/// side of `using NAME = ...`; extracts NAME.
bool is_alias_rhs(std::string_view s, std::size_t qstart, std::string* name) {
  std::size_t p = skip_ws_back(s, qstart);
  // Skip cv-qualifiers between '=' and the type.
  while (true) {
    const std::size_t end = p;
    std::size_t b = end;
    while (b > 0 && is_ident_char(s[b - 1])) --b;
    if (b == end) break;
    const std::string_view word = s.substr(b, end - b);
    if (word == "const" || word == "typename") {
      p = skip_ws_back(s, b);
    } else {
      return false;  // some other identifier: not directly after '='
    }
  }
  if (p == 0 || s[p - 1] != '=') return false;
  p = skip_ws_back(s, p - 1);
  std::size_t b = p;
  while (b > 0 && is_ident_char(s[b - 1])) --b;
  if (b == p) return false;
  const std::string_view alias = s.substr(b, p - b);
  const std::size_t before = skip_ws_back(s, b);
  std::size_t u = before;
  while (u > 0 && is_ident_char(s[u - 1])) --u;
  if (s.substr(u, before - u) != "using") return false;
  *name = std::string(alias);
  return true;
}

void extract_constants(const Project& project, RankModel& model) {
  for (const ProjectFile& file : project.files) {
    const std::string_view s = file.mask;
    std::size_t pos = 0;
    while ((pos = s.find("kRank", pos)) != npos) {
      if (pos > 0 && is_ident_char(s[pos - 1])) {
        ++pos;
        continue;
      }
      std::size_t e = pos;
      while (e < s.size() && is_ident_char(s[e])) ++e;
      const std::string name(s.substr(pos, e - pos));
      std::size_t p = skip_ws(s, e);
      if (p < s.size() && s[p] == '=') {
        p = skip_ws(s, p + 1);
        int value = 0;
        bool any = false;
        while (p < s.size() && std::isdigit(static_cast<unsigned char>(s[p]))) {
          value = value * 10 + (s[p] - '0');
          ++p;
          any = true;
        }
        p = skip_ws(s, p);
        if (any && p < s.size() && s[p] == ';') {
          model.constants[name] = value;
        }
      }
      pos = e;
    }
  }
}

void extract_mutexes(const Project& project, RankWorld& world) {
  world.mutex_alias.assign(project.files.size(), {});
  for (std::size_t fi = 0; fi < project.files.size(); ++fi) {
    const ProjectFile& file = project.files[fi];
    const std::string_view s = file.mask;
    std::size_t pos = 0;
    while ((pos = s.find("RankedMutex", pos)) != npos) {
      const std::size_t e = pos + 11;
      if ((pos > 0 && is_ident_char(s[pos - 1])) ||
          (e < s.size() && is_ident_char(s[e]))) {
        pos = e;
        continue;
      }
      const std::size_t open = skip_ws(s, e);
      if (open >= s.size() || s[open] != '<') {
        pos = e;
        continue;
      }
      const std::size_t close = match_bracket(s, open);
      if (close == npos) {
        pos = e;
        continue;
      }
      const int rank = resolve_rank_arg(
          world.model, s.substr(open + 1, close - open - 1));
      if (rank < 0) {
        pos = close;
        continue;
      }
      const std::size_t qstart = qual_chain_start(s, pos);
      std::string alias;
      if (is_alias_rhs(s, qstart, &alias)) {
        world.mutex_alias[fi][alias] = rank;
        world.model.declarations.push_back(
            {static_cast<int>(fi), line_of(file.content, pos), rank});
      } else {
        const char prev =
            qstart > 0 ? s[skip_ws_back(s, qstart) - 1] : '\0';
        const std::size_t next = skip_ws(s, close + 1);
        if (prev != '<' && next < s.size() && is_ident_start(s[next])) {
          // A member / variable declaration: RankedMutex<R> name;
          world.model.declarations.push_back(
              {static_cast<int>(fi), line_of(file.content, pos), rank});
        }
      }
      pos = close;
    }
  }
}

void extract_guard_aliases(const Project& project, RankWorld& world) {
  world.guard_alias.assign(project.files.size(), {});
  for (std::size_t fi = 0; fi < project.files.size(); ++fi) {
    const ProjectFile& file = project.files[fi];
    const std::string_view s = file.mask;
    for (const char* kind : {"RankGuard", "RankLock"}) {
      std::size_t pos = 0;
      const std::size_t len = std::string_view(kind).size();
      while ((pos = s.find(kind, pos)) != npos) {
        const std::size_t e = pos + len;
        if ((pos > 0 && is_ident_char(s[pos - 1])) ||
            (e < s.size() && is_ident_char(s[e]))) {
          pos = e;
          continue;
        }
        const std::size_t open = skip_ws(s, e);
        if (open >= s.size() || s[open] != '<') {
          pos = e;
          continue;
        }
        const std::size_t close = match_bracket(s, open);
        if (close == npos) {
          pos = e;
          continue;
        }
        const std::size_t qstart = qual_chain_start(s, pos);
        std::string alias;
        if (is_alias_rhs(s, qstart, &alias)) {
          world.guard_alias[fi][alias] = resolve_mutex_type(
              project, world, static_cast<int>(fi),
              s.substr(open + 1, close - open - 1));
        }
        pos = close;
      }
    }
  }
}

void record_site(const Project& project, const RankWorld& /*world*/,
                 RankModel& model, int fi, std::size_t name_offset,
                 std::size_t after, const std::vector<int>& ranks) {
  // A site is `<guard-type> var(expr)` or `<guard-type> var{expr}` or an
  // unnamed temporary `<guard-type>(expr)`.
  const std::string_view s = project.files[fi].mask;
  std::size_t j = skip_ws(s, after);
  std::string variable;
  if (j < s.size() && is_ident_start(s[j])) {
    std::size_t k = j;
    while (k < s.size() && is_ident_char(s[k])) ++k;
    variable = std::string(s.substr(j, k - j));
    j = skip_ws(s, k);
  }
  if (j >= s.size() || (s[j] != '(' && s[j] != '{')) return;
  for (const int rank : ranks) {
    model.sites.push_back({fi, line_of(project.files[fi].content, name_offset),
                           name_offset, rank, variable});
  }
}

void extract_sites(const Project& project, RankWorld& world) {
  RankModel& model = world.model;
  for (std::size_t fi = 0; fi < project.files.size(); ++fi) {
    const ProjectFile& file = project.files[fi];
    if (file.path.starts_with("src/support/")) continue;
    const std::string_view s = file.mask;

    // Explicit RankGuard<T> / RankLock<T> constructions.
    for (const char* kind : {"RankGuard", "RankLock"}) {
      std::size_t pos = 0;
      const std::size_t len = std::string_view(kind).size();
      while ((pos = s.find(kind, pos)) != npos) {
        const std::size_t e = pos + len;
        if ((pos > 0 && is_ident_char(s[pos - 1])) ||
            (e < s.size() && is_ident_char(s[e]))) {
          pos = e;
          continue;
        }
        const std::size_t open = skip_ws(s, e);
        if (open >= s.size() || s[open] != '<') {
          pos = e;
          continue;
        }
        const std::size_t close = match_bracket(s, open);
        if (close == npos) {
          pos = e;
          continue;
        }
        const std::size_t qstart = qual_chain_start(s, pos);
        std::string alias;
        if (!is_alias_rhs(s, qstart, &alias)) {
          record_site(project, world, model, static_cast<int>(fi), pos,
                      close + 1,
                      resolve_mutex_type(project, world, static_cast<int>(fi),
                                         s.substr(open + 1, close - open - 1)));
        }
        pos = close;
      }
    }

    // Guard-alias constructions: `Guard lock(mutex_);` where Guard is a
    // RankGuard/RankLock alias defined here, in the header twin, or in a
    // visible file. Own and twin definitions shadow everything else — the
    // unioned fallback only fires for an alias visible through some other
    // header.
    std::map<std::string, std::vector<int>> effective;
    for (const int other : project.visible[fi]) {
      if (other == static_cast<int>(fi)) continue;
      for (const auto& [name, ranks] : world.guard_alias[other]) {
        auto& into = effective[name];
        for (const int rank : ranks) {
          if (std::find(into.begin(), into.end(), rank) == into.end()) {
            into.push_back(rank);
          }
        }
      }
    }
    if (const int twin = header_twin(project, static_cast<int>(fi));
        twin >= 0) {
      for (const auto& [name, ranks] : world.guard_alias[twin]) {
        effective[name] = ranks;
      }
    }
    for (const auto& [name, ranks] : world.guard_alias[fi]) {
      effective[name] = ranks;
    }
    if (effective.empty()) continue;
    std::size_t i = 0;
    while (i < s.size()) {
      if (!is_ident_start(s[i]) || (i > 0 && is_ident_char(s[i - 1]))) {
        ++i;
        continue;
      }
      std::size_t e = i;
      while (e < s.size() && is_ident_char(s[e])) ++e;
      const auto it = effective.find(std::string(s.substr(i, e - i)));
      if (it != effective.end() && !it->second.empty()) {
        record_site(project, world, model, static_cast<int>(fi), i, e,
                    it->second);
      }
      i = e;
    }
  }
}

/// AcqStar: for every function, each rank a call to it can acquire at any
/// depth, with one witness site per rank.
using AcqStarMap = std::vector<std::map<int, const RankModel::AcquisitionSite*>>;

AcqStarMap compute_acq_star(const Project& project, const RankModel& model) {
  const std::size_t n = project.functions.size();
  AcqStarMap star(n);

  // Local acquisitions.
  for (std::size_t fn = 0; fn < n; ++fn) {
    const FunctionDef& def = project.functions[fn];
    for (const auto& site : model.sites) {
      if (site.file == def.file && site.offset >= def.body_begin &&
          site.offset < def.body_end) {
        star[fn].emplace(site.rank, &site);
      }
    }
  }

  // Propagate over the call graph to fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t fn = 0; fn < n; ++fn) {
      for (const CallSite& call : project.calls[fn]) {
        for (const int callee : call.candidates) {
          for (const auto& [rank, site] : star[callee]) {
            if (star[fn].emplace(rank, site).second) changed = true;
          }
        }
      }
    }
  }
  return star;
}

void walk_function(Project& project, const RankModel& model,
                   const AcqStarMap& star, std::size_t fn,
                   std::set<std::tuple<std::string, int, std::string>>& seen,
                   std::vector<Finding>& findings) {
  const FunctionDef& def = project.functions[fn];
  ProjectFile& file = project.files[def.file];
  if (file.path.starts_with("src/support/")) return;
  const std::string_view s = file.mask;

  std::map<std::size_t, std::vector<const RankModel::AcquisitionSite*>>
      sites_at;
  for (const auto& site : model.sites) {
    if (site.file == def.file && site.offset >= def.body_begin &&
        site.offset < def.body_end) {
      sites_at[site.offset].push_back(&site);
    }
  }
  std::map<std::size_t, const CallSite*> calls_at;
  for (const CallSite& call : project.calls[fn]) {
    if (!call.candidates.empty()) calls_at.emplace(call.offset, &call);
  }
  if (sites_at.empty()) return;  // nothing can be held in this function

  const auto site_name = [&](const RankModel::AcquisitionSite& site) {
    return project.files[site.file].path + ":" + std::to_string(site.line);
  };
  const auto emit = [&](int line, std::string message) {
    if (!seen.insert({file.path, line, message}).second) return;
    if (file.allows.allows("lock-rank-static", line)) return;
    findings.push_back(
        Finding{file.path, line, "lock-rank-static", std::move(message)});
  };

  struct Held {
    int rank = 0;
    const RankModel::AcquisitionSite* site = nullptr;
    int depth = 0;
  };
  std::vector<Held> held;
  int depth = 0;
  for (std::size_t i = def.body_begin; i < def.body_end; ++i) {
    const char c = s[i];
    if (c == '{') {
      ++depth;
      continue;
    }
    if (c == '}') {
      --depth;
      std::erase_if(held, [&](const Held& h) { return h.depth > depth; });
      continue;
    }

    const auto max_held = [&]() -> const Held* {
      const Held* top = nullptr;
      for (const Held& h : held) {
        if (!top || h.rank > top->rank) top = &h;
      }
      return top;
    };

    if (const auto at = sites_at.find(i); at != sites_at.end()) {
      for (const RankModel::AcquisitionSite* site : at->second) {
        if (const Held* top = max_held(); top && site->rank <= top->rank) {
          emit(site->line,
               "acquiring rank " + std::to_string(site->rank) + " at " +
                   site_name(*site) + " while rank " +
                   std::to_string(top->rank) + " is held (acquired at " +
                   site_name(*top->site) +
                   "); lock ranks must strictly increase");
        }
        held.push_back({site->rank, site, depth});
      }
      continue;
    }

    if (const auto at = calls_at.find(i); at != calls_at.end()) {
      const Held* top = max_held();
      if (top) {
        const CallSite& call = *at->second;
        std::set<int> reported;
        for (const int callee : call.candidates) {
          for (const auto& [rank, site] : star[callee]) {
            if (rank <= top->rank && reported.insert(rank).second) {
              emit(call.line,
                   "call to " + call.name + "() may acquire rank " +
                       std::to_string(rank) + " (at " + site_name(*site) +
                       ") while rank " + std::to_string(top->rank) +
                       " is held (acquired at " + site_name(*top->site) +
                       "); lock ranks must strictly increase");
            }
          }
        }
      }
    }

    // `var.unlock()` releases a held guard before scope exit; `var.lock()`
    // re-acquires it (RankLock's manual interface).
    if (is_ident_start(c) && !(i > 0 && is_ident_char(s[i - 1]))) {
      std::size_t e = i;
      while (e < s.size() && is_ident_char(s[e])) ++e;
      const std::string_view word = s.substr(i, e - i);
      if (word == "unlock") {
        const std::size_t dot = skip_ws_back(s, i);
        if (dot > 0 && s[dot - 1] == '.') {
          std::size_t b = skip_ws_back(s, dot - 1);
          const std::size_t end = b;
          while (b > 0 && is_ident_char(s[b - 1])) --b;
          const std::string_view var = s.substr(b, end - b);
          for (std::size_t h = held.size(); h-- > 0;) {
            if (held[h].site->variable == var) {
              held.erase(held.begin() + static_cast<std::ptrdiff_t>(h));
              break;
            }
          }
        }
      }
      i = e - 1;
    }
  }
}

}  // namespace

std::vector<int> RankModel::rank_order() const {
  std::vector<int> order;
  for (const MutexDecl& decl : declarations) {
    if (std::find(order.begin(), order.end(), decl.rank) == order.end()) {
      order.push_back(decl.rank);
    }
  }
  std::sort(order.begin(), order.end());
  return order;
}

RankModel extract_rank_model(const Project& project) {
  RankWorld world;
  extract_constants(project, world.model);
  extract_mutexes(project, world);
  extract_guard_aliases(project, world);
  extract_sites(project, world);
  return std::move(world.model);
}

void run_lock_rank_pass(Project& project, std::vector<Finding>& findings) {
  const RankModel model = extract_rank_model(project);
  if (model.sites.empty()) return;
  const AcqStarMap star = compute_acq_star(project, model);
  std::set<std::tuple<std::string, int, std::string>> seen;
  for (std::size_t fn = 0; fn < project.functions.size(); ++fn) {
    walk_function(project, model, star, fn, seen, findings);
  }
}

}  // namespace wfe::lint
