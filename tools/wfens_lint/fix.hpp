// Mechanical fixes for the two findings with exactly one right answer.
//
//   pragma-once      insert `#pragma once` after a header's leading //
//                    comment block (the file doc comment), before the
//                    first code line;
//   include-parent   rewrite `#include "../x/y.hpp"` to the src/-rooted
//                    spelling by resolving the target against the
//                    including file's directory and stripping the
//                    src/ or tools/ prefix.
//
// Fixes are idempotent: running --fix on an already-fixed tree rewrites
// nothing. Rewrites use the code mask, so directives inside comments,
// strings or raw strings are never touched.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>

namespace wfe::lint {

/// One file's fix outcome.
struct FixResult {
  std::string content;  ///< fixed text (== input when edits == 0)
  int edits = 0;        ///< individual rewrites applied
};

/// Apply both fixes to one source text. `relative_path` scopes them the
/// same way lint_source() scopes the rules.
FixResult fix_source(std::string_view relative_path, std::string_view content);

/// Fix every *.hpp / *.cpp under repo_root/src and repo_root/tools in
/// place, writing only changed files. Returns the number of files
/// rewritten; throws std::runtime_error on unreadable files.
int fix_tree(const std::filesystem::path& repo_root);

}  // namespace wfe::lint
