// Layering-manifest conformance: the module DAG is an explicit, committed
// contract, not an emergent property.
//
// tools/wfens_lint/layers.conf declares the project's modules in layer
// order (low to high) and the allowed cross-module #include edges:
//
//   # comment
//   module support
//   module platform
//   ...
//   edge obs -> support
//   edge sched -> runtime
//
// The pass maps every project file to its module (src/<m>/... -> m,
// tools/... -> tools) and checks, in both directions:
//
//   layer-manifest        the manifest is missing, does not parse, declares
//                         a module twice, names an undeclared module in an
//                         edge, declares an edge twice, or declares an edge
//                         that points upward in its own module order (the
//                         declaration order IS the layering).
//   layer-unknown-module  a file maps to a module the manifest does not
//                         declare.
//   layer-undeclared-edge an #include crosses modules on an edge the
//                         manifest does not allow (reported at the
//                         #include line).
//   layer-stale-edge      a declared edge no #include uses (reported at
//                         the manifest line) — the manifest never drifts
//                         ahead of the tree.
//   layer-cycle           the observed module graph has a cycle (the
//                         manifest's order check makes this unreachable
//                         for declared edges; it catches cycles running
//                         through undeclared ones).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "wfens_lint/lint.hpp"
#include "wfens_lint/project.hpp"

namespace wfe::lint {

/// Parsed layers.conf.
struct LayerManifest {
  struct Edge {
    std::string from, to;
    int line = 0;
  };
  std::vector<std::string> modules;  ///< declaration order = layer order
  std::vector<Edge> edges;

  /// Position of `module` in the declared order, or -1.
  int layer_of(std::string_view module) const;
};

/// Parse manifest text; syntax and consistency problems become
/// layer-manifest findings against `manifest_path`.
LayerManifest parse_layer_manifest(std::string_view text,
                                   const std::string& manifest_path,
                                   std::vector<Finding>& findings);

/// Run the layering pass over the project, appending findings.
void run_layering_pass(Project& project, std::vector<Finding>& findings);

}  // namespace wfe::lint
