// Determinism taint audit: the banned-ident rules, made transitive.
//
// The per-file rules catch a function that calls rand() / time() /
// system_clock / random_device directly. They cannot catch the laundered
// version: a helper that wraps the banned call and a src/ function that
// innocently calls the helper. This pass closes that hole over the
// conservative call graph:
//
//   * sources    every function body whose mask contains a direct banned
//                use (same token heuristics as the banned-ident rule),
//                anywhere in the project — src/, src/support/ and tools/
//                all propagate;
//   * fixpoint   a function is tainted when any candidate of any of its
//                calls is tainted; each tainted function keeps one witness
//                (the ultimate direct-use site, through which call);
//   * findings  `determinism-taint`, for src/ functions outside
//                src/support/ that are tainted only transitively (direct
//                uses stay the banned-ident rule's report), anchored at the
//                first call that imports the taint. src/support/ is exempt
//                as the designated home of the clock/rng wrappers;
//                `// wfens-lint: allow(determinism-taint)` on the call line
//                documents a justified exception.
#pragma once

#include <vector>

#include "wfens_lint/lint.hpp"
#include "wfens_lint/project.hpp"

namespace wfe::lint {

/// Run the transitive determinism audit, appending determinism-taint
/// findings.
void run_taint_pass(Project& project, std::vector<Finding>& findings);

}  // namespace wfe::lint
