#include "wfens_lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "wfens_lint/project.hpp"

namespace wfe::lint {

namespace detail {

namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

}  // namespace

namespace {

/// Length of the raw-string prefix ending just before the quote at `i`:
/// `R`, `u8R`, `uR`, `UR` or `LR` preceded by a non-identifier character.
/// 0 when the quote does not open a raw string.
std::size_t raw_prefix_len(std::string_view s, std::size_t i) {
  if (i == 0 || s[i - 1] != 'R') return 0;
  std::size_t p = i - 1;  // the 'R'
  if (p >= 2 && s[p - 2] == 'u' && s[p - 1] == '8') {
    p -= 2;
  } else if (p >= 1 && (s[p - 1] == 'u' || s[p - 1] == 'U' || s[p - 1] == 'L')) {
    p -= 1;
  }
  if (p > 0 && is_ident_char(s[p - 1])) return 0;
  return i - p;
}

}  // namespace

std::string code_mask(std::string_view content) {
  std::string mask(content);
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string raw_delim;  // the )delim" terminator of the active raw string
  std::size_t i = 0;
  const std::size_t n = content.size();
  const auto blank = [&](std::size_t at) {
    if (mask[at] != '\n') mask[at] = ' ';
  };
  while (i < n) {
    const char c = content[i];
    switch (state) {
      case State::kCode:
        if (c == '/' && i + 1 < n && content[i + 1] == '/') {
          state = State::kLineComment;
          blank(i);
          blank(i + 1);
          i += 2;
        } else if (c == '/' && i + 1 < n && content[i + 1] == '*') {
          state = State::kBlockComment;
          blank(i);
          blank(i + 1);
          i += 2;
        } else if (c == '"' && raw_prefix_len(content, i) > 0) {
          // R"delim( ... )delim"
          std::size_t p = i + 1;
          while (p < n && content[p] != '(') ++p;
          raw_delim = ")";
          raw_delim.append(content.substr(i + 1, p - (i + 1)));
          raw_delim += '"';
          for (std::size_t k = i; k < std::min(p + 1, n); ++k) blank(k);
          i = p + 1;
          state = State::kRawString;
        } else if (c == '"') {
          blank(i);
          ++i;
          state = State::kString;
        } else if (c == '\'' && !(i > 0 && is_ident_char(content[i - 1]))) {
          // Exclude digit separators (1'000'000): a quote glued to an
          // identifier/number char is not a char literal opener.
          blank(i);
          ++i;
          state = State::kChar;
        } else {
          ++i;
        }
        break;
      case State::kLineComment:
        if (c == '\\' && i + 1 < n &&
            (content[i + 1] == '\n' ||
             (content[i + 1] == '\r' && i + 2 < n && content[i + 2] == '\n'))) {
          // A line continuation extends the // comment onto the next
          // physical line (the preprocessor splices before tokenizing).
          // Blank the backslash (and a CR), step past the newline, and
          // stay in the comment.
          blank(i);
          blank(i + 1);
          i += content[i + 1] == '\r' ? 3 : 2;
        } else if (c == '\n') {
          state = State::kCode;
          ++i;
        } else {
          blank(i);
          ++i;
        }
        break;
      case State::kBlockComment:
        if (c == '*' && i + 1 < n && content[i + 1] == '/') {
          blank(i);
          blank(i + 1);
          i += 2;
          state = State::kCode;
        } else {
          blank(i);
          ++i;
        }
        break;
      case State::kString:
      case State::kChar: {
        const char close = state == State::kString ? '"' : '\'';
        if (c == '\\' && i + 1 < n) {
          blank(i);
          blank(i + 1);
          i += 2;
        } else {
          blank(i);
          ++i;
          if (c == close) state = State::kCode;
        }
        break;
      }
      case State::kRawString:
        if (content.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t k = 0; k < raw_delim.size(); ++k) blank(i + k);
          i += raw_delim.size();
          state = State::kCode;
        } else {
          blank(i);
          ++i;
        }
        break;
    }
  }
  return mask;
}

bool AllowMap::allows(std::string_view rule, int line) {
  bool hit = false;
  for (Entry& e : entries) {
    if (e.line == line && e.rule == rule) {
      e.used = true;
      hit = true;
    }
  }
  return hit;
}

AllowMap collect_allows(std::string_view content) {
  AllowMap out;
  static constexpr std::string_view kMarker = "wfens-lint: allow(";
  int line = 1;
  std::size_t line_start = 0;
  for (std::size_t i = 0; i <= content.size(); ++i) {
    if (i == content.size() || content[i] == '\n') {
      const std::string_view text =
          content.substr(line_start, i - line_start);
      const std::size_t at = text.find(kMarker);
      if (at != std::string_view::npos) {
        const std::size_t open = at + kMarker.size();
        const std::size_t close = text.find(')', open);
        // The annotation must end its line: trailing text means the marker
        // is being *mentioned* (a doc comment quoting the syntax), not
        // written as an annotation.
        const bool terminal =
            close != std::string_view::npos &&
            text.find_first_not_of(" \t\r", close + 1) ==
                std::string_view::npos;
        if (terminal) {
          // The annotation covers its own line; when the comment stands
          // alone (only whitespace and the comment opener before it), it
          // covers the next line too.
          const std::string_view before = text.substr(0, text.find("//"));
          const bool standalone = before.find_first_not_of(" \t") ==
                                  std::string_view::npos;
          std::string rules(text.substr(open, close - open));
          std::stringstream ss(rules);
          std::string rule;
          while (std::getline(ss, rule, ',')) {
            const std::size_t b = rule.find_first_not_of(" \t");
            const std::size_t e = rule.find_last_not_of(" \t");
            if (b == std::string::npos) continue;
            rule = rule.substr(b, e - b + 1);
            out.entries.push_back({rule, line, line, false});
            if (standalone) out.entries.push_back({rule, line + 1, line, false});
          }
        }
      }
      line_start = i + 1;
      ++line;
    }
  }
  return out;
}

}  // namespace detail

namespace {

using detail::is_ident_char;
using detail::is_ident_start;

/// First non-space character at or after `i`, or '\0'.
char next_nonspace(std::string_view s, std::size_t i) {
  while (i < s.size()) {
    if (s[i] != ' ' && s[i] != '\t' && s[i] != '\n') return s[i];
    ++i;
  }
  return '\0';
}

/// Last non-space character before `i`, or '\0'.
char prev_nonspace(std::string_view s, std::size_t i) {
  while (i > 0) {
    --i;
    if (s[i] != ' ' && s[i] != '\t' && s[i] != '\n') return s[i];
  }
  return '\0';
}

/// True when the identifier ending just before `i` (skipping whitespace
/// and a `::`) is `qualifier` — i.e. the token at `i` is written
/// `qualifier::token`.
bool qualified_by(std::string_view s, std::size_t i,
                  std::string_view qualifier) {
  std::size_t p = i;
  while (p > 0 && (s[p - 1] == ' ' || s[p - 1] == '\t' || s[p - 1] == '\n'))
    --p;
  if (p < 2 || s[p - 1] != ':' || s[p - 2] != ':') return false;
  p -= 2;
  while (p > 0 && (s[p - 1] == ' ' || s[p - 1] == '\t' || s[p - 1] == '\n'))
    --p;
  const std::size_t end = p;
  while (p > 0 && is_ident_char(s[p - 1])) --p;
  return s.substr(p, end - p) == qualifier;
}

/// True when the mask position `i` sits on a preprocessor #include line.
bool on_include_line(std::string_view mask, std::size_t i) {
  std::size_t b = i;
  while (b > 0 && mask[b - 1] != '\n') --b;
  std::size_t p = b;
  while (p < mask.size() && (mask[p] == ' ' || mask[p] == '\t')) ++p;
  return mask.compare(p, 8, "#include") == 0;
}

struct RuleContext {
  std::string_view path;
  std::string_view content;
  std::string_view mask;
  FileClass cls;
  detail::AllowMap* allows = nullptr;
  std::vector<Finding>* out = nullptr;

  void report(int line, std::string rule, std::string message) const {
    if (allows->allows(rule, line)) return;
    out->push_back(Finding{std::string(path), line, std::move(rule),
                           std::move(message)});
  }
};

void scan_identifiers(const RuleContext& ctx) {
  const std::string_view s = ctx.mask;
  std::size_t i = 0;
  int line = 1;
  while (i < s.size()) {
    if (s[i] == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (!is_ident_start(s[i]) || (i > 0 && is_ident_char(s[i - 1]))) {
      ++i;
      continue;
    }
    std::size_t e = i;
    while (e < s.size() && is_ident_char(s[e])) ++e;
    const std::string_view ident = s.substr(i, e - i);

    if ((ident == "rand" || ident == "srand") && next_nonspace(s, e) == '(') {
      ctx.report(line, "banned-ident",
                 std::string(ident) +
                     "() is nondeterministic; draw from support/rng instead");
    } else if (ident == "random_device") {
      ctx.report(line, "banned-ident",
                 "std::random_device is nondeterministic; seed from the "
                 "spec, not the host");
    } else if (ident == "system_clock" && !ctx.cls.in_support) {
      ctx.report(line, "banned-ident",
                 "system_clock is wall time; deterministic code uses "
                 "virtual time or steady_clock via support/");
    } else if (ident == "time" && next_nonspace(s, e) == '(') {
      const char prev = prev_nonspace(s, i);
      const bool member = prev == '.' || prev == '>';  // obj.time / ptr->time
      if (!member) {
        ctx.report(line, "banned-ident",
                   "time() reads the wall clock; deterministic code uses "
                   "virtual time");
      }
    } else if (ident == "function" && ctx.cls.in_simengine &&
               qualified_by(s, i, "std")) {
      ctx.report(line, "simengine-std-function",
                 "std::function heap-allocates per callback; the event core "
                 "uses SmallFn");
    } else if ((ident == "priority_queue" || ident == "push_heap" ||
                ident == "pop_heap" || ident == "make_heap" ||
                ident == "sort_heap") &&
               !ctx.cls.in_simengine && !on_include_line(s, i)) {
      ctx.report(line, "event-queue-outside-simengine",
                 std::string(ident) +
                     ": ad-hoc event queues fragment the schedule semantics "
                     "(seq tie-break, cancellation); schedule through "
                     "sim::Engine instead");
    } else if ((ident == "mutex" || ident == "recursive_mutex" ||
                ident == "timed_mutex" || ident == "recursive_timed_mutex" ||
                ident == "shared_mutex" || ident == "shared_timed_mutex" ||
                ident == "condition_variable" ||
                ident == "condition_variable_any") &&
               ctx.cls.in_src && !ctx.cls.in_support &&
               qualified_by(s, i, "std") && !on_include_line(s, i)) {
      ctx.report(line, "raw-mutex",
                 "std::" + std::string(ident) +
                     " bypasses the lock-rank checker; use RankedMutex / "
                     "RankCv from support/lock_rank.hpp");
    } else if ((ident == "unordered_map" || ident == "unordered_set") &&
               ctx.cls.exporter && !on_include_line(s, i)) {
      ctx.report(line, "unordered-iter",
                 std::string(ident) +
                     " in an exporter TU: hash-order iteration leaks into "
                     "golden traces (use std::map / a vector, or annotate a "
                     "lookup-only use)");
    } else if (ident == "LpLane" && !ctx.cls.in_simengine &&
               !on_include_line(s, i)) {
      // LpLane is the raw per-lane partition state (calendar queue,
      // execution log, schedule log). Its invariants — logs appended only
      // under the owning lane's window, merged only after run() — live in
      // sim::ParallelEngine; code elsewhere touching a lane directly can
      // break bit-identical replay without tripping any engine check.
      ctx.report(line, "lp-state-outside-simengine",
                 "LpLane is LP-partition internal state; outside "
                 "src/simengine/ drive the partition through "
                 "sim::ParallelEngine (schedule_root / run / replay)");
    } else if ((ident == "ArmStats" || ident == "exploration_log") &&
               !ctx.cls.in_sched && !on_include_line(s, i)) {
      // ArmStats (and the exploration schedule that interprets it) is the
      // best-arm search's confidence-bound bookkeeping. Its soundness
      // depends on a feeding discipline the types cannot express — samples
      // folded in seed order on one thread, bounds read only against the
      // matching exploration log — so code outside src/sched/ consuming it
      // directly can silently break the elimination guarantee. Ask the
      // scheduler ("bai-search") for a plan instead.
      ctx.report(line, "arm-state-outside-sched",
                 std::string(ident) +
                     " is best-arm search internal state; outside "
                     "src/sched/ plan through make_scheduler(\"bai-search\") "
                     "instead of sampling arms directly");
    } else if (ident == "StageRecord" && ctx.cls.in_src &&
               !ctx.cls.in_runtime && !ctx.cls.in_metrics &&
               !on_include_line(s, i)) {
      // Only constructions and declarations: `StageRecord{...}` or
      // `StageRecord name`. References, pointers and template arguments
      // (const StageRecord&, vector<StageRecord>) read existing records
      // and stay legal everywhere.
      const char next = next_nonspace(s, e);
      if (next == '{' || is_ident_start(next)) {
        ctx.report(line, "stage-record-outside-runtime",
                   "per-event StageRecord construction outside src/runtime/ "
                   "and src/metrics/ reintroduces the AoS hot path; record "
                   "stages through met::StageColumns instead");
      }
    }
    i = e;
  }
}

void scan_lines(const RuleContext& ctx) {
  const std::string_view s = ctx.mask;
  bool saw_pragma_once = false;
  int line = 1;
  std::size_t b = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i != s.size() && s[i] != '\n') continue;
    const std::string_view text = s.substr(b, i - b);
    std::size_t p = text.find_first_not_of(" \t");
    if (p != std::string_view::npos && text[p] == '#') {
      const std::string_view directive = text.substr(p);
      if (directive.find("pragma") != std::string_view::npos &&
          directive.find("once") != std::string_view::npos) {
        saw_pragma_once = true;
      }
      const std::size_t inc = directive.find("include");
      if (inc != std::string_view::npos) {
        // The include target survives in the ORIGINAL content (the mask
        // blanks quoted strings), so slice the same line from content.
        const std::string_view orig = ctx.content.substr(b, i - b);
        const std::size_t q = orig.find('"');
        if (q != std::string_view::npos &&
            orig.compare(q, 4, "\"../") == 0) {
          ctx.report(line, "include-parent",
                     "parent-relative include; include project headers by "
                     "their src/-rooted path");
        }
        if (ctx.cls.header &&
            orig.find("<iostream>") != std::string_view::npos) {
          ctx.report(line, "iostream-in-header",
                     "<iostream> in a header drags global stream "
                     "initializers into every TU; include it in the .cpp");
        }
      }
    }
    b = i + 1;
    ++line;
  }
  if (ctx.cls.header && !saw_pragma_once) {
    ctx.report(1, "pragma-once", "header is missing #pragma once");
  }
}

}  // namespace

FileClass classify_path(std::string_view relative_path) {
  FileClass cls;
  std::string p(relative_path);
  std::replace(p.begin(), p.end(), '\\', '/');
  cls.header = p.ends_with(".hpp");
  cls.in_src = p.starts_with("src/");
  cls.in_support = p.starts_with("src/support/");
  cls.in_simengine = p.starts_with("src/simengine/");
  cls.in_runtime = p.starts_with("src/runtime/");
  cls.in_metrics = p.starts_with("src/metrics/");
  cls.in_sched = p.starts_with("src/sched/");
  cls.exporter = p.starts_with("src/obs/") ||
                 p.starts_with("src/metrics/trace_io.");
  return cls;
}

namespace detail {

std::vector<Finding> run_file_rules(std::string_view relative_path,
                                    std::string_view content,
                                    std::string_view mask, AllowMap& allows) {
  std::vector<Finding> out;
  const RuleContext ctx{relative_path, content,          mask,
                        classify_path(relative_path), &allows, &out};
  scan_identifiers(ctx);
  scan_lines(ctx);
  std::stable_sort(out.begin(), out.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
  return out;
}

}  // namespace detail

std::vector<Finding> lint_source(std::string_view relative_path,
                                 std::string_view content) {
  const std::string mask = detail::code_mask(content);
  detail::AllowMap allows = detail::collect_allows(content);
  return detail::run_file_rules(relative_path, content, mask, allows);
}

std::vector<Finding> lint_tree(const std::filesystem::path& repo_root) {
  // The whole-project analyzer (project.cpp) runs the single-file rules on
  // every file plus the cross-file passes; lint_tree is the canonical
  // entry the lint.tree ctest and the CLI share.
  Project project = load_project(repo_root);
  return analyze_project(project);
}

std::string findings_to_json(const std::vector<Finding>& findings) {
  const auto escape = [](std::string_view s) {
    std::string out;
    for (const char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out += c;
      }
    }
    return out;
  };
  std::string out = "[";
  bool first = true;
  for (const Finding& f : findings) {
    if (!first) out += ",";
    first = false;
    out += "\n  {\"file\":\"" + escape(f.file) +
           "\",\"line\":" + std::to_string(f.line) + ",\"rule\":\"" +
           escape(f.rule) + "\",\"message\":\"" + escape(f.message) + "\"}";
  }
  out += first ? "]\n" : "\n]\n";
  return out;
}

std::string findings_to_sarif(const std::vector<Finding>& findings) {
  const auto escape = [](std::string_view s) {
    std::string out;
    for (const char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (c == '\n') {
        out += "\\n";
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", c);
        out += buf;
      } else {
        out += c;
      }
    }
    return out;
  };

  // One reportingDescriptor per distinct rule, in first-seen order, so the
  // results' ruleIds all resolve.
  std::vector<std::string> rules;
  for (const Finding& f : findings) {
    if (std::find(rules.begin(), rules.end(), f.rule) == rules.end()) {
      rules.push_back(f.rule);
    }
  }

  std::string out;
  out +=
      "{\n"
      "  \"$schema\": "
      "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [{\n"
      "    \"tool\": {\"driver\": {\"name\": \"wfens_lint\","
      " \"rules\": [";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (i) out += ", ";
    out += "{\"id\": \"" + escape(rules[i]) + "\"}";
  }
  out += "]}},\n    \"results\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i) out += ",";
    out += "\n      {\"ruleId\": \"" + escape(f.rule) +
           "\", \"level\": \"error\", \"message\": {\"text\": \"" +
           escape(f.message) +
           "\"}, \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \"" +
           escape(f.file) +
           "\"}, \"region\": {\"startLine\": " + std::to_string(f.line) +
           "}}}]}";
  }
  out += findings.empty() ? "]\n" : "\n    ]\n";
  out += "  }]\n}\n";
  return out;
}

}  // namespace wfe::lint
