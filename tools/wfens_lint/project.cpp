#include "wfens_lint/project.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "wfens_lint/layers.hpp"
#include "wfens_lint/ranks.hpp"
#include "wfens_lint/taint.hpp"

namespace wfe::lint {

namespace detail {

namespace {

constexpr std::size_t npos = std::string_view::npos;

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::size_t skip_ws(std::string_view s, std::size_t i) {
  while (i < s.size() &&
         (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r')) {
    ++i;
  }
  return i;
}

/// Member-init list after the ':' of a constructor definition: a
/// comma-separated run of `name(...)` / `name{...}` initializers (names
/// possibly qualified or templated, packs allowed), then the body '{'.
std::size_t init_list_body(std::string_view s, std::size_t i) {
  const std::size_t n = s.size();
  while (true) {
    i = skip_ws(s, i);
    if (i >= n || !is_ident_start(s[i])) return npos;
    while (i < n) {
      if (is_ident_char(s[i])) {
        ++i;
      } else if (s[i] == ':' && i + 1 < n && s[i + 1] == ':') {
        i += 2;
      } else if (s[i] == '<') {
        const std::size_t m = match_bracket(s, i);
        if (m == npos) return npos;
        i = m + 1;
      } else {
        break;
      }
    }
    i = skip_ws(s, i);
    if (i >= n || (s[i] != '(' && s[i] != '{')) return npos;
    const std::size_t m = match_bracket(s, i);
    if (m == npos) return npos;
    i = skip_ws(s, m + 1);
    if (i + 3 <= n && s.compare(i, 3, "...") == 0) i = skip_ws(s, i + 3);
    if (i < n && s[i] == ',') {
      ++i;
      continue;
    }
    if (i < n && s[i] == '{') return i;
    return npos;
  }
}

}  // namespace

std::size_t match_bracket(std::string_view mask, std::size_t open) {
  const char o = mask[open];
  const char c = o == '(' ? ')' : o == '[' ? ']' : o == '{' ? '}' : '>';
  int depth = 0;
  for (std::size_t i = open; i < mask.size(); ++i) {
    if (mask[i] == o) {
      ++depth;
    } else if (mask[i] == c) {
      if (--depth == 0) return i;
    }
  }
  return npos;
}

std::size_t find_body_brace(std::string_view mask, std::size_t close_paren) {
  const std::string_view s = mask;
  const std::size_t n = s.size();
  std::size_t i = close_paren + 1;
  while (i < n) {
    i = skip_ws(s, i);
    if (i >= n) return npos;
    const char c = s[i];
    if (c == '{') return i;
    if (c == '(' || c == '[') {
      // noexcept(...), a second parameter list (operator()), [[attr]].
      const std::size_t m = match_bracket(s, i);
      if (m == npos) return npos;
      i = m + 1;
      continue;
    }
    if (c == '-' && i + 1 < n && s[i + 1] == '>') {
      i += 2;  // trailing return type; its tokens fall through below
      continue;
    }
    if (c == ':') {
      if (i + 1 < n && s[i + 1] == ':') {
        i += 2;  // qualifier inside a trailing return type
        continue;
      }
      return init_list_body(s, i + 1);
    }
    if (c == '<' || c == '>' || c == '*' || c == '&') {
      ++i;  // template args / pointers / refs in a trailing return type
      continue;
    }
    if (is_ident_start(c)) {
      // const / noexcept / override / final / mutable / try / requires,
      // or trailing-return-type tokens.
      while (i < n && is_ident_char(s[i])) ++i;
      continue;
    }
    return npos;  // ';' declaration, '=' default/delete/init, ',' ...
  }
  return npos;
}

}  // namespace detail

namespace {

using detail::is_ident_char;
using detail::is_ident_start;
using detail::match_bracket;
constexpr std::size_t npos = std::string_view::npos;

/// Identifiers that introduce control flow or otherwise look like
/// `name (...)` without ever being a project function definition or call.
bool is_skipped_keyword(std::string_view ident) {
  static const std::set<std::string_view> kSkip = {
      "if",          "for",        "while",     "switch",      "catch",
      "return",      "sizeof",     "alignof",   "alignas",     "decltype",
      "noexcept",    "static_assert", "assert", "throw",       "new",
      "delete",      "co_await",   "co_return", "co_yield",    "requires",
      "defined",     "else",       "do",        "case",        "default",
      "using",       "typedef",    "namespace", "template",    "typename",
      "constexpr",   "consteval",  "constinit", "explicit",    "inline",
      "static",      "virtual",    "operator",  "this",
  };
  return kSkip.count(ident) != 0;
}

/// Method names shared with the std containers / string / optional /
/// atomic / stream families. A member-syntax call (`x.size()`, `p->find()`)
/// with one of these names is overwhelmingly a std call that happens to
/// collide with a project function of the same name; resolving it through
/// the identifier-level graph would wire e.g. every `vec.size()` to any
/// project `size()` that takes a lock. Such calls are dropped from the
/// call graph — the runtime lock-rank checker stays the backstop for the
/// rare project-member call this hides.
bool is_std_member_name(std::string_view ident) {
  static const std::set<std::string_view> kNames = {
      "size",        "empty",       "clear",       "erase",
      "contains",    "count",       "find",        "begin",
      "end",         "cbegin",      "cend",        "rbegin",
      "rend",        "front",       "back",        "at",
      "data",        "push_back",   "pop_back",    "push_front",
      "pop_front",   "insert",      "emplace",     "emplace_back",
      "reserve",     "resize",      "assign",      "append",
      "substr",      "c_str",       "str",         "length",
      "capacity",    "compare",     "starts_with", "ends_with",
      "lower_bound", "upper_bound", "equal_range", "swap",
      "get",         "reset",       "release",     "load",
      "store",       "exchange",    "value",       "value_or",
      "has_value",   "lock",        "unlock",      "try_lock",
      "wait",        "wait_for",    "wait_until",  "notify_one",
      "notify_all",  "tellg",       "seekg",       "read",
      "write",       "flush",       "open",        "close",
      "good",        "fail",        "is_open",     "rdbuf",
      "string",      "native",      "extension",   "filename",
      "stem",        "time_since_epoch",
  };
  return kNames.count(ident) != 0;
}

/// True when the identifier at `i` is called with member syntax:
/// `recv.name(...)` or `recv->name(...)`.
bool is_member_call(std::string_view s, std::size_t i) {
  std::size_t p = i;
  while (p > 0 && (s[p - 1] == ' ' || s[p - 1] == '\t' || s[p - 1] == '\n'))
    --p;
  if (p == 0) return false;
  if (s[p - 1] == '.') return true;
  return s[p - 1] == '>' && p >= 2 && s[p - 2] == '-';
}

/// The root of the qualified-name chain ending just before the identifier
/// at `i` — for `std::chrono::duration_cast` called at `duration_cast`,
/// returns "std". Empty when the identifier is unqualified.
std::string_view qualified_root(std::string_view s, std::size_t i) {
  std::string_view root;
  std::size_t p = i;
  while (true) {
    while (p > 0 && (s[p - 1] == ' ' || s[p - 1] == '\t' || s[p - 1] == '\n'))
      --p;
    if (p < 2 || s[p - 1] != ':' || s[p - 2] != ':') break;
    p -= 2;
    while (p > 0 && (s[p - 1] == ' ' || s[p - 1] == '\t' || s[p - 1] == '\n'))
      --p;
    const std::size_t end = p;
    while (p > 0 && is_ident_char(s[p - 1])) --p;
    if (end == p) break;  // global-qualified ::name
    root = s.substr(p, end - p);
  }
  return root;
}

/// 1-based line of `offset` given the file's sorted line-start offsets.
int line_of(const std::vector<std::size_t>& line_starts, std::size_t offset) {
  const auto it =
      std::upper_bound(line_starts.begin(), line_starts.end(), offset);
  return static_cast<int>(it - line_starts.begin());
}

std::vector<std::size_t> compute_line_starts(std::string_view content) {
  std::vector<std::size_t> starts{0};
  for (std::size_t i = 0; i < content.size(); ++i) {
    if (content[i] == '\n') starts.push_back(i + 1);
  }
  return starts;
}

/// Normalize "a/b/../c" -> "a/c" (lexically; no filesystem access).
std::string normalize_path(std::string_view path) {
  std::vector<std::string_view> parts;
  std::size_t b = 0;
  for (std::size_t i = 0; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/') {
      const std::string_view part = path.substr(b, i - b);
      if (part == ".." && !parts.empty() && parts.back() != "..") {
        parts.pop_back();
      } else if (!part.empty() && part != ".") {
        parts.push_back(part);
      }
      b = i + 1;
    }
  }
  std::string out;
  for (const std::string_view part : parts) {
    if (!out.empty()) out += '/';
    out.append(part);
  }
  return out;
}

void scan_includes(ProjectFile& file,
                   const std::vector<std::size_t>& line_starts) {
  const std::string_view mask = file.mask;
  const std::string_view content = file.content;
  std::size_t pos = 0;
  while ((pos = mask.find("#include", pos)) != npos) {
    // Must be the first token on its line (allowing indentation).
    std::size_t b = pos;
    while (b > 0 && mask[b - 1] != '\n') --b;
    const std::size_t first = mask.find_first_not_of(" \t", b);
    if (first != pos) {
      pos += 8;
      continue;
    }
    std::size_t line_end = content.find('\n', pos);
    if (line_end == npos) line_end = content.size();
    // The target survives only in the original content (the mask blanks
    // quoted strings).
    const std::string_view line = content.substr(pos, line_end - pos);
    const std::size_t q1 = line.find('"');
    if (q1 != npos) {
      const std::size_t q2 = line.find('"', q1 + 1);
      if (q2 != npos) {
        IncludeEdge edge;
        edge.line = line_of(line_starts, pos);
        edge.target = std::string(line.substr(q1 + 1, q2 - q1 - 1));
        file.includes.push_back(std::move(edge));
      }
    }
    pos = line_end;
  }
}

void resolve_includes(Project& project) {
  std::map<std::string, int, std::less<>> by_path;
  for (std::size_t i = 0; i < project.files.size(); ++i) {
    by_path.emplace(project.files[i].path, static_cast<int>(i));
  }
  for (ProjectFile& file : project.files) {
    const std::size_t slash = file.path.rfind('/');
    const std::string dir =
        slash == npos ? std::string() : file.path.substr(0, slash);
    for (IncludeEdge& edge : file.includes) {
      const std::string candidates[] = {
          "src/" + edge.target,
          "tools/" + edge.target,
          normalize_path(dir + "/" + edge.target),
          edge.target,
      };
      for (const std::string& candidate : candidates) {
        const auto it = by_path.find(candidate);
        if (it != by_path.end()) {
          edge.resolved = it->second;
          break;
        }
      }
      if (edge.resolved >= 0) continue;
      // Last resort: a unique suffix match, for headers found through an
      // extra include directory (e.g. "campaign.hpp" via src/workload).
      const std::string suffix = "/" + edge.target;
      int match = -1;
      bool unique = true;
      for (const auto& [path, index] : by_path) {
        if (path.size() > suffix.size() &&
            path.compare(path.size() - suffix.size(), suffix.size(),
                         suffix) == 0) {
          unique = match < 0;
          match = index;
        }
      }
      if (match >= 0 && unique) edge.resolved = match;
    }
  }
}

void compute_closures(Project& project) {
  const int n = static_cast<int>(project.files.size());
  project.closure.assign(n, {});
  project.visible.assign(n, {});

  // Header <-> implementation twins: src/a/x.hpp pairs with src/a/x.cpp.
  std::map<std::string, int, std::less<>> by_path;
  for (int i = 0; i < n; ++i) by_path.emplace(project.files[i].path, i);
  std::vector<int> twin(n, -1);
  for (int i = 0; i < n; ++i) {
    const std::string& path = project.files[i].path;
    if (path.ends_with(".hpp")) {
      const auto it =
          by_path.find(path.substr(0, path.size() - 4) + ".cpp");
      if (it != by_path.end()) twin[i] = it->second;
    }
  }

  for (int start = 0; start < n; ++start) {
    std::vector<bool> seen(n, false);
    std::vector<int> stack{start};
    seen[start] = true;
    while (!stack.empty()) {
      const int at = stack.back();
      stack.pop_back();
      project.closure[start].push_back(at);
      for (const IncludeEdge& edge : project.files[at].includes) {
        if (edge.resolved >= 0 && !seen[edge.resolved]) {
          seen[edge.resolved] = true;
          stack.push_back(edge.resolved);
        }
      }
    }
    std::sort(project.closure[start].begin(), project.closure[start].end());

    std::vector<int> vis = project.closure[start];
    for (const int file : project.closure[start]) {
      if (twin[file] >= 0 && !seen[twin[file]]) {
        seen[twin[file]] = true;
        vis.push_back(twin[file]);
      }
    }
    std::sort(vis.begin(), vis.end());
    project.visible[start] = std::move(vis);
  }
}

void scan_functions(Project& project, int file_index,
                    const std::vector<std::size_t>& line_starts) {
  const ProjectFile& file = project.files[file_index];
  const std::string_view s = file.mask;
  std::size_t i = 0;
  while (i < s.size()) {
    if (!is_ident_start(s[i]) || (i > 0 && is_ident_char(s[i - 1]))) {
      ++i;
      continue;
    }
    std::size_t e = i;
    while (e < s.size() && is_ident_char(s[e])) ++e;
    const std::string_view name = s.substr(i, e - i);
    if (!is_skipped_keyword(name)) {
      const std::size_t p = detail::skip_ws(s, e);
      if (p < s.size() && s[p] == '(') {
        const std::size_t close = match_bracket(s, p);
        if (close != npos) {
          const std::size_t body = detail::find_body_brace(s, close);
          if (body != npos) {
            const std::size_t end = match_bracket(s, body);
            if (end != npos) {
              FunctionDef def;
              def.file = file_index;
              def.name = std::string(name);
              def.line = line_of(line_starts, i);
              def.body_begin = body;
              def.body_end = end + 1;
              project.functions.push_back(std::move(def));
            }
          }
        }
      }
    }
    i = e;  // keep scanning inside bodies: nested inline defs count too
  }
}

void scan_calls(Project& project,
                const std::vector<std::vector<std::size_t>>& line_starts) {
  project.calls.assign(project.functions.size(), {});
  for (std::size_t fn = 0; fn < project.functions.size(); ++fn) {
    const FunctionDef& def = project.functions[fn];
    const ProjectFile& file = project.files[def.file];
    const std::string_view s = file.mask;
    std::size_t i = def.body_begin;
    while (i < def.body_end) {
      if (!is_ident_start(s[i]) || (i > 0 && is_ident_char(s[i - 1]))) {
        ++i;
        continue;
      }
      std::size_t e = i;
      while (e < s.size() && is_ident_char(s[e])) ++e;
      const std::string_view name = s.substr(i, e - i);
      const std::size_t p = detail::skip_ws(s, e);
      if (p < s.size() && s[p] == '(' && !is_skipped_keyword(name) &&
          qualified_root(s, i) != "std" &&
          !(is_member_call(s, i) && is_std_member_name(name))) {
        CallSite call;
        call.name = std::string(name);
        call.line = line_of(line_starts[def.file], i);
        call.offset = i;
        call.candidates = project.visible_functions(name, def.file);
        project.calls[fn].push_back(std::move(call));
      }
      i = e;
    }
  }
}

}  // namespace

int Project::file_index(std::string_view path) const {
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (files[i].path == path) return static_cast<int>(i);
  }
  return -1;
}

std::vector<int> Project::visible_functions(std::string_view name,
                                            int file) const {
  std::vector<int> out;
  const std::vector<int>& vis = visible[file];
  for (std::size_t i = 0; i < functions.size(); ++i) {
    if (functions[i].name == name &&
        std::binary_search(vis.begin(), vis.end(), functions[i].file)) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

std::string module_of(std::string_view path) {
  if (path.substr(0, 6) == "tools/") return "tools";
  if (path.substr(0, 4) == "src/") {
    const std::size_t slash = path.find('/', 4);
    if (slash != npos) return std::string(path.substr(4, slash - 4));
  }
  return "";
}

Project build_project(
    std::vector<std::pair<std::string, std::string>> sources,
    std::optional<std::string> manifest_text) {
  std::sort(sources.begin(), sources.end());
  Project project;
  project.manifest_text = std::move(manifest_text);
  project.manifest_path = "tools/wfens_lint/layers.conf";

  std::vector<std::vector<std::size_t>> line_starts;
  for (auto& [path, content] : sources) {
    ProjectFile file;
    file.path = std::move(path);
    std::replace(file.path.begin(), file.path.end(), '\\', '/');
    file.content = std::move(content);
    file.mask = detail::code_mask(file.content);
    file.cls = classify_path(file.path);
    file.module = module_of(file.path);
    file.allows = detail::collect_allows(file.content);
    line_starts.push_back(compute_line_starts(file.content));
    scan_includes(file, line_starts.back());
    project.files.push_back(std::move(file));
  }

  resolve_includes(project);
  compute_closures(project);
  for (std::size_t i = 0; i < project.files.size(); ++i) {
    scan_functions(project, static_cast<int>(i), line_starts[i]);
  }
  scan_calls(project, line_starts);
  return project;
}

Project load_project(const std::filesystem::path& repo_root) {
  namespace fs = std::filesystem;
  std::vector<fs::path> paths;
  for (const char* top : {"src", "tools"}) {
    const fs::path dir = repo_root / top;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const fs::path& p = entry.path();
      if (p.extension() == ".hpp" || p.extension() == ".cpp") {
        paths.push_back(p);
      }
    }
  }

  std::vector<std::pair<std::string, std::string>> sources;
  for (const fs::path& p : paths) {
    std::ifstream in(p, std::ios::binary);
    if (!in) {
      throw std::runtime_error("wfens_lint: cannot read " + p.string());
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    sources.emplace_back(fs::relative(p, repo_root).generic_string(),
                         buffer.str());
  }

  std::optional<std::string> manifest;
  const fs::path manifest_path = repo_root / "tools/wfens_lint/layers.conf";
  if (fs::exists(manifest_path)) {
    std::ifstream in(manifest_path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    manifest = buffer.str();
  }
  return build_project(std::move(sources), std::move(manifest));
}

std::vector<Finding> analyze_project(Project& project,
                                     const AnalyzeOptions& options) {
  std::vector<Finding> out;
  if (options.file_rules) {
    for (ProjectFile& file : project.files) {
      std::vector<Finding> found = detail::run_file_rules(
          file.path, file.content, file.mask, file.allows);
      out.insert(out.end(), found.begin(), found.end());
    }
  }
  if (options.layering) run_layering_pass(project, out);
  if (options.lock_rank) run_lock_rank_pass(project, out);
  if (options.taint) run_taint_pass(project, out);

  if (options.stale_allow) {
    for (const ProjectFile& file : project.files) {
      // Entries of one annotation share (rule, annotation_line); the
      // annotation is stale only when none of its entries suppressed
      // anything across every pass above.
      std::set<std::pair<int, std::string>> stale, used;
      for (const auto& entry : file.allows.entries) {
        (entry.used ? used : stale)
            .insert({entry.annotation_line, entry.rule});
      }
      for (const auto& [line, rule] : stale) {
        if (used.count({line, rule})) continue;
        out.push_back(Finding{
            file.path, line, "stale-allow",
            "allow(" + rule +
                ") suppresses no finding; remove the annotation or fix "
                "the rule id"});
      }
    }
  }

  std::stable_sort(out.begin(), out.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     return a.line < b.line;
                   });
  return out;
}

}  // namespace wfe::lint
