// wfens_lint CLI — scan the tree (or explicit files) and report findings.
//
//   wfens_lint --root <repo>            lint <repo>/src and <repo>/tools
//   wfens_lint --root <repo> --json F   also write the findings report to F
//   wfens_lint --root <repo> --sarif F  also write a SARIF 2.1.0 log to F
//   wfens_lint --root <repo> --fix      apply mechanical fixes first
//                                       (pragma-once, include-parent),
//                                       then lint the fixed tree
//   wfens_lint --file <rel> < source    lint stdin as the given path
//
// Exit status: 0 clean, 1 findings, 2 usage or I/O error. The ctest
// `lint.tree` runs the first form over the source tree.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "wfens_lint/fix.hpp"
#include "wfens_lint/lint.hpp"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: wfens_lint --root <repo-root> [--json <out>] [--sarif <out>]"
      " [--fix]\n"
      "       wfens_lint --file <relative-path>   (source on stdin)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::filesystem::path root;
  std::filesystem::path json_out;
  std::filesystem::path sarif_out;
  std::string stdin_path;
  bool fix = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (arg == "--sarif" && i + 1 < argc) {
      sarif_out = argv[++i];
    } else if (arg == "--fix") {
      fix = true;
    } else if (arg == "--file" && i + 1 < argc) {
      stdin_path = argv[++i];
    } else {
      return usage();
    }
  }
  if (root.empty() == stdin_path.empty()) return usage();
  if (fix && root.empty()) return usage();

  std::vector<wfe::lint::Finding> findings;
  try {
    if (!stdin_path.empty()) {
      std::stringstream buffer;
      buffer << std::cin.rdbuf();
      findings = wfe::lint::lint_source(stdin_path, buffer.str());
    } else {
      if (fix) {
        const int changed = wfe::lint::fix_tree(root);
        std::fprintf(stderr, "wfens_lint: fixed %d file(s)\n", changed);
      }
      findings = wfe::lint::lint_tree(root);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "wfens_lint: %s\n", e.what());
    return 2;
  }

  for (const wfe::lint::Finding& f : findings) {
    std::fprintf(stderr, "%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.message.c_str());
  }
  const auto write_report = [](const std::filesystem::path& path,
                               const std::string& text) {
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "wfens_lint: cannot write %s\n",
                   path.string().c_str());
      return false;
    }
    out << text;
    return true;
  };
  if (!json_out.empty() &&
      !write_report(json_out, wfe::lint::findings_to_json(findings))) {
    return 2;
  }
  if (!sarif_out.empty() &&
      !write_report(sarif_out, wfe::lint::findings_to_sarif(findings))) {
    return 2;
  }
  if (findings.empty()) {
    std::fprintf(stderr, "wfens_lint: clean\n");
    return 0;
  }
  std::fprintf(stderr, "wfens_lint: %zu finding(s)\n", findings.size());
  return 1;
}
