// wfens_run: execute a workflow-ensemble configuration on the modelled
// platform and save the execution trace as a WFET artifact for offline
// analysis (wfens_report).
//
// Usage:  wfens_run <config|spec.wfes> <out.wfet>
//                   [--native] [--steps N] [--save-spec out.wfes]
//                   [--schedule NAME] [--pool M] [--threads N]
//                   [--faults MTBF_S] [--stage-error-p P]
//                   [--fault-policy retry|checkpoint|fail] [--fault-seed N]
//   <config>         a paper configuration (Cf, Cc, C1.1 ... C2.8), or a
//                    path ending in .wfes holding a saved ensemble spec
//   --native         run the real threaded executor (small MD) instead of
//                    the simulated one (placements are ignored in native
//                    mode)
//   --steps N        override the in situ step count
//   --save-spec      also write the (possibly adjusted) spec, so
//                    wfens_report can compute the placement-aware
//                    indicators
//   --schedule NAME  discard the config's placement and re-plan it with the
//                    named scheduler (greedy-colocate, greedy-refine,
//                    exhaustive, bai-search, round-robin, random) before
//                    running; simulated mode only
//   --pool M         node budget for --schedule (default: the platform)
//   --threads N      worker threads for --schedule's candidate scoring;
//                    the chosen placement is identical for every N
//   --probe-jitter CV  price run-to-run noise (lognormal stage jitter with
//                    this CV) into --schedule's probe replays; the
//                    replay-guided schedulers then sample each candidate
//   --probe-samples N  seeded draws a fixed-budget scheduler averages per
//                    candidate on stochastic probes (default 1)
//   --max-samples N  bai-search's adaptive sample budget (0 = what the
//                    fixed-budget schedulers would spend)
//   --faults MTBF_S  inject node crashes with this per-node MTBF (seconds);
//                    simulated mode only
//   --stage-error-p  per-stage transient error probability (simulated mode)
//   --fault-policy   recovery policy when faults are on (default: retry)
//   --fault-seed N   fault-injection seed (independent of the jitter seed)
//   --node-down N@T  take node N down permanently at T virtual seconds
//                    (repeatable; deterministic, no randomness involved)
//   --fatal-crashes  make --faults crashes permanent: the first crash of a
//                    node kills it for good and forces a migration
//   --straggler M    per-node straggler windows with mean arrival M seconds
//                    (compute stretched while a window covers a node)
//   --net-degrade M  platform-wide network-degradation windows, mean
//                    arrival M seconds (transfers stretched inside windows)
//   --replication K  keep K copies of each staged chunk on a ring of nodes
//                    (K > 1 prices the extra pushes and saves chunks when
//                    the producer node dies)
//   --migrate MODE   node-death migration targeting: 'builtin' (least
//                    loaded surviving node) or 'replan' (online re-planner:
//                    probe-scored incremental repair); default builtin
//   --risk-aware     rank --schedule candidates by expected makespan under
//                    the --faults failure distribution instead of the
//                    fault-free objective
//   --spare N        hold N nodes of the --schedule pool back from
//                    placement as migration headroom
//   --engine E       replay engine for simulated runs and probe replays:
//                    'seq' (default) or 'lp:N' — conservative parallel
//                    discrete-event replay over N logical-process lanes;
//                    bit-identical results either way (env WFENS_ENGINE
//                    supplies the default when the flag is absent)
//   --trace-out F    also record a structured run trace (engine, DTL,
//                    scheduler, resilience activity) and write it to F:
//                    .jsonl = compact span log, anything else = Chrome
//                    trace_event JSON (chrome://tracing, Perfetto)
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "metrics/trace_io.hpp"
#include "obs/export.hpp"
#include "obs/recorder.hpp"
#include "runtime/native_executor.hpp"
#include "runtime/simulated_executor.hpp"
#include "runtime/spec_io.hpp"
#include "sched/replanner.hpp"
#include "sched/scheduler.hpp"
#include "support/error.hpp"
#include "workload/paper_configs.hpp"
#include "workload/presets.hpp"

int main(int argc, char** argv) {
  using namespace wfe;
  if (argc < 3) {
    std::cerr << "usage: wfens_run <config|spec.wfes> <out.wfet> "
                 "[--native] [--steps N] [--save-spec out.wfes]\n"
                 "                 [--schedule NAME] [--pool M] [--threads N]\n"
                 "                 [--probe-jitter CV] [--probe-samples N] "
                 "[--max-samples N]\n"
                 "                 [--faults MTBF_S] [--stage-error-p P]\n"
                 "                 [--fault-policy retry|checkpoint|fail] "
                 "[--fault-seed N]\n"
                 "                 [--node-down N@T] [--fatal-crashes]\n"
                 "                 [--straggler MTBF_S] [--net-degrade "
                 "MTBF_S]\n"
                 "                 [--replication K] [--migrate "
                 "builtin|replan]\n"
                 "                 [--risk-aware] [--spare N]\n"
                 "                 [--engine seq|lp:N] "
                 "(or env WFENS_ENGINE)\n"
                 "                 [--trace-out trace.json|trace.jsonl]\n";
    return 2;
  }
  const std::string source = argv[1];
  const std::string out_path = argv[2];
  bool native = false;
  std::uint64_t steps = 0;
  std::string save_spec_path;
  std::string schedule_name;
  int pool = 0;
  int threads = 1;
  double probe_jitter = 0.0;
  std::uint64_t probe_samples = 1;
  std::uint64_t max_samples = 0;
  res::FaultSpec faults;
  res::RecoveryPolicy recovery;
  std::string migrate_mode = "builtin";
  bool risk_aware = false;
  int spare_nodes = 0;
  std::string trace_out_path;
  rt::EngineSelection engine;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--native") {
      native = true;
    } else if (arg == "--steps" && i + 1 < argc) {
      steps = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--save-spec" && i + 1 < argc) {
      save_spec_path = argv[++i];
    } else if (arg == "--schedule" && i + 1 < argc) {
      schedule_name = argv[++i];
    } else if (arg == "--pool" && i + 1 < argc) {
      pool = std::atoi(argv[++i]);
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
      if (threads < 1) threads = 1;
    } else if (arg == "--probe-jitter" && i + 1 < argc) {
      probe_jitter = std::atof(argv[++i]);
    } else if (arg == "--probe-samples" && i + 1 < argc) {
      const long long n = std::atoll(argv[++i]);
      probe_samples = n < 1 ? 1 : static_cast<std::uint64_t>(n);
    } else if (arg == "--max-samples" && i + 1 < argc) {
      const long long n = std::atoll(argv[++i]);
      max_samples = n < 0 ? 0 : static_cast<std::uint64_t>(n);
    } else if (arg == "--faults" && i + 1 < argc) {
      faults.node_mtbf_s = std::atof(argv[++i]);
    } else if (arg == "--stage-error-p" && i + 1 < argc) {
      faults.stage_error_prob = std::atof(argv[++i]);
    } else if (arg == "--fault-seed" && i + 1 < argc) {
      faults.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--node-down" && i + 1 < argc) {
      const std::string at = argv[++i];
      const std::size_t sep = at.find('@');
      if (sep == std::string::npos) {
        std::cerr << "--node-down wants NODE@TIME (e.g. 1@40)\n";
        return 2;
      }
      faults.node_down.push_back({std::atoi(at.substr(0, sep).c_str()),
                                  std::atof(at.substr(sep + 1).c_str())});
    } else if (arg == "--fatal-crashes") {
      faults.crashes_are_fatal = true;
    } else if (arg == "--straggler" && i + 1 < argc) {
      faults.straggler_mtbf_s = std::atof(argv[++i]);
    } else if (arg == "--net-degrade" && i + 1 < argc) {
      faults.net_degrade_mtbf_s = std::atof(argv[++i]);
    } else if (arg == "--replication" && i + 1 < argc) {
      recovery.chunk_replication = std::atoi(argv[++i]);
    } else if (arg == "--migrate" && i + 1 < argc) {
      migrate_mode = argv[++i];
      if (migrate_mode != "builtin" && migrate_mode != "replan") {
        std::cerr << "unknown migrate mode: " << migrate_mode
                  << " (want builtin|replan)\n";
        return 2;
      }
    } else if (arg == "--risk-aware") {
      risk_aware = true;
    } else if (arg == "--spare" && i + 1 < argc) {
      spare_nodes = std::atoi(argv[++i]);
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_out_path = argv[++i];
    } else if (arg.rfind("--engine=", 0) == 0 || arg == "--engine") {
      std::string value;
      if (arg == "--engine") {
        if (i + 1 >= argc) {
          std::cerr << "--engine wants a value (seq|lp:N)\n";
          return 2;
        }
        value = argv[++i];
      } else {
        value = arg.substr(9);
      }
      try {
        engine = rt::EngineSelection::parse(value);
      } catch (const Error& e) {
        std::cerr << e.what() << "\n";
        return 2;
      }
    } else if (arg == "--fault-policy" && i + 1 < argc) {
      const std::string policy = argv[++i];
      if (policy == "retry") {
        recovery.kind = res::RecoveryKind::kRetry;
      } else if (policy == "checkpoint") {
        recovery.kind = res::RecoveryKind::kCheckpointRestart;
      } else if (policy == "fail") {
        recovery.kind = res::RecoveryKind::kFailMember;
      } else {
        std::cerr << "unknown fault policy: " << policy
                  << " (want retry|checkpoint|fail)\n";
        return 2;
      }
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }
  if (native && faults.enabled()) {
    std::cerr << "--faults / --stage-error-p need the simulated executor "
                 "(drop --native)\n";
    return 2;
  }
  if (native && !schedule_name.empty()) {
    std::cerr << "--schedule plans placements, which native mode ignores "
                 "(drop --native)\n";
    return 2;
  }

  try {
    // Install the observability session before planning so scheduler
    // activity lands in the trace alongside the run itself.
    std::unique_ptr<obs::Recorder> obs_recorder;
    std::unique_ptr<obs::Session> obs_session;
    if (!trace_out_path.empty()) {
      obs_recorder = std::make_unique<obs::Recorder>();
      obs_session = std::make_unique<obs::Session>(*obs_recorder);
    }

    rt::EnsembleSpec spec;
    if (source.size() > 5 && source.substr(source.size() - 5) == ".wfes") {
      spec = rt::load_spec(source);
    } else {
      spec = wl::paper_config(source).spec;
    }
    if (steps > 0) spec.n_steps = steps;

    sched::PlanOptions plan_options;
    plan_options.threads = threads;
    plan_options.jitter_cv = probe_jitter;
    plan_options.probe_samples = probe_samples;
    plan_options.max_samples = max_samples;
    plan_options.faults = faults;
    plan_options.recovery = recovery;
    plan_options.risk_aware = risk_aware;
    plan_options.spare_nodes = spare_nodes;
    plan_options.engine = engine;

    if (!schedule_name.empty()) {
      // Strip the config's placement down to its demand and re-plan it.
      const auto platform = wl::cori_like_platform();
      const auto shape = sched::EnsembleShape::of(spec);
      const sched::ResourceBudget budget{pool > 0 ? pool
                                                  : platform.node_count};
      const sched::Schedule schedule =
          sched::make_scheduler(schedule_name)
              ->plan(shape, platform, budget, plan_options);
      const std::string name = spec.name;
      spec = schedule.spec;
      spec.name = name + "+" + schedule_name;
      std::cout << "re-planned " << name << " with " << schedule_name << " ("
                << schedule.evaluations << " planning replays";
      if (schedule.cache_hits > 0) {
        std::cout << ", " << schedule.cache_hits << " served from cache";
      }
      if (schedule.samples > 0) {
        std::cout << ", " << schedule.samples << " samples";
      }
      std::cout << ") on " << budget.node_pool << " nodes\n";
    }

    rt::ExecutionResult result;
    if (native) {
      // Swap in the really-runnable small MD workload.
      for (auto& m : spec.members) {
        m.sim.natoms = 256;
        m.sim.stride = 10;
        m.sim.cores = 1;
        m.sim.native = wl::native_md_config();
        for (auto& a : m.analyses) a.cores = 1;
      }
      if (steps == 0) spec.n_steps = 4;
      result = rt::NativeExecutor().run(spec);
    } else {
      rt::SimulatedOptions options;
      options.faults = faults;
      options.recovery = recovery;
      options.engine = engine;
      // The re-planner must outlive the executor holding its hook.
      std::unique_ptr<sched::RePlanner> replanner;
      if (migrate_mode == "replan" && faults.node_faults()) {
        replanner = std::make_unique<sched::RePlanner>(
            sched::EnsembleShape::of(spec), wl::cori_like_platform(),
            plan_options);
        // The running assignment: one node per component in slot order
        // (multi-node components contribute their lowest node).
        sched::Assignment assignment;
        for (const auto& m : spec.members) {
          assignment.push_back(*m.sim.nodes.begin());
          for (const auto& a : m.analyses) {
            assignment.push_back(*a.nodes.begin());
          }
        }
        replanner->set_assignment(std::move(assignment));
        options.migrate = replanner->hook();
      }
      rt::SimulatedExecutor exec(wl::cori_like_platform(), options);
      result = exec.run(spec);
      if (replanner && replanner->replans() > 0) {
        std::cout << "re-planner repaired " << replanner->replans()
                  << " placement(s) with " << replanner->evaluations()
                  << " probe replays (last re-plan took "
                  << replanner->last_latency_s() << " s)\n";
      }
    }

    met::save_trace(out_path, result.trace);
    std::cout << "wrote " << result.trace.size() << " stage records for "
              << spec.name << " to " << out_path << "\n";
    if (obs_recorder) {
      const obs::RunLog log = obs_recorder->take();
      obs::write_runlog(trace_out_path, log);
      std::cout << "wrote " << log.size() << " trace events on "
                << log.tracks().size() << " tracks to " << trace_out_path
                << "\n";
    }
    if (faults.enabled()) {
      std::cout << result.failure_summary.str() << "\n";
      if (!result.health_events.empty()) {
        int downs = 0;
        for (const auto& e : result.health_events) {
          if (e.to == plat::NodeHealth::kDown) ++downs;
        }
        std::cout << result.health_events.size()
                  << " node health transition(s), " << downs
                  << " node(s) went down\n";
      }
      if (!result.failure_summary.complete()) {
        std::cout << "note: " << result.failure_summary.failed_members.size()
                  << " member(s) did not finish; Table 1 / indicator "
                     "computations over this trace are partial\n";
      }
    }
    if (!save_spec_path.empty()) {
      rt::save_spec(save_spec_path, spec);
      std::cout << "wrote the spec to " << save_spec_path << "\n";
    }
    return 0;
  } catch (const wfe::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
