// wfens_plan: plan a placement for a paper-shaped ensemble demand and
// report the expected assessment — the paper's future-work scheduling use
// case as a command-line tool.
//
// Usage:  wfens_plan <members> <analyses_per_member> <node_pool>
//                    [--scheduler greedy-colocate|greedy-refine|exhaustive|
//                                 bai-search|round-robin|random]
//                    [--threads N] [--probe-jitter CV] [--probe-samples N]
//                    [--max-samples N] [--json] [--save-spec out.wfes]
//                    [--trace-out trace.json|trace.jsonl]
//
// --threads parallelizes the replay-driven schedulers' candidate scoring;
// the chosen placement is identical for every N (see docs/PERF.md).
// --probe-jitter prices run-to-run noise into the probe replays; --probe-samples
// sets the fixed-budget schedulers' draws per candidate and --max-samples
// caps bai-search's adaptive budget (0 = the fixed-budget spend).
// --json replaces the human-readable report with one machine-readable
// JSON object including the scheduler cost counters (planning replays,
// memo hits, shared-cache hits, samples) — "replays saved" per plan.
// --trace-out records scheduler activity (batch spans, per-worker
// utilization, memo hits) as a structured run trace: .jsonl = compact span
// log, anything else = Chrome trace_event JSON.
#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "obs/export.hpp"
#include "obs/recorder.hpp"
#include "runtime/spec_io.hpp"
#include "sched/evaluator.hpp"
#include "sched/scheduler.hpp"
#include "support/error.hpp"
#include "support/json.hpp"
#include "support/str.hpp"
#include "support/table.hpp"
#include "workload/presets.hpp"

int main(int argc, char** argv) {
  using namespace wfe;
  if (argc < 4) {
    std::cerr << "usage: wfens_plan <members> <analyses_per_member> "
                 "<node_pool> [--scheduler NAME] [--threads N] "
                 "[--probe-jitter CV] [--probe-samples N] [--max-samples N] "
                 "[--json] [--save-spec out.wfes] [--trace-out trace.json]\n";
    return 2;
  }
  const int members = std::atoi(argv[1]);
  const int analyses = std::atoi(argv[2]);
  const int pool = std::atoi(argv[3]);
  std::string scheduler_name = "greedy-colocate";
  std::string save_spec_path;
  std::string trace_out_path;
  bool json_out = false;
  sched::PlanOptions plan_options;
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--scheduler" && i + 1 < argc) {
      scheduler_name = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      plan_options.threads = std::atoi(argv[++i]);
      if (plan_options.threads < 1) plan_options.threads = 1;
    } else if (arg == "--probe-jitter" && i + 1 < argc) {
      plan_options.jitter_cv = std::atof(argv[++i]);
    } else if (arg == "--probe-samples" && i + 1 < argc) {
      const long n = std::atol(argv[++i]);
      plan_options.probe_samples = n < 1 ? 1 : static_cast<std::uint64_t>(n);
    } else if (arg == "--max-samples" && i + 1 < argc) {
      const long n = std::atol(argv[++i]);
      plan_options.max_samples = n < 0 ? 0 : static_cast<std::uint64_t>(n);
    } else if (arg == "--json") {
      json_out = true;
    } else if (arg == "--save-spec" && i + 1 < argc) {
      save_spec_path = argv[++i];
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_out_path = argv[++i];
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }

  try {
    // --json also records a session: the scheduler cost counters
    // (sched.evaluations / memo_hits / shared_hits) land in the report.
    std::unique_ptr<obs::Recorder> obs_recorder;
    std::unique_ptr<obs::Session> obs_session;
    if (!trace_out_path.empty() || json_out) {
      obs_recorder = std::make_unique<obs::Recorder>();
      obs_session = std::make_unique<obs::Session>(*obs_recorder);
    }

    const auto platform = wl::cori_like_platform();
    const auto shape = sched::EnsembleShape::paper_like(members, analyses);
    const auto scheduler = sched::make_scheduler(scheduler_name);
    const sched::Schedule schedule =
        scheduler->plan(shape, platform, {pool}, plan_options);

    sched::Evaluator evaluator(platform);
    const sched::Evaluation e = evaluator.score(schedule.spec);

    if (json_out) {
      std::ostringstream out;
      out << "{\n";
      out << "  \"scheduler\": \"" << json::escape(schedule.scheduler)
          << "\",\n";
      out << "  \"members\": " << members << ",\n";
      out << "  \"analyses_per_member\": " << analyses << ",\n";
      out << "  \"node_pool\": " << pool << ",\n";
      out << "  \"threads\": " << plan_options.threads << ",\n";
      out << "  \"jitter_cv\": " << plan_options.jitter_cv << ",\n";
      out << "  \"probe_samples\": " << plan_options.probe_samples << ",\n";
      out << "  \"max_samples\": " << plan_options.max_samples << ",\n";
      out << "  \"evaluations\": " << schedule.evaluations << ",\n";
      out << "  \"cache_hits\": " << schedule.cache_hits << ",\n";
      out << "  \"shared_hits\": " << schedule.shared_hits << ",\n";
      out << "  \"samples\": " << schedule.samples << ",\n";
      out << "  \"objective\": " << sci(e.objective, 9) << ",\n";
      out << "  \"nodes_used\": " << e.nodes_used << ",\n";
      out << "  \"min_member_efficiency\": "
          << fixed(e.min_member_efficiency, 6) << ",\n";
      out << "  \"placement\": [";
      bool first = true;
      for (const auto& m : schedule.spec.members) {
        if (!first) out << ", ";
        first = false;
        out << "{\"sim\": " << *m.sim.nodes.begin() << ", \"analyses\": [";
        bool afirst = true;
        for (const auto& a : m.analyses) {
          if (!afirst) out << ", ";
          afirst = false;
          out << *a.nodes.begin();
        }
        out << "]}";
      }
      out << "],\n";
      out << "  \"counters\": {";
      first = true;
      for (const obs::CounterValue& c :
           obs_recorder->counters().snapshot()) {
        if (!first) out << ", ";
        first = false;
        out << "\"" << json::escape(c.name) << "\": " << c.value;
      }
      out << "}\n";
      out << "}\n";
      std::cout << out.str();
    } else {
      Table placement({"member", "simulation", "analyses"});
      for (std::size_t i = 0; i < schedule.spec.members.size(); ++i) {
        const auto& m = schedule.spec.members[i];
        std::vector<std::string> ana_nodes;
        for (const auto& a : m.analyses) {
          ana_nodes.push_back("n" + std::to_string(*a.nodes.begin()));
        }
        placement.add_row({strprintf("EM%zu", i + 1),
                           "n" + std::to_string(*m.sim.nodes.begin()),
                           join(ana_nodes, " ")});
      }
      std::cout << "scheduler: " << schedule.scheduler << " ("
                << schedule.evaluations << " planning replays";
      if (schedule.cache_hits > 0) {
        std::cout << ", " << schedule.cache_hits << " served from cache";
      }
      if (schedule.shared_hits > 0) {
        std::cout << " (" << schedule.shared_hits << " shared)";
      }
      if (schedule.samples > 0) {
        std::cout << ", " << schedule.samples << " samples";
      }
      std::cout << ")\n" << placement.render();
      std::cout << "\nexpected F(P^{U,A,P}) = " << sci(e.objective, 3)
                << ", nodes used = " << e.nodes_used
                << ", min member E = " << fixed(e.min_member_efficiency, 3)
                << "\n";
    }

    if (!save_spec_path.empty()) {
      rt::save_spec(save_spec_path, schedule.spec);
      if (!json_out) {
        std::cout << "wrote the spec to " << save_spec_path << "\n";
      }
    }
    if (obs_recorder && !trace_out_path.empty()) {
      const obs::RunLog log = obs_recorder->take();
      obs::write_runlog(trace_out_path, log);
      if (!json_out) {
        std::cout << "wrote " << log.size() << " trace events on "
                  << log.tracks().size() << " tracks to " << trace_out_path
                  << "\n";
      }
    }
    return 0;
  } catch (const wfe::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
