// wfens_plan: plan a placement for a paper-shaped ensemble demand and
// report the expected assessment — the paper's future-work scheduling use
// case as a command-line tool.
//
// Usage:  wfens_plan <members> <analyses_per_member> <node_pool>
//                    [--scheduler greedy-colocate|greedy-refine|exhaustive|
//                                 round-robin|random]
//                    [--threads N] [--save-spec out.wfes]
//                    [--trace-out trace.json|trace.jsonl]
//
// --threads parallelizes the replay-driven schedulers' candidate scoring;
// the chosen placement is identical for every N (see docs/PERF.md).
// --trace-out records scheduler activity (batch spans, per-worker
// utilization, memo hits) as a structured run trace: .jsonl = compact span
// log, anything else = Chrome trace_event JSON.
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "obs/export.hpp"
#include "obs/recorder.hpp"
#include "runtime/spec_io.hpp"
#include "sched/evaluator.hpp"
#include "sched/scheduler.hpp"
#include "support/error.hpp"
#include "support/str.hpp"
#include "support/table.hpp"
#include "workload/presets.hpp"

int main(int argc, char** argv) {
  using namespace wfe;
  if (argc < 4) {
    std::cerr << "usage: wfens_plan <members> <analyses_per_member> "
                 "<node_pool> [--scheduler NAME] [--threads N] "
                 "[--save-spec out.wfes] [--trace-out trace.json]\n";
    return 2;
  }
  const int members = std::atoi(argv[1]);
  const int analyses = std::atoi(argv[2]);
  const int pool = std::atoi(argv[3]);
  std::string scheduler_name = "greedy-colocate";
  std::string save_spec_path;
  std::string trace_out_path;
  int threads = 1;
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--scheduler" && i + 1 < argc) {
      scheduler_name = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
      if (threads < 1) threads = 1;
    } else if (arg == "--save-spec" && i + 1 < argc) {
      save_spec_path = argv[++i];
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_out_path = argv[++i];
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }

  try {
    std::unique_ptr<obs::Recorder> obs_recorder;
    std::unique_ptr<obs::Session> obs_session;
    if (!trace_out_path.empty()) {
      obs_recorder = std::make_unique<obs::Recorder>();
      obs_session = std::make_unique<obs::Session>(*obs_recorder);
    }

    const auto platform = wl::cori_like_platform();
    const auto shape = sched::EnsembleShape::paper_like(members, analyses);
    const auto scheduler = sched::make_scheduler(scheduler_name);
    const sched::Schedule schedule = scheduler->plan(
        shape, platform, {pool}, sched::PlanOptions{.threads = threads});

    Table placement({"member", "simulation", "analyses"});
    for (std::size_t i = 0; i < schedule.spec.members.size(); ++i) {
      const auto& m = schedule.spec.members[i];
      std::vector<std::string> ana_nodes;
      for (const auto& a : m.analyses) {
        ana_nodes.push_back("n" + std::to_string(*a.nodes.begin()));
      }
      placement.add_row({strprintf("EM%zu", i + 1),
                         "n" + std::to_string(*m.sim.nodes.begin()),
                         join(ana_nodes, " ")});
    }
    std::cout << "scheduler: " << schedule.scheduler << " ("
              << schedule.evaluations << " planning replays";
    if (schedule.cache_hits > 0) {
      std::cout << ", " << schedule.cache_hits << " served from cache";
    }
    std::cout << ")\n" << placement.render();

    sched::Evaluator evaluator(platform);
    const sched::Evaluation e = evaluator.score(schedule.spec);
    std::cout << "\nexpected F(P^{U,A,P}) = " << sci(e.objective, 3)
              << ", nodes used = " << e.nodes_used
              << ", min member E = " << fixed(e.min_member_efficiency, 3)
              << "\n";
    if (!save_spec_path.empty()) {
      rt::save_spec(save_spec_path, schedule.spec);
      std::cout << "wrote the spec to " << save_spec_path << "\n";
    }
    if (obs_recorder) {
      const obs::RunLog log = obs_recorder->take();
      obs::write_runlog(trace_out_path, log);
      std::cout << "wrote " << log.size() << " trace events on "
                << log.tracks().size() << " tracks to " << trace_out_path
                << "\n";
    }
    return 0;
  } catch (const wfe::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
