// wfens_campaign: regenerate the paper's figure/table units through the
// shared, cache-backed scoring pipeline.
//
// Usage:  wfens_campaign [--threads N] [--units a,b,...] [--list]
//                        [--plan sched1,sched2,...]
//                        [--cache PATH | --no-cache] [--out FILE]
//
// Each unit (Table 2, Table 4, the C1.x figure sweep — see --list) is
// scored by a sched::BatchEvaluator fanning replays over an
// exec::ThreadPool. All units share one process-wide sched::EvalCache,
// loaded from and saved back to disk (default: $WFENS_CACHE, else
// ~/.wfens_cache), so a repeated campaign regeneration — same platform
// fingerprint, same demand digest — re-simulates nothing. --no-cache runs
// cold and leaves no file; --out writes a flat JSON report
// (CAMPAIGN.json-style) for regression diffs.
//
// --plan runs the planning campaign instead: each named scheduler places
// the standard paper-shaped demands through the same shared EvalCache, so
// probes one scheduler already paid for show up as shared-tier hits in the
// next one's cost column (e.g. bai-search planning warm after exhaustive).
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "campaign.hpp"
#include "sched/eval_cache.hpp"
#include "support/error.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : s) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wfe;
  int threads = 1;
  bool list = false;
  bool use_cache = true;
  std::string cache_path;  // empty = EvalCache::default_path()
  std::string out_path;
  std::vector<std::string> unit_filter;
  std::vector<std::string> plan_schedulers;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
      if (threads < 1) threads = 1;
    } else if (arg == "--units" && i + 1 < argc) {
      unit_filter = split_csv(argv[++i]);
    } else if (arg == "--plan" && i + 1 < argc) {
      plan_schedulers = split_csv(argv[++i]);
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--cache" && i + 1 < argc) {
      cache_path = argv[++i];
    } else if (arg == "--no-cache") {
      use_cache = false;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: wfens_campaign [--threads N] [--units a,b,...] "
                   "[--list] [--plan sched1,sched2,...] "
                   "[--cache PATH | --no-cache] [--out FILE]\n";
      return 2;
    }
  }

  try {
    std::vector<bench::CampaignUnit> units = bench::campaign_units();
    if (list) {
      Table table({"unit", "configs", "steps", "artifact"});
      for (const auto& u : units) {
        table.add_row({u.name, std::to_string(u.configs.size()),
                       std::to_string(u.probe_steps), u.artifact});
      }
      std::cout << table.render();
      return 0;
    }
    if (!unit_filter.empty()) {
      std::vector<bench::CampaignUnit> selected;
      for (const std::string& want : unit_filter) {
        bool found = false;
        for (const auto& u : units) {
          if (u.name == want) {
            selected.push_back(u);
            found = true;
            break;
          }
        }
        if (!found) {
          std::cerr << "unknown unit: " << want << " (see --list)\n";
          return 2;
        }
      }
      units = std::move(selected);
    }

    sched::EvalCache* shared = nullptr;
    std::string resolved_cache;
    if (use_cache) {
      shared = &sched::EvalCache::process();
      resolved_cache =
          cache_path.empty() ? sched::EvalCache::default_path() : cache_path;
      const std::size_t loaded = shared->load(resolved_cache);
      std::cout << "cache: " << resolved_cache << " (" << loaded
                << " entries loaded)\n\n";
    } else {
      std::cout << "cache: disabled\n\n";
    }

    if (!plan_schedulers.empty()) {
      const auto rows =
          bench::run_plan_campaign(plan_schedulers, threads, shared);
      Table table({"scheduler", "shape", "objective", "sims", "memo",
                   "shared", "samples"});
      std::size_t plan_evals = 0;
      std::size_t plan_shared = 0;
      for (const auto& row : rows) {
        table.add_row({row.scheduler, row.shape, fixed(row.objective, 4),
                       std::to_string(row.evaluations),
                       std::to_string(row.cache_hits),
                       std::to_string(row.shared_hits),
                       std::to_string(row.samples)});
        plan_evals += row.evaluations;
        plan_shared += row.shared_hits;
      }
      std::cout << table.render();
      std::cout << strprintf(
          "plan campaign total: %zu fresh simulations, %zu shared-cache "
          "hits\n",
          plan_evals, plan_shared);
      if (shared) {
        const std::size_t saved = shared->save(resolved_cache);
        std::cout << "cache: " << saved << " entries saved\n";
      }
      return 0;
    }

    const auto results = bench::run_campaign(units, threads, shared);

    std::size_t total_evals = 0;
    std::size_t total_hits = 0;
    for (const auto& r : results) {
      std::cout << "== " << r.unit << " ==\n";
      Table table(
          {"config", "objective", "makespan_s", "min_eff", "nodes", "src"});
      for (const auto& row : r.rows) {
        if (!row.feasible) {
          table.add_row({row.config, "infeasible", "-", "-", "-",
                         row.cached ? "cache" : "sim"});
          continue;
        }
        table.add_row({row.config, fixed(row.eval.objective, 4),
                       fixed(row.eval.ensemble_makespan, 1),
                       fixed(row.eval.min_member_efficiency, 4),
                       std::to_string(row.eval.nodes_used),
                       row.cached ? "cache" : "sim"});
      }
      std::cout << table.render();
      std::cout << strprintf(
          "%zu fresh simulations, %zu cache hits, %.3fs\n\n", r.evaluations,
          r.cache_hits, r.seconds);
      total_evals += r.evaluations;
      total_hits += r.cache_hits;
    }
    std::cout << strprintf("campaign total: %zu fresh simulations, "
                           "%zu cache hits\n",
                           total_evals, total_hits);

    if (shared) {
      const std::size_t saved = shared->save(resolved_cache);
      std::cout << "cache: " << saved << " entries saved\n";
    }

    if (!out_path.empty()) {
      std::ofstream out(out_path);
      if (!out) throw Error(strprintf("cannot write %s", out_path.c_str()));
      out << "{\n  \"bench\": \"campaign\",\n";
      out << strprintf("  \"threads\": %d,\n", threads);
      out << strprintf("  \"fresh_evaluations\": %zu,\n", total_evals);
      out << strprintf("  \"cache_hits\": %zu,\n", total_hits);
      out << "  \"units\": [\n";
      for (std::size_t u = 0; u < results.size(); ++u) {
        const auto& r = results[u];
        out << strprintf(
            "    {\"unit\": \"%s\", \"evaluations\": %zu, "
            "\"cache_hits\": %zu, \"rows\": [\n",
            r.unit.c_str(), r.evaluations, r.cache_hits);
        for (std::size_t i = 0; i < r.rows.size(); ++i) {
          const auto& row = r.rows[i];
          out << strprintf(
              "      {\"config\": \"%s\", \"feasible\": %s, "
              "\"cached\": %s, \"objective\": %.17g, "
              "\"makespan_s\": %.17g, \"min_efficiency\": %.17g, "
              "\"nodes\": %d}%s\n",
              row.config.c_str(), row.feasible ? "true" : "false",
              row.cached ? "true" : "false", row.eval.objective,
              row.eval.ensemble_makespan, row.eval.min_member_efficiency,
              row.eval.nodes_used, i + 1 < r.rows.size() ? "," : "");
        }
        out << "    ]}" << (u + 1 < results.size() ? ",\n" : "\n");
      }
      out << "  ]\n}\n";
      std::cout << "wrote " << out_path << "\n";
    }
    return 0;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
