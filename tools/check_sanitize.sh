#!/usr/bin/env bash
# Build WFEns under sanitizers and run the tier-1 test suite.
#
#   tools/check_sanitize.sh [sanitizers] [ctest-args...]
#
# The first argument (default "address,undefined") feeds the WFE_SANITIZE
# CMake cache variable; everything after it is passed to ctest. Each
# sanitizer set gets its own tree (build-sanitize-<set>/) so switching
# between them never forces a full rebuild, and none disturbs the regular
# build/.
#
# "thread" is special-cased: ThreadSanitizer is incompatible with ASan, so
# it builds its own tree and runs the FULL suite under TSan. The suites
# that actually exercise threads are labelled `concurrency` in
# tests/CMakeLists.txt; "thread-fast" runs only those (ctest -L) for a
# quick local loop. Known-benign reports are triaged in tools/tsan.supp —
# every entry there carries a justification. The default invocation chains
# both phases: ASan+UBSan over everything, then the full suite under TSan.
#
# "resilience" runs the fault-domain suites (ctest -L resilience: the
# injector, node-loss/migration and re-planner tests) under ASan+UBSan and
# then TSan — the recovery paths allocate and lock off the happy path, so
# they get all three sanitizers in one focused invocation.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
sanitizers="${1:-}"
shift || true

# abort_on_error=0: let gtest report which test tripped the sanitizer.
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:suppressions=${repo_root}/tools/tsan.supp}"

run_phase() {
  local sans="$1"
  shift
  local build_dir="${repo_root}/build-sanitize-${sans//,/-}"
  cmake -B "${build_dir}" -S "${repo_root}" \
    -DWFE_SANITIZE="${sans}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "${build_dir}" -j "$(nproc)"
  ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)" "$@"
}

# The lint.headers ctest drives a nested `cmake --build` of the header
# self-containment target; under TSan that doubles as a (pointless) full
# recompile, so the TSan phases exclude it and keep lint.tree.
case "${sanitizers}" in
  "")
    run_phase "address,undefined" "$@"
    run_phase thread -E '^lint\.headers$' "$@"
    ;;
  thread)
    run_phase thread -E '^lint\.headers$' "$@"
    ;;
  thread-fast)
    run_phase thread -L concurrency "$@"
    ;;
  resilience)
    run_phase "address,undefined" -L resilience "$@"
    run_phase thread -L resilience "$@"
    ;;
  *)
    run_phase "${sanitizers}" "$@"
    ;;
esac
