#!/usr/bin/env bash
# Build WFEns with AddressSanitizer + UndefinedBehaviorSanitizer and run the
# tier-1 test suite under them.
#
#   tools/check_sanitize.sh [sanitizers] [ctest-args...]
#
# The first argument (default "address,undefined") feeds the WFE_SANITIZE
# CMake cache variable; everything after it is passed to ctest. The
# instrumented tree lives in build-sanitize/ so it never disturbs the
# regular build/.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
sanitizers="${1:-address,undefined}"
shift || true

build_dir="${repo_root}/build-sanitize"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DWFE_SANITIZE="${sanitizers}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${build_dir}" -j

# abort_on_error=0: let gtest report which test tripped the sanitizer.
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}"

ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)" "$@"
