#!/usr/bin/env sh
# Regenerate the checked-in golden traces under tests/golden/data/.
#
# Run this after an *intentional* change to the executor model, the fault
# layer, the obs emission sites, or the exporter formatting — then review
# the golden diff like any other code change before committing it.
#
# Usage: tools/update_golden.sh [build-dir]   (default: ./build)
set -eu

build_dir="${1:-build}"
binary="$build_dir/tests/test_golden"

if [ ! -x "$binary" ]; then
  echo "error: $binary not built (cmake --build $build_dir --target test_golden)" >&2
  exit 1
fi

WFENS_UPDATE_GOLDEN=1 "$binary" --gtest_brief=1
echo "goldens updated; review with: git diff tests/golden/data"
