// wfens_report: offline assessment of a WFET trace artifact.
//
// Prints the Table 1 traditional metrics, the steady-state stage profile,
// the non-overlapped in situ step sigma* (Eq. 1) and the computational
// efficiency E (Eq. 3) for every member found in the trace — everything
// the paper derives that does not require the placement. With
// --spec <file.wfes> (saved by `wfens_run --save-spec`) the placement is
// known too, so the full indicator chain (Eqs. 5-8) and the ensemble
// objective F (Eq. 9) are reported as well.
//
// Usage:  wfens_report <trace.wfet|trace.jsonl> [--csv] [--spec spec.wfes]
//                      [--timeline] [--width N]
//
// --timeline renders an ASCII Gantt chart of the execution instead of the
// metric tables. It accepts either trace source: a WFET stage trace (one
// track per component, stage mnemonics as glyphs) or an obs .jsonl span
// log saved by `wfens_run --trace-out` (tracks as recorded, including
// engine/scheduler/DTL activity). --width sets the plot width in columns.
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/efficiency.hpp"
#include "core/insitu.hpp"
#include "metrics/steady_state.hpp"
#include "metrics/trace_io.hpp"
#include "metrics/traditional.hpp"
#include "obs/export.hpp"
#include "obs/timeline.hpp"
#include "runtime/bridge.hpp"
#include "runtime/spec_io.hpp"
#include "support/error.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Adapt a WFET stage trace to the Gantt timeline: one track per component
/// in component order, labels = stage mnemonics (S, W, R, A, IS, IA, ...).
wfe::obs::Timeline timeline_from_trace(const wfe::met::Trace& trace) {
  wfe::obs::Timeline timeline;
  for (const wfe::met::ComponentId& id : trace.components()) {
    for (const wfe::met::StageRecord& r : trace.for_component(id)) {
      timeline.add(id.str(), wfe::met::stage_mnemonic(r.kind), r.start,
                   r.end);
    }
  }
  return timeline;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wfe;
  if (argc < 2) {
    std::cerr << "usage: wfens_report <trace.wfet|trace.jsonl> [--csv] "
                 "[--spec spec.wfes] [--timeline] [--width N]\n";
    return 2;
  }
  bool csv = false;
  bool timeline = false;
  int width = 72;
  std::string spec_path;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--csv") {
      csv = true;
    } else if (arg == "--timeline") {
      timeline = true;
    } else if (arg == "--width" && i + 1 < argc) {
      width = std::atoi(argv[++i]);
    } else if (arg == "--spec" && i + 1 < argc) {
      spec_path = argv[++i];
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }
  const std::string trace_path = argv[1];

  try {
    if (ends_with(trace_path, ".jsonl")) {
      // An obs span log supports only the timeline view.
      if (!timeline) {
        std::cerr << "a .jsonl span log needs --timeline (metric tables "
                     "require a .wfet stage trace)\n";
        return 2;
      }
      const obs::RunLog log = obs::read_runlog_jsonl(trace_path);
      std::cout << obs::render_gantt(obs::timeline_from_runlog(log), width);
      return 0;
    }

    const met::Trace trace = met::load_trace(trace_path);
    if (timeline) {
      std::cout << obs::render_gantt(timeline_from_trace(trace), width);
      return 0;
    }
    if (csv) {
      std::cout << met::trace_to_csv(trace);
      return 0;
    }

    std::cout << "trace: " << trace.size() << " stage records, "
              << trace.members().size() << " members\n\n";

    Table components({"component", "exec time", "LLC miss ratio",
                      "memory intensity", "IPC"});
    for (const auto& m : met::all_component_metrics(trace)) {
      components.add_row({m.component.str(), human_seconds(m.execution_time),
                          fixed(m.llc_miss_ratio, 4),
                          sci(m.memory_intensity, 2), fixed(m.ipc, 3)});
    }
    std::cout << "Table 1 component metrics:\n" << components.render();

    Table members({"member", "S*", "W*", "R*^j", "A*^j", "sigma*", "E",
                   "makespan"});
    for (std::uint32_t member : trace.members()) {
      const core::MemberSteady steady =
          met::member_steady_state(trace, member);
      std::vector<std::string> rs, as;
      for (const auto& a : steady.analyses) {
        rs.push_back(human_seconds(a.r));
        as.push_back(human_seconds(a.a));
      }
      members.add_row({strprintf("EM%u", member + 1),
                       human_seconds(steady.sim.s),
                       human_seconds(steady.sim.w), join(rs, " "),
                       join(as, " "),
                       human_seconds(core::non_overlapped_segment(steady)),
                       fixed(core::computational_efficiency(steady), 3),
                       human_seconds(met::member_makespan(trace, member))});
    }
    std::cout << "\nmember model (Eqs. 1 and 3):\n" << members.render();
    std::cout << "\nensemble makespan: "
              << human_seconds(met::ensemble_makespan(trace)) << "\n";

    if (!spec_path.empty()) {
      // With the placement spec the full indicator chain is computable.
      rt::EnsembleSpec spec = rt::load_spec(spec_path);
      rt::ExecutionResult result;
      result.trace = trace;
      result.n_steps = trace.step_count({trace.members().front(), -1});
      const rt::Assessment a = rt::assess(spec, result);
      Table indicators({"stage", "F(P)"});
      for (const auto kind :
           {core::IndicatorKind::kU, core::IndicatorKind::kUP,
            core::IndicatorKind::kUA, core::IndicatorKind::kUAP}) {
        indicators.add_row(
            {core::to_string(kind), sci(a.objective(kind), 3)});
      }
      std::cout << "\nindicator chain for spec '" << spec.name
                << "' (M = " << a.total_nodes << "):\n"
                << indicators.render();
    }
    return 0;
  } catch (const wfe::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
