// wfens_report: offline assessment of a WFET trace artifact.
//
// Prints the Table 1 traditional metrics, the steady-state stage profile,
// the non-overlapped in situ step sigma* (Eq. 1) and the computational
// efficiency E (Eq. 3) for every member found in the trace — everything
// the paper derives that does not require the placement. With
// --spec <file.wfes> (saved by `wfens_run --save-spec`) the placement is
// known too, so the full indicator chain (Eqs. 5-8) and the ensemble
// objective F (Eq. 9) are reported as well.
//
// Usage:  wfens_report <trace.wfet> [--csv] [--spec spec.wfes]
#include <iostream>
#include <string>

#include "core/efficiency.hpp"
#include "core/insitu.hpp"
#include "metrics/steady_state.hpp"
#include "metrics/trace_io.hpp"
#include "metrics/traditional.hpp"
#include "runtime/bridge.hpp"
#include "runtime/spec_io.hpp"
#include "support/error.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace wfe;
  if (argc < 2) {
    std::cerr
        << "usage: wfens_report <trace.wfet> [--csv] [--spec spec.wfes]\n";
    return 2;
  }
  bool csv = false;
  std::string spec_path;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--csv") {
      csv = true;
    } else if (arg == "--spec" && i + 1 < argc) {
      spec_path = argv[++i];
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }

  try {
    const met::Trace trace = met::load_trace(argv[1]);
    if (csv) {
      std::cout << met::trace_to_csv(trace);
      return 0;
    }

    std::cout << "trace: " << trace.size() << " stage records, "
              << trace.members().size() << " members\n\n";

    Table components({"component", "exec time", "LLC miss ratio",
                      "memory intensity", "IPC"});
    for (const auto& m : met::all_component_metrics(trace)) {
      components.add_row({m.component.str(), human_seconds(m.execution_time),
                          fixed(m.llc_miss_ratio, 4),
                          sci(m.memory_intensity, 2), fixed(m.ipc, 3)});
    }
    std::cout << "Table 1 component metrics:\n" << components.render();

    Table members({"member", "S*", "W*", "R*^j", "A*^j", "sigma*", "E",
                   "makespan"});
    for (std::uint32_t member : trace.members()) {
      const core::MemberSteady steady =
          met::member_steady_state(trace, member);
      std::vector<std::string> rs, as;
      for (const auto& a : steady.analyses) {
        rs.push_back(human_seconds(a.r));
        as.push_back(human_seconds(a.a));
      }
      members.add_row({strprintf("EM%u", member + 1),
                       human_seconds(steady.sim.s),
                       human_seconds(steady.sim.w), join(rs, " "),
                       join(as, " "),
                       human_seconds(core::non_overlapped_segment(steady)),
                       fixed(core::computational_efficiency(steady), 3),
                       human_seconds(met::member_makespan(trace, member))});
    }
    std::cout << "\nmember model (Eqs. 1 and 3):\n" << members.render();
    std::cout << "\nensemble makespan: "
              << human_seconds(met::ensemble_makespan(trace)) << "\n";

    if (!spec_path.empty()) {
      // With the placement spec the full indicator chain is computable.
      rt::EnsembleSpec spec = rt::load_spec(spec_path);
      rt::ExecutionResult result;
      result.trace = trace;
      result.n_steps = trace.step_count({trace.members().front(), -1});
      const rt::Assessment a = rt::assess(spec, result);
      Table indicators({"stage", "F(P)"});
      for (const auto kind :
           {core::IndicatorKind::kU, core::IndicatorKind::kUP,
            core::IndicatorKind::kUA, core::IndicatorKind::kUAP}) {
        indicators.add_row(
            {core::to_string(kind), sci(a.objective(kind), 3)});
      }
      std::cout << "\nindicator chain for spec '" << spec.name
                << "' (M = " << a.total_nodes << "):\n"
                << indicators.render();
    }
    return 0;
  } catch (const wfe::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
