#include "campaign.hpp"

#include <chrono>
#include <utility>

#include "sched/batch_evaluator.hpp"
#include "sched/scheduler.hpp"
#include "support/str.hpp"
#include "workload/presets.hpp"

namespace wfe::bench {

std::vector<CampaignUnit> campaign_units() {
  std::vector<CampaignUnit> units;
  units.push_back({"table2", "Table 2: one-analysis configurations",
                   wl::paper_table2(), 37});
  units.push_back({"table4", "Table 4: two-analysis configurations",
                   wl::paper_table4(), 37});
  units.push_back({"set1", "Figures 3-5/8: the C1.x sweep",
                   wl::paper_set1(), 37});
  return units;
}

std::vector<CampaignUnitResult> run_campaign(
    const std::vector<CampaignUnit>& units, int threads,
    sched::EvalCache* shared) {
  std::vector<CampaignUnitResult> results;
  results.reserve(units.size());
  const auto platform = wl::cori_like_platform();
  for (const CampaignUnit& unit : units) {
    // One evaluator per unit: the local memo covers within-unit repeats,
    // the shared store carries scores across units and processes.
    sched::BatchEvaluator evaluator(platform, threads);
    evaluator.attach_shared_cache(shared);

    std::vector<rt::EnsembleSpec> specs;
    specs.reserve(unit.configs.size());
    for (const wl::NamedConfig& c : unit.configs) specs.push_back(c.spec);

    const auto t0 = std::chrono::steady_clock::now();
    const auto scores = evaluator.score_specs(specs, unit.probe_steps);
    const auto t1 = std::chrono::steady_clock::now();

    CampaignUnitResult result;
    result.unit = unit.name;
    result.rows.reserve(scores.size());
    for (std::size_t i = 0; i < scores.size(); ++i) {
      result.rows.push_back({unit.configs[i].name, scores[i].feasible,
                             scores[i].cached, scores[i].eval});
    }
    result.evaluations = evaluator.evaluations();
    result.cache_hits = evaluator.cache_hits();
    result.seconds = std::chrono::duration<double>(t1 - t0).count();
    results.push_back(std::move(result));
  }
  return results;
}

std::vector<PlanRow> run_plan_campaign(
    const std::vector<std::string>& schedulers, int threads,
    sched::EvalCache* shared) {
  // The standard demand set: small enough for exhaustive/bai enumeration,
  // varied enough that the shared tier has real cross-shape misses.
  struct Demand {
    int members;
    int analyses;
    int pool;
  };
  const std::vector<Demand> demands = {{2, 1, 3}, {2, 2, 4}, {3, 1, 4}};

  const auto platform = wl::cori_like_platform();
  std::vector<PlanRow> rows;
  rows.reserve(schedulers.size() * demands.size());
  for (const std::string& name : schedulers) {
    const auto scheduler = sched::make_scheduler(name);
    for (const Demand& d : demands) {
      const auto shape =
          sched::EnsembleShape::paper_like(d.members, d.analyses);
      sched::PlanOptions options;
      options.threads = threads;
      options.shared_cache = shared;

      const auto t0 = std::chrono::steady_clock::now();
      const sched::Schedule schedule =
          scheduler->plan(shape, platform, {d.pool}, options);
      const auto t1 = std::chrono::steady_clock::now();

      sched::Evaluator evaluator(platform);
      PlanRow row;
      row.scheduler = schedule.scheduler;
      row.shape = strprintf("paper-%dx%d/pool%d", d.members, d.analyses,
                            d.pool);
      row.objective = evaluator.score(schedule.spec).objective;
      row.evaluations = schedule.evaluations;
      row.cache_hits = schedule.cache_hits;
      row.shared_hits = schedule.shared_hits;
      row.samples = schedule.samples;
      row.seconds = std::chrono::duration<double>(t1 - t0).count();
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

}  // namespace wfe::bench
