#include "campaign.hpp"

#include <chrono>
#include <utility>

#include "sched/batch_evaluator.hpp"
#include "workload/presets.hpp"

namespace wfe::bench {

std::vector<CampaignUnit> campaign_units() {
  std::vector<CampaignUnit> units;
  units.push_back({"table2", "Table 2: one-analysis configurations",
                   wl::paper_table2(), 37});
  units.push_back({"table4", "Table 4: two-analysis configurations",
                   wl::paper_table4(), 37});
  units.push_back({"set1", "Figures 3-5/8: the C1.x sweep",
                   wl::paper_set1(), 37});
  return units;
}

std::vector<CampaignUnitResult> run_campaign(
    const std::vector<CampaignUnit>& units, int threads,
    sched::EvalCache* shared) {
  std::vector<CampaignUnitResult> results;
  results.reserve(units.size());
  const auto platform = wl::cori_like_platform();
  for (const CampaignUnit& unit : units) {
    // One evaluator per unit: the local memo covers within-unit repeats,
    // the shared store carries scores across units and processes.
    sched::BatchEvaluator evaluator(platform, threads);
    evaluator.attach_shared_cache(shared);

    std::vector<rt::EnsembleSpec> specs;
    specs.reserve(unit.configs.size());
    for (const wl::NamedConfig& c : unit.configs) specs.push_back(c.spec);

    const auto t0 = std::chrono::steady_clock::now();
    const auto scores = evaluator.score_specs(specs, unit.probe_steps);
    const auto t1 = std::chrono::steady_clock::now();

    CampaignUnitResult result;
    result.unit = unit.name;
    result.rows.reserve(scores.size());
    for (std::size_t i = 0; i < scores.size(); ++i) {
      result.rows.push_back({unit.configs[i].name, scores[i].feasible,
                             scores[i].cached, scores[i].eval});
    }
    result.evaluations = evaluator.evaluations();
    result.cache_hits = evaluator.cache_hits();
    result.seconds = std::chrono::duration<double>(t1 - t0).count();
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace wfe::bench
