// Scheduler comparison — the paper's future-work direction, measured.
//
// For several ensemble shapes and node budgets, compare:
//   exhaustive       — oracle: enumerate + replay every placement
//   greedy-colocate  — indicator-guided constructive heuristic (no replays)
//   greedy-refine    — constructive seed + replay-guided hill climb
//   round-robin      — scatter baseline (typical batch-scheduler default)
//   random           — seeded random feasible placement
// reporting the achieved F(P^{U,A,P}), the ensemble makespan, and the
// planning cost in simulated replays (cache hits in parentheses).
//
// `--threads N` parallelizes the replay-driven schedulers' candidate
// scoring; every number in the table is identical for any N.
#include "bench_common.hpp"

#include <cstdlib>
#include <cstring>

#include "sched/evaluator.hpp"
#include "sched/scheduler.hpp"
#include "support/error.hpp"

int main(int argc, char** argv) {
  using namespace wfe;

  int threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    }
  }
  if (threads < 1) threads = 1;

  bench::print_banner(
      "Scheduler comparison (paper §7, future work)",
      "Indicator-guided scheduling vs baselines across ensemble shapes.\n"
      "Expected shape: greedy-colocate matches the exhaustive oracle's\n"
      "objective on these shapes at zero planning replays, while scatter\n"
      "baselines lose up to ~3x on F(P^{U,A,P}).");

  const auto platform = wl::cori_like_platform();
  sched::Evaluator evaluator(platform);
  const sched::PlanOptions options{.threads = threads};

  struct Case {
    int members, analyses, nodes;
  };
  const Case cases[] = {{1, 1, 2}, {2, 1, 3}, {2, 2, 3}, {3, 1, 3}, {2, 2, 4}};

  Table table({"shape (N x K / nodes)", "scheduler", "F(P^{U,A,P})",
               "ensemble makespan [s]", "nodes used", "planning replays"});
  for (const Case& c : cases) {
    const auto shape = sched::EnsembleShape::paper_like(c.members, c.analyses);
    const sched::ResourceBudget budget{c.nodes};
    for (const char* name : {"exhaustive", "greedy-colocate", "greedy-refine",
                             "round-robin", "random"}) {
      const auto scheduler = sched::make_scheduler(name);
      try {
        const sched::Schedule schedule =
            scheduler->plan(shape, platform, budget, options);
        const sched::Evaluation e = evaluator.score(schedule.spec);
        const std::string replays =
            schedule.cache_hits > 0
                ? strprintf("%zu (+%zu cached)", schedule.evaluations,
                            schedule.cache_hits)
                : strprintf("%zu", schedule.evaluations);
        table.add_row({strprintf("%d x %d / %d", c.members, c.analyses,
                                 c.nodes),
                       name, sci(e.objective, 3),
                       fixed(e.ensemble_makespan * 37.0 / 6.0, 0),
                       strprintf("%d", e.nodes_used), replays});
      } catch (const SpecError&) {
        table.add_row({strprintf("%d x %d / %d", c.members, c.analyses,
                                 c.nodes),
                       name, "infeasible", "-", "-", "-"});
      }
    }
    table.add_separator();
  }
  std::cout << table.render();
  return 0;
}
