// Scheduler comparison — the paper's future-work direction, measured.
//
// For several ensemble shapes and node budgets, compare:
//   exhaustive       — oracle: enumerate + replay every placement
//   greedy-colocate  — indicator-guided constructive heuristic (no replays)
//   round-robin      — scatter baseline (typical batch-scheduler default)
//   random           — seeded random feasible placement
// reporting the achieved F(P^{U,A,P}), the ensemble makespan, and the
// planning cost in simulated replays.
#include "bench_common.hpp"

#include "sched/evaluator.hpp"
#include "sched/scheduler.hpp"
#include "support/error.hpp"

int main() {
  using namespace wfe;
  bench::print_banner(
      "Scheduler comparison (paper §7, future work)",
      "Indicator-guided scheduling vs baselines across ensemble shapes.\n"
      "Expected shape: greedy-colocate matches the exhaustive oracle's\n"
      "objective on these shapes at zero planning replays, while scatter\n"
      "baselines lose up to ~3x on F(P^{U,A,P}).");

  const auto platform = wl::cori_like_platform();
  sched::Evaluator evaluator(platform);

  struct Case {
    int members, analyses, nodes;
  };
  const Case cases[] = {{1, 1, 2}, {2, 1, 3}, {2, 2, 3}, {3, 1, 3}, {2, 2, 4}};

  Table table({"shape (N x K / nodes)", "scheduler", "F(P^{U,A,P})",
               "ensemble makespan [s]", "nodes used", "planning replays"});
  for (const Case& c : cases) {
    const auto shape = sched::EnsembleShape::paper_like(c.members, c.analyses);
    const sched::ResourceBudget budget{c.nodes};
    for (const char* name :
         {"exhaustive", "greedy-colocate", "round-robin", "random"}) {
      const auto scheduler = sched::make_scheduler(name);
      try {
        const sched::Schedule schedule =
            scheduler->plan(shape, platform, budget);
        const sched::Evaluation e = evaluator.score(schedule.spec);
        table.add_row({strprintf("%d x %d / %d", c.members, c.analyses,
                                 c.nodes),
                       name, sci(e.objective, 3),
                       fixed(e.ensemble_makespan * 37.0 / 6.0, 0),
                       strprintf("%d", e.nodes_used),
                       strprintf("%zu", schedule.evaluations)});
      } catch (const SpecError&) {
        table.add_row({strprintf("%d x %d / %d", c.members, c.analyses,
                                 c.nodes),
                       name, "infeasible", "-", "-", "-"});
      }
    }
    table.add_separator();
  }
  std::cout << table.render();
  return 0;
}
