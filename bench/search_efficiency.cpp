// Adaptive search efficiency — fresh replays to equal placement quality.
//
// The claim behind sched::BaiSearch ("bai-search") is that confidence-bound
// sampling finds the same winner as fixed-budget probing while paying for
// far fewer fresh replays: the budget concentrates on the top arms and the
// provably-beaten rest is eliminated after a couple of draws. This bench
// measures that on stochastic scenarios (probe jitter on, multiple seeded
// samples per candidate):
//
//   headline  paper_like(2,1) / pool 3, jitter_cv 0.1, probe_samples 8 —
//             bai-search vs the fixed-budget greedy-refine baseline. Both
//             winners are re-scored with the deterministic full-depth
//             Evaluator; the bench FAILS (exit 1) if bai's winner is worse
//             or if it saved no replays.
//   scale     (full mode) bigger shapes vs fixed-budget exhaustive, where
//             the candidate set grows and elimination pays off hardest.
//
// Writes BENCH_search.json (schema-gated by tools/check_bench_json.py:
// sims_saved_pct must stay positive — >= 30 for a committed full-mode
// report — and objective_delta non-negative). `--quick` runs the headline
// scenario only for the CI bench-smoke job.
#include "bench_common.hpp"

#include <cstdlib>
#include <cstring>
#include <string>

#include "sched/evaluator.hpp"
#include "sched/scheduler.hpp"
#include "support/error.hpp"

namespace {

using namespace wfe;

struct PlanOutcome {
  double objective = 0.0;     // deterministic full-depth score of the winner
  std::size_t fresh = 0;      // fresh probe replays paid
  std::uint64_t samples = 0;  // probe samples issued (fresh + cached)
};

PlanOutcome run_plan(const char* scheduler_name, int members, int analyses,
                     int pool, const sched::PlanOptions& options,
                     const plat::PlatformSpec& platform) {
  const auto shape = sched::EnsembleShape::paper_like(members, analyses);
  const auto scheduler = sched::make_scheduler(scheduler_name);
  const sched::Schedule schedule =
      scheduler->plan(shape, platform, {pool}, options);
  sched::Evaluator evaluator(platform);
  PlanOutcome out;
  out.objective = evaluator.score(schedule.spec).objective;
  out.fresh = schedule.evaluations;
  out.samples = schedule.samples;
  return out;
}

double saved_pct(std::size_t baseline_fresh, std::size_t bai_fresh) {
  if (baseline_fresh == 0) return 0.0;
  return 100.0 *
         (static_cast<double>(baseline_fresh) -
          static_cast<double>(bai_fresh)) /
         static_cast<double>(baseline_fresh);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wfe;

  bool quick = false;
  int threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
      if (threads < 1) threads = 1;
    }
  }

  bench::print_banner(
      "Adaptive search efficiency (bai-search)",
      "Fresh probe replays needed to match fixed-budget placement quality\n"
      "on stochastic scenarios. Expected shape: identical winners, with\n"
      "bai-search eliminating dominated candidates instead of probing them\n"
      "probe_samples times each.");

  const auto platform = wl::cori_like_platform();
  sched::PlanOptions options;
  options.threads = threads;
  options.jitter_cv = 0.1;
  options.probe_samples = 8;

  bench::Stopwatch watch;
  bench::JsonReport report;
  report.add("bench", "search_efficiency");
  report.add("mode", quick ? "quick" : "full");
  report.add("threads", threads);
  report.add("jitter_cv", options.jitter_cv);
  report.add("probe_samples", options.probe_samples);

  // Headline: the paper's 2x1 demand on a 3-node pool. greedy-refine is the
  // fixed-budget baseline (probe_samples seeded draws for every candidate
  // it visits); exhaustive shows the full-enumeration cost for context.
  const PlanOutcome bai =
      run_plan("bai-search", 2, 1, 3, options, platform);
  const PlanOutcome greedy =
      run_plan("greedy-refine", 2, 1, 3, options, platform);
  const PlanOutcome exhaustive =
      run_plan("exhaustive", 2, 1, 3, options, platform);

  const double headline_saved = saved_pct(greedy.fresh, bai.fresh);
  const double objective_delta = bai.objective - greedy.objective;

  Table table({"scenario", "scheduler", "F(P^{U,A,P})", "fresh replays",
               "probe samples"});
  const auto add_outcome = [&table](const std::string& scenario,
                                    const char* name,
                                    const PlanOutcome& outcome) {
    table.add_row({scenario, name, sci(outcome.objective, 6),
                   strprintf("%zu", outcome.fresh),
                   strprintf("%llu", static_cast<unsigned long long>(
                                         outcome.samples))});
  };
  add_outcome("2x1/pool3", "bai-search", bai);
  add_outcome("2x1/pool3", "greedy-refine", greedy);
  add_outcome("2x1/pool3", "exhaustive", exhaustive);

  report.add("baseline_scheduler", "greedy-refine");
  report.add("bai_fresh_sims", bai.fresh);
  report.add("baseline_fresh_sims", greedy.fresh);
  report.add("exhaustive_fresh_sims", exhaustive.fresh);
  report.add("bai_samples", bai.samples);
  report.add("baseline_samples", greedy.samples);
  report.add("sims_saved_pct", headline_saved);
  report.add("bai_objective", bai.objective);
  report.add("baseline_objective", greedy.objective);
  report.add("objective_delta", objective_delta);

  if (!quick) {
    // Scale rows: bigger candidate sets, fixed-budget exhaustive baseline.
    // Elimination grows with the arm count, so the savings should too.
    struct Scale {
      const char* key;
      int members, analyses, pool;
    };
    const Scale scales[] = {{"scale_3x1_pool3", 3, 1, 3},
                            {"scale_2x2_pool4", 2, 2, 4}};
    for (const Scale& s : scales) {
      table.add_separator();
      const PlanOutcome sb = run_plan("bai-search", s.members, s.analyses,
                                      s.pool, options, platform);
      const PlanOutcome se = run_plan("exhaustive", s.members, s.analyses,
                                      s.pool, options, platform);
      const std::string scenario =
          strprintf("%dx%d/pool%d", s.members, s.analyses, s.pool);
      add_outcome(scenario, "bai-search", sb);
      add_outcome(scenario, "exhaustive", se);
      report.add(std::string(s.key) + "_bai_fresh", sb.fresh);
      report.add(std::string(s.key) + "_exhaustive_fresh", se.fresh);
      report.add(std::string(s.key) + "_saved_pct",
                 saved_pct(se.fresh, sb.fresh));
      report.add(std::string(s.key) + "_objective_delta",
                 sb.objective - se.objective);
    }
  }

  std::cout << table.render();
  std::cout << strprintf(
      "\nheadline: bai-search %zu fresh replays vs greedy-refine %zu "
      "(%.1f%% saved), objective delta %+.3e\n",
      bai.fresh, greedy.fresh, headline_saved, objective_delta);

  report.add("wall_s", watch.seconds());
  report.write("BENCH_search.json");

  // Acceptance gate: adaptive search must match (or beat) the fixed-budget
  // winner while actually saving replays — otherwise the bench itself is
  // the regression signal, not just the committed JSON.
  if (objective_delta < 0.0) {
    std::cerr << "FAIL: bai-search winner objective below the fixed-budget "
                 "baseline\n";
    return 1;
  }
  if (headline_saved <= 0.0) {
    std::cerr << "FAIL: bai-search saved no fresh replays vs the "
                 "fixed-budget baseline\n";
    return 1;
  }
  return 0;
}
