// Extension — heterogeneous analyses per member.
//
// The paper's framework "supports coupling to different types of analyses
// simultaneously" but its experiments use identical analyses (§3.4,
// assumption 2). This experiment couples one heavy (bipartite-eigen-class)
// and one light (subsampled, 4x cheaper) analysis to each simulation and
// shows what the member-level model reports: per-coupling regimes diverge,
// the light coupling idles, and Eq. (3) averages the imbalance into a
// lower member efficiency than either homogeneous alternative.
#include "bench_common.hpp"

#include "core/insitu.hpp"

int main() {
  using namespace wfe;
  bench::print_banner(
      "Extension: heterogeneous analyses",
      "One heavy + one light analysis per member vs the homogeneous\n"
      "alternatives, C2.8-style placement (everything co-located).");

  rt::SimulatedExecutor exec(wl::cori_like_platform());

  auto make_spec = [&](int light_count) {
    // light_count of the 2 analyses use the 4x cheaper profile.
    rt::EnsembleSpec spec;
    spec.name = "hetero";
    spec.n_steps = 8;
    for (int i = 0; i < 2; ++i) {
      rt::MemberSpec m;
      m.sim = wl::gltph_like_simulation({i});
      for (int j = 0; j < 2; ++j) {
        rt::AnalysisSpec a = wl::bipartite_like_analysis({i});
        if (j < light_count) {
          a.cost.subsample_stride *= 2;  // 4x fewer matrix elements
        }
        m.analyses.push_back(std::move(a));
      }
      spec.members.push_back(std::move(m));
    }
    return spec;
  };

  Table table({"analyses", "R+A (coupling 1) [s]", "R+A (coupling 2) [s]",
               "regime 1", "regime 2", "sigma* [s]", "E", "F(P^{U,A,P})"});
  const char* labels[] = {"heavy + heavy", "light + heavy", "light + light"};
  for (int light = 0; light <= 2; ++light) {
    const auto spec = make_spec(light);
    const auto a = rt::assess(spec, exec.run(spec));
    const auto& m = a.members[0];
    table.add_row(
        {labels[light],
         fixed(m.steady.analyses[0].r + m.steady.analyses[0].a, 2),
         fixed(m.steady.analyses[1].r + m.steady.analyses[1].a, 2),
         core::to_string(core::classify_coupling(m.steady, 0)),
         core::to_string(core::classify_coupling(m.steady, 1)),
         fixed(m.sigma, 2), fixed(m.efficiency, 3),
         sci(a.objective(core::IndicatorKind::kUAP), 3)});
  }
  std::cout << table.render();
  return 0;
}
