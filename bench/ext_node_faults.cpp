// Extension — node-level fault domains: provisioning against node death.
//
// The paper's provisioning study assumes nodes stay up; at Cori scale they
// do not. This experiment sweeps per-node MTBF (as a fraction of the
// fault-free makespan) x chunk replication factor x spare-node headroom
// over a three-member ensemble whose platform has one node with scheduled
// downtime mid-campaign (node 0, the kind of planned maintenance a batch
// system advertises). Every cell plans the placement twice — fault-
// obliviously and risk-aware (--risk-aware) — then executes both under
// injection with online re-planning. The oblivious planner places
// canonically, i.e. straight onto the doomed node, and pays a guaranteed
// migration; the risk-aware planner maps the same canonical placement off
// it and charges candidates that cannot avoid it. Reported per cell: the
// analytic expected makespan of each placement under the failure
// distribution, the realized makespan of the injected run, and the
// recovery work (migrations, re-plans, chunks lost). The headline check,
// enforced by tools/check_bench_json.py on the emitted JSON: at one or
// more MTBF points the risk-aware placement must beat the fault-oblivious
// one on expected makespan.
#include "bench_common.hpp"

#include <algorithm>
#include <string>

#include "metrics/traditional.hpp"
#include "resilience/fault_spec.hpp"
#include "sched/evaluator.hpp"
#include "sched/replanner.hpp"
#include "sched/risk.hpp"
#include "sched/scheduler.hpp"

namespace {

using namespace wfe;

struct PlannedRun {
  double expected_makespan = 0.0;  ///< analytic, under the risk model
  double realized_makespan = 0.0;  ///< injected run, post-recovery
  int nodes_used = 0;
  std::uint64_t migrations = 0;
  std::uint64_t replans = 0;
  std::uint64_t chunks_lost = 0;
  bool complete = true;
};

PlannedRun plan_and_run(const sched::EnsembleShape& shape,
                        const plat::PlatformSpec& platform,
                        const sched::ResourceBudget& budget,
                        const sched::PlanOptions& plan_options,
                        const rt::SimulatedOptions& run_options) {
  const sched::Schedule schedule =
      sched::make_scheduler("exhaustive")
          ->plan(shape, platform, budget, plan_options);

  // Analytic expectation of the chosen placement (always under the active
  // risk model, so oblivious and risk-aware placements are comparable).
  sched::PlanOptions risk_on = plan_options;
  risk_on.risk_aware = true;
  const sched::RiskModel risk = sched::RiskModel::of(risk_on, shape.n_steps);
  const sched::Evaluator prober(platform,
                                sched::probe_scenario(plan_options));
  const sched::Evaluation eval =
      prober.score(schedule.spec, plan_options.probe_steps);

  sched::Assignment placement;
  for (const auto& m : schedule.spec.members) {
    placement.push_back(*m.sim.nodes.begin());
    for (const auto& a : m.analyses) placement.push_back(*a.nodes.begin());
  }

  PlannedRun out;
  out.nodes_used = eval.nodes_used;
  out.expected_makespan = risk.expected_makespan(
      eval.ensemble_makespan, plan_options.probe_steps, eval.nodes_used,
      sched::doomed_used_of(risk, placement));

  // Injected execution with the online re-planner wired in.
  rt::SimulatedOptions options = run_options;
  sched::RePlanner replanner(shape, platform, plan_options);
  replanner.set_assignment(placement);
  options.migrate = replanner.hook();
  rt::SimulatedExecutor exec(platform, options);
  const rt::ExecutionResult r = exec.run(schedule.spec);
  for (const met::StageRecord& rec : r.trace.records()) {
    out.realized_makespan = std::max(out.realized_makespan, rec.end);
  }
  out.migrations = r.failure_summary.migrations;
  out.replans = replanner.replans();
  out.chunks_lost = r.failure_summary.chunks_lost;
  out.complete = r.failure_summary.complete();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wfe;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  bench::print_banner(
      "Extension: node fault domains (MTBF x replication x spares)",
      "Fatal node crashes with online re-planning. Each cell plans the\n"
      "same demand fault-obliviously and risk-aware, then executes both\n"
      "under injection; 'expected' is the analytic makespan under the\n"
      "failure distribution, 'realized' the injected run's.");

  const auto platform = wl::cori_like_platform();
  const std::uint64_t steps = quick ? 8 : 16;
  const auto shape = sched::EnsembleShape::paper_like(3, 1, steps);
  const sched::ResourceBudget budget{6};

  // Fault-free reference makespan sets the MTBF scale.
  sched::PlanOptions clean_options;
  clean_options.threads = 2;
  const sched::Schedule clean = sched::make_scheduler("exhaustive")
                                    ->plan(shape, platform, budget,
                                           clean_options);
  rt::SimulatedExecutor clean_exec(platform);
  const rt::ExecutionResult clean_run = clean_exec.run(clean.spec);
  double base_makespan = 0.0;
  for (const met::StageRecord& rec : clean_run.trace.records()) {
    base_makespan = std::max(base_makespan, rec.end);
  }
  std::cout << "Fault-free makespan: " << strprintf("%.1f s", base_makespan)
            << "\n\n";

  const std::vector<double> mtbf_fracs =
      quick ? std::vector<double>{4.0, 0.25}
            : std::vector<double>{8.0, 2.0, 0.5, 0.25, 0.125};
  const std::vector<int> replications = {1, 2};
  const std::vector<int> spares = quick ? std::vector<int>{0}
                                        : std::vector<int>{0, 1};

  Table table({"MTBF/makespan", "repl", "spare", "planner", "nodes",
               "expected [s]", "realized [s]", "migr", "replans",
               "chunks lost", "done"});
  bench::Stopwatch watch;
  int cells = 0;
  int risk_wins = 0;
  double best_gain_pct = 0.0;
  std::uint64_t migrations_total = 0;
  std::uint64_t chunks_lost_total = 0;

  for (const double frac : mtbf_fracs) {
    const double mtbf = frac * base_makespan;
    for (const int repl : replications) {
      for (const int spare : spares) {
        sched::PlanOptions plan_options;
        plan_options.threads = 2;
        plan_options.faults = wl::fatal_node_crashes(mtbf);
        // Scheduled maintenance: node 0 goes down for good mid-campaign.
        plan_options.faults.node_down.push_back(
            {0, 0.35 * base_makespan});
        plan_options.recovery.kind = res::RecoveryKind::kCheckpointRestart;
        plan_options.recovery.checkpoint_period = 3;
        plan_options.recovery.chunk_replication = repl;
        plan_options.spare_nodes = spare;

        rt::SimulatedOptions run_options;
        run_options.faults = plan_options.faults;
        run_options.recovery = plan_options.recovery;

        PlannedRun results[2];
        for (const bool risk_aware : {false, true}) {
          sched::PlanOptions o = plan_options;
          o.risk_aware = risk_aware;
          results[risk_aware ? 1 : 0] =
              plan_and_run(shape, platform, budget, o, run_options);
        }
        const PlannedRun& obl = results[0];
        const PlannedRun& risk = results[1];
        ++cells;
        migrations_total += obl.migrations + risk.migrations;
        chunks_lost_total += obl.chunks_lost + risk.chunks_lost;
        if (risk.expected_makespan < obl.expected_makespan) {
          ++risk_wins;
          best_gain_pct = std::max(
              best_gain_pct, 100.0 * (obl.expected_makespan -
                                      risk.expected_makespan) /
                                 obl.expected_makespan);
        }
        for (const bool risk_aware : {false, true}) {
          const PlannedRun& r = results[risk_aware ? 1 : 0];
          table.add_row(
              {strprintf("%.2f", frac), strprintf("%d", repl),
               strprintf("%d", spare),
               risk_aware ? "risk-aware" : "oblivious",
               strprintf("%d", r.nodes_used),
               strprintf("%.1f", r.expected_makespan),
               strprintf("%.1f", r.realized_makespan),
               strprintf("%llu",
                         static_cast<unsigned long long>(r.migrations)),
               strprintf("%llu",
                         static_cast<unsigned long long>(r.replans)),
               strprintf("%llu",
                         static_cast<unsigned long long>(r.chunks_lost)),
               r.complete ? "yes" : "no"});
        }
      }
    }
  }
  std::cout << table.render();
  std::cout << "\nRisk-aware placements beat fault-oblivious ones on "
               "expected makespan in "
            << risk_wins << "/" << cells << " cells (best gain "
            << strprintf("%.1f%%", best_gain_pct) << ").\n";

  bench::JsonReport report;
  report.add("bench", "node_faults");
  report.add("mode", quick ? "quick" : "full");
  report.add("mtbf_points", static_cast<int>(mtbf_fracs.size()));
  report.add("cells", cells);
  report.add("risk_aware_wins", risk_wins);
  report.add("best_expected_gain_pct", best_gain_pct);
  report.add("migrations_total", migrations_total);
  report.add("chunks_lost_total", chunks_lost_total);
  report.add("base_makespan_s", base_makespan);
  report.add("wall_s", watch.seconds());
  report.write("BENCH_node_faults.json");
  return 0;
}
