// Figure 3 / Table 1 — traditional metrics at the ensemble-component level
// for every configuration of Table 2: execution time, LLC miss ratio,
// memory intensity, instructions per cycle.
#include "bench_common.hpp"

#include "metrics/traditional.hpp"

int main() {
  using namespace wfe;
  bench::print_banner(
      "Figure 3 (with Table 1 definitions)",
      "Component-level metrics across the Table 2 configurations.\n"
      "Expected shape: the co-location-free baseline Cf has the lowest\n"
      "miss ratios; analysis/analysis sharing (C1.1, C1.4) misses more\n"
      "than simulation/simulation sharing (C1.2); heterogeneous sharing\n"
      "(C1.3, C1.5 members) misses most; analyses are far more\n"
      "memory-intensive than simulations throughout.");

  Table table({"config", "component", "exec time [s]", "LLC miss ratio",
               "memory intensity", "IPC"});
  for (const auto& run : bench::run_set(wl::paper_table2())) {
    for (const auto& m : met::all_component_metrics(run.result.trace)) {
      table.add_row({run.config.name, m.component.str(),
                     fixed(m.execution_time, 1), fixed(m.llc_miss_ratio, 4),
                     sci(m.memory_intensity, 2), fixed(m.ipc, 3)});
    }
    table.add_separator();
  }
  std::cout << table.render();
  return 0;
}
