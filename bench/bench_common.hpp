// Shared helpers for the benchmark binaries: run the paper configurations
// once and hand rows to table printers.
#pragma once

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "runtime/bridge.hpp"
#include "runtime/simulated_executor.hpp"
#include "support/str.hpp"
#include "support/table.hpp"
#include "workload/paper_configs.hpp"
#include "workload/presets.hpp"

namespace wfe::bench {

struct ConfigRun {
  wl::NamedConfig config;
  rt::ExecutionResult result;
  rt::Assessment assessment;
};

/// Run every configuration of a set on the (given) platform.
inline std::vector<ConfigRun> run_set(
    const std::vector<wl::NamedConfig>& set,
    const plat::PlatformSpec& platform = wl::cori_like_platform()) {
  rt::SimulatedExecutor exec(platform);
  std::vector<ConfigRun> out;
  out.reserve(set.size());
  for (const auto& c : set) {
    rt::ExecutionResult result = exec.run(c.spec);
    rt::Assessment assessment = rt::assess(c.spec, result);
    out.push_back({c, std::move(result), std::move(assessment)});
  }
  return out;
}

/// Print a header naming the paper artifact this binary regenerates.
inline void print_banner(const std::string& artifact,
                         const std::string& description) {
  std::cout << "==================================================\n"
            << "WFEns reproduction - " << artifact << "\n"
            << description << "\n"
            << "Platform: modelled Cori-like cluster (simulated mode)\n"
            << "==================================================\n\n";
}

}  // namespace wfe::bench
