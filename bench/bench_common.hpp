// Shared helpers for the benchmark binaries: run the paper configurations
// once and hand rows to table printers.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "runtime/bridge.hpp"
#include "runtime/simulated_executor.hpp"
#include "support/str.hpp"
#include "support/table.hpp"
#include "workload/paper_configs.hpp"
#include "workload/presets.hpp"

namespace wfe::bench {

struct ConfigRun {
  wl::NamedConfig config;
  rt::ExecutionResult result;
  rt::Assessment assessment;
};

/// Run every configuration of a set on the (given) platform.
inline std::vector<ConfigRun> run_set(
    const std::vector<wl::NamedConfig>& set,
    const plat::PlatformSpec& platform = wl::cori_like_platform()) {
  rt::SimulatedExecutor exec(platform);
  std::vector<ConfigRun> out;
  out.reserve(set.size());
  for (const auto& c : set) {
    rt::ExecutionResult result = exec.run(c.spec);
    rt::Assessment assessment = rt::assess(c.spec, result);
    out.push_back({c, std::move(result), std::move(assessment)});
  }
  return out;
}

/// Monotonic wall-clock stopwatch for throughput numbers.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Machine-readable benchmark report: a flat, insertion-ordered JSON
/// object written next to the binary (BENCH_*.json) so perf regressions
/// can be diffed by scripts instead of by eyeballing tables. Values are
/// emitted verbatim; use the typed add() overloads to stay valid JSON.
class JsonReport {
 public:
  void add(const std::string& key, const std::string& value) {
    upsert(key, "\"" + value + "\"");
  }
  void add(const std::string& key, const char* value) {
    add(key, std::string(value));
  }
  void add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    upsert(key, buf);
  }
  /// One integral overload (counts, thread counts, event totals): distinct
  /// overloads for uint64/size_t would collide on LP64 platforms.
  template <typename T,
            typename = std::enable_if_t<std::is_integral_v<T>>>
  void add(const std::string& key, T value) {
    upsert(key, std::to_string(value));
  }
  /// Pre-rendered JSON value (an array or nested object) emitted verbatim
  /// under `key` — the caller is responsible for its validity. Used by
  /// bench_micro to attach its per-benchmark results array.
  void add_raw(const std::string& key, std::string json_value) {
    upsert(key, std::move(json_value));
  }

  /// Load a report previously written by render() so a bench can MERGE its
  /// series into a shared BENCH_*.json instead of clobbering the other
  /// benches' numbers (bench_lp_scaling adds its lp_* series to
  /// BENCH_engine.json this way). Only the flat one-line-per-key format
  /// render() emits is understood — add_raw() multi-line values (the
  /// bench_micro array) do not round-trip. Returns false and leaves the
  /// report empty when `path` is missing or holds no entries.
  bool load(const std::string& path) {
    entries_.clear();
    std::ifstream in(path);
    if (!in) return false;
    std::string line;
    while (std::getline(in, line)) {
      const std::size_t q0 = line.find('"');
      if (q0 == std::string::npos) continue;  // "{" / "}" / blank
      const std::size_t q1 = line.find('"', q0 + 1);
      if (q1 == std::string::npos) continue;
      const std::size_t colon = line.find(':', q1);
      if (colon == std::string::npos) continue;
      std::size_t b = line.find_first_not_of(" \t", colon + 1);
      if (b == std::string::npos) continue;
      std::size_t e = line.find_last_not_of(" \t");
      if (line[e] == ',') --e;
      entries_.emplace_back(line.substr(q0 + 1, q1 - q0 - 1),
                            line.substr(b, e - b + 1));
    }
    return !entries_.empty();
  }

  std::string render() const {
    std::string out = "{\n";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      out += "  \"" + entries_[i].first + "\": " + entries_[i].second;
      out += (i + 1 < entries_.size()) ? ",\n" : "\n";
    }
    out += "}\n";
    return out;
  }

  /// Write to `path` and tell the user where the numbers went.
  void write(const std::string& path) const {
    std::ofstream out(path);
    out << render();
    std::cout << "\nWrote " << path << "\n";
  }

 private:
  /// Replace an existing key in place (keeping its position) or append.
  /// Makes merge-style benches idempotent across re-runs.
  void upsert(const std::string& key, std::string rendered) {
    for (auto& entry : entries_) {
      if (entry.first == key) {
        entry.second = std::move(rendered);
        return;
      }
    }
    entries_.emplace_back(key, std::move(rendered));
  }

  std::vector<std::pair<std::string, std::string>> entries_;
};

/// Print a header naming the paper artifact this binary regenerates.
inline void print_banner(const std::string& artifact,
                         const std::string& description) {
  std::cout << "==================================================\n"
            << "WFEns reproduction - " << artifact << "\n"
            << description << "\n"
            << "Platform: modelled Cori-like cluster (simulated mode)\n"
            << "==================================================\n\n";
}

}  // namespace wfe::bench
