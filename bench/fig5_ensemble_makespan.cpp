// Figure 5 — workflow-ensemble makespan (the maximum member makespan) per
// configuration, for both Table 2 and Table 4 sets.
#include "bench_common.hpp"

int main() {
  using namespace wfe;
  bench::print_banner(
      "Figure 5",
      "Ensemble makespans (max member makespan) across all paper\n"
      "configurations. Expected shape: C1.5 minimal in set 1 (tied with\n"
      "C1.3, whose first member is structurally identical); C2.8 minimal\n"
      "in set 2.");

  Table table({"config", "members", "nodes (M)", "ensemble makespan [s]"});
  for (const auto& set : {wl::paper_table2(), wl::paper_table4()}) {
    for (const auto& run : bench::run_set(set)) {
      table.add_row(
          {run.config.name,
           strprintf("%zu", run.config.spec.members.size()),
           strprintf("%d", run.assessment.total_nodes),
           fixed(run.assessment.ensemble_makespan_measured, 1)});
    }
    table.add_separator();
  }
  std::cout << table.render();
  return 0;
}
