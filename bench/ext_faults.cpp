// Extension — resilience of the ensemble under node crashes.
//
// The paper assesses fault-free executions; real campaigns at the scale of
// Cori lose nodes. This experiment sweeps the per-node MTBF across orders
// of magnitude around the ensemble makespan and replays the paper's C1.5
// configuration under each recovery policy (retry with backoff,
// checkpoint/restart, fail-member). For every (MTBF, policy) cell it
// reports the effective makespan, the slowdown versus the fault-free run,
// the recovery work performed (retries, restarts, checkpoints) and the
// wasted core-hours — the resource-provisioning cost of resilience that
// the paper's F indicators would have to absorb.
#include "bench_common.hpp"

#include "metrics/traditional.hpp"
#include "resilience/fault_spec.hpp"

int main() {
  using namespace wfe;
  bench::print_banner(
      "Extension: fault injection and recovery (MTBF sweep)",
      "Per-node exponential crashes swept across MTBF values, C1.5 spec,\n"
      "one row per (MTBF, recovery policy). Makespan is the effective\n"
      "(post-recovery) ensemble makespan; wasted core-h counts killed\n"
      "partial stages.");

  auto spec = wl::paper_config("C1.5").spec;
  spec.n_steps = 12;
  const auto platform = wl::cori_like_platform();

  // Fault-free reference.
  rt::SimulatedExecutor clean(platform);
  const rt::ExecutionResult base = clean.run(spec);
  const double base_makespan = met::ensemble_makespan(base.trace);
  std::cout << "Fault-free ensemble makespan: "
            << strprintf("%.1f s", base_makespan) << "\n\n";

  const double mtbfs[] = {8 * base_makespan, 2 * base_makespan,
                          base_makespan / 2, base_makespan / 8};
  const struct {
    res::RecoveryKind kind;
    const char* name;
  } policies[] = {
      {res::RecoveryKind::kRetry, "retry"},
      {res::RecoveryKind::kCheckpointRestart, "checkpoint"},
      {res::RecoveryKind::kFailMember, "fail-member"},
  };

  Table table({"MTBF/makespan", "policy", "makespan [s]", "slowdown",
               "crashes", "retries", "restarts", "ckpts", "wasted core-h",
               "members done"});
  for (const double mtbf : mtbfs) {
    for (const auto& p : policies) {
      rt::SimulatedOptions options;
      options.faults = wl::node_crashes(mtbf, /*repair_s=*/60.0);
      options.recovery.kind = p.kind;
      options.recovery.max_retries = 6;
      options.recovery.backoff_base_s = 1.0;
      options.recovery.checkpoint_period = 3;
      rt::SimulatedExecutor exec(platform, options);
      const rt::ExecutionResult r = exec.run(spec);
      const res::FailureSummary& fs = r.failure_summary;
      // Table 1's ensemble_makespan presumes every member produced analysis
      // records; under fail-member a member may die before its first one,
      // so fall back to the trace-wide span (last stage end).
      double makespan = 0.0;
      for (const met::StageRecord& rec : r.trace.records()) {
        makespan = std::max(makespan, rec.end);
      }
      const auto members = spec.members.size();
      table.add_row(
          {strprintf("%.2f", mtbf / base_makespan), p.name,
           strprintf("%.1f", makespan),
           strprintf("%.2fx", makespan / base_makespan),
           strprintf("%llu", static_cast<unsigned long long>(
                                 fs.crash_stage_kills)),
           strprintf("%llu",
                     static_cast<unsigned long long>(fs.stage_retries)),
           strprintf("%llu",
                     static_cast<unsigned long long>(fs.member_restarts)),
           strprintf("%llu", static_cast<unsigned long long>(
                                 fs.checkpoints_written)),
           strprintf("%.2f", fs.wasted_core_hours()),
           strprintf("%zu/%zu", members - fs.failed_members.size(),
                     members)});
    }
  }
  std::cout << table.render();
  std::cout <<
      "\nReading: with MTBF well above the makespan every policy is nearly\n"
      "free; as it approaches the makespan checkpoint/restart bounds the\n"
      "re-computed work while plain retry re-runs whole stages and\n"
      "fail-member trades completion for resources returned early.\n";
  return 0;
}
