// Extension — measurement noise and the robustness of the indicator.
//
// The paper averages 5 trials per configuration on a real, noisy machine;
// Eq. (9)'s stddev penalty exists because member performance varies. This
// experiment injects mean-preserving lognormal jitter (CV 5%) into every
// stage duration, replays the Table 2 set across seeds, and reports the
// spread of F(P^{U,A,P}) per configuration plus how often the paper's
// winner, C1.5, stays on top — i.e. whether the indicator's verdict is
// noise-robust.
#include "bench_common.hpp"

#include "support/stats.hpp"

int main() {
  using namespace wfe;
  using core::IndicatorKind;
  bench::print_banner(
      "Extension: indicator robustness under measurement noise",
      "Lognormal jitter (CV 5%) on every stage duration, 15 seeded trials\n"
      "per Table 2 configuration. F(P^{U,A,P}) mean +- stddev and the\n"
      "fraction of trials won by each configuration.");

  constexpr int kTrials = 15;
  constexpr double kCv = 0.05;
  const auto set = wl::paper_set1();

  std::map<std::string, std::vector<double>> f_values;
  std::map<std::string, int> wins;
  for (int trial = 0; trial < kTrials; ++trial) {
    rt::SimulatedOptions options;
    options.jitter_cv = kCv;
    options.seed = 1000 + static_cast<std::uint64_t>(trial);
    rt::SimulatedExecutor exec(wl::cori_like_platform(), options);

    std::string best;
    double best_f = -1e18;
    for (const auto& c : set) {
      auto spec = c.spec;
      spec.n_steps = 12;
      const auto a = rt::assess(spec, exec.run(spec));
      const double f = a.objective(IndicatorKind::kUAP);
      f_values[c.name].push_back(f);
      if (f > best_f) {
        best_f = f;
        best = c.name;
      }
    }
    ++wins[best];
  }

  Table table({"config", "F(P^{U,A,P}) mean", "stddev", "min", "max",
               "trials won"});
  for (const auto& c : set) {
    const auto& fs = f_values[c.name];
    const Summary s = summarize(fs);
    table.add_row({c.name, sci(s.mean, 3), sci(s.stddev, 2), sci(s.min, 3),
                   sci(s.max, 3),
                   strprintf("%d/%d", wins[c.name], kTrials)});
  }
  std::cout << table.render();
  std::cout << "\nDeterministic reference (jitter off): F(C1.5) = "
            << sci(bench::run_set({wl::paper_config("C1.5")})[0]
                       .assessment.objective(IndicatorKind::kUAP),
                   3)
            << "\n";
  return 0;
}
