// Ablation — DTL tier. Two experiments:
//  (1) native mode: the real small ensemble through the in-memory staging
//      backend vs the file-backed spool (write/read stage costs move);
//  (2) simulated mode: the modelled staging costs swept from memcpy-class
//      to PFS-class bandwidth, showing when W/R start to matter.
#include "bench_common.hpp"

#include "core/stages.hpp"
#include "metrics/steady_state.hpp"
#include "runtime/native_executor.hpp"

int main() {
  using namespace wfe;
  using core::StageKind;
  bench::print_banner(
      "Ablation: data-transport-layer tier",
      "In-memory (DIMES-like) staging vs a file-backed spool, native mode;\n"
      "then modelled staging-bandwidth sweep, simulated mode. In situ\n"
      "processing's premise: the memory tier keeps W and R negligible.");

  // --- (1) native runs through both real backends -------------------------
  Table native({"staging tier", "W* [s]", "R* [s]", "ensemble makespan [s]"});
  for (const auto tier : {rt::NativeOptions::StagingTier::kMemory,
                          rt::NativeOptions::StagingTier::kFile}) {
    rt::NativeOptions opt;
    opt.staging = tier;
    const auto spec = wl::small_native_ensemble(1, 1, 6);
    const auto result = rt::NativeExecutor(opt).run(spec);
    const auto a = rt::assess(spec, result);
    native.add_row(
        {tier == rt::NativeOptions::StagingTier::kMemory ? "memory" : "file",
         sci(a.members[0].steady.sim.w, 2),
         sci(a.members[0].steady.analyses[0].r, 2),
         fixed(a.ensemble_makespan_measured, 3)});
  }
  std::cout << native.render();

  // --- (2) modelled staging-bandwidth sweep -------------------------------
  Table sweep({"copy bw", "W* [s]", "R* local [s]", "sigma* (Cc) [s]",
               "E (Cc)"});
  for (const double bw : {8.0e9, 1.0e9, 0.2e9, 0.05e9}) {
    auto platform = wl::cori_like_platform();
    platform.node.copy_bw_bytes_per_s = bw;
    rt::SimulatedExecutor exec(platform);
    auto cfg = wl::paper_config("Cc");
    cfg.spec.n_steps = 6;
    const auto result = exec.run(cfg.spec);
    const auto a = rt::assess(cfg.spec, result);
    sweep.add_row({human_bytes(bw) + "/s", sci(a.members[0].steady.sim.w, 2),
                   sci(a.members[0].steady.analyses[0].r, 2),
                   fixed(a.members[0].sigma, 2),
                   fixed(a.members[0].efficiency, 3)});
  }
  std::cout << "\nModelled co-located staging bandwidth sweep (Cc):\n"
            << sweep.render();
  return 0;
}
