// LP-scaling series — replay throughput of the LP-partitioned parallel
// engine (sim::ParallelEngine, wfens_run --engine=lp:N) against the
// sequential calendar-queue engine, on the same C1.5 x 500 replay workload
// bench_engine_throughput reports, so the two series sit side by side in
// BENCH_engine.json (this binary MERGES its lp_* keys into the existing
// report rather than clobbering it — run bench_engine_throughput first).
//
// Both engines are bit-identical by contract, and this bench re-checks it:
// the WFET trace bytes and event counts of every engine are compared
// before any timing is reported, and a mismatch exits 1. On a multi-core
// host lp:4 should clear ~1.5x the sequential rate on this workload; on a
// single-core CI runner the parallel series loses (barrier + merge costs,
// no parallelism to buy them back) and the bench's value is the
// determinism gate — docs/PERF.md §8 discusses when lp:N wins and loses.
//
// `--quick` shrinks the series for CI smoke runs: same schema, numbers not
// comparable to full-mode baselines.
#include "bench_common.hpp"

#include <cstring>
#include <string>

#include "metrics/trace_io.hpp"
#include "simengine/engine.hpp"

namespace {

/// Sustained replay rate of `config` under `engine`, with one unmeasured
/// warm-up replay (same protocol as bench_engine_throughput's series).
double replay_rate(const wfe::wl::NamedConfig& config,
                   const std::string& engine, int replays,
                   std::uint64_t* events_out) {
  wfe::rt::SimulatedOptions options;
  options.engine = wfe::rt::EngineSelection::parse(engine);
  options.trace_obs = false;
  const wfe::rt::SimulatedExecutor exec(wfe::wl::cori_like_platform(),
                                        options);
  (void)exec.run(config.spec);
  const wfe::bench::Stopwatch timer;
  std::uint64_t events = 0;
  for (int i = 0; i < replays; ++i) {
    events += exec.run(config.spec).events_processed;
  }
  const double wall = timer.seconds();
  *events_out = events;
  return static_cast<double>(events) / wall;
}

/// The run both series must reproduce byte-for-byte.
std::string reference_trace(const wfe::wl::NamedConfig& config,
                            const std::string& engine) {
  wfe::rt::SimulatedOptions options;
  options.engine = wfe::rt::EngineSelection::parse(engine);
  options.trace_obs = false;
  const wfe::rt::SimulatedExecutor exec(wfe::wl::cori_like_platform(),
                                        options);
  return wfe::met::trace_to_text(exec.run(config.spec).trace);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wfe;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  bench::print_banner(
      "LP-partitioned replay scaling",
      "Replay throughput of the conservative LP runtime (--engine=lp:N)\n"
      "vs the sequential engine on paper configuration C1.5, after a\n"
      "bit-identity gate: every engine must reproduce the sequential\n"
      "trace byte-for-byte before its rate is reported.");

  const int replays = quick ? 3 : 500;
  const auto c15 = wl::paper_config("C1.5");

  // Bit-identity gate first; timing a diverging engine would be noise.
  const std::string golden = reference_trace(c15, "seq");
  for (const char* engine : {"lp:1", "lp:2", "lp:4"}) {
    if (reference_trace(c15, engine) != golden) {
      std::cerr << "FAIL: " << engine
                << " trace diverged from the sequential engine\n";
      return 1;
    }
  }
  std::cout << "bit-identity gate: lp:1 / lp:2 / lp:4 all reproduce the\n"
            << "sequential C1.5 trace byte-for-byte\n\n";

  std::uint64_t seq_events = 0;
  const double seq_rate = replay_rate(c15, "seq", replays, &seq_events);
  std::cout << "seq   (" << c15.name << " x" << replays
            << "): " << seq_events << " events, " << sci(seq_rate, 3)
            << " events/s\n";

  double lp_rates[3] = {0.0, 0.0, 0.0};
  const char* lp_names[3] = {"lp:1", "lp:2", "lp:4"};
  for (int i = 0; i < 3; ++i) {
    std::uint64_t lp_events = 0;
    lp_rates[i] = replay_rate(c15, lp_names[i], replays, &lp_events);
    std::cout << lp_names[i] << "  (" << c15.name << " x" << replays
              << "): " << lp_events << " events, " << sci(lp_rates[i], 3)
              << " events/s\n";
    if (lp_events != seq_events) {
      std::cerr << "FAIL: " << lp_names[i]
                << " processed a different event count\n";
      return 1;
    }
  }
  const double speedup = lp_rates[2] / seq_rate;
  std::cout << "\nlp:4 speedup vs seq: " << speedup
            << "x  (expect >= 1.5x on a multi-core host; < 1x on one core\n"
            << "where the barrier and merge have no parallelism paying for\n"
            << "them — see docs/PERF.md §8)\n";

  // Merge the lp_* series into the shared engine report. Missing base file
  // (bench_engine_throughput not run yet): start one, but warn — the
  // schema gate wants both series.
  bench::JsonReport report;
  if (!report.load("BENCH_engine.json")) {
    std::cout << "note: BENCH_engine.json not found; writing an lp-only "
                 "report (run bench_engine_throughput for the full one)\n";
    report.add("bench", "engine_throughput");
    report.add("queue_policy", sim::Engine::kQueuePolicy);
    report.add("mode", quick ? "quick" : "full");
  }
  report.add("lp_replay_config", c15.name);
  report.add("lp_replay_count", replays);
  report.add("lp_replay_events", seq_events);
  report.add("lp_seq_events_per_s", seq_rate);
  report.add("lp1_events_per_s", lp_rates[0]);
  report.add("lp2_events_per_s", lp_rates[1]);
  report.add("lp4_events_per_s", lp_rates[2]);
  report.add("lp4_speedup_vs_seq", speedup);
  report.add("lp_bit_identical", 1);
  report.write("BENCH_engine.json");
  return 0;
}
