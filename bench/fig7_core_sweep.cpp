// Figure 7 / §3.4 — sweep the number of cores assigned to the analysis of
// a co-location-free member (fixed 16-core simulation, stride 800) and
// report sigma*, S*+W*, R*+A* and the computational efficiency E; then run
// the provisioning heuristic, which should choose 8 cores as the paper did.
#include "bench_common.hpp"

#include "core/heuristic.hpp"
#include "core/insitu.hpp"

int main() {
  using namespace wfe;
  bench::print_banner(
      "Figure 7 (and the Section 3.4 heuristic)",
      "In situ step decomposition vs analysis core count, co-location-free\n"
      "member. Expected shape: with 1-4 cores the analysis dominates\n"
      "(R*+A* > S*+W*, Eq. 4 infeasible); from 8 cores on the coupling is\n"
      "Idle Analyzer and sigma* = S*+W* is minimal; E peaks at 8 cores.");

  const auto platform = wl::cori_like_platform();
  rt::SimulatedExecutor exec(platform);

  auto member_at = [&](int cores) {
    auto cfg = wl::paper_config("Cf");
    cfg.spec.n_steps = 6;
    cfg.spec.members[0].analyses[0].cores = cores;
    return rt::assess(cfg.spec, exec.run(cfg.spec)).members[0];
  };

  const core::SimSteady sim_side = member_at(8).steady.sim;
  auto eval = [&](int cores) { return member_at(cores).steady.analyses[0]; };
  const auto heuristic = core::provision_analysis_cores(sim_side, eval, 32);

  Table table({"analysis cores", "S*+W* [s]", "R*+A* [s]", "sigma* [s]",
               "E (Eq. 3)", "Eq. 4 feasible", "chosen"});
  for (const auto& c : heuristic.candidates) {
    // Print the classic figure's x-axis points plus the boundary region.
    if (c.cores > 8 && c.cores % 4 != 0) continue;
    table.add_row({strprintf("%d", c.cores),
                   fixed(sim_side.s + sim_side.w, 2),
                   fixed(c.analysis.r + c.analysis.a, 2), fixed(c.sigma, 2),
                   fixed(c.efficiency, 3), c.feasible ? "yes" : "no",
                   c.cores == heuristic.cores ? "<== max E among feasible"
                                              : ""});
  }
  std::cout << table.render();
  std::cout << "\nHeuristic choice: " << heuristic.cores
            << " cores per analysis (the paper selects 8).\n";
  return 0;
}
