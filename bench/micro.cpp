// Micro-benchmarks (google-benchmark): the engine, DTL and kernel costs
// that underpin the macro experiments. A custom main (instead of
// benchmark_main) captures every run into BENCH_micro.json so the
// bench-smoke schema gate covers the microbenches too.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/bipartite_eigen.hpp"
#include "bench_common.hpp"
#include "dtl/coupling.hpp"
#include "dtl/file_staging.hpp"
#include "dtl/memory_staging.hpp"
#include "dtl/serde.hpp"
#include "mdsim/engine.hpp"
#include "platform/cluster.hpp"
#include "simengine/engine.hpp"
#include "support/rng.hpp"
#include "workload/presets.hpp"

namespace {

using namespace wfe;

void BM_EngineScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    for (std::size_t i = 0; i < n; ++i) {
      engine.schedule_at(static_cast<double>(i), [] {});
    }
    engine.run();
    benchmark::DoNotOptimize(engine.events_processed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EngineScheduleRun)->Arg(1000)->Arg(10000);

dtl::Chunk make_chunk(std::size_t atoms) {
  Xoshiro256 rng(1);
  std::vector<double> xyz(atoms * 3);
  for (auto& x : xyz) x = rng.normal();
  return dtl::Chunk(dtl::ChunkKey{0, 0}, dtl::PayloadKind::kPositions3N,
                    std::move(xyz));
}

void BM_SerdeRoundTrip(benchmark::State& state) {
  const dtl::Chunk chunk = make_chunk(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dtl::deserialize(dtl::serialize(chunk)));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(dtl::serialized_size(chunk)));
}
BENCHMARK(BM_SerdeRoundTrip)->Arg(256)->Arg(4096)->Arg(65536);

void BM_MemoryStagingPutGet(benchmark::State& state) {
  dtl::MemoryStaging staging;
  const auto bytes = dtl::serialize(make_chunk(1024));
  for (auto _ : state) {
    staging.put("k", bytes);
    benchmark::DoNotOptimize(staging.get("k"));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()) * 2);
}
BENCHMARK(BM_MemoryStagingPutGet);

void BM_FileStagingPutGet(benchmark::State& state) {
  dtl::FileStaging staging(std::filesystem::temp_directory_path() /
                           "wfens-bench-spool");
  const auto bytes = dtl::serialize(make_chunk(1024));
  for (auto _ : state) {
    staging.put("k", bytes);
    benchmark::DoNotOptimize(staging.get("k"));
  }
  staging.clear();
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()) * 2);
}
BENCHMARK(BM_FileStagingPutGet);

void BM_CouplingHandshake(benchmark::State& state) {
  // Single-threaded protocol round trip: begin/commit + await/ack.
  for (auto _ : state) {
    state.PauseTiming();
    dtl::CouplingChannel channel(1);
    state.ResumeTiming();
    for (std::uint64_t s = 0; s < 100; ++s) {
      channel.begin_write(s);
      channel.commit_write(s);
      benchmark::DoNotOptimize(channel.await_step(0, s));
      channel.ack_read(0, s);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100);
}
BENCHMARK(BM_CouplingHandshake);

void BM_LjMdStep(benchmark::State& state) {
  md::MdConfig config = wl::native_md_config();
  config.fcc_cells = static_cast<int>(state.range(0));
  md::MdEngine engine(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.advance(1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(engine.atom_count()));
}
BENCHMARK(BM_LjMdStep)->Arg(3)->Arg(4)->Arg(5);

void BM_BipartiteEigenKernel(benchmark::State& state) {
  const dtl::Chunk chunk = make_chunk(static_cast<std::size_t>(state.range(0)));
  ana::BipartiteEigenKernel kernel;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel.analyze(chunk));
  }
}
BENCHMARK(BM_BipartiteEigenKernel)->Arg(128)->Arg(256)->Arg(512);

void BM_ClusterStagePricing(benchmark::State& state) {
  plat::Cluster cluster(wl::cori_like_platform());
  const auto sim = wl::gltph_like_simulation({0});
  const auto profile = md::md_stage_profile(sim.cost, sim.natoms, sim.stride);
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    cluster.begin_compute(0, profile, 4);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster.stage_cost(0, profile, 16));
  }
}
BENCHMARK(BM_ClusterStagePricing)->Arg(0)->Arg(2)->Arg(6);

// -- JSON capture ------------------------------------------------------------

/// Console output as usual, plus every per-iteration run captured as a
/// (name, real ns/iter, iterations) row for the report.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  struct Row {
    std::string name;
    double real_time_ns = 0.0;
    std::int64_t iterations = 0;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      // real_accumulated_time is seconds over all iterations — convert
      // directly rather than trusting the run's display time_unit.
      const auto iters = static_cast<double>(
          run.iterations > 0 ? run.iterations : 1);
      rows.push_back({run.benchmark_name(),
                      run.real_accumulated_time * 1e9 / iters,
                      run.iterations});
    }
  }

  std::vector<Row> rows;
};

std::string json_escape(std::string_view s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string rows_to_json(const std::vector<CapturingReporter::Row>& rows) {
  std::string out = "[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    char num[64];
    std::snprintf(num, sizeof num, "%.17g", rows[i].real_time_ns);
    out += (i == 0) ? "\n" : ",\n";
    out += "    {\"name\": \"" + json_escape(rows[i].name) +
           "\", \"real_time_ns\": " + num +
           ", \"iterations\": " + std::to_string(rows[i].iterations) + "}";
  }
  out += "\n  ]";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip our own --quick before benchmark::Initialize sees (and rejects)
  // it; quick mode shrinks the per-benchmark measuring window so the CI
  // smoke run finishes in seconds.
  std::vector<char*> args(argv, argv + argc);
  const auto quick_end = std::remove_if(
      args.begin(), args.end(),
      [](char* a) { return std::string_view(a) == "--quick"; });
  const bool quick = quick_end != args.end();
  args.erase(quick_end, args.end());
  std::string min_time = "--benchmark_min_time=0.01";
  if (quick) args.push_back(min_time.data());
  args.push_back(nullptr);

  int filtered_argc = static_cast<int>(args.size()) - 1;
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }

  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (reporter.rows.empty()) {
    std::fprintf(stderr, "bench_micro: no benchmarks ran; not writing "
                         "BENCH_micro.json\n");
    return 1;
  }

  wfe::bench::JsonReport report;
  report.add("bench", "micro");
  report.add("mode", quick ? "quick" : "full");
  report.add_raw("benchmarks", rows_to_json(reporter.rows));
  report.write("BENCH_micro.json");
  return 0;
}
