// Micro-benchmarks (google-benchmark): the engine, DTL and kernel costs
// that underpin the macro experiments.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "analysis/bipartite_eigen.hpp"
#include "dtl/coupling.hpp"
#include "dtl/file_staging.hpp"
#include "dtl/memory_staging.hpp"
#include "dtl/serde.hpp"
#include "mdsim/engine.hpp"
#include "platform/cluster.hpp"
#include "simengine/engine.hpp"
#include "support/rng.hpp"
#include "workload/presets.hpp"

namespace {

using namespace wfe;

void BM_EngineScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    for (std::size_t i = 0; i < n; ++i) {
      engine.schedule_at(static_cast<double>(i), [] {});
    }
    engine.run();
    benchmark::DoNotOptimize(engine.events_processed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EngineScheduleRun)->Arg(1000)->Arg(10000);

dtl::Chunk make_chunk(std::size_t atoms) {
  Xoshiro256 rng(1);
  std::vector<double> xyz(atoms * 3);
  for (auto& x : xyz) x = rng.normal();
  return dtl::Chunk(dtl::ChunkKey{0, 0}, dtl::PayloadKind::kPositions3N,
                    std::move(xyz));
}

void BM_SerdeRoundTrip(benchmark::State& state) {
  const dtl::Chunk chunk = make_chunk(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dtl::deserialize(dtl::serialize(chunk)));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(dtl::serialized_size(chunk)));
}
BENCHMARK(BM_SerdeRoundTrip)->Arg(256)->Arg(4096)->Arg(65536);

void BM_MemoryStagingPutGet(benchmark::State& state) {
  dtl::MemoryStaging staging;
  const auto bytes = dtl::serialize(make_chunk(1024));
  for (auto _ : state) {
    staging.put("k", bytes);
    benchmark::DoNotOptimize(staging.get("k"));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()) * 2);
}
BENCHMARK(BM_MemoryStagingPutGet);

void BM_FileStagingPutGet(benchmark::State& state) {
  dtl::FileStaging staging(std::filesystem::temp_directory_path() /
                           "wfens-bench-spool");
  const auto bytes = dtl::serialize(make_chunk(1024));
  for (auto _ : state) {
    staging.put("k", bytes);
    benchmark::DoNotOptimize(staging.get("k"));
  }
  staging.clear();
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()) * 2);
}
BENCHMARK(BM_FileStagingPutGet);

void BM_CouplingHandshake(benchmark::State& state) {
  // Single-threaded protocol round trip: begin/commit + await/ack.
  for (auto _ : state) {
    state.PauseTiming();
    dtl::CouplingChannel channel(1);
    state.ResumeTiming();
    for (std::uint64_t s = 0; s < 100; ++s) {
      channel.begin_write(s);
      channel.commit_write(s);
      benchmark::DoNotOptimize(channel.await_step(0, s));
      channel.ack_read(0, s);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100);
}
BENCHMARK(BM_CouplingHandshake);

void BM_LjMdStep(benchmark::State& state) {
  md::MdConfig config = wl::native_md_config();
  config.fcc_cells = static_cast<int>(state.range(0));
  md::MdEngine engine(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.advance(1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(engine.atom_count()));
}
BENCHMARK(BM_LjMdStep)->Arg(3)->Arg(4)->Arg(5);

void BM_BipartiteEigenKernel(benchmark::State& state) {
  const dtl::Chunk chunk = make_chunk(static_cast<std::size_t>(state.range(0)));
  ana::BipartiteEigenKernel kernel;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel.analyze(chunk));
  }
}
BENCHMARK(BM_BipartiteEigenKernel)->Arg(128)->Arg(256)->Arg(512);

void BM_ClusterStagePricing(benchmark::State& state) {
  plat::Cluster cluster(wl::cori_like_platform());
  const auto sim = wl::gltph_like_simulation({0});
  const auto profile = md::md_stage_profile(sim.cost, sim.natoms, sim.stride);
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    cluster.begin_compute(0, profile, 4);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster.stage_cost(0, profile, 16));
  }
}
BENCHMARK(BM_ClusterStagePricing)->Arg(0)->Arg(2)->Arg(6);

}  // namespace
