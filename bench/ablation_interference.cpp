// Ablation — does the co-location interference model change the story?
// Re-run the Table 2 set with interference disabled: miss ratios collapse
// to their baselines and the makespan ordering is driven purely by data
// locality (remote staging reads).
#include "bench_common.hpp"

#include "metrics/traditional.hpp"

int main() {
  using namespace wfe;
  using core::IndicatorKind;
  bench::print_banner(
      "Ablation: interference model on/off",
      "With interference OFF, co-located components no longer disturb each\n"
      "other: LLC miss ratios collapse to the profiles' baselines and\n"
      "co-location becomes a pure win (data locality with zero cost) —\n"
      "confirming that the paper's tension between co-location and\n"
      "contention only exists because interference is real.");

  auto on = wl::cori_like_platform();
  auto off = wl::cori_like_platform();
  off.interference.enabled = false;

  const auto runs_on = bench::run_set(wl::paper_table2(), on);
  const auto runs_off = bench::run_set(wl::paper_table2(), off);

  Table table({"config", "ens. makespan ON [s]", "ens. makespan OFF [s]",
               "max ana miss ON", "max ana miss OFF", "F(P^{U,A,P}) ON",
               "F(P^{U,A,P}) OFF"});
  for (std::size_t i = 0; i < runs_on.size(); ++i) {
    auto max_ana_miss = [](const rt::ExecutionResult& r) {
      double worst = 0.0;
      for (const auto& m : met::all_component_metrics(r.trace)) {
        if (!m.component.is_simulation()) {
          worst = std::max(worst, m.llc_miss_ratio);
        }
      }
      return worst;
    };
    table.add_row(
        {runs_on[i].config.name,
         fixed(runs_on[i].assessment.ensemble_makespan_measured, 1),
         fixed(runs_off[i].assessment.ensemble_makespan_measured, 1),
         fixed(max_ana_miss(runs_on[i].result), 4),
         fixed(max_ana_miss(runs_off[i].result), 4),
         sci(runs_on[i].assessment.objective(IndicatorKind::kUAP), 3),
         sci(runs_off[i].assessment.objective(IndicatorKind::kUAP), 3)});
  }
  std::cout << table.render();
  return 0;
}
