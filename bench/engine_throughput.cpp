// Event-core throughput — measures the engine hot path the placement
// search leans on: dispatch rate of the generation-stamped heap with
// SmallFn callbacks, cancellation churn, and end-to-end replay rate of a
// full paper configuration. Writes BENCH_engine.json for regression diffs.
#include "bench_common.hpp"

#include "simengine/engine.hpp"

namespace {

/// Self-scheduling chains: the dominant engine pattern (every component
/// stage re-arms itself). `chains` concurrent chains, `hops` events each.
double chain_dispatch_rate(std::uint64_t chains, std::uint64_t hops,
                           std::uint64_t* events_out) {
  wfe::sim::Engine engine;
  const wfe::bench::Stopwatch timer;
  struct Chain {
    wfe::sim::Engine* engine;
    std::uint64_t hops_left;
    double period;
    void operator()() const {
      if (hops_left == 0) return;
      engine->schedule_in(period, Chain{engine, hops_left - 1, period});
    }
  };
  for (std::uint64_t c = 0; c < chains; ++c) {
    engine.schedule_at(static_cast<double>(c) * 1e-3,
                       Chain{&engine, hops - 1, 1.0 + 1e-4 * c});
  }
  engine.run();
  const double wall = timer.seconds();
  *events_out = engine.events_processed();
  return static_cast<double>(engine.events_processed()) / wall;
}

/// Schedule/cancel churn: timeout-style events that almost never fire —
/// the pattern that makes lazy deletion and slot recycling earn their keep.
double cancel_churn_rate(std::uint64_t rounds, std::uint64_t* cancels_out) {
  wfe::sim::Engine engine;
  const wfe::bench::Stopwatch timer;
  std::uint64_t cancelled = 0;
  std::vector<wfe::sim::EventId> batch;
  for (std::uint64_t r = 0; r < rounds; ++r) {
    batch.clear();
    for (int i = 0; i < 64; ++i) {
      batch.push_back(engine.schedule_at(1e12, [] {}));
    }
    for (const wfe::sim::EventId id : batch) {
      if (engine.cancel(id)) ++cancelled;
    }
  }
  const double wall = timer.seconds();
  *cancels_out = cancelled;
  return static_cast<double>(cancelled) / wall;
}

}  // namespace

int main() {
  using namespace wfe;
  bench::print_banner(
      "Event-core throughput",
      "Dispatch and cancellation rates of the discrete-event engine, plus\n"
      "the end-to-end replay rate of paper configuration C1.5. These are\n"
      "the per-candidate costs the parallel placement search multiplies.");

  std::uint64_t chain_events = 0;
  const double dispatch_rate = chain_dispatch_rate(64, 20000, &chain_events);
  std::cout << "self-scheduling chains: " << chain_events << " events, "
            << sci(dispatch_rate, 3) << " events/s\n";

  std::uint64_t cancels = 0;
  const double churn_rate = cancel_churn_rate(20000, &cancels);
  std::cout << "schedule+cancel churn:  " << cancels << " cancellations, "
            << sci(churn_rate, 3) << " cancels/s\n";

  // Full replay: C1.5 (the paper's best 2-member placement), per-replay
  // event count and sustained event rate through the whole runtime stack.
  const auto c15 = wl::paper_config("C1.5");
  rt::SimulatedExecutor exec(wl::cori_like_platform());
  const int replays = 50;
  const bench::Stopwatch timer;
  std::uint64_t replay_events = 0;
  for (int i = 0; i < replays; ++i) {
    replay_events += exec.run(c15.spec).events_processed;
  }
  const double replay_wall = timer.seconds();
  const double replay_rate = static_cast<double>(replay_events) / replay_wall;
  std::cout << "full replay (" << c15.name << " x" << replays
            << "): " << replay_events << " events, " << sci(replay_rate, 3)
            << " events/s\n";

  bench::JsonReport report;
  report.add("bench", "engine_throughput");
  report.add("chain_events", chain_events);
  report.add("chain_events_per_s", dispatch_rate);
  report.add("churn_cancellations", cancels);
  report.add("churn_cancels_per_s", churn_rate);
  report.add("replay_config", c15.name);
  report.add("replay_count", replays);
  report.add("replay_events", replay_events);
  report.add("replay_events_per_s", replay_rate);
  report.write("BENCH_engine.json");
  return 0;
}
