// Event-core throughput — measures the engine hot path the placement
// search leans on: dispatch rate of the calendar/ladder queue with SmallFn
// callbacks, cancellation churn (lazy deletion + slot recycling),
// cancel-heavy and bimodal-horizon stress patterns, and end-to-end replay
// rate of a full paper configuration. Writes BENCH_engine.json (with a
// `queue_policy` field naming the pending-set implementation) for
// regression diffs across queue designs.
//
// `--quick` shrinks every workload for CI smoke runs: the JSON keeps the
// full schema (plus "mode": "quick") but the numbers are not comparable to
// full-mode baselines.
#include "bench_common.hpp"

#include <algorithm>
#include <cstring>

#include "obs/replay_profile.hpp"
#include "simengine/engine.hpp"

namespace {

/// Self-scheduling chains: the dominant engine pattern (every component
/// stage re-arms itself). `chains` concurrent chains, `hops` events each.
double chain_dispatch_rate(std::uint64_t chains, std::uint64_t hops,
                           std::uint64_t* events_out) {
  wfe::sim::Engine engine;
  const wfe::bench::Stopwatch timer;
  struct Chain {
    wfe::sim::Engine* engine;
    std::uint64_t hops_left;
    double period;
    void operator()() const {
      if (hops_left == 0) return;
      engine->schedule_in(period, Chain{engine, hops_left - 1, period});
    }
  };
  for (std::uint64_t c = 0; c < chains; ++c) {
    engine.schedule_at(static_cast<double>(c) * 1e-3,
                       Chain{&engine, hops - 1, 1.0 + 1e-4 * c});
  }
  engine.run();
  const double wall = timer.seconds();
  *events_out = engine.events_processed();
  return static_cast<double>(engine.events_processed()) / wall;
}

/// Schedule/cancel churn: timeout-style events that almost never fire —
/// the pattern that makes lazy deletion and slot recycling earn their keep.
double cancel_churn_rate(std::uint64_t rounds, std::uint64_t* cancels_out) {
  wfe::sim::Engine engine;
  const wfe::bench::Stopwatch timer;
  std::uint64_t cancelled = 0;
  std::vector<wfe::sim::EventId> batch;
  for (std::uint64_t r = 0; r < rounds; ++r) {
    batch.clear();
    for (int i = 0; i < 64; ++i) {
      batch.push_back(engine.schedule_at(1e12, [] {}));
    }
    for (const wfe::sim::EventId id : batch) {
      if (engine.cancel(id)) ++cancelled;
    }
  }
  const double wall = timer.seconds();
  *cancels_out = cancelled;
  return static_cast<double>(cancelled) / wall;
}

/// Cancel-heavy dispatch: every fired event arms a guard far in the future
/// and cancels the previous one — the fault-injection/timeout pattern where
/// most scheduled events die and corpses ride along inside the queue tiers
/// until a split or sweep collects them.
double cancel_heavy_rate(std::uint64_t chains, std::uint64_t hops,
                         std::uint64_t* events_out) {
  wfe::sim::Engine engine;
  const wfe::bench::Stopwatch timer;
  struct Guarded {
    wfe::sim::Engine* engine;
    std::uint64_t hops_left;
    wfe::sim::EventId guard;  // armed by the previous hop; dead by now
    void operator()() const {
      engine->cancel(guard);
      if (hops_left == 0) return;
      const wfe::sim::EventId next_guard =
          engine->schedule_in(1e9, [] {});  // timeout that never fires
      engine->schedule_in(1.0,
                          Guarded{engine, hops_left - 1, next_guard});
    }
  };
  for (std::uint64_t c = 0; c < chains; ++c) {
    engine.schedule_at(static_cast<double>(c) * 1e-3,
                       Guarded{&engine, hops - 1, {}});
  }
  engine.run();
  const double wall = timer.seconds();
  *events_out = engine.events_processed();
  return static_cast<double>(engine.events_processed()) / wall;
}

/// Mixed-horizon dispatch: each fired event re-arms either just ahead of
/// the clock or deep into the future (bimodal near/far split). The far
/// mode lands beyond the near batch, so this exercises rung spawning,
/// recursive splits and far-tier routing instead of the sorted fast path.
double mixed_horizon_rate(std::uint64_t chains, std::uint64_t hops,
                          std::uint64_t* events_out) {
  wfe::sim::Engine engine;
  const wfe::bench::Stopwatch timer;
  struct Bimodal {
    wfe::sim::Engine* engine;
    std::uint64_t hops_left;
    std::uint64_t state;  // per-chain xorshift: cheap deterministic bimode
    void operator()() const {
      if (hops_left == 0) return;
      std::uint64_t x = state;
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      // 1-in-4 far (1000x the near period), else near.
      const double delay = (x % 4 == 0) ? 1e3 : 1.0;
      engine->schedule_in(delay, Bimodal{engine, hops_left - 1, x});
    }
  };
  for (std::uint64_t c = 0; c < chains; ++c) {
    engine.schedule_at(static_cast<double>(c) * 1e-3,
                       Bimodal{&engine, hops - 1, c * 2654435761u + 1});
  }
  engine.run();
  const double wall = timer.seconds();
  *events_out = engine.events_processed();
  return static_cast<double>(engine.events_processed()) / wall;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wfe;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  bench::print_banner(
      "Event-core throughput",
      "Dispatch and cancellation rates of the discrete-event engine, plus\n"
      "the end-to-end replay rate of paper configuration C1.5. These are\n"
      "the per-candidate costs the parallel placement search multiplies.");

  const std::uint64_t hops = quick ? 1000 : 20000;
  const std::uint64_t churn_rounds = quick ? 1000 : 20000;
  // 500 replays ≈ 15–20 ms of measured work: long enough that scheduler
  // noise and the cold first replay stop dominating the rate (50 replays
  // was ~2 ms and scattered over ±25% run to run).
  const int replays = quick ? 3 : 500;

  std::uint64_t chain_events = 0;
  const double dispatch_rate = chain_dispatch_rate(64, hops, &chain_events);
  std::cout << "self-scheduling chains: " << chain_events << " events, "
            << sci(dispatch_rate, 3) << " events/s\n";

  std::uint64_t cancels = 0;
  const double churn_rate = cancel_churn_rate(churn_rounds, &cancels);
  std::cout << "schedule+cancel churn:  " << cancels << " cancellations, "
            << sci(churn_rate, 3) << " cancels/s\n";

  std::uint64_t heavy_events = 0;
  const double heavy_rate = cancel_heavy_rate(64, hops, &heavy_events);
  std::cout << "cancel-heavy chains:    " << heavy_events << " events, "
            << sci(heavy_rate, 3) << " events/s\n";

  std::uint64_t mixed_events = 0;
  const double mixed_rate = mixed_horizon_rate(64, hops, &mixed_events);
  std::cout << "mixed-horizon chains:   " << mixed_events << " events, "
            << sci(mixed_rate, 3) << " events/s\n";

  // Full replay: C1.5 (the paper's best 2-member placement), per-replay
  // event count and sustained event rate through the whole runtime stack.
  // One unmeasured warm-up replay pays the allocator's cold path so the
  // series measures the steady state the campaign driver actually runs in.
  const auto c15 = wl::paper_config("C1.5");
  rt::SimulatedExecutor exec(wl::cori_like_platform());
  (void)exec.run(c15.spec);
  obs::replay_profile::reset();
  const bench::Stopwatch timer;
  std::uint64_t replay_events = 0;
  for (int i = 0; i < replays; ++i) {
    replay_events += exec.run(c15.spec).events_processed;
  }
  const double replay_wall = timer.seconds();
  const double replay_rate = static_cast<double>(replay_events) / replay_wall;
  std::cout << "full replay (" << c15.name << " x" << replays
            << "): " << replay_events << " events, " << sci(replay_rate, 3)
            << " events/s\n";

  // Per-component attribution, only meaningful when this binary links the
  // profiled runtime twin (wfens_runtime_prof); with the production
  // runtime every section is zero and the breakdown is skipped —
  // bench_replay_profile is the tool that reports it.
  const obs::ReplayProfileSnapshot prof = obs::replay_profile::snapshot();
  if (prof.total_ns() > 0) {
    const double wall_ns = replay_wall * 1e9;
    const double section_ns = static_cast<double>(prof.total_ns());
    const double engine_ns = std::max(0.0, wall_ns - section_ns);
    const double denom = engine_ns + section_ns;
    std::cout << "  profiled sections: engine "
              << sci(100.0 * engine_ns / denom, 3) << " %";
    for (std::size_t s = 0; s < obs::kReplaySectionCount; ++s) {
      std::cout << ", " << obs::to_string(static_cast<obs::ReplaySection>(s))
                << " " << sci(100.0 * static_cast<double>(prof.ns[s]) / denom, 3)
                << " %";
    }
    std::cout << "\n";
  }

  bench::JsonReport report;
  report.add("bench", "engine_throughput");
  report.add("queue_policy", sim::Engine::kQueuePolicy);
  report.add("mode", quick ? "quick" : "full");
  report.add("chain_events", chain_events);
  report.add("chain_events_per_s", dispatch_rate);
  report.add("churn_cancellations", cancels);
  report.add("churn_cancels_per_s", churn_rate);
  report.add("cancel_heavy_events", heavy_events);
  report.add("cancel_heavy_events_per_s", heavy_rate);
  report.add("mixed_horizon_events", mixed_events);
  report.add("mixed_horizon_events_per_s", mixed_rate);
  report.add("replay_config", c15.name);
  report.add("replay_count", replays);
  report.add("replay_events", replay_events);
  report.add("replay_events_per_s", replay_rate);
  report.write("BENCH_engine.json");
  return 0;
}
