// Extension — relaxing the no-buffering assumption.
//
// The paper's model assumes the simulation "does not write any new data
// until the data from the previous iteration is read" (capacity 1). This
// experiment sweeps the staging-buffer depth on configurations from both
// coupling regimes and reports what actually changes:
//   * Idle Analyzer configurations (C1.5): the writer never waits, so
//     buffering changes nothing.
//   * Idle Simulation configurations (C1.1): buffering absorbs the
//     writer's wait (I^S -> 0) and raises the *measured* efficiency E, but
//     the steady-state throughput is still pinned by the slowest stage —
//     the makespan barely moves. The efficiency indicator rewards overlap,
//     not speed, which is exactly Eq. (3)'s design.
#include "bench_common.hpp"

#include "core/insitu.hpp"
#include "metrics/traditional.hpp"

int main() {
  using namespace wfe;
  using core::StageKind;
  bench::print_banner(
      "Extension: staging-buffer depth sweep",
      "Buffer capacity 1 is the paper's protocol; deeper buffers relax\n"
      "W_{i+1} < R_i. Buffering hides writer idle time in the Idle\n"
      "Simulation regime without improving steady-state throughput.");

  rt::SimulatedExecutor exec(wl::cori_like_platform());

  Table table({"config", "buffer", "I^S total (sim0) [s]", "E (EM1)",
               "ensemble makespan [s]", "staged chunks resident"});
  for (const char* name : {"C1.5", "C1.1"}) {
    for (const int capacity : {1, 2, 4}) {
      auto cfg = wl::paper_config(name);
      for (auto& m : cfg.spec.members) m.buffer_capacity = capacity;
      const auto result = exec.run(cfg.spec);
      const auto a = rt::assess(cfg.spec, result);
      table.add_row(
          {name, strprintf("%d", capacity),
           fixed(result.trace.total_in_stage({0, -1}, StageKind::kSimIdle), 2),
           fixed(a.members[0].efficiency, 3),
           fixed(a.ensemble_makespan_measured, 1),
           strprintf("<= %d per coupling", capacity)});
    }
    table.add_separator();
  }
  std::cout << table.render();
  return 0;
}
