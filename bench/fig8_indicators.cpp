// Figure 8 — the objective F(P_i) at every indicator stage, over the
// one-analysis-per-simulation configurations C1.1 ... C1.5 (Table 2), for
// both stage orders: P^U -> P^{U,P} -> P^{U,P,A} and
//                    P^U -> P^{U,A} -> P^{U,A,P}.
#include "bench_common.hpp"

int main() {
  using namespace wfe;
  using core::IndicatorKind;
  bench::print_banner(
      "Figure 8",
      "F(P_i) per indicator stage over C1.1 ... C1.5 (higher is better).\n"
      "Expected shape: P^{U,P} groups by node count and cannot rank C1.5\n"
      "above C1.4; adding the allocation layer isolates C1.5; at the final\n"
      "stage C1.5 > C1.4 > C1.1, C1.2, C1.3 — co-locating each simulation\n"
      "with its own analysis wins.");

  Table table({"config", "E (EM1)", "E (EM2)", "F(P^U)", "F(P^{U,P})",
               "F(P^{U,A})", "F(P^{U,A,P}) = F(P^{U,P,A})"});
  for (const auto& run : bench::run_set(wl::paper_set1())) {
    const auto& a = run.assessment;
    table.add_row({run.config.name, fixed(a.members[0].efficiency, 3),
                   fixed(a.members[1].efficiency, 3),
                   sci(a.objective(IndicatorKind::kU), 3),
                   sci(a.objective(IndicatorKind::kUP), 3),
                   sci(a.objective(IndicatorKind::kUA), 3),
                   sci(a.objective(IndicatorKind::kUAP), 3)});
  }
  std::cout << table.render();

  // The single-member baselines give the headline co-location contrast.
  Table base({"config", "E", "F(P^U)", "F(P^{U,A,P})"});
  for (const auto& run :
       bench::run_set({wl::paper_config("Cf"), wl::paper_config("Cc")})) {
    const auto& a = run.assessment;
    base.add_row({run.config.name, fixed(a.members[0].efficiency, 3),
                  sci(a.objective(IndicatorKind::kU), 3),
                  sci(a.objective(IndicatorKind::kUAP), 3)});
  }
  std::cout << "\nSingle-member baselines (co-location-free vs co-located):\n"
            << base.render();
  return 0;
}
