// Extension — multi-node components.
//
// The paper's notation lets a component occupy a node SET (s_i, a_i^j);
// its experiments never exercise |s_i| > 1. This experiment scales one
// member's simulation allocation up and across nodes and shows the trade
// the indicator navigates: spanning nodes buys cores (shorter S*) at a
// cross-node scaling penalty, changes the read's data locality (shards
// fetched from every producer node), and moves CP/M — so F(P^{U,A,P})
// arbitrates between "one big co-located member" and "spread but faster".
#include "bench_common.hpp"

#include "core/placement.hpp"

int main() {
  using namespace wfe;
  using core::IndicatorKind;
  bench::print_banner(
      "Extension: multi-node simulation allocations",
      "One member, bipartite analysis on 8 cores; the simulation's core\n"
      "count and node set vary. sigma* shrinks with cores until the\n"
      "analysis side dominates; CP and M penalize the extra nodes.");

  rt::SimulatedExecutor exec(wl::cori_like_platform());

  struct Case {
    const char* label;
    std::set<int> sim_nodes;
    int sim_cores;
    std::set<int> ana_nodes;
  };
  const Case cases[] = {
      {"16c sim on n0, ana on n0 (Cc)", {0}, 16, {0}},
      {"24c sim on n0, ana on n0", {0}, 24, {0}},
      {"32c sim on n0, ana on n1", {0}, 32, {1}},
      {"32c sim on n0+n1, ana on n1", {0, 1}, 32, {1}},
      {"48c sim on n0+n1, ana on n1", {0, 1}, 48, {1}},
      {"64c sim on n0+n1, ana on n2", {0, 1}, 64, {2}},
  };

  Table table({"allocation", "S* [s]", "R* [s]", "sigma* [s]", "E", "CP",
               "M", "F(P^{U,A,P})"});
  for (const Case& c : cases) {
    rt::EnsembleSpec spec;
    spec.n_steps = 6;
    rt::MemberSpec m;
    m.sim = wl::gltph_like_simulation(c.sim_nodes, c.sim_cores);
    m.analyses.push_back(wl::bipartite_like_analysis(c.ana_nodes));
    spec.members.push_back(std::move(m));

    const auto a = rt::assess(spec, exec.run(spec));
    table.add_row(
        {c.label, fixed(a.members[0].steady.sim.s, 2),
         fixed(a.members[0].steady.analyses[0].r, 3),
         fixed(a.members[0].sigma, 2), fixed(a.members[0].efficiency, 3),
         fixed(core::placement_indicator(spec.members[0].placement()), 2),
         strprintf("%d", a.total_nodes),
         sci(a.objective(IndicatorKind::kUAP), 3)});
  }
  std::cout << table.render();
  return 0;
}
