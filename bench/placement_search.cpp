// Placement search — the paper's future-work use case: enumerate every
// distinct placement of the paper-shaped ensemble on a 3-node pool, score
// each with F(P^{U,A,P}), and rank. The fully co-located C1.5 shape must
// come out on top.
//
// Phase 2 then scales the same search up (4 members over a 4-node pool,
// ~2.8k canonical candidates) and times it through the parallel
// BatchEvaluator, writing the throughput numbers to BENCH_search.json.
// `--threads N` sets the worker count for both phases; the ranking and the
// winning placement are bit-identical for every N (see docs/PERF.md).
#include "bench_common.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "sched/batch_evaluator.hpp"
#include "sched/candidates.hpp"
#include "sched/scheduler.hpp"
#include "workload/generators.hpp"

namespace {

/// Render an assignment in the s0a0|s1a1 naming of enumerate_placements:
/// per member, the sim's node then each analysis' node.
std::string assignment_name(const wfe::sched::EnsembleShape& shape,
                            const wfe::sched::Assignment& assignment) {
  std::string out;
  std::size_t slot = 0;
  for (const auto& m : shape.members) {
    if (!out.empty()) out += "|";
    out += "s" + std::to_string(assignment[slot++]);
    for (std::size_t a = 0; a < m.analyses.size(); ++a) {
      out += "a" + std::to_string(assignment[slot++]);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wfe;
  using core::IndicatorKind;

  int threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    }
  }
  if (threads < 1) threads = 1;

  bench::print_banner(
      "Placement search (paper §7, future work)",
      "Exhaustive enumeration of component placements for 2 members x\n"
      "(1 simulation + 1 analysis) over 3 nodes, ranked by F(P^{U,A,P}).\n"
      "Names encode assignments: s0a0|s1a1 means member 1 fully on node 0\n"
      "and member 2 fully on node 1 (= C1.5).");

  const auto platform = wl::cori_like_platform();

  wl::EnumerationOptions opt;
  opt.members = 2;
  opt.analyses_per_member = 1;
  opt.node_pool = 3;
  auto candidates = wl::enumerate_placements(platform, opt);

  std::vector<rt::EnsembleSpec> specs;
  specs.reserve(candidates.size());
  for (auto& c : candidates) {
    c.spec.n_steps = 6;  // steady state is immediate in simulated mode
    specs.push_back(c.spec);
  }
  sched::BatchEvaluator evaluator(platform, threads);
  const auto scores = evaluator.score_specs(specs);

  struct Scored {
    std::string name;
    int nodes;
    double f;
    double makespan;
  };
  std::vector<Scored> scored;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    scored.push_back({candidates[i].name, candidates[i].nodes,
                      scores[i].eval.objective,
                      scores[i].eval.ensemble_makespan});
  }
  std::sort(scored.begin(), scored.end(),
            [](const Scored& x, const Scored& y) { return x.f > y.f; });

  Table table({"rank", "placement", "nodes (M)", "F(P^{U,A,P})",
               "ensemble makespan [s]"});
  for (std::size_t i = 0; i < scored.size(); ++i) {
    table.add_row({strprintf("%zu", i + 1), scored[i].name,
                   strprintf("%d", scored[i].nodes), sci(scored[i].f, 3),
                   fixed(scored[i].makespan, 1)});
  }
  std::cout << table.render();
  std::cout << "\nBest placement: " << scored.front().name
            << (scored.front().name == "s0a0|s1a1"
                    ? "  (C1.5's shape, matching the paper)"
                    : "")
            << "\n";

  // Phase 2: the scaled-up search the parallel engine exists for. 4 members
  // x (1 sim + 1 analysis) = 8 slots over a 4-node pool -> 2795 canonical
  // candidates, each infeasibility-checked and (if feasible) replayed.
  const auto big_shape = sched::EnsembleShape::paper_like(4, 1);
  const int big_pool = 4;
  const auto assignments =
      sched::enumerate_assignments(sched::slot_count(big_shape), big_pool);
  std::cout << "\nScaled search: 4 members x (1 sim + 1 analysis) over "
            << big_pool << " nodes, " << assignments.size()
            << " canonical placements, threads=" << threads << "\n";

  sched::BatchEvaluator big(platform, threads);
  const bench::Stopwatch timer;
  const auto big_scores = big.score_assignments(big_shape, assignments);
  const double wall_s = timer.seconds();

  std::vector<sched::ScoredCandidate> reduced;
  reduced.reserve(big_scores.size());
  for (const auto& s : big_scores) reduced.push_back(s.scored());
  const auto winner = sched::pick_winner(reduced, assignments);

  const std::size_t evals = big.evaluations();
  const std::uint64_t events = big.events_processed();
  std::cout << "  replays:      " << evals << " (of " << assignments.size()
            << " candidates; the rest failed validation)\n"
            << "  wall clock:   " << fixed(wall_s, 3) << " s\n"
            << "  evaluations/s: "
            << fixed(static_cast<double>(evals) / wall_s, 1) << "\n"
            << "  engine events: " << events << " ("
            << sci(static_cast<double>(events) / wall_s, 3) << " events/s)\n";
  if (winner) {
    std::cout << "  best placement: "
              << assignment_name(big_shape, assignments[*winner]) << "  F = "
              << sci(big_scores[*winner].eval.objective, 3) << "\n";
  }

  bench::JsonReport report;
  report.add("bench", "placement_search");
  report.add("threads", threads);
  report.add("candidates", assignments.size());
  report.add("evaluations", evals);
  report.add("wall_s", wall_s);
  report.add("evaluations_per_s", static_cast<double>(evals) / wall_s);
  report.add("engine_events", events);
  report.add("engine_events_per_s", static_cast<double>(events) / wall_s);
  if (winner) {
    report.add("best_placement",
               assignment_name(big_shape, assignments[*winner]));
    report.add("best_objective", big_scores[*winner].eval.objective);
  }
  report.write("BENCH_search.json");
  return 0;
}
