// Placement search — the paper's future-work use case: enumerate every
// distinct placement of the paper-shaped ensemble on a 3-node pool, score
// each with F(P^{U,A,P}), and rank. The fully co-located C1.5 shape must
// come out on top.
#include "bench_common.hpp"

#include <algorithm>

#include "workload/generators.hpp"

int main() {
  using namespace wfe;
  using core::IndicatorKind;
  bench::print_banner(
      "Placement search (paper §7, future work)",
      "Exhaustive enumeration of component placements for 2 members x\n"
      "(1 simulation + 1 analysis) over 3 nodes, ranked by F(P^{U,A,P}).\n"
      "Names encode assignments: s0a0|s1a1 means member 1 fully on node 0\n"
      "and member 2 fully on node 1 (= C1.5).");

  const auto platform = wl::cori_like_platform();
  rt::SimulatedExecutor exec(platform);

  wl::EnumerationOptions opt;
  opt.members = 2;
  opt.analyses_per_member = 1;
  opt.node_pool = 3;
  auto candidates = wl::enumerate_placements(platform, opt);

  struct Scored {
    std::string name;
    int nodes;
    double f;
    double makespan;
  };
  std::vector<Scored> scored;
  for (auto& c : candidates) {
    c.spec.n_steps = 6;  // steady state is immediate in simulated mode
    const auto a = rt::assess(c.spec, exec.run(c.spec));
    scored.push_back({c.name, c.nodes, a.objective(IndicatorKind::kUAP),
                      a.ensemble_makespan_measured});
  }
  std::sort(scored.begin(), scored.end(),
            [](const Scored& x, const Scored& y) { return x.f > y.f; });

  Table table({"rank", "placement", "nodes (M)", "F(P^{U,A,P})",
               "ensemble makespan [s]"});
  for (std::size_t i = 0; i < scored.size(); ++i) {
    table.add_row({strprintf("%zu", i + 1), scored[i].name,
                   strprintf("%d", scored[i].nodes), sci(scored[i].f, 3),
                   fixed(scored[i].makespan, 1)});
  }
  std::cout << table.render();
  std::cout << "\nBest placement: " << scored.front().name
            << (scored.front().name == "s0a0|s1a1"
                    ? "  (C1.5's shape, matching the paper)"
                    : "")
            << "\n";
  return 0;
}
