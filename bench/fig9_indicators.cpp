// Figure 9 — the objective F(P_i) at every indicator stage over the
// two-analyses-per-simulation configurations C2.1 ... C2.8 (Table 4).
#include "bench_common.hpp"

int main() {
  using namespace wfe;
  using core::IndicatorKind;
  bench::print_banner(
      "Figure 9",
      "F(P_i) per indicator stage over C2.1 ... C2.8 (higher is better).\n"
      "Expected shape: P^{U,P} splits the set into the 2-node group\n"
      "(C2.6, C2.7, C2.8) and the 3-node group; the allocation layer\n"
      "isolates C2.8 (every simulation co-located with both of its\n"
      "analyses) as the best configuration, and separates C2.6/C2.7 from\n"
      "the spread 3-node configurations.");

  Table table({"config", "nodes (M)", "F(P^U)", "F(P^{U,P})", "F(P^{U,A})",
               "F(P^{U,A,P}) = F(P^{U,P,A})"});
  for (const auto& run : bench::run_set(wl::paper_table4())) {
    const auto& a = run.assessment;
    table.add_row({run.config.name, strprintf("%d", a.total_nodes),
                   sci(a.objective(IndicatorKind::kU), 3),
                   sci(a.objective(IndicatorKind::kUP), 3),
                   sci(a.objective(IndicatorKind::kUA), 3),
                   sci(a.objective(IndicatorKind::kUAP), 3)});
  }
  std::cout << table.render();
  return 0;
}
