// Figure 4 — ensemble-member makespan per configuration (Table 2 set):
// the timespan between the simulation start and the latest analysis end.
#include "bench_common.hpp"

int main() {
  using namespace wfe;
  bench::print_banner(
      "Figure 4",
      "Member makespans across the Table 2 configurations.\n"
      "Expected shape: C1.5 members are the fastest among the two-member\n"
      "configurations; C1.4 members the slowest (analysis contention on a\n"
      "shared node plus remote staging reads).");

  Table table({"config", "member", "makespan [s]", "sigma* [s]",
               "makespan model (Eq. 2) [s]", "regime of coupling 0"});
  for (const auto& run : bench::run_set(wl::paper_table2())) {
    for (std::size_t i = 0; i < run.assessment.members.size(); ++i) {
      const auto& m = run.assessment.members[i];
      table.add_row({run.config.name, strprintf("EM%zu", i + 1),
                     fixed(m.makespan_measured, 1), fixed(m.sigma, 2),
                     fixed(m.makespan_model, 1),
                     core::to_string(core::classify_coupling(m.steady, 0))});
    }
  }
  std::cout << table.render();
  return 0;
}
