// Component-attributed replay profile — where does a replay's wall time go?
//
// Links the wfens_runtime_prof twin of the runtime library (the same
// simulated executor TU compiled with WFENS_REPLAY_PROFILE=1), so the
// replay hot path carries scoped section timers: interference pricing,
// stage-model staging math, and metrics recording accumulate into the
// obs::replay_profile counters, and everything left over is attributed to
// engine dispatch (queue pops + callback invocation). Runs the same C1.5
// replay series as bench_engine_throughput and writes
// BENCH_replay_profile.json — the regression tripwire that tells future
// PRs *which* component slowed down, not just that something did.
//
// Caveat: the section timers cost two steady-clock reads per scope, so the
// instrumented replay is slower than the production one and short sections
// (metrics pushes) read high. Percentages are for attribution trends, not
// absolute cost accounting — compare against BENCH_engine.json for the
// uninstrumented rate.
//
// `--quick` shrinks the series for CI smoke runs: the JSON keeps the full
// schema (plus "mode": "quick") but the numbers are noisier.
#include "bench_common.hpp"

#include <algorithm>
#include <cstring>

#include "obs/replay_profile.hpp"

int main(int argc, char** argv) {
  using namespace wfe;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  bench::print_banner(
      "Replay hot-path profile",
      "Per-component wall-time attribution of the C1.5 replay series:\n"
      "engine dispatch vs interference pricing vs stage model vs metrics.\n"
      "Requires the profiled runtime twin (wfens_runtime_prof).");

  const int replays = quick ? 3 : 50;
  const auto c15 = wl::paper_config("C1.5");
  rt::SimulatedExecutor exec(wl::cori_like_platform());

  // Warm-up replay (allocator, code paths), then measure with clean
  // accumulators.
  (void)exec.run(c15.spec);
  obs::replay_profile::reset();

  const bench::Stopwatch timer;
  std::uint64_t events = 0;
  for (int i = 0; i < replays; ++i) {
    events += exec.run(c15.spec).events_processed;
  }
  const double wall_s = timer.seconds();
  const obs::ReplayProfileSnapshot snap = obs::replay_profile::snapshot();

  // Self-check for the twin-library link order: if the uninstrumented
  // simulated_executor.o won archive resolution, every section stays zero
  // and the numbers below would silently lie.
  if (snap.total_ns() == 0) {
    std::cerr << "error: profiler sections are all zero - "
                 "wfens_runtime_prof is not linked ahead of wfens_runtime\n";
    return 1;
  }

  const double wall_ns = wall_s * 1e9;
  const double section_ns = static_cast<double>(snap.total_ns());
  // Engine dispatch is the remainder of the wall time; if timer overhead
  // pushes the section sum past the wall clock, clamp to zero and let the
  // sections own 100%.
  const double engine_ns = std::max(0.0, wall_ns - section_ns);
  const double denom = engine_ns + section_ns;

  const auto pct = [&](double ns) { return 100.0 * ns / denom; };
  const auto sect = [&](obs::ReplaySection s) {
    return static_cast<double>(snap.ns[static_cast<std::size_t>(s)]);
  };
  const double interference_ns = sect(obs::ReplaySection::kInterference);
  const double stage_model_ns = sect(obs::ReplaySection::kStageModel);
  const double metrics_ns = sect(obs::ReplaySection::kMetrics);

  std::cout << "replay series: " << c15.name << " x" << replays << ", "
            << events << " events, " << sci(wall_s, 3) << " s wall\n\n";
  const auto row = [](const char* name, double ns, double p,
                      std::uint64_t calls) {
    std::cout << "  " << name << ": " << sci(ns / 1e9, 3) << " s ("
              << sci(p, 3) << " %), " << calls << " scopes\n";
  };
  row("engine dispatch ", engine_ns, pct(engine_ns), 0);
  row("interference    ", interference_ns, pct(interference_ns),
      snap.calls[0]);
  row("stage model     ", stage_model_ns, pct(stage_model_ns), snap.calls[1]);
  row("metrics         ", metrics_ns, pct(metrics_ns), snap.calls[2]);

  bench::JsonReport report;
  report.add("bench", "replay_profile");
  report.add("mode", quick ? "quick" : "full");
  report.add("replay_config", c15.name);
  report.add("replay_count", replays);
  report.add("replay_events", events);
  report.add("wall_s", wall_s);
  report.add("engine_dispatch_ns", engine_ns);
  report.add("interference_ns", interference_ns);
  report.add("stage_model_ns", stage_model_ns);
  report.add("metrics_ns", metrics_ns);
  report.add("engine_dispatch_pct", pct(engine_ns));
  report.add("interference_pct", pct(interference_ns));
  report.add("stage_model_pct", pct(stage_model_ns));
  report.add("metrics_pct", pct(metrics_ns));
  report.add("interference_calls", snap.calls[0]);
  report.add("stage_model_calls", snap.calls[1]);
  report.add("metrics_calls", snap.calls[2]);
  report.write("BENCH_replay_profile.json");
  return 0;
}
