// Campaign driver glue: run the paper's figure/table units through one
// shared, cache-backed scoring pipeline.
//
// A campaign regeneration (EXPERIMENTS.md) replays the same paper
// configurations many times: Table 2 contains the C1.x sweep that Figures
// 3-5 and 8 re-plot, Table 4 shares the platform and demand model, and
// repeated regenerations replay everything. Each CampaignUnit names one
// artifact's configuration set; run_campaign() scores every unit through a
// BatchEvaluator (exec::ThreadPool fan-out) attached to a shared
// sched::EvalCache, so any (platform, placement, demand) probe is
// simulated at most once per cache lifetime — across units, and across
// processes when the cache is disk-persisted (see tools/wfens_campaign).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sched/eval_cache.hpp"
#include "workload/paper_configs.hpp"

namespace wfe::bench {

/// One figure/table regeneration unit: a named set of paper
/// configurations probed at a fixed step count.
struct CampaignUnit {
  std::string name;      ///< CLI handle, e.g. "table2"
  std::string artifact;  ///< what the unit regenerates
  std::vector<wl::NamedConfig> configs;
  std::uint64_t probe_steps = 37;  ///< the paper's in situ step count
};

/// Score of one configuration inside a unit.
struct CampaignRow {
  std::string config;
  bool feasible = false;
  bool cached = false;  ///< served without a fresh simulation
  sched::Evaluation eval;
};

struct CampaignUnitResult {
  std::string unit;
  std::vector<CampaignRow> rows;
  std::size_t evaluations = 0;  ///< fresh simulations this unit cost
  std::size_t cache_hits = 0;
  double seconds = 0.0;
};

/// The paper's standard campaign: Table 2, Table 4, and the C1.x sweep
/// (Figures 3-5/8 replot rows already scored for Table 2 — the in-process
/// dedup case; rerunning the whole campaign against a warm disk cache is
/// the cross-process case).
std::vector<CampaignUnit> campaign_units();

/// Run `units` at `threads` parallelism against `shared` (may be null for
/// an uncached run). Unit order is preserved; row order follows each
/// unit's config order, so output is deterministic for any thread count.
std::vector<CampaignUnitResult> run_campaign(
    const std::vector<CampaignUnit>& units, int threads,
    sched::EvalCache* shared);

/// One planned placement of a plan campaign (wfens_campaign --plan): the
/// named scheduler run over one paper-shaped demand, with its cost split
/// (fresh replays / memo hits / shared-tier hits / samples issued).
struct PlanRow {
  std::string scheduler;
  std::string shape;  ///< demand handle, e.g. "paper-2x1/pool3"
  double objective = 0.0;  ///< full-depth score of the planned placement
  std::size_t evaluations = 0;
  std::size_t cache_hits = 0;
  std::size_t shared_hits = 0;
  std::size_t samples = 0;
  double seconds = 0.0;
};

/// Plan the standard paper-shaped demands with each named scheduler, all
/// through one shared EvalCache (PlanOptions::shared_cache): a probe any
/// scheduler has already paid for — exhaustive before bai-search, or a
/// previous process via EvalCache::load — is served from the shared tier,
/// which the rows' shared_hits column makes visible. Row order is
/// (scheduler, shape) in argument order; deterministic for any `threads`.
std::vector<PlanRow> run_plan_campaign(
    const std::vector<std::string>& schedulers, int threads,
    sched::EvalCache* shared);

}  // namespace wfe::bench
