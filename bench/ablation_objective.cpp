// Ablation — the Eq. (9) aggregation choice. Compare mean - stddev (the
// paper) against plain mean, min, and mean - 2*stddev: does the straggler
// penalty change which configuration wins?
#include "bench_common.hpp"

#include <algorithm>

#include "support/stats.hpp"

int main() {
  using namespace wfe;
  using core::IndicatorKind;
  bench::print_banner(
      "Ablation: ensemble-level aggregation (Eq. 9)",
      "F = mean - stddev (paper) vs alternatives over the member\n"
      "indicators P^{U,A,P}. The stddev penalty demotes asymmetric\n"
      "configurations (e.g. C1.3: one co-located member, one spread\n"
      "member) that plain mean would rank optimistically.");

  auto aggregate = [](std::span<const double> p, const std::string& how) {
    if (how == "mean") return mean(p);
    if (how == "min") return *std::min_element(p.begin(), p.end());
    if (how == "mean-std") return mean(p) - stddev_population(p);
    return mean(p) - 2.0 * stddev_population(p);  // mean-2std
  };
  const std::vector<std::string> hows{"mean", "mean-std", "mean-2std", "min"};

  for (const auto& set : {wl::paper_set1(), wl::paper_table4()}) {
    Table table({"config", "mean", "mean-std (paper)", "mean-2std", "min"});
    std::map<std::string, std::pair<std::string, double>> winner;
    for (const auto& run : bench::run_set(set)) {
      const auto p = run.assessment.member_indicators(IndicatorKind::kUAP);
      std::vector<std::string> row{run.config.name};
      for (const auto& how : hows) {
        const double f = aggregate(p, how);
        row.push_back(sci(f, 3));
        auto [it, fresh] = winner.emplace(
            how, std::make_pair(run.config.name, f));
        if (!fresh && f > it->second.second) {
          it->second = {run.config.name, f};
        }
      }
      // Reorder: mean, mean-std, mean-2std, min (matches headers).
      table.add_row({row[0], row[1], row[2], row[3], row[4]});
    }
    std::cout << table.render();
    std::cout << "Winners:";
    for (const auto& how : hows) {
      std::cout << "  " << how << " -> " << winner[how].first;
    }
    std::cout << "\n\n";
  }
  return 0;
}
