// Extension — ensemble-size scaling (the provisioning question).
//
// The paper studies N = 1 and N = 2 members; here the ensemble grows
// N = 1..6 (greedy-placed on an 8-node pool) and the indicator tracks the
// provisioning cost: per-member efficiency stays flat (each member gets
// its own co-located node), while F(P^{U,A,P}) decays as 1/M because the
// provisioning layer charges every member for the whole ensemble's nodes.
// This is exactly Eq. (8)'s design: a fixed-efficiency workflow should
// score lower when it needs more machine to exist.
#include "bench_common.hpp"

#include "sched/evaluator.hpp"
#include "sched/greedy.hpp"

int main() {
  using namespace wfe;
  using core::IndicatorKind;
  bench::print_banner(
      "Extension: ensemble-size scaling",
      "N = 1..6 members (1 sim + 1 analysis each), greedy-placed on an\n"
      "8-node pool. E per member stays flat; F decays with the nodes\n"
      "provisioned (Eq. 8's 1/M).");

  const auto platform = wl::cori_like_platform(8);
  sched::Evaluator evaluator(platform);
  sched::GreedyColocation scheduler;

  Table table({"members (N)", "nodes used (M)", "min member E",
               "ensemble makespan [s]", "F(P^{U,A,P})", "F x M (flatness)"});
  for (int n = 1; n <= 6; ++n) {
    const auto schedule = scheduler.plan(
        sched::EnsembleShape::paper_like(n, 1), platform, {8});
    const auto e = evaluator.score(schedule.spec, 8);
    table.add_row({strprintf("%d", n), strprintf("%d", e.nodes_used),
                   fixed(e.min_member_efficiency, 3),
                   fixed(e.ensemble_makespan * 37.0 / 8.0, 0),
                   sci(e.objective, 3),
                   sci(e.objective * e.nodes_used, 3)});
  }
  std::cout << table.render();
  return 0;
}
