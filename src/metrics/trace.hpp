// Stage-interval tracing: the TAU substitute.
//
// Both executors emit one StageRecord per fine-grained stage per in situ
// step — the same observables the paper collects with TAU (runtimes,
// performance counters) — and every downstream consumer (traditional
// metrics of Table 1, steady-state extraction, the efficiency model) reads
// from this one representation.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/stages.hpp"
#include "platform/counters.hpp"
#include "support/lock_rank.hpp"

namespace wfe::met {

/// Identifies one ensemble component: the simulation of a member
/// (analysis == -1) or its analysis #j (analysis == j >= 0).
struct ComponentId {
  std::uint32_t member = 0;
  std::int32_t analysis = -1;

  bool is_simulation() const { return analysis < 0; }
  std::string str() const;

  friend bool operator==(const ComponentId&, const ComponentId&) = default;
  friend auto operator<=>(const ComponentId&, const ComponentId&) = default;
};

/// One executed stage interval.
struct StageRecord {
  ComponentId component;
  std::uint64_t step = 0;
  core::StageKind kind = core::StageKind::kSimulate;
  double start = 0.0;  ///< seconds (virtual time in simulated mode)
  double end = 0.0;
  /// Synthesized (simulated mode) or modelled (native mode) counters;
  /// zero for idle and I/O stages.
  plat::HwCounters counters;

  double duration() const { return end - start; }
};

class Trace;

/// Thread-safe appender used while an execution is in flight.
class TraceRecorder {
 public:
  void record(StageRecord record);

  /// Move the accumulated records out into an immutable Trace (sorted by
  /// start time, then component). The recorder is left empty.
  Trace take();

 private:
  using Mutex = support::RankedMutex<support::kRankMetricsTrace>;

  Mutex mutex_;
  std::vector<StageRecord> records_;
};

/// An immutable, queryable execution trace.
class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<StageRecord> records);

  std::span<const StageRecord> records() const { return records_; }
  bool empty() const { return records_.empty(); }
  std::size_t size() const { return records_.size(); }

  /// Sorted unique component ids appearing in the trace.
  std::vector<ComponentId> components() const;

  /// Sorted unique member ids appearing in the trace.
  std::vector<std::uint32_t> members() const;

  /// All records of one component, in start order.
  std::vector<StageRecord> for_component(const ComponentId& id) const;

  /// Earliest stage start / latest stage end of a component.
  /// Throw InvalidArgument if the component has no records.
  double component_start(const ComponentId& id) const;
  double component_end(const ComponentId& id) const;

  /// Number of distinct steps recorded for a component.
  std::uint64_t step_count(const ComponentId& id) const;

  /// Aggregated hardware counters of a component over the whole run.
  plat::HwCounters component_counters(const ComponentId& id) const;

  /// Total time a component spent in one stage kind.
  double total_in_stage(const ComponentId& id, core::StageKind kind) const;

 private:
  std::vector<StageRecord> records_;
};

}  // namespace wfe::met
