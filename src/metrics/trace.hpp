// Stage-interval tracing: the TAU substitute.
//
// Both executors emit one StageRecord per fine-grained stage per in situ
// step — the same observables the paper collects with TAU (runtimes,
// performance counters) — and every downstream consumer (traditional
// metrics of Table 1, steady-state extraction, the efficiency model) reads
// from this one representation.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/stages.hpp"
#include "platform/counters.hpp"
#include "support/lock_rank.hpp"

namespace wfe::met {

/// Identifies one ensemble component: the simulation of a member
/// (analysis == -1) or its analysis #j (analysis == j >= 0).
struct ComponentId {
  std::uint32_t member = 0;
  std::int32_t analysis = -1;

  bool is_simulation() const { return analysis < 0; }
  std::string str() const;

  friend bool operator==(const ComponentId&, const ComponentId&) = default;
  friend auto operator<=>(const ComponentId&, const ComponentId&) = default;
};

/// One executed stage interval.
struct StageRecord {
  ComponentId component;
  std::uint64_t step = 0;
  core::StageKind kind = core::StageKind::kSimulate;
  double start = 0.0;  ///< seconds (virtual time in simulated mode)
  double end = 0.0;
  /// Synthesized (simulated mode) or modelled (native mode) counters;
  /// zero for idle and I/O stages.
  plat::HwCounters counters;

  double duration() const { return end - start; }
};

class Trace;

/// Thread-safe appender used while an execution is in flight.
class TraceRecorder {
 public:
  void record(StageRecord record);

  /// Move the accumulated records out into an immutable Trace (sorted by
  /// start time, then component). The recorder is left empty.
  Trace take();

 private:
  using Mutex = support::RankedMutex<support::kRankMetricsTrace>;

  Mutex mutex_;
  std::vector<StageRecord> records_;
};

/// Columnar (SoA) stage buffer for the replay hot path.
///
/// A push appends to parallel arrays (component / step / kind / start / end)
/// instead of constructing a StageRecord per event; HwCounters — which only
/// compute stages (S/A) carry — live in a dense side array referenced by a
/// sparse slot column, and a per-buffer running total plus per-kind counts
/// are maintained incrementally so end-of-run accounting flushes one
/// accumulator instead of re-walking every stage. `take_trace()` materializes
/// the rows in insertion order and applies the exact `(start, component)`
/// stable sort of `Trace(std::vector<StageRecord>)`, so the merged trace is
/// byte-identical to recording AoS records directly (proven by
/// tests/metrics/test_stage_columns.cpp). Single-threaded by design: replays
/// are independent deterministic simulations, so unlike TraceRecorder there
/// is no lock on the push path.
class StageColumns {
 public:
  /// Pre-size every column for `n` stages (the replay pre-sizes from
  /// n_steps × components so steady-state pushes never reallocate).
  void reserve(std::size_t n) {
    if (n > capacity_) grow(n);
  }

  /// Append a counter-less stage (idle, I/O, fault bookkeeping): one
  /// capacity check, then plain column stores — the columns share the size
  /// counter, so there is no per-vector bounds bookkeeping.
  void push(const ComponentId& component, std::uint64_t step,
            core::StageKind kind, double start, double end) {
    if (size_ == capacity_) grow(capacity_ == 0 ? 64 : capacity_ * 2);
    component_[size_] = component;
    step_[size_] = step;
    kind_[size_] = kind;
    start_[size_] = start;
    end_[size_] = end;
    counter_slot_[size_] = 0;
    ++kind_counts_[static_cast<std::size_t>(kind)];
    ++size_;
  }

  /// Append a compute stage carrying synthesized counters.
  void push(const ComponentId& component, std::uint64_t step,
            core::StageKind kind, double start, double end,
            const plat::HwCounters& counters) {
    if (size_ == capacity_) grow(capacity_ == 0 ? 64 : capacity_ * 2);
    counters_.push_back(counters);
    total_ += counters;
    component_[size_] = component;
    step_[size_] = step;
    kind_[size_] = kind;
    start_[size_] = start;
    end_[size_] = end;
    counter_slot_[size_] = static_cast<std::uint32_t>(counters_.size());
    ++kind_counts_[static_cast<std::size_t>(kind)];
    ++size_;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Row access in insertion order, for the LP-partitioned replay: the
  // merge re-pushes every lane's rows into one buffer in the sequential
  // global event order, so counter totals accumulate in the identical
  // floating-point order and take_trace() sees the identical insertion
  // sequence.
  const ComponentId& row_component(std::size_t i) const {
    return component_[i];
  }
  std::uint64_t row_step(std::size_t i) const { return step_[i]; }
  core::StageKind row_kind(std::size_t i) const { return kind_[i]; }
  double row_start(std::size_t i) const { return start_[i]; }
  double row_end(std::size_t i) const { return end_[i]; }
  /// The row's counters, or null for a counter-less stage — so a re-push
  /// preserves which push() overload recorded it.
  const plat::HwCounters* row_counters(std::size_t i) const {
    return counter_slot_[i] == 0 ? nullptr : &counters_[counter_slot_[i] - 1];
  }

  /// Running sum of every pushed HwCounters — the per-replay accumulator
  /// flushed once into ExecutionResult instead of per stage.
  const plat::HwCounters& counter_total() const { return total_; }

  /// Stages pushed so far of one kind.
  std::uint64_t kind_count(core::StageKind kind) const {
    return kind_counts_[static_cast<std::size_t>(kind)];
  }

  /// Capacity-retaining reset (reuse across replays).
  void clear();

  /// Materialize the columns into an immutable Trace (same `(start,
  /// component)` stable sort as the AoS constructor) and reset the buffer,
  /// retaining capacity. The sort runs over a 4-byte index permutation of
  /// the columns rather than the 72-byte materialized records; a stable
  /// sort's output is uniquely determined by the comparator, so the result
  /// is byte-identical to sorting the records themselves.
  Trace take_trace();

 private:
  /// Grow every column to at least `n` slots (size_ stays put; the columns
  /// are plain slot arrays indexed by the shared size counter).
  void grow(std::size_t n);

  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
  std::vector<ComponentId> component_;
  std::vector<std::uint64_t> step_;
  std::vector<core::StageKind> kind_;
  std::vector<double> start_;
  std::vector<double> end_;
  /// 1-based index into counters_; 0 = the stage carries no counters.
  std::vector<std::uint32_t> counter_slot_;
  std::vector<plat::HwCounters> counters_;
  /// Scratch permutation reused across take_trace() calls.
  std::vector<std::uint32_t> order_;
  plat::HwCounters total_;
  std::array<std::uint64_t, core::kStageKindCount> kind_counts_{};
};

/// An immutable, queryable execution trace.
class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<StageRecord> records);

  /// Adopt records that are ALREADY in the `(start, component)` stable
  /// order the sorting constructor produces — no re-sort. Used by
  /// StageColumns::take_trace(), which sorts a column-index permutation
  /// and materializes records directly in final order.
  static Trace from_sorted(std::vector<StageRecord> records);

  std::span<const StageRecord> records() const { return records_; }
  bool empty() const { return records_.empty(); }
  std::size_t size() const { return records_.size(); }

  /// Sorted unique component ids appearing in the trace.
  std::vector<ComponentId> components() const;

  /// Sorted unique member ids appearing in the trace.
  std::vector<std::uint32_t> members() const;

  /// All records of one component, in start order.
  std::vector<StageRecord> for_component(const ComponentId& id) const;

  /// Earliest stage start / latest stage end of a component.
  /// Throw InvalidArgument if the component has no records.
  double component_start(const ComponentId& id) const;
  double component_end(const ComponentId& id) const;

  /// Number of distinct steps recorded for a component.
  std::uint64_t step_count(const ComponentId& id) const;

  /// Aggregated hardware counters of a component over the whole run.
  plat::HwCounters component_counters(const ComponentId& id) const;

  /// Total time a component spent in one stage kind.
  double total_in_stage(const ComponentId& id, core::StageKind kind) const;

 private:
  std::vector<StageRecord> records_;
};

}  // namespace wfe::met
