#include "metrics/traditional.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace wfe::met {

ComponentMetrics component_metrics(const Trace& trace, const ComponentId& id) {
  ComponentMetrics m;
  m.component = id;
  m.execution_time = trace.component_end(id) - trace.component_start(id);
  const plat::HwCounters counters = trace.component_counters(id);
  m.llc_miss_ratio = counters.llc_miss_ratio();
  m.memory_intensity = counters.memory_intensity();
  m.ipc = counters.ipc();
  return m;
}

std::vector<ComponentMetrics> all_component_metrics(const Trace& trace) {
  std::vector<ComponentMetrics> out;
  for (const ComponentId& id : trace.components()) {
    out.push_back(component_metrics(trace, id));
  }
  return out;
}

double member_makespan(const Trace& trace, std::uint32_t member) {
  bool have_sim = false;
  double sim_start = 0.0;
  bool have_ana = false;
  double latest_ana_end = 0.0;
  for (const StageRecord& r : trace.records()) {
    if (r.component.member != member) continue;
    if (r.component.is_simulation()) {
      if (!have_sim || r.start < sim_start) sim_start = r.start;
      have_sim = true;
    } else {
      if (!have_ana || r.end > latest_ana_end) latest_ana_end = r.end;
      have_ana = true;
    }
  }
  WFE_REQUIRE(have_sim, "member has no simulation records");
  WFE_REQUIRE(have_ana, "member has no analysis records");
  return latest_ana_end - sim_start;
}

double ensemble_makespan(const Trace& trace) {
  const std::vector<std::uint32_t> members = trace.members();
  WFE_REQUIRE(!members.empty(), "empty trace");
  double span = 0.0;
  for (std::uint32_t m : members) {
    span = std::max(span, member_makespan(trace, m));
  }
  return span;
}

}  // namespace wfe::met
