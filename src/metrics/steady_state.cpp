#include "metrics/steady_state.hpp"

#include <algorithm>
#include <map>

#include "support/error.hpp"
#include "support/stats.hpp"

namespace wfe::met {

double steady_stage_duration(const Trace& trace, const ComponentId& id,
                             core::StageKind kind,
                             const SteadyStateOptions& options) {
  WFE_REQUIRE(options.warmup_fraction >= 0.0 && options.warmup_fraction < 1.0,
              "warm-up fraction must be in [0, 1)");

  // Gather per-step durations of the requested stage kind, in step order.
  std::map<std::uint64_t, double> by_step;
  for (const StageRecord& r : trace.records()) {
    if (r.component == id && r.kind == kind) {
      by_step[r.step] += r.duration();
    }
  }
  WFE_REQUIRE(!by_step.empty(), "component " + id.str() +
                                    " recorded no stage of this kind");

  std::vector<double> durations;
  durations.reserve(by_step.size());
  for (const auto& [_, d] : by_step) durations.push_back(d);

  // Warm-up trim: never discard everything.
  std::uint64_t warmup = std::max(
      static_cast<std::uint64_t>(options.warmup_fraction *
                                 static_cast<double>(durations.size())),
      options.min_warmup_steps);
  if (warmup >= durations.size()) {
    warmup = durations.size() - 1;
  }
  const std::span<const double> window(durations.data() + warmup,
                                       durations.size() - warmup);
  return options.use_mean ? mean(window) : median(window);
}

core::MemberSteady member_steady_state(const Trace& trace,
                                       std::uint32_t member,
                                       const SteadyStateOptions& options) {
  // Discover this member's components.
  std::vector<ComponentId> components;
  for (const ComponentId& id : trace.components()) {
    if (id.member == member) components.push_back(id);
  }
  WFE_REQUIRE(!components.empty(), "no trace records for this member");

  core::MemberSteady steady;
  bool have_sim = false;
  std::vector<std::pair<std::int32_t, core::AnaSteady>> analyses;
  for (const ComponentId& id : components) {
    if (id.is_simulation()) {
      steady.sim.s = steady_stage_duration(trace, id,
                                           core::StageKind::kSimulate, options);
      steady.sim.w =
          steady_stage_duration(trace, id, core::StageKind::kWrite, options);
      have_sim = true;
    } else {
      core::AnaSteady a;
      a.r = steady_stage_duration(trace, id, core::StageKind::kRead, options);
      a.a =
          steady_stage_duration(trace, id, core::StageKind::kAnalyze, options);
      analyses.emplace_back(id.analysis, a);
    }
  }
  WFE_REQUIRE(have_sim, "member has no simulation component in the trace");
  WFE_REQUIRE(!analyses.empty(), "member has no analysis components");

  std::sort(analyses.begin(), analyses.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  for (auto& [_, a] : analyses) steady.analyses.push_back(a);
  return steady;
}

}  // namespace wfe::met
