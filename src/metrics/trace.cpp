#include "metrics/trace.hpp"

#include <algorithm>
#include <set>

#include "support/error.hpp"
#include "support/str.hpp"

namespace wfe::met {

std::string ComponentId::str() const {
  if (is_simulation()) return strprintf("sim%u", member);
  return strprintf("ana%u.%d", member, analysis);
}

void TraceRecorder::record(StageRecord record) {
  WFE_REQUIRE(record.end >= record.start,
              "a stage cannot end before it starts");
  const support::RankGuard<Mutex> lock(mutex_);
  records_.push_back(std::move(record));
}

Trace TraceRecorder::take() {
  std::vector<StageRecord> out;
  {
    const support::RankGuard<Mutex> lock(mutex_);
    out.swap(records_);
  }
  return Trace(std::move(out));
}

void StageColumns::grow(std::size_t n) {
  capacity_ = n;
  component_.resize(n);
  step_.resize(n);
  kind_.resize(n);
  start_.resize(n);
  end_.resize(n);
  counter_slot_.resize(n);
  counters_.reserve(n);
}

void StageColumns::clear() {
  size_ = 0;
  counters_.clear();
  total_ = plat::HwCounters{};
  kind_counts_.fill(0);
}

Trace StageColumns::take_trace() {
  const std::size_t n = size_;
  order_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    order_[i] = static_cast<std::uint32_t>(i);
  }
  // Sorting the index permutation touches 4-byte keys instead of shuffling
  // 72-byte records; the comparator is the exact one of Trace's sorting
  // constructor, and a stable sort's output is uniquely determined by the
  // comparator, so the materialized trace is byte-identical to the
  // sort-records path. (A binary-insertion sort exploiting the
  // near-sorted push order was measured ~15% slower end-to-end: idle
  // stages start far before their push point, so inversions displace
  // elements across long distances.)
  std::stable_sort(order_.begin(), order_.end(),
                   [this](std::uint32_t a, std::uint32_t b) {
                     if (start_[a] != start_[b]) return start_[a] < start_[b];
                     return component_[a] < component_[b];
                   });
  // Value-construct the full record array once (zero counters included),
  // then fill fields in place: no per-record push_back bookkeeping and no
  // stack temporary copied per record.
  std::vector<StageRecord> records(n);
  StageRecord* out = records.data();
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = order_[k];
    StageRecord& r = out[k];
    r.component = component_[i];
    r.step = step_[i];
    r.kind = kind_[i];
    r.start = start_[i];
    r.end = end_[i];
    if (counter_slot_[i] != 0) r.counters = counters_[counter_slot_[i] - 1];
  }
  clear();
  return Trace::from_sorted(std::move(records));
}

Trace::Trace(std::vector<StageRecord> records)
    : records_(std::move(records)) {
  std::stable_sort(records_.begin(), records_.end(),
                   [](const StageRecord& a, const StageRecord& b) {
                     if (a.start != b.start) return a.start < b.start;
                     return a.component < b.component;
                   });
}

Trace Trace::from_sorted(std::vector<StageRecord> records) {
  Trace t;
  t.records_ = std::move(records);
  return t;
}

std::vector<ComponentId> Trace::components() const {
  std::set<ComponentId> unique;
  for (const StageRecord& r : records_) unique.insert(r.component);
  return {unique.begin(), unique.end()};
}

std::vector<std::uint32_t> Trace::members() const {
  std::set<std::uint32_t> unique;
  for (const StageRecord& r : records_) unique.insert(r.component.member);
  return {unique.begin(), unique.end()};
}

std::vector<StageRecord> Trace::for_component(const ComponentId& id) const {
  std::vector<StageRecord> out;
  for (const StageRecord& r : records_) {
    if (r.component == id) out.push_back(r);
  }
  return out;
}

double Trace::component_start(const ComponentId& id) const {
  bool found = false;
  double t = 0.0;
  for (const StageRecord& r : records_) {
    if (r.component != id) continue;
    if (!found || r.start < t) t = r.start;
    found = true;
  }
  WFE_REQUIRE(found, "component " + id.str() + " has no trace records");
  return t;
}

double Trace::component_end(const ComponentId& id) const {
  bool found = false;
  double t = 0.0;
  for (const StageRecord& r : records_) {
    if (r.component != id) continue;
    if (!found || r.end > t) t = r.end;
    found = true;
  }
  WFE_REQUIRE(found, "component " + id.str() + " has no trace records");
  return t;
}

std::uint64_t Trace::step_count(const ComponentId& id) const {
  std::set<std::uint64_t> steps;
  for (const StageRecord& r : records_) {
    if (r.component == id) steps.insert(r.step);
  }
  return steps.size();
}

plat::HwCounters Trace::component_counters(const ComponentId& id) const {
  plat::HwCounters total;
  for (const StageRecord& r : records_) {
    if (r.component == id) total += r.counters;
  }
  return total;
}

double Trace::total_in_stage(const ComponentId& id,
                             core::StageKind kind) const {
  double total = 0.0;
  for (const StageRecord& r : records_) {
    if (r.component == id && r.kind == kind) total += r.duration();
  }
  return total;
}

}  // namespace wfe::met
