#include "metrics/trace.hpp"

#include <algorithm>
#include <set>

#include "support/error.hpp"
#include "support/str.hpp"

namespace wfe::met {

std::string ComponentId::str() const {
  if (is_simulation()) return strprintf("sim%u", member);
  return strprintf("ana%u.%d", member, analysis);
}

void TraceRecorder::record(StageRecord record) {
  WFE_REQUIRE(record.end >= record.start,
              "a stage cannot end before it starts");
  const support::RankGuard<Mutex> lock(mutex_);
  records_.push_back(std::move(record));
}

Trace TraceRecorder::take() {
  std::vector<StageRecord> out;
  {
    const support::RankGuard<Mutex> lock(mutex_);
    out.swap(records_);
  }
  return Trace(std::move(out));
}

Trace::Trace(std::vector<StageRecord> records)
    : records_(std::move(records)) {
  std::stable_sort(records_.begin(), records_.end(),
                   [](const StageRecord& a, const StageRecord& b) {
                     if (a.start != b.start) return a.start < b.start;
                     return a.component < b.component;
                   });
}

std::vector<ComponentId> Trace::components() const {
  std::set<ComponentId> unique;
  for (const StageRecord& r : records_) unique.insert(r.component);
  return {unique.begin(), unique.end()};
}

std::vector<std::uint32_t> Trace::members() const {
  std::set<std::uint32_t> unique;
  for (const StageRecord& r : records_) unique.insert(r.component.member);
  return {unique.begin(), unique.end()};
}

std::vector<StageRecord> Trace::for_component(const ComponentId& id) const {
  std::vector<StageRecord> out;
  for (const StageRecord& r : records_) {
    if (r.component == id) out.push_back(r);
  }
  return out;
}

double Trace::component_start(const ComponentId& id) const {
  bool found = false;
  double t = 0.0;
  for (const StageRecord& r : records_) {
    if (r.component != id) continue;
    if (!found || r.start < t) t = r.start;
    found = true;
  }
  WFE_REQUIRE(found, "component " + id.str() + " has no trace records");
  return t;
}

double Trace::component_end(const ComponentId& id) const {
  bool found = false;
  double t = 0.0;
  for (const StageRecord& r : records_) {
    if (r.component != id) continue;
    if (!found || r.end > t) t = r.end;
    found = true;
  }
  WFE_REQUIRE(found, "component " + id.str() + " has no trace records");
  return t;
}

std::uint64_t Trace::step_count(const ComponentId& id) const {
  std::set<std::uint64_t> steps;
  for (const StageRecord& r : records_) {
    if (r.component == id) steps.insert(r.step);
  }
  return steps.size();
}

plat::HwCounters Trace::component_counters(const ComponentId& id) const {
  plat::HwCounters total;
  for (const StageRecord& r : records_) {
    if (r.component == id) total += r.counters;
  }
  return total;
}

double Trace::total_in_stage(const ComponentId& id,
                             core::StageKind kind) const {
  double total = 0.0;
  for (const StageRecord& r : records_) {
    if (r.component == id && r.kind == kind) total += r.duration();
  }
  return total;
}

}  // namespace wfe::met
