// Trace persistence: write execution traces to disk and read them back,
// so assessments can run offline (the TAU-profile-artifact workflow).
//
// Format "WFET 1": a line-oriented text format with full double precision.
//   WFET 1
//   record <member> <analysis> <step> <kind> <start> <end> ...
//   ... <instructions> <cycles> <llc_refs> <llc_misses>
//   ...
//   end <record_count>
// `kind` is the stage mnemonic (S, IS, W, R, A, IA, and the resilience
// stages F, B, CP, RS). Parsing rejects any
// malformation with wfe::SerializationError. A CSV renderer is provided
// for spreadsheet-side analysis (one-way).
#pragma once

#include <filesystem>
#include <string>
#include <string_view>

#include "metrics/trace.hpp"

namespace wfe::met {

/// Stage mnemonics used on the wire (stable, unlike enum values).
std::string_view stage_mnemonic(core::StageKind kind);

/// Serialize a trace to the WFET text format.
std::string trace_to_text(const Trace& trace);

/// Parse a WFET buffer; throws wfe::SerializationError on malformation.
Trace trace_from_text(std::string_view text);

/// Render as CSV (header row first); for external tooling, not re-read.
std::string trace_to_csv(const Trace& trace);

/// File convenience wrappers (throw wfe::Error on I/O failure).
void save_trace(const std::filesystem::path& path, const Trace& trace);
Trace load_trace(const std::filesystem::path& path);

}  // namespace wfe::met
