#include "metrics/trace_io.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/error.hpp"
#include "support/str.hpp"

namespace wfe::met {

namespace {

using core::StageKind;

const StageKind kAllKinds[] = {
    StageKind::kSimulate, StageKind::kSimIdle,    StageKind::kWrite,
    StageKind::kRead,     StageKind::kAnalyze,    StageKind::kAnaIdle,
    StageKind::kFault,    StageKind::kBackoff,    StageKind::kCheckpoint,
    StageKind::kRestart,  StageKind::kMigrate};

StageKind kind_from_mnemonic(std::string_view m) {
  for (StageKind k : kAllKinds) {
    if (stage_mnemonic(k) == m) return k;
  }
  throw SerializationError("WFET: unknown stage mnemonic '" +
                           std::string(m) + "'");
}

}  // namespace

std::string_view stage_mnemonic(StageKind kind) {
  switch (kind) {
    case StageKind::kSimulate:
      return "S";
    case StageKind::kSimIdle:
      return "IS";
    case StageKind::kWrite:
      return "W";
    case StageKind::kRead:
      return "R";
    case StageKind::kAnalyze:
      return "A";
    case StageKind::kAnaIdle:
      return "IA";
    case StageKind::kFault:
      return "F";
    case StageKind::kBackoff:
      return "B";
    case StageKind::kCheckpoint:
      return "CP";
    case StageKind::kRestart:
      return "RS";
    case StageKind::kMigrate:
      return "MG";
  }
  throw SerializationError("WFET: unknown stage kind");
}

std::string trace_to_text(const Trace& trace) {
  std::string out = "WFET 1\n";
  for (const StageRecord& r : trace.records()) {
    out += strprintf(
        "record %u %d %" PRIu64 " %s %.17g %.17g %.17g %.17g %.17g %.17g\n",
        r.component.member, r.component.analysis, r.step,
        std::string(stage_mnemonic(r.kind)).c_str(), r.start, r.end,
        r.counters.instructions, r.counters.cycles,
        r.counters.llc_references, r.counters.llc_misses);
  }
  out += strprintf("end %zu\n", trace.size());
  return out;
}

Trace trace_from_text(std::string_view text) {
  std::istringstream in{std::string(text)};
  std::string line;

  if (!std::getline(in, line) || line != "WFET 1") {
    throw SerializationError("WFET: missing or unsupported header");
  }

  std::vector<StageRecord> records;
  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "end") {
      std::size_t count = 0;
      if (!(ls >> count) || count != records.size()) {
        throw SerializationError("WFET: record count mismatch in trailer");
      }
      saw_end = true;
      break;
    }
    if (tag != "record") {
      throw SerializationError("WFET: unexpected line tag '" + tag + "'");
    }
    StageRecord r;
    std::string mnemonic;
    if (!(ls >> r.component.member >> r.component.analysis >> r.step >>
          mnemonic >> r.start >> r.end >> r.counters.instructions >>
          r.counters.cycles >> r.counters.llc_references >>
          r.counters.llc_misses)) {
      throw SerializationError("WFET: malformed record line");
    }
    r.kind = kind_from_mnemonic(mnemonic);
    if (r.end < r.start) {
      throw SerializationError("WFET: record ends before it starts");
    }
    records.push_back(r);
  }
  if (!saw_end) {
    throw SerializationError("WFET: missing 'end' trailer (truncated file?)");
  }
  return Trace(std::move(records));
}

std::string trace_to_csv(const Trace& trace) {
  std::string out =
      "member,analysis,step,stage,start,end,duration,instructions,cycles,"
      "llc_references,llc_misses\n";
  for (const StageRecord& r : trace.records()) {
    out += strprintf("%u,%d,%" PRIu64 ",%s,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g\n",
                     r.component.member, r.component.analysis, r.step,
                     std::string(stage_mnemonic(r.kind)).c_str(), r.start,
                     r.end, r.duration(), r.counters.instructions,
                     r.counters.cycles, r.counters.llc_references,
                     r.counters.llc_misses);
  }
  return out;
}

void save_trace(const std::filesystem::path& path, const Trace& trace) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw Error("cannot open " + path.string() + " for writing");
  out << trace_to_text(trace);
  if (!out) throw Error("short write to " + path.string());
}

Trace load_trace(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open " + path.string());
  std::stringstream buffer;
  buffer << in.rdbuf();
  return trace_from_text(buffer.str());
}

}  // namespace wfe::met
