// The traditional metric set of Table 1, computed from an execution trace.
//
//   Ensemble component: execution time, LLC miss ratio, memory intensity,
//                       instructions per cycle.
//   Ensemble member:    makespan = timespan between simulation start time
//                       and the latest analysis end time.
//   Workflow ensemble:  makespan = maximum member makespan.
#pragma once

#include <cstdint>
#include <vector>

#include "metrics/trace.hpp"

namespace wfe::met {

struct ComponentMetrics {
  ComponentId component;
  double execution_time = 0.0;  ///< first stage start to last stage end
  double llc_miss_ratio = 0.0;
  double memory_intensity = 0.0;
  double ipc = 0.0;
};

/// Table 1, component level.
ComponentMetrics component_metrics(const Trace& trace, const ComponentId& id);

/// All components of the trace, in (member, analysis) order.
std::vector<ComponentMetrics> all_component_metrics(const Trace& trace);

/// Table 1, member level: simulation start to latest analysis end.
double member_makespan(const Trace& trace, std::uint32_t member);

/// Table 1, ensemble level: max member makespan.
double ensemble_makespan(const Trace& trace);

}  // namespace wfe::met
