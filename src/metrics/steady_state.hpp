// Steady-state extraction (§3.1): "after a few warm-up steps, [executions]
// reach a steady-state where each stage has a similar execution time as
// measured over many steps" — the starred durations S*, W*, R*, A*.
//
// We trim a warm-up prefix of steps and take a robust location estimate
// (median by default) of each stage's duration over the remaining steps.
#pragma once

#include <cstdint>

#include "core/stages.hpp"
#include "metrics/trace.hpp"

namespace wfe::met {

struct SteadyStateOptions {
  /// Fraction of a component's steps discarded as warm-up...
  double warmup_fraction = 0.2;
  /// ...but at least this many (when there are enough steps to spare).
  std::uint64_t min_warmup_steps = 1;
  /// Use the mean instead of the median over post-warm-up steps.
  bool use_mean = false;
};

/// Steady-state duration of one stage kind for one component.
/// Throws InvalidArgument if the component recorded no such stage.
double steady_stage_duration(const Trace& trace, const ComponentId& id,
                             core::StageKind kind,
                             const SteadyStateOptions& options = {});

/// Assemble the full steady-state profile of a member from its trace:
/// S*, W* from the simulation component; R*^j, A*^j from each analysis.
/// (The idle stages I^S and I^A are derived by the model, Eq. (1).)
core::MemberSteady member_steady_state(
    const Trace& trace, std::uint32_t member,
    const SteadyStateOptions& options = {});

}  // namespace wfe::met
