// MdEngine: the simulation component facade used by the workflow runtime.
//
// Plays the role GROMACS plays in the paper: it advances the molecular
// system by `stride` MD steps per in situ step and emits the resulting
// frame (atomic positions) for staging. Fully deterministic given a seed.
#pragma once

#include <cstdint>
#include <vector>

#include "mdsim/integrator.hpp"
#include "mdsim/system.hpp"

namespace wfe::md {

struct MdConfig {
  int fcc_cells = 4;           ///< 4 cells -> 256 particles
  double density = 0.8442;     ///< classic LJ liquid state point
  double temperature = 0.728;  ///< reduced units
  LjParams lj;
  IntegratorParams integrator;
  std::uint64_t seed = 42;
};

/// Observables reported after each advance.
struct MdObservables {
  double potential_energy = 0.0;
  double kinetic_energy = 0.0;
  double temperature = 0.0;
  double pressure = 0.0;
  std::uint64_t total_md_steps = 0;
};

class MdEngine {
 public:
  explicit MdEngine(const MdConfig& config);

  /// Advance `md_steps` steps (the stride of one in situ step).
  MdObservables advance(int md_steps);

  /// Current frame in chunk payload layout (3N doubles).
  std::vector<double> frame() const { return system_.flatten_positions(); }

  std::size_t atom_count() const { return system_.size(); }
  const System& system() const { return system_; }
  std::uint64_t total_md_steps() const { return steps_done_; }

 private:
  Xoshiro256 rng_;
  System system_;
  VelocityVerlet integrator_;
  double last_pe_ = 0.0;
  double last_virial_ = 0.0;
  std::uint64_t steps_done_ = 0;
};

}  // namespace wfe::md
