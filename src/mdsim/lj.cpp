#include "mdsim/lj.hpp"

#include <cmath>

#include "mdsim/cell_list.hpp"
#include "support/error.hpp"

namespace wfe::md {

namespace {

/// U(r) = 4 eps [ (sigma/r)^12 - (sigma/r)^6 ], unshifted.
double lj_raw(double r2, const LjParams& p) {
  const double s2 = p.sigma * p.sigma / r2;
  const double s6 = s2 * s2 * s2;
  return 4.0 * p.epsilon * s6 * (s6 - 1.0);
}

}  // namespace

double lj_pair_energy(double r2, const LjParams& p) {
  const double rc2 = p.cutoff * p.cutoff;
  if (r2 >= rc2) return 0.0;
  return lj_raw(r2, p) - lj_raw(rc2, p);
}

ForceResult compute_lj_forces(System& sys, const LjParams& params) {
  WFE_REQUIRE(params.epsilon > 0.0 && params.sigma > 0.0 && params.cutoff > 0.0,
              "LJ parameters must be positive");
  for (auto& f : sys.forces()) f = Vec3{};

  const double rc2 = params.cutoff * params.cutoff;
  const double shift = lj_raw(rc2, params);
  ForceResult result;

  CellList cells(sys, params.cutoff);
  auto& pos = sys.positions();
  auto& frc = sys.forces();
  cells.for_each_candidate_pair([&](std::size_t i, std::size_t j) {
    const Vec3 d = sys.min_image(pos[i], pos[j]);
    const double r2 = d.norm2();
    if (r2 >= rc2 || r2 == 0.0) return;
    const double s2 = params.sigma * params.sigma / r2;
    const double s6 = s2 * s2 * s2;
    // f(r)/r = 24 eps (2 s^12 - s^6) / r^2
    const double f_over_r = 24.0 * params.epsilon * s6 * (2.0 * s6 - 1.0) / r2;
    frc[i] += d * f_over_r;
    frc[j] -= d * f_over_r;
    result.potential_energy += 4.0 * params.epsilon * s6 * (s6 - 1.0) - shift;
    result.virial += f_over_r * r2;
    ++result.pair_interactions;
  });
  return result;
}

double pressure(const System& sys, double virial) {
  const double v = std::pow(sys.box_length(), 3);
  const auto n = static_cast<double>(sys.size());
  return (n * sys.temperature() + virial / 3.0) / v;
}

}  // namespace wfe::md
