#include "mdsim/integrator.hpp"

#include <cmath>

#include "support/error.hpp"

namespace wfe::md {

VelocityVerlet::VelocityVerlet(LjParams lj, IntegratorParams params)
    : lj_(lj), params_(params), noise_(params.langevin_seed) {
  WFE_REQUIRE(params_.dt > 0.0, "time step must be positive");
  WFE_REQUIRE(params_.target_temperature >= 0.0,
              "target temperature must be non-negative");
  WFE_REQUIRE(params_.langevin_gamma >= 0.0,
              "Langevin friction must be non-negative");
}

ThermostatKind VelocityVerlet::effective_thermostat() const {
  if (params_.thermostat != ThermostatKind::kNone) return params_.thermostat;
  // Backward compatibility: tau > 0 with no explicit kind means Berendsen.
  return params_.thermostat_tau > 0.0 ? ThermostatKind::kBerendsen
                                      : ThermostatKind::kNone;
}

ForceResult VelocityVerlet::initialize(System& sys) const {
  return compute_lj_forces(sys, lj_);
}

ForceResult VelocityVerlet::step(System& sys) {
  const double dt = params_.dt;
  const double half_dt = 0.5 * dt;

  auto& pos = sys.positions();
  auto& vel = sys.velocities();
  auto& frc = sys.forces();
  const std::size_t n = sys.size();

  for (std::size_t i = 0; i < n; ++i) {
    vel[i] += frc[i] * half_dt;        // kick (mass = 1)
    pos[i] += vel[i] * dt;             // drift
  }
  sys.wrap();
  const ForceResult result = compute_lj_forces(sys, lj_);
  for (std::size_t i = 0; i < n; ++i) {
    vel[i] += frc[i] * half_dt;        // kick
  }
  switch (effective_thermostat()) {
    case ThermostatKind::kNone:
      break;
    case ThermostatKind::kBerendsen:
      apply_berendsen(sys);
      break;
    case ThermostatKind::kLangevin:
      apply_langevin(sys);
      break;
  }
  return result;
}

void VelocityVerlet::apply_berendsen(System& sys) const {
  const double t = sys.temperature();
  if (t <= 0.0) return;
  // Berendsen weak coupling: rescale velocities toward the target.
  const double lambda = std::sqrt(
      1.0 + params_.dt / params_.thermostat_tau *
                (params_.target_temperature / t - 1.0));
  for (auto& v : sys.velocities()) v *= lambda;
}

void VelocityVerlet::apply_langevin(System& sys) {
  // BBK-style post-step Ornstein-Uhlenbeck velocity update:
  //   v <- c1 v + c2 xi,  c1 = exp(-gamma dt),
  //   c2 = sqrt(kT (1 - c1^2))  (mass = 1), xi ~ N(0, 1) per component.
  // Exactly preserves the canonical velocity distribution at temperature
  // target_temperature in the free-particle limit.
  const double c1 = std::exp(-params_.langevin_gamma * params_.dt);
  const double c2 =
      std::sqrt(params_.target_temperature * (1.0 - c1 * c1));
  for (auto& v : sys.velocities()) {
    v.x = c1 * v.x + c2 * noise_.normal();
    v.y = c1 * v.y + c2 * noise_.normal();
    v.z = c1 * v.z + c2 * noise_.normal();
  }
}

}  // namespace wfe::md
