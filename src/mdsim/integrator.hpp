// Velocity-Verlet time integration with optional thermostats.
#pragma once

#include "mdsim/lj.hpp"
#include "mdsim/system.hpp"
#include "support/rng.hpp"

namespace wfe::md {

enum class ThermostatKind {
  kNone,       ///< NVE (microcanonical)
  kBerendsen,  ///< weak-coupling velocity rescale
  kLangevin,   ///< stochastic friction + noise (canonical sampling)
};

struct IntegratorParams {
  double dt = 0.002;  ///< reduced time units (maps to the paper's 2 fs)
  ThermostatKind thermostat = ThermostatKind::kNone;
  /// Berendsen coupling time (used when thermostat == kBerendsen);
  /// kept > 0 also selects Berendsen when `thermostat` is kNone, for
  /// backward compatibility with configs that only set tau.
  double thermostat_tau = 0.0;
  /// Langevin friction coefficient gamma (used when kLangevin).
  double langevin_gamma = 1.0;
  double target_temperature = 1.0;
  /// Seed of the Langevin noise stream.
  std::uint64_t langevin_seed = 1234;
};

/// Advances a System in place; owns only parameters and the Langevin
/// noise stream.
class VelocityVerlet {
 public:
  VelocityVerlet(LjParams lj, IntegratorParams params);

  /// One MD step; forces must be current on entry and are current on exit.
  /// Returns the force evaluation result of the new configuration.
  ForceResult step(System& sys);

  /// Prime forces before the first step.
  ForceResult initialize(System& sys) const;

  const LjParams& lj() const { return lj_; }
  const IntegratorParams& params() const { return params_; }

 private:
  void apply_berendsen(System& sys) const;
  void apply_langevin(System& sys);
  ThermostatKind effective_thermostat() const;

  LjParams lj_;
  IntegratorParams params_;
  Xoshiro256 noise_;
};

}  // namespace wfe::md
