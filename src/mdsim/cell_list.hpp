// Linked-cell neighbor search: O(N) pair enumeration for short-range forces.
#pragma once

#include <cstddef>
#include <vector>

#include "mdsim/system.hpp"

namespace wfe::md {

/// Spatial binning of particles into cubic cells of edge >= cutoff, so all
/// interacting pairs lie in neighboring cells. Rebuilt each step (cheap and
/// simple; a Verlet-skin scheme is unnecessary at our problem sizes).
class CellList {
 public:
  /// Bin the particles of `sys` with interaction range `cutoff`. Falls back
  /// to a single cell (all-pairs) when the box is under 3 cells per side.
  CellList(const System& sys, double cutoff);

  int cells_per_side() const { return cps_; }
  std::size_t cell_count() const {
    return static_cast<std::size_t>(cps_) * cps_ * cps_;
  }

  /// Invoke fn(i, j) exactly once for every particle pair that may be within
  /// the cutoff (i < j guaranteed).
  template <typename Fn>
  void for_each_candidate_pair(Fn&& fn) const {
    if (cps_ < 3) {
      const std::size_t n = order_.size();
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) fn(i, j);
      }
      return;
    }
    for (int cx = 0; cx < cps_; ++cx) {
      for (int cy = 0; cy < cps_; ++cy) {
        for (int cz = 0; cz < cps_; ++cz) {
          const std::size_t home = cell_index(cx, cy, cz);
          for (int dx = -1; dx <= 1; ++dx) {
            for (int dy = -1; dy <= 1; ++dy) {
              for (int dz = -1; dz <= 1; ++dz) {
                const std::size_t other =
                    cell_index(wrap(cx + dx), wrap(cy + dy), wrap(cz + dz));
                if (other < home) continue;  // visit each cell pair once
                visit_cell_pair(home, other, home == other, fn);
              }
            }
          }
        }
      }
    }
  }

  /// Cell index a particle was binned into (testing hook).
  std::size_t cell_of(std::size_t particle) const { return cell_of_[particle]; }

 private:
  std::size_t cell_index(int x, int y, int z) const {
    return (static_cast<std::size_t>(x) * cps_ + y) * cps_ + z;
  }
  int wrap(int c) const { return (c % cps_ + cps_) % cps_; }

  template <typename Fn>
  void visit_cell_pair(std::size_t a, std::size_t b, bool same, Fn&& fn) const {
    for (std::size_t i = heads_[a]; i != kEnd; i = next_[i]) {
      const std::size_t start = same ? next_[i] : heads_[b];
      for (std::size_t j = start; j != kEnd; j = next_[j]) {
        if (i < j) {
          fn(i, j);
        } else {
          fn(j, i);
        }
      }
    }
  }

  static constexpr std::size_t kEnd = static_cast<std::size_t>(-1);
  int cps_ = 1;
  std::vector<std::size_t> heads_;    // per-cell list head
  std::vector<std::size_t> next_;     // per-particle chain
  std::vector<std::size_t> cell_of_;  // per-particle cell
  std::vector<std::size_t> order_;    // all particle ids (all-pairs path)
};

}  // namespace wfe::md
