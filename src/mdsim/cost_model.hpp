// Analytic cost model of a GROMACS-class MD simulation.
//
// The simulated executor does not run the Lennard-Jones engine for the
// paper-scale workload (a 250k-atom GltPh-like system for 30 000 steps);
// instead it prices each simulation stage S from this model, exactly as the
// platform layer prices analysis stages. The constants are calibrated in
// workload::gltph_like_workload() so that with 16 cores and stride 800 the
// simulated stage times land in the regime the paper reports (tens of
// seconds per in situ step, compute-bound, low memory intensity).
#pragma once

#include <cstddef>

#include "platform/profile.hpp"

namespace wfe::md {

struct MdCostParams {
  /// Dynamic instructions per atom per MD step (force loop + integration +
  /// neighbor maintenance).
  double instr_per_atom_step = 5.0e3;
  /// Pipeline IPC of the (vectorizable, compute-bound) force loop.
  double base_ipc = 1.8;
  /// LLC references per instruction — low: the working set streams through
  /// L1/L2 with good locality, so few accesses reach the LLC at all. This
  /// is what keeps the simulation's *time* largely contention-immune even
  /// when co-location visibly raises its miss *ratio* (paper Figure 3 vs 4).
  double llc_refs_per_instr = 0.004;
  double base_miss_ratio = 0.04;
  /// Resident bytes per atom: positions, velocities, forces, neighbor
  /// lists, cell structures.
  double bytes_per_atom = 400.0;
  /// Simulations scale well across a node (domain decomposition).
  double parallel_fraction = 0.97;
  /// How much a competitor's cache pressure hurts — simulations are mostly
  /// compute-bound, so mildly.
  double cache_sensitivity = 0.08;
};

/// Compute profile of one simulation stage S: `stride` MD steps of a
/// `natoms`-atom system.
plat::ComputeProfile md_stage_profile(const MdCostParams& params,
                                      std::size_t natoms, int stride);

/// Payload bytes of one emitted frame (3 doubles per atom).
double frame_payload_bytes(std::size_t natoms);

}  // namespace wfe::md
