// Lennard-Jones 12-6 interactions with a truncated & shifted potential.
#pragma once

#include "mdsim/system.hpp"

namespace wfe::md {

struct LjParams {
  double epsilon = 1.0;
  double sigma = 1.0;
  double cutoff = 2.5;  ///< in units of sigma
};

struct ForceResult {
  double potential_energy = 0.0;
  double virial = 0.0;  ///< sum r.f over pairs, for the pressure estimator
  std::size_t pair_interactions = 0;  ///< pairs within the cutoff
};

/// Overwrite sys.forces() with LJ forces and return energy/virial.
/// The potential is shifted so U(cutoff) = 0 (no impulsive jump in energy
/// at the cutoff; forces are plainly truncated as in standard practice).
ForceResult compute_lj_forces(System& sys, const LjParams& params);

/// Pair potential value (shifted) at squared distance r2; 0 beyond cutoff.
double lj_pair_energy(double r2, const LjParams& params);

/// Instantaneous pressure from the virial theorem:
/// P = (N*T + virial/3) / V.
double pressure(const System& sys, double virial);

}  // namespace wfe::md
