#include "mdsim/system.hpp"

#include <cmath>

#include "support/error.hpp"

namespace wfe::md {

System::System(std::size_t n, double box_length)
    : box_(box_length), pos_(n), vel_(n), frc_(n) {
  WFE_REQUIRE(n > 0, "a system needs at least one particle");
  WFE_REQUIRE(box_length > 0.0, "box length must be positive");
}

System System::fcc_lattice(int cells_per_side, double density,
                           double temperature, Xoshiro256& rng) {
  WFE_REQUIRE(cells_per_side > 0, "need at least one FCC cell");
  WFE_REQUIRE(density > 0.0, "density must be positive");
  WFE_REQUIRE(temperature >= 0.0, "temperature must be non-negative");

  const std::size_t n =
      4 * static_cast<std::size_t>(cells_per_side) * cells_per_side *
      cells_per_side;
  const double box = std::cbrt(static_cast<double>(n) / density);
  System sys(n, box);

  // FCC basis within a unit cell.
  static constexpr double basis[4][3] = {
      {0.0, 0.0, 0.0}, {0.5, 0.5, 0.0}, {0.5, 0.0, 0.5}, {0.0, 0.5, 0.5}};
  const double a = box / cells_per_side;  // lattice constant
  std::size_t idx = 0;
  for (int ix = 0; ix < cells_per_side; ++ix) {
    for (int iy = 0; iy < cells_per_side; ++iy) {
      for (int iz = 0; iz < cells_per_side; ++iz) {
        for (const auto& b : basis) {
          sys.pos_[idx++] = Vec3{(ix + b[0]) * a, (iy + b[1]) * a,
                                 (iz + b[2]) * a};
        }
      }
    }
  }

  const double sigma = std::sqrt(temperature);
  for (auto& v : sys.vel_) {
    v = Vec3{sigma * rng.normal(), sigma * rng.normal(), sigma * rng.normal()};
  }
  sys.remove_drift();
  return sys;
}

Vec3 System::min_image(const Vec3& a, const Vec3& b) const {
  Vec3 d = a - b;
  d.x -= box_ * std::round(d.x / box_);
  d.y -= box_ * std::round(d.y / box_);
  d.z -= box_ * std::round(d.z / box_);
  return d;
}

void System::wrap() {
  for (auto& p : pos_) {
    p.x -= box_ * std::floor(p.x / box_);
    p.y -= box_ * std::floor(p.y / box_);
    p.z -= box_ * std::floor(p.z / box_);
  }
}

double System::kinetic_energy() const {
  double ke = 0.0;
  for (const auto& v : vel_) ke += 0.5 * v.norm2();
  return ke;
}

double System::temperature() const {
  if (pos_.empty()) return 0.0;
  return 2.0 * kinetic_energy() / (3.0 * static_cast<double>(pos_.size()));
}

Vec3 System::total_momentum() const {
  Vec3 p;
  for (const auto& v : vel_) p += v;
  return p;
}

void System::remove_drift() {
  if (pos_.empty()) return;
  Vec3 p = total_momentum();
  const double inv_n = 1.0 / static_cast<double>(pos_.size());
  for (auto& v : vel_) v -= p * inv_n;
}

std::vector<double> System::flatten_positions() const {
  std::vector<double> flat;
  flat.reserve(pos_.size() * 3);
  for (const auto& p : pos_) {
    flat.push_back(p.x);
    flat.push_back(p.y);
    flat.push_back(p.z);
  }
  return flat;
}

}  // namespace wfe::md
