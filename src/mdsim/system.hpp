// Particle system state for the mini molecular-dynamics engine.
//
// WFEns substitutes the paper's GROMACS/GltPh workload with a from-scratch
// Lennard-Jones fluid in reduced units (sigma = epsilon = mass = 1): the
// runtime only observes an MD code through its per-stride compute time and
// the frames it emits, both of which this engine genuinely produces.
// Positions live in a cubic periodic box.
#pragma once

#include <cstddef>
#include <vector>

#include "support/rng.hpp"

namespace wfe::md {

/// Plain 3-vector.
struct Vec3 {
  double x = 0.0, y = 0.0, z = 0.0;

  Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  Vec3& operator*=(double s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }
  friend Vec3 operator+(Vec3 a, const Vec3& b) { return a += b; }
  friend Vec3 operator-(Vec3 a, const Vec3& b) { return a -= b; }
  friend Vec3 operator*(Vec3 a, double s) { return a *= s; }
  friend Vec3 operator*(double s, Vec3 a) { return a *= s; }
  double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  double norm2() const { return dot(*this); }
};

/// Mutable state of an N-particle system in a periodic cubic box.
class System {
 public:
  /// Build an FCC lattice filling a cubic box at the given number density,
  /// with Maxwell-Boltzmann velocities at `temperature` (net momentum
  /// removed). `cells_per_side` FCC cells give 4*cells^3 particles.
  static System fcc_lattice(int cells_per_side, double density,
                            double temperature, Xoshiro256& rng);

  System(std::size_t n, double box_length);

  std::size_t size() const { return pos_.size(); }
  double box_length() const { return box_; }

  std::vector<Vec3>& positions() { return pos_; }
  const std::vector<Vec3>& positions() const { return pos_; }
  std::vector<Vec3>& velocities() { return vel_; }
  const std::vector<Vec3>& velocities() const { return vel_; }
  std::vector<Vec3>& forces() { return frc_; }
  const std::vector<Vec3>& forces() const { return frc_; }

  /// Minimum-image displacement from particle j to particle i.
  Vec3 min_image(const Vec3& a, const Vec3& b) const;

  /// Wrap every position back into [0, L).
  void wrap();

  /// Total kinetic energy (mass = 1).
  double kinetic_energy() const;

  /// Instantaneous temperature: 2*KE / (3*N) in reduced units.
  double temperature() const;

  /// Total momentum (should stay ~0 under NVE).
  Vec3 total_momentum() const;

  /// Zero the net momentum (applied after velocity initialization).
  void remove_drift();

  /// Flatten positions to the chunk payload layout (x0,y0,z0,x1,...).
  std::vector<double> flatten_positions() const;

 private:
  double box_;
  std::vector<Vec3> pos_;
  std::vector<Vec3> vel_;
  std::vector<Vec3> frc_;
};

}  // namespace wfe::md
