#include "mdsim/engine.hpp"

#include "support/error.hpp"

namespace wfe::md {

namespace {
System make_system(const MdConfig& c, Xoshiro256& rng) {
  return System::fcc_lattice(c.fcc_cells, c.density, c.temperature, rng);
}
}  // namespace

MdEngine::MdEngine(const MdConfig& config)
    : rng_(config.seed),
      system_(make_system(config, rng_)),
      integrator_(config.lj, config.integrator) {
  const ForceResult fr = integrator_.initialize(system_);
  last_pe_ = fr.potential_energy;
  last_virial_ = fr.virial;
}

MdObservables MdEngine::advance(int md_steps) {
  WFE_REQUIRE(md_steps > 0, "advance needs a positive stride");
  for (int s = 0; s < md_steps; ++s) {
    const ForceResult fr = integrator_.step(system_);
    last_pe_ = fr.potential_energy;
    last_virial_ = fr.virial;
  }
  steps_done_ += static_cast<std::uint64_t>(md_steps);

  MdObservables obs;
  obs.potential_energy = last_pe_;
  obs.kinetic_energy = system_.kinetic_energy();
  obs.temperature = system_.temperature();
  obs.pressure = pressure(system_, last_virial_);
  obs.total_md_steps = steps_done_;
  return obs;
}

}  // namespace wfe::md
