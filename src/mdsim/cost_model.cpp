#include "mdsim/cost_model.hpp"

#include "support/error.hpp"

namespace wfe::md {

plat::ComputeProfile md_stage_profile(const MdCostParams& params,
                                      std::size_t natoms, int stride) {
  WFE_REQUIRE(natoms > 0, "cost model needs a positive atom count");
  WFE_REQUIRE(stride > 0, "cost model needs a positive stride");
  plat::ComputeProfile p;
  p.instructions = params.instr_per_atom_step *
                   static_cast<double>(natoms) * static_cast<double>(stride);
  p.base_ipc = params.base_ipc;
  p.llc_refs_per_instr = params.llc_refs_per_instr;
  p.base_miss_ratio = params.base_miss_ratio;
  p.working_set_bytes = params.bytes_per_atom * static_cast<double>(natoms);
  p.cache_sensitivity = params.cache_sensitivity;
  p.parallel_fraction = params.parallel_fraction;
  return p;
}

double frame_payload_bytes(std::size_t natoms) {
  return static_cast<double>(natoms) * 3.0 * sizeof(double);
}

}  // namespace wfe::md
