#include "mdsim/cell_list.hpp"

#include <cmath>

#include "support/error.hpp"

namespace wfe::md {

CellList::CellList(const System& sys, double cutoff) {
  WFE_REQUIRE(cutoff > 0.0, "cutoff must be positive");
  const double box = sys.box_length();
  cps_ = static_cast<int>(std::floor(box / cutoff));
  if (cps_ < 1) cps_ = 1;

  const std::size_t n = sys.size();
  cell_of_.assign(n, 0);
  order_.resize(n);
  for (std::size_t i = 0; i < n; ++i) order_[i] = i;

  if (cps_ < 3) return;  // all-pairs fallback; no binning needed

  heads_.assign(cell_count(), kEnd);
  next_.assign(n, kEnd);
  const double inv_cell = cps_ / box;
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3& p = sys.positions()[i];
    auto bin = [&](double coord) {
      int c = static_cast<int>(std::floor(coord * inv_cell));
      return wrap(c);
    };
    const std::size_t cell = cell_index(bin(p.x), bin(p.y), bin(p.z));
    cell_of_[i] = cell;
    next_[i] = heads_[cell];
    heads_[cell] = i;
  }
}

}  // namespace wfe::md
