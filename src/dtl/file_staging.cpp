#include "dtl/file_staging.hpp"

#include <fstream>

#include "support/error.hpp"

namespace wfe::dtl {

namespace fs = std::filesystem;

FileStaging::FileStaging(fs::path root) : root_(std::move(root)) {
  fs::create_directories(root_);
}

fs::path FileStaging::path_for(const std::string& key) const {
  // Keys may contain '/' (ChunkKey::str does); map them to a flat, safe
  // file name so no directory hierarchy is required per key.
  std::string flat = key;
  for (char& c : flat) {
    if (c == '/' || c == '\\') c = '_';
  }
  return root_ / (flat + ".chunk");
}

void FileStaging::put(const std::string& key,
                      std::span<const std::byte> bytes) {
  const support::RankGuard<Mutex> lock(mutex_);
  const fs::path p = path_for(key);
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("FileStaging: cannot open " + p.string());
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw Error("FileStaging: short write to " + p.string());
}

std::optional<std::vector<std::byte>> FileStaging::get(
    const std::string& key) const {
  const support::RankGuard<Mutex> lock(mutex_);
  const fs::path p = path_for(key);
  std::ifstream in(p, std::ios::binary | std::ios::ate);
  if (!in) return std::nullopt;
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::byte> buf(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(buf.data()), size);
  if (!in) throw Error("FileStaging: short read from " + p.string());
  return buf;
}

bool FileStaging::contains(const std::string& key) const {
  const support::RankGuard<Mutex> lock(mutex_);
  return fs::exists(path_for(key));
}

bool FileStaging::erase(const std::string& key) {
  const support::RankGuard<Mutex> lock(mutex_);
  return fs::remove(path_for(key));
}

std::size_t FileStaging::size() const {
  const support::RankGuard<Mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& e : fs::directory_iterator(root_)) {
    if (e.is_regular_file() && e.path().extension() == ".chunk") ++n;
  }
  return n;
}

std::size_t FileStaging::bytes_stored() const {
  const support::RankGuard<Mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& e : fs::directory_iterator(root_)) {
    if (e.is_regular_file() && e.path().extension() == ".chunk") {
      total += static_cast<std::size_t>(e.file_size());
    }
  }
  return total;
}

void FileStaging::clear() {
  const support::RankGuard<Mutex> lock(mutex_);
  for (const auto& e : fs::directory_iterator(root_)) {
    if (e.is_regular_file() && e.path().extension() == ".chunk") {
      fs::remove(e.path());
    }
  }
}

}  // namespace wfe::dtl
