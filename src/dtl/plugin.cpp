#include "dtl/plugin.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "dtl/serde.hpp"
#include "obs/recorder.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/str.hpp"

namespace wfe::dtl {

void FetchRetry::validate() const {
  WFE_REQUIRE(max_attempts >= 1, "fetch needs at least one attempt");
  WFE_REQUIRE(std::isfinite(backoff_base_s) && backoff_base_s >= 0.0,
              "fetch backoff base must be finite and non-negative");
  WFE_REQUIRE(std::isfinite(backoff_cap_s) && backoff_cap_s >= backoff_base_s,
              "fetch backoff cap must be finite and at least the base");
  WFE_REQUIRE(std::isfinite(jitter_frac) && jitter_frac >= 0.0 &&
                  jitter_frac < 1.0,
              "fetch backoff jitter fraction must be in [0, 1)");
}

double FetchRetry::backoff_delay(const ChunkKey& key, int attempt) const {
  WFE_REQUIRE(attempt >= 2, "the first fetch attempt never backs off");
  const double ladder =
      std::min(backoff_base_s * std::pow(2.0, static_cast<double>(attempt - 2)),
               backoff_cap_s);
  if (jitter_frac <= 0.0) return ladder;
  // Counter-based hash (no generator state) so the factor for a given
  // (key, attempt) is independent of how many other fetches ran before.
  Fnv1a h;
  h.add(seed);
  h.add(key.member_id);
  h.add(key.step);
  h.add(attempt);
  const double unit =
      (static_cast<double>(h.digest() >> 11) + 0.5) * 0x1.0p-53;
  return ladder * (1.0 + jitter_frac * (2.0 * unit - 1.0));
}

std::vector<double> FetchRetry::schedule(const ChunkKey& key) const {
  validate();
  std::vector<double> delays;
  delays.reserve(static_cast<std::size_t>(max_attempts - 1));
  for (int attempt = 2; attempt <= max_attempts; ++attempt) {
    delays.push_back(backoff_delay(key, attempt));
  }
  return delays;
}

void DtlPlugin::write(const Chunk& chunk) {
  backend_->put(chunk.key().str(), serialize(chunk));
}

Chunk DtlPlugin::read(const ChunkKey& key) const {
  auto bytes = backend_->get(key.str());
  if (!bytes) throw Error("DtlPlugin: no staged chunk under " + key.str());
  return deserialize(*bytes);
}

Chunk DtlPlugin::read(const ChunkKey& key, const FetchRetry& retry) const {
  retry.validate();
  for (int attempt = 1; attempt <= retry.max_attempts; ++attempt) {
    if (auto bytes = backend_->get(key.str())) return deserialize(*bytes);
    if (attempt == retry.max_attempts) break;
    obs::add_counter("dtl.fetch_retries", obs::now_s(), 1.0);
    const double backoff = retry.backoff_delay(key, attempt + 1);
    if (backoff > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    }
  }
  throw TimeoutError(strprintf(
      "DtlPlugin: chunk %s still absent after %d fetch attempts",
      key.str().c_str(), retry.max_attempts));
}

bool DtlPlugin::exists(const ChunkKey& key) const {
  return backend_->contains(key.str());
}

bool DtlPlugin::release(const ChunkKey& key) {
  return backend_->erase(key.str());
}

CoupledWriter::CoupledWriter(DtlPlugin plugin,
                             std::shared_ptr<CouplingChannel> channel,
                             std::uint32_t member_id)
    : plugin_(plugin), channel_(std::move(channel)), member_id_(member_id) {
  WFE_REQUIRE(channel_ != nullptr, "writer needs a coupling channel");
}

void CoupledWriter::put_step(std::uint64_t step, PayloadKind kind,
                             std::vector<double> values) {
  channel_->begin_write(step);  // blocks: I^S
  // begin_write guarantees every reader drained step - capacity; reclaim
  // chunks that fell out of the buffer window (at most `capacity` chunks
  // per coupling stay resident).
  const auto capacity = static_cast<std::uint64_t>(channel_->capacity());
  if (step >= capacity) {
    plugin_.release(ChunkKey{member_id_, step - capacity});
  }
  plugin_.write(Chunk(ChunkKey{member_id_, step}, kind, std::move(values)));
  channel_->commit_write(step);  // W done
}

void CoupledWriter::finish() { channel_->close(); }

CoupledReader::CoupledReader(DtlPlugin plugin,
                             std::shared_ptr<CouplingChannel> channel,
                             std::uint32_t member_id, int reader_index)
    : plugin_(plugin),
      channel_(std::move(channel)),
      member_id_(member_id),
      reader_index_(reader_index) {
  WFE_REQUIRE(channel_ != nullptr, "reader needs a coupling channel");
  WFE_REQUIRE(reader_index_ >= 0 && reader_index_ < channel_->reader_count(),
              "reader index out of range for channel");
}

std::optional<Chunk> CoupledReader::get_step(std::uint64_t step) {
  if (!channel_->await_step(reader_index_, step)) {
    return std::nullopt;  // writer finished
  }
  Chunk chunk = plugin_.read(ChunkKey{member_id_, step});
  channel_->ack_read(reader_index_, step);
  return chunk;
}

}  // namespace wfe::dtl
