// Chunk: the base data representation of the runtime (paper Section 2.2).
//
// "The simulation using the DTL plugin [writes] out data abstracted into a
//  chunk, which is the base data representation manipulated within the
//  entire runtime. [...] The chunk also defines a unique data type standard
//  for the analysis kernels."
//
// A chunk carries one frame of simulation output — for MD, the atomic
// positions at a given step — plus the metadata needed to route and order
// it: producing member, in situ step index, and a payload kind tag so
// analyses can check they are fed what they expect.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace wfe::dtl {

/// What the payload's doubles mean.
enum class PayloadKind : std::uint32_t {
  kPositions3N = 1,   ///< 3*N doubles: x0,y0,z0, x1,y1,z1, ...
  kScalarSeries = 2,  ///< N doubles: generic scalar series
};

const char* to_string(PayloadKind kind);

/// Identifies one chunk within the whole workflow ensemble.
struct ChunkKey {
  std::uint32_t member_id = 0;  ///< producing ensemble member
  std::uint64_t step = 0;       ///< in situ step index (0-based)

  friend bool operator==(const ChunkKey&, const ChunkKey&) = default;

  /// Canonical string form, used as storage key by DTL backends.
  std::string str() const;
};

struct ChunkKeyHash {
  std::size_t operator()(const ChunkKey& k) const {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(k.member_id) << 48) ^ k.step);
  }
};

/// One frame of data flowing from a simulation to its analyses.
class Chunk {
 public:
  Chunk() = default;

  /// Build a chunk; `values` is copied (the producer keeps its buffers).
  Chunk(ChunkKey key, PayloadKind kind, std::vector<double> values);

  const ChunkKey& key() const { return key_; }
  PayloadKind kind() const { return kind_; }
  std::span<const double> values() const { return values_; }
  std::size_t element_count() const { return values_.size(); }

  /// For kPositions3N payloads: number of atoms (element_count / 3).
  /// Throws InvalidArgument for other payload kinds.
  std::size_t atom_count() const;

  /// Payload size in bytes (what a DTL moves, excluding the header).
  std::size_t payload_bytes() const { return values_.size() * sizeof(double); }

  friend bool operator==(const Chunk&, const Chunk&) = default;

 private:
  ChunkKey key_;
  PayloadKind kind_ = PayloadKind::kScalarSeries;
  std::vector<double> values_;
};

}  // namespace wfe::dtl
