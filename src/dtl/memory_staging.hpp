// In-memory staging backend (DIMES-like tier).
//
// DIMES keeps staged data in the memory of the node where the producer
// runs and serves remote readers over the network. In native execution all
// components share one address space, so this backend is simply a mutex-
// protected map — the *cost* asymmetry of local vs remote access is modelled
// by the platform layer in simulated mode, while this class provides the
// real data plane for native mode.
#pragma once

#include <unordered_map>

#include "dtl/staging.hpp"
#include "support/lock_rank.hpp"

namespace wfe::dtl {

class MemoryStaging final : public StagingBackend {
 public:
  void put(const std::string& key, std::span<const std::byte> bytes) override;
  std::optional<std::vector<std::byte>> get(const std::string& key) const override;
  bool contains(const std::string& key) const override;
  bool erase(const std::string& key) override;
  std::size_t size() const override;
  std::size_t bytes_stored() const override;
  std::string tier() const override { return "memory"; }

  /// Drop everything (between runs).
  void clear();

 private:
  using Mutex = support::RankedMutex<support::kRankDtlStaging>;

  mutable Mutex mutex_;
  std::unordered_map<std::string, std::vector<std::byte>> store_;
};

}  // namespace wfe::dtl
