// DtlPlugin: "a middle layer between the ensemble components and the
// underlying DTL, responsible for data handling" (paper §2.2, Figure 2).
//
// The plugin marshals chunks to byte buffers (serde) and moves them through
// whichever staging backend the DTL was configured with, hiding the staging
// protocol from simulations and analyses. CoupledWriter / CoupledReader add
// the synchronous in situ handshake on top, giving components a two-call
// API (put_step / get_step) that exactly produces the W, I^S, R, I^A stages
// of the paper's execution model.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "dtl/chunk.hpp"
#include "dtl/coupling.hpp"
#include "dtl/staging.hpp"

namespace wfe::dtl {

/// Bounded retry/backoff schedule for staged-chunk fetches: under a real
/// DTL a get can transiently miss (metadata propagation lag, in-flight
/// RDMA, a restarted staging server repopulating). Instead of failing on
/// the first miss or blocking forever, a fetch re-polls with exponential
/// backoff and raises wfe::TimeoutError once the budget is exhausted.
///
/// The whole schedule is a pure function of (spec, key): the optional
/// jitter is counter-hashed from `seed` and the chunk key — no generator
/// state, no wall clock — so two reruns of the same fetch sleep the exact
/// same sequence of delays regardless of thread interleaving.
struct FetchRetry {
  int max_attempts = 1;           ///< 1 = historical single-shot behavior
  double backoff_base_s = 1e-4;   ///< sleep before attempt k: base * 2^(k-2)
  double backoff_cap_s = 0.05;    ///< ceiling on one backoff sleep (pre-jitter)
  /// Spread of the deterministic jitter: each delay is scaled by a factor
  /// in [1 - jitter_frac, 1 + jitter_frac] hashed from (seed, key,
  /// attempt). 0 (default) keeps the exact exponential ladder.
  double jitter_frac = 0.0;
  std::uint64_t seed = 0xfe7c4u;  ///< jitter stream seed

  /// Delay slept before re-attempt `attempt` (2-based: the first attempt
  /// never waits): min(base * 2^(attempt-2), cap) scaled by the key's
  /// jitter factor. Pure — never consults the clock.
  double backoff_delay(const ChunkKey& key, int attempt) const;

  /// The full ladder of delays a fetch of `key` would sleep (one entry per
  /// re-attempt, max_attempts - 1 entries). Bounded by
  /// cap * (1 + jitter_frac) per entry.
  std::vector<double> schedule(const ChunkKey& key) const;

  /// Throws wfe::InvalidArgument on a non-positive attempt budget,
  /// negative/non-finite backoff bounds, or jitter_frac outside [0, 1).
  void validate() const;
};

/// Chunk-level view of a staging backend.
class DtlPlugin {
 public:
  /// The plugin borrows the backend; the caller keeps it alive.
  explicit DtlPlugin(StagingBackend& backend) : backend_(&backend) {}

  /// Serialize and stage a chunk under its key.
  void write(const Chunk& chunk);

  /// Fetch and unmarshal the chunk stored under `key`.
  /// Throws wfe::Error if the key is absent.
  Chunk read(const ChunkKey& key) const;

  /// Fetch with bounded retry/backoff: re-polls the backend up to
  /// `retry.max_attempts` times, sleeping exponentially between attempts,
  /// and throws wfe::TimeoutError once the budget is exhausted.
  Chunk read(const ChunkKey& key, const FetchRetry& retry) const;

  bool exists(const ChunkKey& key) const;

  /// Drop a staged chunk (after all its readers acknowledged it).
  bool release(const ChunkKey& key);

  StagingBackend& backend() { return *backend_; }
  const StagingBackend& backend() const { return *backend_; }

 private:
  StagingBackend* backend_;
};

/// Simulation-side endpoint of one coupling: enforces the no-buffering
/// handshake and reclaims chunks once every analysis consumed them.
class CoupledWriter {
 public:
  CoupledWriter(DtlPlugin plugin, std::shared_ptr<CouplingChannel> channel,
                std::uint32_t member_id);

  /// Execute the writer half of one in situ step: wait for readers of the
  /// previous step (stage I^S), release the drained chunk, stage the new
  /// one and commit it (stage W). `step` must advance by exactly one.
  void put_step(std::uint64_t step, PayloadKind kind,
                std::vector<double> values);

  /// Signal end-of-stream to all readers.
  void finish();

  std::uint32_t member_id() const { return member_id_; }

 private:
  DtlPlugin plugin_;
  std::shared_ptr<CouplingChannel> channel_;
  std::uint32_t member_id_;
};

/// Analysis-side endpoint of one coupling.
class CoupledReader {
 public:
  CoupledReader(DtlPlugin plugin, std::shared_ptr<CouplingChannel> channel,
                std::uint32_t member_id, int reader_index);

  /// Execute the reader half of one in situ step: wait for the chunk
  /// (stage I^A of the previous step), fetch it (stage R) and acknowledge.
  /// Returns nullopt if the writer finished before producing `step`.
  std::optional<Chunk> get_step(std::uint64_t step);

  int reader_index() const { return reader_index_; }

 private:
  DtlPlugin plugin_;
  std::shared_ptr<CouplingChannel> channel_;
  std::uint32_t member_id_;
  int reader_index_;
};

}  // namespace wfe::dtl
