#include "dtl/replication.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace wfe::dtl {

void ReplicationSpec::validate() const {
  WFE_REQUIRE(factor >= 1, "replication factor must be at least 1");
}

std::vector<int> ReplicationSpec::replica_nodes(int primary,
                                                int node_count) const {
  validate();
  WFE_REQUIRE(node_count > 0 && primary >= 0 && primary < node_count,
              "replica primary node outside the platform");
  const int copies = std::min(factor, node_count);
  std::vector<int> nodes;
  nodes.reserve(static_cast<std::size_t>(copies));
  for (int k = 0; k < copies; ++k) {
    nodes.push_back((primary + k) % node_count);
  }
  return nodes;
}

bool ReplicationSpec::survives(int dead_node, int primary,
                               int node_count) const {
  const std::vector<int> nodes = replica_nodes(primary, node_count);
  return std::any_of(nodes.begin(), nodes.end(),
                     [dead_node](int n) { return n != dead_node; });
}

int ReplicationSpec::extra_copies(int node_count) const {
  validate();
  WFE_REQUIRE(node_count > 0, "replication needs at least one node");
  return std::min(factor, node_count) - 1;
}

}  // namespace wfe::dtl
