#include "dtl/coupling.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "obs/recorder.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

namespace wfe::dtl {

namespace {

/// Wait on `cv` until `pred` holds — bounded by `timeout_s` when positive.
/// Returns false (instead of throwing here) on expiry so callers can add
/// context to the TimeoutError. Generic over the cv/lock pair so the ranked
/// debug types and the plain release types both fit.
template <typename Cv, typename Lock, typename Pred>
bool bounded_wait(Cv& cv, Lock& lock, double timeout_s, Pred pred) {
  if (timeout_s <= 0.0) {
    cv.wait(lock, pred);
    return true;
  }
  return cv.wait_for(lock, std::chrono::duration<double>(timeout_s), pred);
}

/// Current published-but-undrained chunk count of a channel (its staging
/// buffer occupancy). Caller holds the channel mutex.
double occupancy(std::int64_t committed,
                 const std::vector<std::int64_t>& consumed) {
  std::int64_t drained = committed;
  for (std::int64_t c : consumed) drained = std::min(drained, c);
  return static_cast<double>(committed - drained);
}

}  // namespace

CouplingChannel::CouplingChannel(int reader_count, int capacity,
                                 double wait_timeout_s)
    : capacity_(capacity), wait_timeout_s_(wait_timeout_s) {
  WFE_REQUIRE(reader_count > 0, "a coupling needs at least one reader");
  WFE_REQUIRE(capacity >= 1, "the staging buffer holds at least one chunk");
  WFE_REQUIRE(std::isfinite(wait_timeout_s) && wait_timeout_s >= 0.0,
              "coupling wait timeout must be finite and non-negative");
  consumed_.assign(static_cast<std::size_t>(reader_count), -1);
}

void CouplingChannel::check_reader(int reader) const {
  WFE_REQUIRE(reader >= 0 && reader < reader_count(),
              "reader index out of range");
}

void CouplingChannel::begin_write(std::uint64_t step) {
  Lock lock(mutex_);
  if (closed_) throw ProtocolError("begin_write on a closed channel");
  if (writing_ != -1) {
    throw ProtocolError("begin_write while a write is already in progress");
  }
  const auto expected = static_cast<std::uint64_t>(committed_ + 1);
  if (step != expected) {
    throw ProtocolError(strprintf(
        "out-of-order write: got step %llu, expected %llu (no buffering)",
        static_cast<unsigned long long>(step),
        static_cast<unsigned long long>(expected)));
  }
  // Bounded-buffer rule (capacity 1 = the paper's no-buffering protocol):
  // wait until every reader consumed step - capacity.
  const std::int64_t horizon =
      static_cast<std::int64_t>(step) - static_cast<std::int64_t>(capacity_);
  const bool traced = obs::enabled();
  const double w0 = traced ? obs::now_s() : 0.0;
  const bool drained = bounded_wait(writer_cv_, lock, wait_timeout_s_, [&] {
    return closed_ ||
           std::all_of(consumed_.begin(), consumed_.end(),
                       [&](std::int64_t c) { return c >= horizon; });
  });
  if (traced) {
    const double w1 = obs::now_s();
    if (w1 > w0) obs::span("dtl/channel", "wait_writer", w0, w1);
    if (!drained) obs::add_counter("dtl.wait_timeouts", w1, 1.0);
  }
  if (!drained) {
    throw TimeoutError(strprintf(
        "begin_write(step %llu) timed out after %.3f s awaiting readers "
        "(a reader hung or died)",
        static_cast<unsigned long long>(step), wait_timeout_s_));
  }
  if (closed_) throw ProtocolError("channel closed while awaiting readers");
  writing_ = static_cast<std::int64_t>(step);
}

void CouplingChannel::commit_write(std::uint64_t step) {
  Guard lock(mutex_);
  if (writing_ != static_cast<std::int64_t>(step)) {
    throw ProtocolError("commit_write without matching begin_write");
  }
  committed_ = writing_;
  writing_ = -1;
  if (obs::enabled()) {
    obs::add_counter("dtl.commits", obs::now_s(), 1.0);
    obs::set_counter("dtl.channel_occupancy", obs::now_s(),
                     occupancy(committed_, consumed_));
  }
  readers_cv_.notify_all();
}

void CouplingChannel::close() {
  Guard lock(mutex_);
  closed_ = true;
  readers_cv_.notify_all();
  writer_cv_.notify_all();
}

bool CouplingChannel::await_step(int reader, std::uint64_t step) {
  check_reader(reader);
  Lock lock(mutex_);
  const auto expected =
      static_cast<std::uint64_t>(consumed_[static_cast<std::size_t>(reader)] + 1);
  if (step != expected) {
    throw ProtocolError(strprintf(
        "reader %d awaiting step %llu but must consume %llu next", reader,
        static_cast<unsigned long long>(step),
        static_cast<unsigned long long>(expected)));
  }
  const bool traced = obs::enabled();
  const double w0 = traced ? obs::now_s() : 0.0;
  const bool arrived = bounded_wait(readers_cv_, lock, wait_timeout_s_, [&] {
    return closed_ || committed_ >= static_cast<std::int64_t>(step);
  });
  if (traced) {
    const double w1 = obs::now_s();
    if (w1 > w0) obs::span("dtl/channel", "wait_reader", w0, w1);
    if (!arrived) obs::add_counter("dtl.wait_timeouts", w1, 1.0);
  }
  if (!arrived) {
    throw TimeoutError(strprintf(
        "reader %d timed out after %.3f s awaiting step %llu "
        "(the writer hung or died)",
        reader, wait_timeout_s_, static_cast<unsigned long long>(step)));
  }
  return committed_ >= static_cast<std::int64_t>(step);
}

void CouplingChannel::ack_read(int reader, std::uint64_t step) {
  check_reader(reader);
  Guard lock(mutex_);
  if (committed_ < static_cast<std::int64_t>(step)) {
    throw ProtocolError("ack of a step that was never committed");
  }
  auto& consumed = consumed_[static_cast<std::size_t>(reader)];
  if (consumed + 1 != static_cast<std::int64_t>(step)) {
    throw ProtocolError(strprintf("reader %d acked step %llu out of order",
                                  reader,
                                  static_cast<unsigned long long>(step)));
  }
  consumed = static_cast<std::int64_t>(step);
  if (obs::enabled()) {
    obs::set_counter("dtl.channel_occupancy", obs::now_s(),
                     occupancy(committed_, consumed_));
  }
  writer_cv_.notify_all();
}

std::int64_t CouplingChannel::committed_step() const {
  Guard lock(mutex_);
  return committed_;
}

bool CouplingChannel::closed() const {
  Guard lock(mutex_);
  return closed_;
}

}  // namespace wfe::dtl
