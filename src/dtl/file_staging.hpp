// File-backed staging backend (parallel-file-system / burst-buffer tier).
//
// Chunks are spooled as one file per key under a root directory. Used by
// the DTL ablation (bench_ablation_dtl) to contrast in-memory staging with
// a file-system data plane, and by the loose-coupling example.
#pragma once

#include <filesystem>

#include "dtl/staging.hpp"
#include "support/lock_rank.hpp"

namespace wfe::dtl {

class FileStaging final : public StagingBackend {
 public:
  /// Creates `root` (and parents) if missing.
  explicit FileStaging(std::filesystem::path root);

  void put(const std::string& key, std::span<const std::byte> bytes) override;
  std::optional<std::vector<std::byte>> get(const std::string& key) const override;
  bool contains(const std::string& key) const override;
  bool erase(const std::string& key) override;
  std::size_t size() const override;
  std::size_t bytes_stored() const override;
  std::string tier() const override { return "file"; }

  const std::filesystem::path& root() const { return root_; }

  /// Remove every spooled file.
  void clear();

 private:
  std::filesystem::path path_for(const std::string& key) const;

  using Mutex = support::RankedMutex<support::kRankDtlStaging>;

  std::filesystem::path root_;
  mutable Mutex mutex_;
};

}  // namespace wfe::dtl
