#include "dtl/memory_staging.hpp"

namespace wfe::dtl {

void MemoryStaging::put(const std::string& key,
                        std::span<const std::byte> bytes) {
  std::vector<std::byte> copy(bytes.begin(), bytes.end());
  const support::RankGuard<Mutex> lock(mutex_);
  store_[key] = std::move(copy);
}

std::optional<std::vector<std::byte>> MemoryStaging::get(
    const std::string& key) const {
  const support::RankGuard<Mutex> lock(mutex_);
  auto it = store_.find(key);
  if (it == store_.end()) return std::nullopt;
  return it->second;
}

bool MemoryStaging::contains(const std::string& key) const {
  const support::RankGuard<Mutex> lock(mutex_);
  return store_.contains(key);
}

bool MemoryStaging::erase(const std::string& key) {
  const support::RankGuard<Mutex> lock(mutex_);
  return store_.erase(key) > 0;
}

std::size_t MemoryStaging::size() const {
  const support::RankGuard<Mutex> lock(mutex_);
  return store_.size();
}

std::size_t MemoryStaging::bytes_stored() const {
  const support::RankGuard<Mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& [_, buf] : store_) total += buf.size();
  return total;
}

void MemoryStaging::clear() {
  const support::RankGuard<Mutex> lock(mutex_);
  store_.clear();
}

}  // namespace wfe::dtl
