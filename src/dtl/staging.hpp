// DTL backend interface: the staging area of the paper's Figure 2.
//
// "The [data transport layer] represents a variety of storage tiers,
//  including in-memory, burst-buffers, or parallel file systems."
//
// A backend is a thread-safe keyed byte store; it knows nothing of chunks
// or couplings. Backends implemented here: MemoryStaging (DIMES-like
// in-memory area) and FileStaging (file-system tier). The DtlPlugin layers
// chunk marshaling on top, and CouplingChannel layers the synchronous
// in situ protocol on top of that.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace wfe::dtl {

class StagingBackend {
 public:
  virtual ~StagingBackend() = default;

  /// Store a buffer under a key. Overwriting an existing key is a protocol
  /// decision made by layers above; backends allow it.
  virtual void put(const std::string& key, std::span<const std::byte> bytes) = 0;

  /// Fetch a copy of the buffer stored under `key`, or nullopt.
  virtual std::optional<std::vector<std::byte>> get(const std::string& key) const = 0;

  /// True if `key` currently holds data.
  virtual bool contains(const std::string& key) const = 0;

  /// Remove a key; returns true if it existed.
  virtual bool erase(const std::string& key) = 0;

  /// Number of stored keys.
  virtual std::size_t size() const = 0;

  /// Total stored payload bytes (backend-resident footprint).
  virtual std::size_t bytes_stored() const = 0;

  /// Human-readable tier name ("memory", "file").
  virtual std::string tier() const = 0;
};

}  // namespace wfe::dtl
