// Chunk (de)serialization — the DTL plugin's data marshaling (paper §2.2):
// "the abstract chunk is serialized to a buffer of bytes, which is easy to
//  manage for most DTL".
//
// Wire format (little-endian, fixed 48-byte header, version 1):
//   u32 magic 'WFEC'   u32 version      u32 member_id   u32 payload_kind
//   u64 step           u64 element_count
//   u64 checksum       u64 reserved
//   f64 payload[element_count]
//
// The checksum is a 64-bit FNV-1a over the ENTIRE buffer (checksum slot
// zeroed), so corruption anywhere — key, kind, count, reserved or payload —
// is detected. Deserialization rejects bad magic, unknown versions,
// truncated buffers and checksum mismatches with wfe::SerializationError.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "dtl/chunk.hpp"

namespace wfe::dtl {

inline constexpr std::uint32_t kChunkMagic = 0x43454657u;  // "WFEC"
inline constexpr std::uint32_t kChunkVersion = 1;
inline constexpr std::size_t kChunkHeaderBytes = 48;

/// FNV-1a 64-bit hash, used as the payload checksum.
std::uint64_t fnv1a64(std::span<const std::byte> bytes);

/// Serialize a chunk into a fresh byte buffer.
std::vector<std::byte> serialize(const Chunk& chunk);

/// Total serialized size of a chunk without building the buffer.
std::size_t serialized_size(const Chunk& chunk);

/// Parse a byte buffer back into a chunk; throws SerializationError on any
/// malformation.
Chunk deserialize(std::span<const std::byte> bytes);

}  // namespace wfe::dtl
