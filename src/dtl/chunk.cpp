#include "dtl/chunk.hpp"

#include "support/error.hpp"
#include "support/str.hpp"

namespace wfe::dtl {

const char* to_string(PayloadKind kind) {
  switch (kind) {
    case PayloadKind::kPositions3N:
      return "positions3n";
    case PayloadKind::kScalarSeries:
      return "scalars";
  }
  return "unknown";
}

std::string ChunkKey::str() const {
  return strprintf("m%u/s%llu", member_id,
                   static_cast<unsigned long long>(step));
}

Chunk::Chunk(ChunkKey key, PayloadKind kind, std::vector<double> values)
    : key_(key), kind_(kind), values_(std::move(values)) {
  if (kind_ == PayloadKind::kPositions3N) {
    WFE_REQUIRE(values_.size() % 3 == 0,
                "positions payload must hold 3 doubles per atom");
  }
}

std::size_t Chunk::atom_count() const {
  WFE_REQUIRE(kind_ == PayloadKind::kPositions3N,
              "atom_count is only defined for position payloads");
  return values_.size() / 3;
}

}  // namespace wfe::dtl
