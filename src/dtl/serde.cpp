#include "dtl/serde.hpp"

#include <bit>
#include <cstring>

#include "support/error.hpp"
#include "support/str.hpp"

static_assert(std::endian::native == std::endian::little,
              "the chunk wire format assumes a little-endian host");

namespace wfe::dtl {

namespace {

template <typename T>
void put(std::vector<std::byte>& out, std::size_t& off, T value) {
  std::memcpy(out.data() + off, &value, sizeof(T));
  off += sizeof(T);
}

template <typename T>
T take(std::span<const std::byte> in, std::size_t& off) {
  T value;
  std::memcpy(&value, in.data() + off, sizeof(T));
  off += sizeof(T);
  return value;
}

}  // namespace

std::uint64_t fnv1a64(std::span<const std::byte> bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::size_t serialized_size(const Chunk& chunk) {
  return kChunkHeaderBytes + chunk.payload_bytes();
}

std::vector<std::byte> serialize(const Chunk& chunk) {
  std::vector<std::byte> out(serialized_size(chunk));
  const auto payload = std::as_bytes(chunk.values());

  std::size_t off = 0;
  put(out, off, kChunkMagic);
  put(out, off, kChunkVersion);
  put(out, off, chunk.key().member_id);
  put(out, off, static_cast<std::uint32_t>(chunk.kind()));
  put(out, off, chunk.key().step);
  put(out, off, static_cast<std::uint64_t>(chunk.element_count()));
  const std::size_t crc_off = off;
  put(out, off, std::uint64_t{0});  // checksum placeholder
  put(out, off, std::uint64_t{0});  // reserved
  if (!payload.empty()) {
    std::memcpy(out.data() + off, payload.data(), payload.size());
  }
  // The checksum covers the entire buffer (header fields included) with
  // the checksum slot zeroed, so any corruption — key, kind, count or
  // payload — is detected.
  const std::uint64_t crc = fnv1a64(out);
  std::memcpy(out.data() + crc_off, &crc, sizeof(crc));
  return out;
}

Chunk deserialize(std::span<const std::byte> bytes) {
  if (bytes.size() < kChunkHeaderBytes) {
    throw SerializationError("chunk buffer shorter than header");
  }
  std::size_t off = 0;
  const auto magic = take<std::uint32_t>(bytes, off);
  if (magic != kChunkMagic) {
    throw SerializationError(strprintf("bad chunk magic 0x%08x", magic));
  }
  const auto version = take<std::uint32_t>(bytes, off);
  if (version != kChunkVersion) {
    throw SerializationError(strprintf("unsupported chunk version %u", version));
  }
  const auto member_id = take<std::uint32_t>(bytes, off);
  const auto kind_raw = take<std::uint32_t>(bytes, off);
  if (kind_raw != static_cast<std::uint32_t>(PayloadKind::kPositions3N) &&
      kind_raw != static_cast<std::uint32_t>(PayloadKind::kScalarSeries)) {
    throw SerializationError(strprintf("unknown payload kind %u", kind_raw));
  }
  const auto step = take<std::uint64_t>(bytes, off);
  const auto count = take<std::uint64_t>(bytes, off);
  const auto crc = take<std::uint64_t>(bytes, off);
  (void)take<std::uint64_t>(bytes, off);  // reserved

  const std::size_t expected = kChunkHeaderBytes + count * sizeof(double);
  if (bytes.size() != expected) {
    throw SerializationError(
        strprintf("chunk size mismatch: buffer %zu bytes, header implies %zu",
                  bytes.size(), expected));
  }
  // Recompute the whole-buffer checksum with the checksum slot zeroed.
  std::vector<std::byte> zeroed(bytes.begin(), bytes.end());
  std::memset(zeroed.data() + 32, 0, sizeof(std::uint64_t));
  if (fnv1a64(zeroed) != crc) {
    throw SerializationError("chunk checksum mismatch");
  }
  std::vector<double> values(count);
  if (count > 0) {
    std::memcpy(values.data(), bytes.data() + off, count * sizeof(double));
  }
  if (kind_raw == static_cast<std::uint32_t>(PayloadKind::kPositions3N) &&
      count % 3 != 0) {
    throw SerializationError("positions payload not divisible by 3");
  }
  return Chunk(ChunkKey{member_id, step}, static_cast<PayloadKind>(kind_raw),
               std::move(values));
}

}  // namespace wfe::dtl
