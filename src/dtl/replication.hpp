// Staged-chunk replication across node-level fault domains.
//
// DIMES-style staging keeps a chunk in the producer's node-local memory, so
// a permanent node death takes every chunk staged there with it. A
// ReplicationSpec mirrors each committed chunk onto `factor - 1` neighbour
// nodes (ring layout: replica k lives on (primary + k) mod node_count), so
// consumers can keep reading across a producer-node death — at the price of
// extra staging transfers on every write, which the executor and scheduler
// probes price identically (docs/RESILIENCE.md).
#pragma once

#include <vector>

namespace wfe::dtl {

struct ReplicationSpec {
  /// Copies of each staged chunk, the primary included. 1 = no replication.
  int factor = 1;

  /// The nodes holding a chunk whose producer runs on `primary`, primary
  /// first: min(factor, node_count) distinct nodes on the ring.
  std::vector<int> replica_nodes(int primary, int node_count) const;

  /// True when a chunk staged from `primary` is still readable after
  /// `dead_node` permanently fails (some replica lives elsewhere).
  bool survives(int dead_node, int primary, int node_count) const;

  /// Extra off-node copies each write pays for: min(factor, node_count) - 1.
  int extra_copies(int node_count) const;

  /// Throws wfe::InvalidArgument unless factor >= 1.
  void validate() const;
};

}  // namespace wfe::dtl
