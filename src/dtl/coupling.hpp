// CouplingChannel: the synchronous in situ coupling protocol of the paper
// (Sections 2.1 and 3.1), between one simulation (writer) and K analyses
// (readers).
//
//   "Although the simulation can compute while the analyses are reading the
//    data, the simulation does not write any new data until the data from
//    the previous iteration is read."
//
// Formally: W_i happens before R_i (every reader), and R_i happens before
// W_{i+1} — no buffering of the simulation output. The channel enforces
// this with one sequence number per reader and blocks the writer in
// begin_write (the simulation idle stage I^S) and readers in await_step
// (the analysis idle stage I^A).
//
// The channel transports no data itself; payloads travel through a
// StagingBackend via the DtlPlugin. This mirrors the DIMES split between
// coordination (metadata service) and data plane (node-local memory).
//
// Extension beyond the paper: a `capacity` > 1 allows up to that many
// published-but-undrained chunks in flight (a bounded staging buffer).
// capacity == 1 reproduces the paper's protocol exactly; the buffering
// ablation (bench_ext_buffering) studies what relaxing it changes.
//
// Bounded waits (resilience extension): a `wait_timeout_s` > 0 turns every
// blocking call (begin_write, await_step) into a bounded wait raising
// wfe::TimeoutError when the peer fails to make progress in time — a hung
// or dead component then surfaces as a catchable error instead of
// deadlocking the whole ensemble. 0 keeps the historical unbounded waits.
#pragma once

#include <cstdint>
#include <vector>

#include "support/lock_rank.hpp"

namespace wfe::dtl {

class CouplingChannel {
 public:
  /// A channel for one writer and `reader_count` readers holding at most
  /// `capacity` published-but-undrained steps (1 = the paper's protocol).
  /// `wait_timeout_s` > 0 bounds every blocking call (wfe::TimeoutError on
  /// expiry); 0 waits forever.
  explicit CouplingChannel(int reader_count, int capacity = 1,
                           double wait_timeout_s = 0.0);

  int reader_count() const { return static_cast<int>(consumed_.size()); }
  int capacity() const { return capacity_; }
  double wait_timeout_s() const { return wait_timeout_s_; }

  // -- writer side ----------------------------------------------------------

  /// Block until every reader has acknowledged step - capacity (no-op for
  /// the first `capacity` steps). `step` must be exactly one past the last
  /// committed step. Throws ProtocolError on out-of-order calls and
  /// TimeoutError when a bounded wait expires before readers drain.
  void begin_write(std::uint64_t step);

  /// Publish step (readers blocked in await_step wake up). Must follow the
  /// matching begin_write.
  void commit_write(std::uint64_t step);

  /// Writer is done; readers waiting for steps beyond the last committed one
  /// unblock and see `false` from await_step.
  void close();

  // -- reader side ----------------------------------------------------------

  /// Block until `step` is committed (returns true) or the channel closes
  /// without it (returns false). Readers must consume steps in order.
  /// Throws TimeoutError when a bounded wait expires before the writer
  /// commits.
  bool await_step(int reader, std::uint64_t step);

  /// Acknowledge that `reader` finished reading `step`; may unblock the
  /// writer. Throws ProtocolError on double-acks or acks of unpublished
  /// steps.
  void ack_read(int reader, std::uint64_t step);

  // -- introspection --------------------------------------------------------

  /// Last committed step, or -1 if none yet.
  std::int64_t committed_step() const;
  bool closed() const;

 private:
  // Held while emitting obs spans/counters, hence the lowest rank in the
  // table (see support/lock_rank.hpp).
  using Mutex = support::RankedMutex<support::kRankDtlChannel>;
  using Guard = support::RankGuard<Mutex>;
  using Lock = support::RankLock<Mutex>;

  void check_reader(int reader) const;

  mutable Mutex mutex_;
  support::RankedCv writer_cv_;
  support::RankedCv readers_cv_;
  int capacity_ = 1;
  double wait_timeout_s_ = 0.0;  // 0 = unbounded
  std::int64_t committed_ = -1;  // last committed step
  std::int64_t writing_ = -1;    // step currently between begin/commit
  std::vector<std::int64_t> consumed_;  // per-reader last acked step
  bool closed_ = false;
};

}  // namespace wfe::dtl
