// FaultInjector: the deterministic fault timeline behind a FaultSpec.
//
// Two independent randomness domains, both derived from FaultSpec::seed:
//
//  * Node crashes — one lazily-extended Poisson schedule per node (its own
//    SplitMix64-seeded xoshiro stream), so the crash timeline of node k is
//    identical no matter which components run on it, in what order the
//    executor queries it, or how far the replay gets.
//  * Per-attempt stage verdicts — counter-based hashing of
//    (member, analysis, step, kind, attempt): no generator state is
//    consumed, so verdicts are independent of event ordering and two runs
//    with the same seed agree attempt-by-attempt.
//
// The injector knows nothing about the discrete-event engine; the executor
// asks it "when does this stage die?" and schedules the corresponding kill
// events itself (cancelling in-flight completions via sim::Engine::cancel).
#pragma once

#include <limits>
#include <optional>
#include <vector>

#include "core/stages.hpp"
#include "resilience/fault_spec.hpp"
#include "support/rng.hpp"

namespace wfe::res {

class FaultInjector {
 public:
  /// `node_count` bounds the node indexes that may be queried.
  FaultInjector(const FaultSpec& spec, int node_count);

  const FaultSpec& spec() const { return spec_; }

  /// Earliest crash of any node in `nodes` strictly inside (t0, t1), or
  /// +infinity if the interval is crash-free. A stage spanning [t0, t1)
  /// survives a crash at exactly t0 (it starts after the node came up).
  double first_crash_in(const std::vector<int>& nodes, double t0, double t1);

  /// Earliest time >= t at which every node in `nodes` is up (outside all
  /// repair windows). Returns t itself when all nodes are healthy.
  double all_up_at(const std::vector<int>& nodes, double t);

  /// Transient verdict for one stage attempt: nullopt if the attempt runs
  /// clean, otherwise the fraction in (0, 1) of the stage duration at which
  /// it dies. Compute stages (S, A) draw from stage_error_prob, transfer
  /// stages (W, R) from transfer_loss_prob, everything else never faults.
  /// Pure function of (seed, member, analysis, step, kind, attempt).
  std::optional<double> transient_point(std::uint32_t member,
                                        std::int32_t analysis,
                                        std::uint64_t step,
                                        core::StageKind kind, int attempt);

  static constexpr double kNever = std::numeric_limits<double>::infinity();

 private:
  /// Extend node's crash schedule until its last crash strictly exceeds t.
  void ensure_until(int node, double t);

  struct NodeTimeline {
    Xoshiro256 rng;
    std::vector<double> crashes;  ///< sorted crash instants
    explicit NodeTimeline(std::uint64_t seed) : rng(seed) {}
  };

  FaultSpec spec_;
  std::vector<NodeTimeline> nodes_;
};

}  // namespace wfe::res
