// FaultInjector: the deterministic fault timeline behind a FaultSpec.
//
// Four independent randomness domains, all derived from FaultSpec::seed:
//
//  * Node crashes — one lazily-extended Poisson schedule per node (its own
//    SplitMix64-seeded xoshiro stream), so the crash timeline of node k is
//    identical no matter which components run on it, in what order the
//    executor queries it, or how far the replay gets. With
//    crashes_are_fatal, a node's first crash is a permanent death;
//    scripted node_down entries add permanent deaths independent of MTBF.
//  * Straggler windows — per-node degraded intervals (own streams) during
//    which compute stages start `straggler_factor` slower.
//  * Network-degradation windows — one platform-wide stream of intervals
//    stretching staging transfers by `net_degrade_factor`.
//  * Per-attempt stage verdicts — counter-based hashing of
//    (member, analysis, step, kind, attempt): no generator state is
//    consumed, so verdicts are independent of event ordering and two runs
//    with the same seed agree attempt-by-attempt.
//
// The injector knows nothing about the discrete-event engine; the executor
// asks it "when does this stage die?" and schedules the corresponding kill
// events itself (cancelling in-flight completions via sim::Engine::cancel).
#pragma once

#include <limits>
#include <optional>
#include <vector>

#include "core/stages.hpp"
#include "resilience/fault_spec.hpp"
#include "support/rng.hpp"

namespace wfe::res {

class FaultInjector {
 public:
  /// `node_count` bounds the node indexes that may be queried.
  FaultInjector(const FaultSpec& spec, int node_count);

  const FaultSpec& spec() const { return spec_; }

  /// Earliest crash of any node in `nodes` strictly inside (t0, t1), or
  /// +infinity if the interval is crash-free. A stage spanning [t0, t1)
  /// survives a crash at exactly t0 (it starts after the node came up).
  /// Permanent deaths (scripted or fatal first crashes) count as crashes;
  /// transient crashes at or after a node's death time do not.
  double first_crash_in(const std::vector<int>& nodes, double t0, double t1);

  /// Earliest time >= t at which every node in `nodes` is up (outside all
  /// repair windows). Returns t itself when all nodes are healthy, and
  /// kNever when a node in the set is (or becomes, while the others are
  /// waited out) permanently dead — callers must branch to the node-loss
  /// path instead of waiting.
  double all_up_at(const std::vector<int>& nodes, double t);

  /// When `node` dies for good: the earlier of its scripted death and (with
  /// crashes_are_fatal) its first Poisson crash; kNever otherwise.
  double down_at(int node);

  /// The node in `nodes` that is permanently dead at time `t` with the
  /// earliest death (ties toward the lower node id), or nullopt when every
  /// node in the set is still alive (possibly mid-repair) at `t`.
  std::optional<int> first_down_node(const std::vector<int>& nodes, double t);

  /// Earliest permanent death among `nodes` (kNever if none ever dies).
  double first_down_time(const std::vector<int>& nodes);

  /// Node whose crash instant equals `t` exactly (the node that killed a
  /// stage scheduled to die at `t`), or nullopt. Ties toward lower ids.
  std::optional<int> crash_node_at(const std::vector<int>& nodes, double t);

  /// True while `node` sits inside one of its straggler windows at `t`.
  bool straggling(int node, double t);

  /// Max straggler factor over `nodes` at time `t` (1.0 when none is
  /// degraded or the straggler model is off).
  double compute_slowdown(const std::vector<int>& nodes, double t);

  /// Transfer stretch factor at time `t` (1.0 outside degradation windows
  /// or when the network model is off).
  double transfer_slowdown(double t);

  /// Transient verdict for one stage attempt: nullopt if the attempt runs
  /// clean, otherwise the fraction in (0, 1) of the stage duration at which
  /// it dies. Compute stages (S, A) draw from stage_error_prob, transfer
  /// stages (W, R) from transfer_loss_prob, everything else never faults.
  /// Pure function of (seed, member, analysis, step, kind, attempt).
  std::optional<double> transient_point(std::uint32_t member,
                                        std::int32_t analysis,
                                        std::uint64_t step,
                                        core::StageKind kind, int attempt);

  static constexpr double kNever = std::numeric_limits<double>::infinity();

 private:
  /// Extend node's crash schedule until its last crash strictly exceeds t.
  void ensure_until(int node, double t);

  struct NodeTimeline {
    Xoshiro256 rng;
    std::vector<double> crashes;  ///< sorted crash instants
    explicit NodeTimeline(std::uint64_t seed) : rng(seed) {}
  };

  /// Lazily-extended sequence of [start, end) degraded windows drawn from
  /// an exponential inter-arrival process (its own stream).
  struct WindowTimeline {
    Xoshiro256 rng;
    std::vector<std::pair<double, double>> windows;  ///< sorted, disjoint
    explicit WindowTimeline(std::uint64_t seed) : rng(seed) {}

    /// Extend until the last window starts strictly after t, then report
    /// whether t falls inside a window.
    bool covers(double t, double mtbf_s, double duration_s);
  };

  FaultSpec spec_;
  std::vector<NodeTimeline> nodes_;
  std::vector<double> scripted_down_;       ///< per node; kNever = never
  std::vector<WindowTimeline> stragglers_;  ///< lazily built, per node
  WindowTimeline net_;                      ///< platform-wide degradation
};

}  // namespace wfe::res
