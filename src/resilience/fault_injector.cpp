#include "resilience/fault_injector.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace wfe::res {

namespace {

/// SplitMix64 finalizer used as a stateless mixing step for counter-based
/// hashing (no generator state, so verdicts are order-independent).
std::uint64_t mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Map 64 bits to a uniform double in (0, 1) — never exactly 0 so a faulty
/// attempt always wastes some work.
double to_unit(std::uint64_t h) {
  return (static_cast<double>(h >> 11) + 0.5) * 0x1.0p-53;
}

}  // namespace

FaultInjector::FaultInjector(const FaultSpec& spec, int node_count)
    : spec_(spec),
      net_(mix(spec.seed ^ 0x6e657477ULL)) {  // "netw" domain tag
  spec_.validate();
  WFE_REQUIRE(node_count > 0, "fault injector needs at least one node");
  nodes_.reserve(static_cast<std::size_t>(node_count));
  stragglers_.reserve(static_cast<std::size_t>(node_count));
  for (int n = 0; n < node_count; ++n) {
    nodes_.emplace_back(
        mix(spec_.seed ^ mix(0xc4a54ULL + static_cast<std::uint64_t>(n))));
    // Independent domain: enabling stragglers never perturbs the crash
    // timeline of any node.
    stragglers_.emplace_back(
        mix(spec_.seed ^ mix(0x57a991ULL + static_cast<std::uint64_t>(n))));
  }
  scripted_down_.assign(static_cast<std::size_t>(node_count), kNever);
  for (const NodeDown& d : spec_.node_down) {
    WFE_REQUIRE(d.node < node_count,
                "scripted node death names a node outside the platform");
    scripted_down_[static_cast<std::size_t>(d.node)] = d.at_s;
  }
}

bool FaultInjector::WindowTimeline::covers(double t, double mtbf_s,
                                           double duration_s) {
  double horizon = windows.empty() ? 0.0 : windows.back().second;
  while (windows.empty() || windows.back().first <= t) {
    const double gap = -mtbf_s * std::log(1.0 - rng.uniform01());
    const double start = horizon + gap;
    windows.emplace_back(start, start + duration_s);
    horizon = start + duration_s;
  }
  // Only the last window starting at or before t can cover it (windows are
  // disjoint and sorted by construction).
  const auto it = std::upper_bound(
      windows.begin(), windows.end(), t,
      [](double v, const std::pair<double, double>& w) { return v < w.first; });
  return it != windows.begin() && t < (it - 1)->second;
}

void FaultInjector::ensure_until(int node, double t) {
  NodeTimeline& tl = nodes_[static_cast<std::size_t>(node)];
  // Crashes cannot occur while the node is already down: each inter-arrival
  // starts counting at the end of the previous repair window.
  double horizon =
      tl.crashes.empty() ? 0.0 : tl.crashes.back() + spec_.node_repair_s;
  while (tl.crashes.empty() || tl.crashes.back() <= t) {
    const double gap =
        -spec_.node_mtbf_s * std::log(1.0 - tl.rng.uniform01());
    horizon += gap;
    tl.crashes.push_back(horizon);
    horizon += spec_.node_repair_s;
  }
}

double FaultInjector::first_crash_in(const std::vector<int>& nodes, double t0,
                                     double t1) {
  if (spec_.node_mtbf_s <= 0.0 && spec_.node_down.empty()) return kNever;
  double first = kNever;
  for (int node : nodes) {
    WFE_REQUIRE(node >= 0 && node < static_cast<int>(nodes_.size()),
                "node index outside the fault injector's platform");
    const double down = down_at(node);
    if (spec_.node_mtbf_s > 0.0) {
      ensure_until(node, t1);
      const auto& crashes = nodes_[static_cast<std::size_t>(node)].crashes;
      const auto it = std::upper_bound(crashes.begin(), crashes.end(), t0);
      // Transient crashes stop at the node's death: past it the node is not
      // cycling through repair, it is gone (the death itself counts below).
      if (it != crashes.end() && *it < t1 && *it < down) {
        first = std::min(first, *it);
      }
    }
    if (down > t0 && down < t1) first = std::min(first, down);
  }
  return first;
}

double FaultInjector::all_up_at(const std::vector<int>& nodes, double t) {
  if (spec_.node_mtbf_s <= 0.0 && spec_.node_down.empty()) return t;
  // Waiting out one node's repair window may run into another's; iterate to
  // a fixpoint (windows are finite and strictly advance, so this converges).
  double ready = t;
  for (;;) {
    double pushed = ready;
    for (int node : nodes) {
      WFE_REQUIRE(node >= 0 && node < static_cast<int>(nodes_.size()),
                  "node index outside the fault injector's platform");
      // A permanently dead node never comes back up; waiting is futile and
      // the caller must take the node-loss path instead.
      if (down_at(node) <= pushed) return kNever;
      if (spec_.node_mtbf_s <= 0.0) continue;
      ensure_until(node, pushed);
      const auto& crashes = nodes_[static_cast<std::size_t>(node)].crashes;
      // Only the latest crash at or before `pushed` can still cover it.
      const auto it = std::upper_bound(crashes.begin(), crashes.end(), pushed);
      if (it != crashes.begin() &&
          pushed < *(it - 1) + spec_.node_repair_s) {
        pushed = *(it - 1) + spec_.node_repair_s;
      }
    }
    if (pushed == ready) return ready;
    ready = pushed;
  }
}

double FaultInjector::down_at(int node) {
  WFE_REQUIRE(node >= 0 && node < static_cast<int>(nodes_.size()),
              "node index outside the fault injector's platform");
  double down = scripted_down_[static_cast<std::size_t>(node)];
  if (spec_.crashes_are_fatal && spec_.node_mtbf_s > 0.0) {
    ensure_until(node, 0.0);
    down = std::min(down,
                    nodes_[static_cast<std::size_t>(node)].crashes.front());
  }
  return down;
}

std::optional<int> FaultInjector::first_down_node(const std::vector<int>& nodes,
                                                  double t) {
  std::optional<int> best;
  double best_t = kNever;
  for (int node : nodes) {
    const double d = down_at(node);
    if (d > t) continue;
    if (!best || d < best_t || (d == best_t && node < *best)) {
      best = node;
      best_t = d;
    }
  }
  return best;
}

double FaultInjector::first_down_time(const std::vector<int>& nodes) {
  double first = kNever;
  for (int node : nodes) first = std::min(first, down_at(node));
  return first;
}

std::optional<int> FaultInjector::crash_node_at(const std::vector<int>& nodes,
                                                double t) {
  std::optional<int> found;
  for (int node : nodes) {
    const double down = down_at(node);
    bool hit = down == t;
    if (!hit && spec_.node_mtbf_s > 0.0) {
      ensure_until(node, t);
      const auto& crashes = nodes_[static_cast<std::size_t>(node)].crashes;
      hit = t < down &&
            std::binary_search(crashes.begin(), crashes.end(), t);
    }
    if (hit && (!found || node < *found)) found = node;
  }
  return found;
}

bool FaultInjector::straggling(int node, double t) {
  if (spec_.straggler_mtbf_s <= 0.0) return false;
  WFE_REQUIRE(node >= 0 && node < static_cast<int>(stragglers_.size()),
              "node index outside the fault injector's platform");
  return stragglers_[static_cast<std::size_t>(node)].covers(
      t, spec_.straggler_mtbf_s, spec_.straggler_duration_s);
}

double FaultInjector::compute_slowdown(const std::vector<int>& nodes,
                                       double t) {
  if (spec_.straggler_mtbf_s <= 0.0) return 1.0;
  for (int node : nodes) {
    if (straggling(node, t)) return spec_.straggler_factor;
  }
  return 1.0;
}

double FaultInjector::transfer_slowdown(double t) {
  if (spec_.net_degrade_mtbf_s <= 0.0) return 1.0;
  return net_.covers(t, spec_.net_degrade_mtbf_s, spec_.net_degrade_duration_s)
             ? spec_.net_degrade_factor
             : 1.0;
}

std::optional<double> FaultInjector::transient_point(std::uint32_t member,
                                                     std::int32_t analysis,
                                                     std::uint64_t step,
                                                     core::StageKind kind,
                                                     int attempt) {
  double prob = 0.0;
  switch (kind) {
    case core::StageKind::kSimulate:
    case core::StageKind::kAnalyze:
      prob = spec_.stage_error_prob;
      break;
    case core::StageKind::kWrite:
    case core::StageKind::kRead:
      prob = spec_.transfer_loss_prob;
      break;
    default:
      return std::nullopt;  // idle/bookkeeping stages never fault
  }
  if (prob <= 0.0) return std::nullopt;

  std::uint64_t h = mix(spec_.seed ^ 0x7472616e73ULL);  // "trans" domain tag
  h = mix(h ^ member);
  h = mix(h ^ static_cast<std::uint64_t>(static_cast<std::int64_t>(analysis) +
                                         1));
  h = mix(h ^ step);
  h = mix(h ^ static_cast<std::uint64_t>(kind));
  h = mix(h ^ static_cast<std::uint64_t>(attempt));
  if (to_unit(h) >= prob) return std::nullopt;
  return to_unit(mix(h ^ 0x66726163ULL));  // "frac": where the attempt dies
}

}  // namespace wfe::res
