#include "resilience/fault_spec.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/str.hpp"

namespace wfe::res {

void FaultSpec::validate() const {
  WFE_REQUIRE(std::isfinite(node_mtbf_s) && node_mtbf_s >= 0.0,
              "node MTBF must be finite and non-negative");
  WFE_REQUIRE(std::isfinite(node_repair_s) && node_repair_s > 0.0,
              "node repair time must be finite and positive");
  WFE_REQUIRE(std::isfinite(stage_error_prob) && stage_error_prob >= 0.0 &&
                  stage_error_prob <= 1.0,
              "stage error probability must be in [0, 1]");
  WFE_REQUIRE(std::isfinite(transfer_loss_prob) && transfer_loss_prob >= 0.0 &&
                  transfer_loss_prob <= 1.0,
              "transfer loss probability must be in [0, 1]");
  WFE_REQUIRE(std::isfinite(straggler_mtbf_s) && straggler_mtbf_s >= 0.0,
              "straggler MTBF must be finite and non-negative");
  WFE_REQUIRE(std::isfinite(straggler_duration_s) &&
                  straggler_duration_s > 0.0,
              "straggler window duration must be finite and positive");
  WFE_REQUIRE(std::isfinite(straggler_factor) && straggler_factor >= 1.0,
              "straggler slowdown factor must be finite and at least 1");
  WFE_REQUIRE(std::isfinite(net_degrade_mtbf_s) && net_degrade_mtbf_s >= 0.0,
              "network-degradation MTBF must be finite and non-negative");
  WFE_REQUIRE(std::isfinite(net_degrade_duration_s) &&
                  net_degrade_duration_s > 0.0,
              "network-degradation window duration must be finite and "
              "positive");
  WFE_REQUIRE(std::isfinite(net_degrade_factor) && net_degrade_factor >= 1.0,
              "network-degradation factor must be finite and at least 1");
  for (std::size_t i = 0; i < node_down.size(); ++i) {
    WFE_REQUIRE(node_down[i].node >= 0,
                "scripted node death names a negative node");
    WFE_REQUIRE(std::isfinite(node_down[i].at_s) && node_down[i].at_s >= 0.0,
                "scripted node death time must be finite and non-negative");
    for (std::size_t j = i + 1; j < node_down.size(); ++j) {
      WFE_REQUIRE(node_down[i].node != node_down[j].node,
                  "scripted node deaths must name distinct nodes");
    }
  }
}

FaultSpec FaultSpec::probe_view() const {
  FaultSpec probe = *this;
  probe.node_mtbf_s = 0.0;
  probe.crashes_are_fatal = false;
  probe.node_down.clear();
  probe.stage_error_prob = 0.0;
  probe.transfer_loss_prob = 0.0;
  return probe;
}

std::uint64_t FaultSpec::digest() const {
  Fnv1a h;
  h.add(node_mtbf_s);
  h.add(node_repair_s);
  h.add(crashes_are_fatal);
  h.add(node_down.size());
  for (const NodeDown& d : node_down) {
    h.add(d.node);
    h.add(d.at_s);
  }
  h.add(straggler_mtbf_s);
  h.add(straggler_duration_s);
  h.add(straggler_factor);
  h.add(net_degrade_mtbf_s);
  h.add(net_degrade_duration_s);
  h.add(net_degrade_factor);
  h.add(stage_error_prob);
  h.add(transfer_loss_prob);
  h.add(seed);
  return h.digest();
}

const char* to_string(RecoveryKind kind) {
  switch (kind) {
    case RecoveryKind::kRetry:
      return "retry";
    case RecoveryKind::kCheckpointRestart:
      return "checkpoint-restart";
    case RecoveryKind::kFailMember:
      return "fail-member";
  }
  return "?";
}

double RecoveryPolicy::backoff(int attempt) const {
  const double unbounded =
      backoff_base_s * std::pow(2.0, static_cast<double>(attempt - 1));
  return std::min(unbounded, backoff_cap_s);
}

std::uint64_t RecoveryPolicy::digest() const {
  Fnv1a h;
  h.add(static_cast<std::uint64_t>(kind));
  h.add(max_retries);
  h.add(backoff_base_s);
  h.add(backoff_cap_s);
  h.add(checkpoint_period);
  h.add(checkpoint_cost_s);
  h.add(restart_cost_s);
  h.add(max_restarts);
  h.add(chunk_replication);
  h.add(migration_cost_s);
  return h.digest();
}

void RecoveryPolicy::validate() const {
  WFE_REQUIRE(max_retries >= 0, "retry budget must be non-negative");
  WFE_REQUIRE(chunk_replication >= 1,
              "chunk replication factor must be at least 1");
  WFE_REQUIRE(std::isfinite(migration_cost_s) && migration_cost_s >= 0.0,
              "migration cost must be finite and non-negative");
  WFE_REQUIRE(std::isfinite(backoff_base_s) && backoff_base_s >= 0.0,
              "backoff base must be finite and non-negative");
  WFE_REQUIRE(std::isfinite(backoff_cap_s) && backoff_cap_s >= backoff_base_s,
              "backoff cap must be finite and at least the base");
  WFE_REQUIRE(checkpoint_period >= 1,
              "checkpoint period must be at least one step");
  WFE_REQUIRE(std::isfinite(checkpoint_cost_s) && checkpoint_cost_s >= 0.0,
              "checkpoint cost must be finite and non-negative");
  WFE_REQUIRE(std::isfinite(restart_cost_s) && restart_cost_s >= 0.0,
              "restart cost must be finite and non-negative");
  WFE_REQUIRE(max_restarts >= 0, "restart budget must be non-negative");
}

std::string FailureSummary::str() const {
  std::string out = strprintf(
      "faults=%llu (crash=%llu transient=%llu) retries=%llu checkpoints=%llu "
      "restarts=%llu recovered=%llu failed=%llu wasted=%.3f core-h",
      static_cast<unsigned long long>(faults_injected()),
      static_cast<unsigned long long>(crash_stage_kills),
      static_cast<unsigned long long>(transient_stage_faults),
      static_cast<unsigned long long>(stage_retries),
      static_cast<unsigned long long>(checkpoints_written),
      static_cast<unsigned long long>(member_restarts),
      static_cast<unsigned long long>(members_recovered),
      static_cast<unsigned long long>(members_failed), wasted_core_hours());
  if (node_downs > 0 || migrations > 0 || replans > 0 || chunks_lost > 0) {
    out += strprintf(" node_downs=%llu migrations=%llu replans=%llu "
                     "chunks_lost=%llu",
                     static_cast<unsigned long long>(node_downs),
                     static_cast<unsigned long long>(migrations),
                     static_cast<unsigned long long>(replans),
                     static_cast<unsigned long long>(chunks_lost));
  }
  return out;
}

}  // namespace wfe::res
