#include "resilience/fault_spec.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/str.hpp"

namespace wfe::res {

void FaultSpec::validate() const {
  WFE_REQUIRE(std::isfinite(node_mtbf_s) && node_mtbf_s >= 0.0,
              "node MTBF must be finite and non-negative");
  WFE_REQUIRE(std::isfinite(node_repair_s) && node_repair_s > 0.0,
              "node repair time must be finite and positive");
  WFE_REQUIRE(std::isfinite(stage_error_prob) && stage_error_prob >= 0.0 &&
                  stage_error_prob <= 1.0,
              "stage error probability must be in [0, 1]");
  WFE_REQUIRE(std::isfinite(transfer_loss_prob) && transfer_loss_prob >= 0.0 &&
                  transfer_loss_prob <= 1.0,
              "transfer loss probability must be in [0, 1]");
}

const char* to_string(RecoveryKind kind) {
  switch (kind) {
    case RecoveryKind::kRetry:
      return "retry";
    case RecoveryKind::kCheckpointRestart:
      return "checkpoint-restart";
    case RecoveryKind::kFailMember:
      return "fail-member";
  }
  return "?";
}

double RecoveryPolicy::backoff(int attempt) const {
  const double unbounded =
      backoff_base_s * std::pow(2.0, static_cast<double>(attempt - 1));
  return std::min(unbounded, backoff_cap_s);
}

void RecoveryPolicy::validate() const {
  WFE_REQUIRE(max_retries >= 0, "retry budget must be non-negative");
  WFE_REQUIRE(std::isfinite(backoff_base_s) && backoff_base_s >= 0.0,
              "backoff base must be finite and non-negative");
  WFE_REQUIRE(std::isfinite(backoff_cap_s) && backoff_cap_s >= backoff_base_s,
              "backoff cap must be finite and at least the base");
  WFE_REQUIRE(checkpoint_period >= 1,
              "checkpoint period must be at least one step");
  WFE_REQUIRE(std::isfinite(checkpoint_cost_s) && checkpoint_cost_s >= 0.0,
              "checkpoint cost must be finite and non-negative");
  WFE_REQUIRE(std::isfinite(restart_cost_s) && restart_cost_s >= 0.0,
              "restart cost must be finite and non-negative");
  WFE_REQUIRE(max_restarts >= 0, "restart budget must be non-negative");
}

std::string FailureSummary::str() const {
  return strprintf(
      "faults=%llu (crash=%llu transient=%llu) retries=%llu checkpoints=%llu "
      "restarts=%llu recovered=%llu failed=%llu wasted=%.3f core-h",
      static_cast<unsigned long long>(faults_injected()),
      static_cast<unsigned long long>(crash_stage_kills),
      static_cast<unsigned long long>(transient_stage_faults),
      static_cast<unsigned long long>(stage_retries),
      static_cast<unsigned long long>(checkpoints_written),
      static_cast<unsigned long long>(member_restarts),
      static_cast<unsigned long long>(members_recovered),
      static_cast<unsigned long long>(members_failed), wasted_core_hours());
}

}  // namespace wfe::res
