// Fault model and recovery policies for ensembles of in situ workflows.
//
// The paper's execution model (§3.1) — like Do et al. 2022 and SIM-SITU —
// assumes every component of every member runs to completion. This module
// drops that assumption: a FaultSpec describes *what* can go wrong (node
// crashes from a per-node exponential MTBF process, transient stage errors,
// staging-transfer losses), a RecoveryPolicy describes *how* the runtime
// responds (retry with exponential backoff, restart from a checkpoint, or
// abandon the member), and a FailureSummary accounts for what it all cost.
//
// Everything is seeded and deterministic: the same FaultSpec + seed yields
// the same fault timeline regardless of host, so faulty executions are as
// reproducible as fault-free ones (see docs/RESILIENCE.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wfe::res {

/// One scripted permanent node failure: `node` dies for good at `at_s`
/// seconds of virtual time (a node-level fault domain event, as opposed to
/// the crash/repair availability cycle of node_mtbf_s).
struct NodeDown {
  int node = 0;
  double at_s = 0.0;
};

/// What can go wrong, and how often. All-zero rates (the default) disable
/// injection entirely; the executor then takes its pristine fast path and
/// produces bit-identical traces to a build without this module.
struct FaultSpec {
  /// Mean time between failures of one node, seconds of virtual time.
  /// Crashes follow a per-node Poisson process (exponential inter-arrival
  /// times); 0 disables node crashes.
  double node_mtbf_s = 0.0;

  /// Downtime after a crash before the node serves compute again.
  double node_repair_s = 120.0;

  /// When true, a node's FIRST Poisson crash is permanent: the node never
  /// repairs, its staged chunks are lost (subject to replication), and
  /// members touching it must migrate or fail. Models whole-node fault
  /// domains driven by the same seeded MTBF process.
  bool crashes_are_fatal = false;

  /// Scripted permanent node deaths, independent of node_mtbf_s. Useful
  /// for presets and tests that need a specific node to die at a specific
  /// time. Entries must name distinct nodes.
  std::vector<NodeDown> node_down;

  /// Straggler model: per-node degraded windows with exponential
  /// inter-arrival times of this mean (0 disables). While a window is
  /// open, compute stages starting on the node run `straggler_factor`
  /// slower.
  double straggler_mtbf_s = 0.0;
  double straggler_duration_s = 300.0;
  double straggler_factor = 1.5;

  /// Network-degradation model: platform-wide windows (exponential
  /// inter-arrivals, 0 disables) during which staging transfers (W, R)
  /// starting inside the window run `net_degrade_factor` slower.
  double net_degrade_mtbf_s = 0.0;
  double net_degrade_duration_s = 120.0;
  double net_degrade_factor = 2.0;

  /// Probability that one compute-stage attempt (S or A) dies mid-stage
  /// from a transient error (bit flip, OOM kill, ...). Per attempt.
  double stage_error_prob = 0.0;

  /// Probability that one staging-transfer attempt (W or R) is lost in the
  /// DTL and must be redone. Per attempt.
  double transfer_loss_prob = 0.0;

  /// Seed of the fault timeline; independent of the executor's jitter seed
  /// so enabling faults never perturbs the fault-free stage durations.
  std::uint64_t seed = 0xfa117u;

  /// True if any failure mode has a nonzero rate.
  bool enabled() const {
    return node_mtbf_s > 0.0 || stage_error_prob > 0.0 ||
           transfer_loss_prob > 0.0 || !node_down.empty() ||
           straggler_mtbf_s > 0.0 || net_degrade_mtbf_s > 0.0;
  }

  /// True if whole nodes can die permanently (scripted deaths or fatal
  /// MTBF crashes) — the failure mode that triggers migration.
  bool node_faults() const {
    return !node_down.empty() || (crashes_are_fatal && node_mtbf_s > 0.0);
  }

  /// The scenario as priced by scheduler probe replays: deterministic
  /// capacity effects (stragglers, network degradation) stay; stochastic
  /// crash/transient injection is stripped — the risk-aware objective
  /// accounts for those analytically instead of sampling them.
  FaultSpec probe_view() const;

  /// FNV-1a digest of every field, for folding the active scenario into
  /// evaluation cache keys (scores memoized under one scenario must never
  /// serve another).
  std::uint64_t digest() const;

  /// Throws wfe::InvalidArgument on negative/non-finite rates, a
  /// probability outside [0, 1], a non-positive repair time, out-of-order
  /// straggler/degradation parameters, or duplicate node_down entries.
  void validate() const;
};

/// How the runtime reacts to an injected fault.
enum class RecoveryKind : std::uint8_t {
  kRetry,              ///< re-run the killed stage after exponential backoff
  kCheckpointRestart,  ///< roll the whole member back to its last checkpoint
  kFailMember,         ///< abandon the member; the rest of the ensemble runs on
};

const char* to_string(RecoveryKind kind);

struct RecoveryPolicy {
  RecoveryKind kind = RecoveryKind::kRetry;

  /// kRetry: attempts beyond the first per stage before the member is
  /// declared failed.
  int max_retries = 3;
  /// kRetry: backoff before attempt k is min(base * 2^(k-1), cap).
  double backoff_base_s = 0.5;
  double backoff_cap_s = 30.0;

  /// kCheckpointRestart: a checkpoint is written every this many committed
  /// in situ steps...
  std::uint64_t checkpoint_period = 5;
  /// ...at this cost (recorded as a kCheckpoint stage on the simulation).
  double checkpoint_cost_s = 0.5;
  /// Restart overhead on top of any node-repair wait (kRestart stage).
  double restart_cost_s = 2.0;
  /// Restarts per member before it is declared failed. Migrations after a
  /// node death draw from the same budget.
  int max_restarts = 8;

  /// Staged-chunk replication factor: each shard of a committed chunk is
  /// mirrored onto `chunk_replication - 1` neighbour nodes, so a permanent
  /// producer-node death loses no staged data (at a per-write transfer
  /// cost). 1 (default) = no replication: chunks staged on a dead node are
  /// gone and the member re-produces them from its last checkpoint.
  int chunk_replication = 1;

  /// Fixed overhead of migrating a member's components to surviving nodes
  /// after a node death (state transfer, re-registration with the DTL); a
  /// kMigrate stage of this length plus restart_cost_s is recorded.
  double migration_cost_s = 3.0;

  /// Backoff before retry attempt `attempt` (1-based): exponential, capped.
  double backoff(int attempt) const;

  /// FNV-1a digest of every field, for evaluation cache keys.
  std::uint64_t digest() const;

  /// Throws wfe::InvalidArgument on non-positive budgets/periods or
  /// negative/non-finite costs.
  void validate() const;
};

/// What the faults cost one execution; attached to every ExecutionResult.
struct FailureSummary {
  std::uint64_t crash_stage_kills = 0;    ///< stages killed by node crashes
  std::uint64_t transient_stage_faults = 0;  ///< stages killed by transient errors
  std::uint64_t stage_retries = 0;        ///< re-attempts issued (kRetry)
  std::uint64_t checkpoints_written = 0;  ///< kCheckpoint stages recorded
  std::uint64_t member_restarts = 0;      ///< checkpoint rollbacks performed
  std::uint64_t members_recovered = 0;    ///< members that saw >=1 fault yet finished
  std::uint64_t members_failed = 0;       ///< members abandoned before completion
  std::uint64_t node_downs = 0;           ///< nodes observed permanently dead
  std::uint64_t migrations = 0;           ///< member migrations performed
  std::uint64_t replans = 0;              ///< online re-planning requests issued
  std::uint64_t chunks_lost = 0;          ///< staged chunks lost to dead nodes
  double wasted_core_seconds = 0.0;       ///< cores x killed partial-stage time
  std::vector<std::uint32_t> failed_members;  ///< ids of abandoned members

  std::uint64_t faults_injected() const {
    return crash_stage_kills + transient_stage_faults;
  }
  double wasted_core_hours() const { return wasted_core_seconds / 3600.0; }
  /// True when every member ran to completion.
  bool complete() const { return members_failed == 0; }

  /// One-line human-readable digest for tools and benches.
  std::string str() const;
};

}  // namespace wfe::res
