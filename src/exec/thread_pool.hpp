// wfe::exec — a fixed-size work-queue thread pool for candidate fan-out.
//
// The placement-search layer (sched::BatchEvaluator) scores many independent
// discrete-event replays; this pool runs them on a fixed crew of workers.
// Determinism is preserved by construction, not by luck: the pool only
// distributes *indices* of a batch, every task writes its result into its
// own index's slot, and all reductions happen sequentially on the calling
// thread afterwards — so outcomes are bit-identical regardless of worker
// count or interleaving.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "support/lock_rank.hpp"

namespace wfe::exec {

class ThreadPool {
 public:
  /// A crew of `threads` workers (>= 1). The calling thread is worker 0 and
  /// participates in every batch; `threads - 1` dedicated threads are
  /// spawned. With threads == 1 no threads are spawned at all and every
  /// batch runs inline, sequentially, in index order.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return threads_; }

  /// Run `fn(index, worker)` for every index in [0, n), blocking until all
  /// calls have returned. Indices are claimed dynamically (an atomic
  /// ticket), so which worker runs which index is timing-dependent — but
  /// `worker` is always in [0, threads()), so per-worker state (e.g. one
  /// evaluator per worker) is race-free. If any call throws, the first
  /// exception (in completion order) is rethrown on the caller after the
  /// batch drains; the remaining indices still run.
  void for_each_index(std::size_t n,
                      const std::function<void(std::size_t, int)>& fn);

 private:
  using Mutex = support::RankedMutex<support::kRankExecPool>;
  using Guard = support::RankGuard<Mutex>;
  using Lock = support::RankLock<Mutex>;

  void worker_loop(int worker);
  /// Claim-and-run loop shared by the caller and the workers.
  void drain(const std::function<void(std::size_t, int)>& fn, std::size_t n,
             int worker);

  const int threads_;
  std::vector<std::thread> workers_;

  Mutex mutex_;
  support::RankedCv work_cv_;         // workers wait here for a batch
  support::RankedCv done_cv_;         // the caller waits here for check-out
  bool stop_ = false;
  std::uint64_t epoch_ = 0;           // bumped once per batch
  const std::function<void(std::size_t, int)>* batch_fn_ = nullptr;
  std::size_t batch_n_ = 0;
  std::atomic<std::size_t> next_index_{0};
  int checked_out_ = 0;               // workers done with the current batch
  std::exception_ptr first_error_;
};

}  // namespace wfe::exec
