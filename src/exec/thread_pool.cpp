#include "exec/thread_pool.hpp"

#include "support/error.hpp"

namespace wfe::exec {

ThreadPool::ThreadPool(int threads) : threads_(threads) {
  WFE_REQUIRE(threads >= 1, "a pool needs at least one worker");
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int w = 1; w < threads; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    Guard lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::drain(const std::function<void(std::size_t, int)>& fn,
                       std::size_t n, int worker) {
  for (;;) {
    const std::size_t i = next_index_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) return;
    try {
      fn(i, worker);
    } catch (...) {
      Guard lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
}

void ThreadPool::worker_loop(int worker) {
  std::uint64_t seen_epoch = 0;
  Lock lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
    if (stop_) return;
    seen_epoch = epoch_;
    const auto* fn = batch_fn_;
    const std::size_t n = batch_n_;
    lock.unlock();
    drain(*fn, n, worker);
    lock.lock();
    // Check out of the batch: the caller returns only after every worker
    // has done so, which is what makes starting the next batch safe (no
    // stale worker can claim one of its indices with this batch's fn).
    if (++checked_out_ == threads_ - 1) done_cv_.notify_one();
  }
}

void ThreadPool::for_each_index(
    std::size_t n, const std::function<void(std::size_t, int)>& fn) {
  if (n == 0) return;
  if (threads_ == 1) {
    // Inline fast path: sequential, in index order, no synchronization.
    for (std::size_t i = 0; i < n; ++i) fn(i, 0);
    return;
  }
  {
    Guard lock(mutex_);
    batch_fn_ = &fn;
    batch_n_ = n;
    next_index_.store(0, std::memory_order_relaxed);
    checked_out_ = 0;
    first_error_ = nullptr;
    ++epoch_;
  }
  work_cv_.notify_all();
  drain(fn, n, /*worker=*/0);
  Lock lock(mutex_);
  done_cv_.wait(lock, [&] { return checked_out_ == threads_ - 1; });
  batch_fn_ = nullptr;
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

}  // namespace wfe::exec
