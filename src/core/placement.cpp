#include "core/placement.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace wfe::core {

int MemberPlacement::total_cores() const {
  int total = sim.cores;
  for (const ComponentPlacement& a : analyses) total += a.cores;
  return total;
}

std::set<int> MemberPlacement::node_union() const {
  std::set<int> all = sim.nodes;
  for (const ComponentPlacement& a : analyses) {
    all.insert(a.nodes.begin(), a.nodes.end());
  }
  return all;
}

int MemberPlacement::node_count() const {
  return static_cast<int>(node_union().size());
}

void MemberPlacement::validate() const {
  if (analyses.empty()) {
    throw SpecError("a member placement needs at least one analysis");
  }
  auto check = [](const ComponentPlacement& c, const char* what) {
    if (c.nodes.empty()) {
      throw SpecError(std::string(what) + " must run on at least one node");
    }
    if (c.cores <= 0) {
      throw SpecError(std::string(what) + " must use at least one core");
    }
    for (int n : c.nodes) {
      if (n < 0) throw SpecError("node indexes must be non-negative");
    }
  };
  check(sim, "simulation");
  for (const ComponentPlacement& a : analyses) check(a, "analysis");
}

namespace {
std::size_t union_size(const std::set<int>& a, const std::set<int>& b) {
  std::size_t extra = 0;
  for (int n : b) {
    if (!a.contains(n)) ++extra;
  }
  return a.size() + extra;
}
}  // namespace

double placement_indicator(const MemberPlacement& placement) {
  placement.validate();
  const auto s_size = static_cast<double>(placement.sim.nodes.size());
  double sum = 0.0;
  for (const ComponentPlacement& a : placement.analyses) {
    sum += 1.0 / static_cast<double>(union_size(placement.sim.nodes, a.nodes));
  }
  const auto k = static_cast<double>(placement.analyses.size());
  return s_size / k * sum;
}

bool is_colocated(const MemberPlacement& placement, std::size_t coupling) {
  placement.validate();
  WFE_REQUIRE(coupling < placement.analyses.size(),
              "coupling index out of range");
  return union_size(placement.sim.nodes,
                    placement.analyses[coupling].nodes) ==
         placement.sim.nodes.size();
}

}  // namespace wfe::core
