#include "core/ensemble_model.hpp"

#include <algorithm>
#include <set>

#include "core/efficiency.hpp"
#include "core/insitu.hpp"
#include "core/objective.hpp"
#include "support/error.hpp"

namespace wfe::core {

EnsembleModel::EnsembleModel(std::vector<EnsembleMemberModel> members)
    : members_(std::move(members)) {
  if (members_.empty()) {
    throw SpecError("a workflow ensemble needs at least one member");
  }
  for (const EnsembleMemberModel& m : members_) {
    m.placement.validate();
    if (m.steady.analyses.size() != m.placement.analyses.size()) {
      throw SpecError(
          "steady state and placement disagree on the number of couplings");
    }
  }
}

const EnsembleMemberModel& EnsembleModel::member(std::size_t i) const {
  WFE_REQUIRE(i < members_.size(), "member index out of range");
  return members_[i];
}

int EnsembleModel::total_nodes() const {
  std::set<int> nodes;
  for (const EnsembleMemberModel& m : members_) {
    const std::set<int> u = m.placement.node_union();
    nodes.insert(u.begin(), u.end());
  }
  return static_cast<int>(nodes.size());
}

double EnsembleModel::member_efficiency(std::size_t i) const {
  return computational_efficiency(member(i).steady);
}

std::vector<double> EnsembleModel::member_indicators(
    IndicatorKind kind) const {
  const int m_nodes = total_nodes();
  std::vector<double> out;
  out.reserve(members_.size());
  for (std::size_t i = 0; i < members_.size(); ++i) {
    MemberIndicatorInputs in;
    in.efficiency = member_efficiency(i);
    in.placement = members_[i].placement;
    in.ensemble_nodes = m_nodes;
    out.push_back(member_indicator(in, kind));
  }
  return out;
}

double EnsembleModel::objective(IndicatorKind kind) const {
  const std::vector<double> p = member_indicators(kind);
  return core::objective(p);
}

double EnsembleModel::ensemble_makespan_model(std::uint64_t n_steps) const {
  double span = 0.0;
  for (const EnsembleMemberModel& m : members_) {
    span = std::max(span, member_makespan_model(m.steady, n_steps));
  }
  return span;
}

}  // namespace wfe::core
