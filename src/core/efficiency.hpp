// Computational efficiency of an ensemble member — Eq. (3) (§3.3).
#pragma once

#include "core/stages.hpp"

namespace wfe::core {

/// Eq. (3):
///   E = (1/K) sum_i ( 1 - (I^S* + I^{A_i}*) / sigma* )
///     = (S* + W*)/sigma* + (sum_i A*^i + R*^i)/(K sigma*) - 1.
///
/// E <= 1 always, with E = 1 iff every coupling is perfectly balanced (no
/// component ever idles); it decreases as idle time grows relative to the
/// non-overlapped in situ step. For a single coupling (K = 1) E is strictly
/// positive (one of the two idle stages is always zero); with K > 1 a
/// heavily imbalanced member can drive a coupling's idle sum past sigma*
/// and E below zero — Eq. (3) deliberately punishes such stragglers. E is
/// bounded below by -1. Maximizing E minimizes the makespan for a fixed
/// amount of per-step work (§3.3).
double computational_efficiency(const MemberSteady& member);

/// Effective-computation fraction of a single coupling i:
///   1 - (I^S* + I^{A_i}*) / sigma*.
double coupling_efficiency(const MemberSteady& member, std::size_t coupling);

}  // namespace wfe::core
