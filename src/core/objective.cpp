#include "core/objective.hpp"

#include "support/error.hpp"
#include "support/stats.hpp"

namespace wfe::core {

double objective(std::span<const double> member_indicators) {
  WFE_REQUIRE(!member_indicators.empty(),
              "the objective needs at least one member indicator");
  return mean(member_indicators) - stddev_population(member_indicators);
}

}  // namespace wfe::core
