// Whole-ensemble view: ties member steady states, placements, the indicator
// chain and the objective together (Tables 3; §4-§5).
#pragma once

#include <cstdint>
#include <vector>

#include "core/indicators.hpp"
#include "core/placement.hpp"
#include "core/stages.hpp"

namespace wfe::core {

/// Model inputs of one ensemble member EM_i.
struct EnsembleMemberModel {
  MemberSteady steady;        ///< S*, W*, R*^j, A*^j
  MemberPlacement placement;  ///< s_i, cs_i, a_i^j, ca_i^j
};

/// A workflow ensemble of N members. Validates on construction:
/// each member needs at least one coupling, and the steady state must carry
/// exactly one entry per placed analysis.
class EnsembleModel {
 public:
  explicit EnsembleModel(std::vector<EnsembleMemberModel> members);

  std::size_t member_count() const { return members_.size(); }  ///< N
  const EnsembleMemberModel& member(std::size_t i) const;

  /// M: number of distinct nodes used by the entire workflow ensemble.
  int total_nodes() const;

  /// E_i of member i (Eq. 3).
  double member_efficiency(std::size_t i) const;

  /// The indicator of every member at the given stage chain, in member
  /// order (inputs P_1 ... P_N of Eq. 9).
  std::vector<double> member_indicators(IndicatorKind kind) const;

  /// F(P) of Eq. (9) for the given stage chain.
  double objective(IndicatorKind kind) const;

  /// Modelled ensemble makespan: max over members of Eq. (2).
  double ensemble_makespan_model(std::uint64_t n_steps) const;

 private:
  std::vector<EnsembleMemberModel> members_;
};

}  // namespace wfe::core
