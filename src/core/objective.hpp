// Ensemble-level objective function — Eq. (9) (§5.1).
#pragma once

#include <span>

#include "core/indicators.hpp"

namespace wfe::core {

/// Eq. (9): F(P) = mean(P) - stddev_population(P).
///
/// Subtracting the (population) standard deviation penalizes configurations
/// whose members perform unevenly — the ensemble makespan is the maximum
/// member makespan, so high variability means stragglers. Higher is better.
double objective(std::span<const double> member_indicators);

}  // namespace wfe::core
