#include "core/indicators.hpp"

#include "support/error.hpp"

namespace wfe::core {

const char* to_string(IndicatorKind kind) {
  switch (kind) {
    case IndicatorKind::kU:
      return "P^U";
    case IndicatorKind::kUA:
      return "P^{U,A}";
    case IndicatorKind::kUP:
      return "P^{U,P}";
    case IndicatorKind::kUAP:
      return "P^{U,A,P}";
    case IndicatorKind::kUPA:
      return "P^{U,P,A}";
  }
  return "?";
}

namespace {
void check_inputs(const MemberIndicatorInputs& in) {
  in.placement.validate();
  WFE_REQUIRE(in.ensemble_nodes >= 1,
              "the ensemble uses at least one node (M >= 1)");
  WFE_REQUIRE(in.ensemble_nodes >= in.placement.node_count(),
              "M cannot be smaller than the member's own node count");
}
}  // namespace

double indicator_u(const MemberIndicatorInputs& in) {
  check_inputs(in);
  return in.efficiency / static_cast<double>(in.placement.total_cores());
}

double indicator_ua(const MemberIndicatorInputs& in) {
  return indicator_u(in) * placement_indicator(in.placement);
}

double indicator_up(const MemberIndicatorInputs& in) {
  return indicator_u(in) / static_cast<double>(in.ensemble_nodes);
}

double indicator_uap(const MemberIndicatorInputs& in) {
  return indicator_ua(in) / static_cast<double>(in.ensemble_nodes);
}

double member_indicator(const MemberIndicatorInputs& in, IndicatorKind kind) {
  switch (kind) {
    case IndicatorKind::kU:
      return indicator_u(in);
    case IndicatorKind::kUA:
      return indicator_ua(in);
    case IndicatorKind::kUP:
      return indicator_up(in);
    case IndicatorKind::kUAP:
    case IndicatorKind::kUPA:
      return indicator_uap(in);
  }
  throw InvalidArgument("unknown indicator kind");
}

}  // namespace wfe::core
