#include "core/insitu.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace wfe::core {

const char* to_string(StageKind kind) {
  switch (kind) {
    case StageKind::kSimulate:
      return "S";
    case StageKind::kSimIdle:
      return "I^S";
    case StageKind::kWrite:
      return "W";
    case StageKind::kRead:
      return "R";
    case StageKind::kAnalyze:
      return "A";
    case StageKind::kAnaIdle:
      return "I^A";
    case StageKind::kFault:
      return "F";
    case StageKind::kBackoff:
      return "B";
    case StageKind::kCheckpoint:
      return "C";
    case StageKind::kRestart:
      return "X";
    case StageKind::kMigrate:
      return "M";
  }
  return "?";
}

const char* to_string(CouplingRegime regime) {
  switch (regime) {
    case CouplingRegime::kIdleAnalyzer:
      return "idle-analyzer";
    case CouplingRegime::kIdleSimulation:
      return "idle-simulation";
  }
  return "?";
}

namespace {
void check_member(const MemberSteady& m) {
  WFE_REQUIRE(!m.analyses.empty(),
              "an ensemble member couples at least one analysis");
  WFE_REQUIRE(m.sim.s >= 0.0 && m.sim.w >= 0.0,
              "steady-state durations must be non-negative");
  for (const AnaSteady& a : m.analyses) {
    WFE_REQUIRE(a.r >= 0.0 && a.a >= 0.0,
                "steady-state durations must be non-negative");
  }
}
}  // namespace

double non_overlapped_segment(const MemberSteady& member) {
  check_member(member);
  double sigma = member.sim.s + member.sim.w;
  for (const AnaSteady& a : member.analyses) {
    sigma = std::max(sigma, a.r + a.a);
  }
  return sigma;
}

double member_makespan_model(const MemberSteady& member,
                             std::uint64_t n_steps) {
  return static_cast<double>(n_steps) * non_overlapped_segment(member);
}

CouplingRegime classify_coupling(const MemberSteady& member,
                                 std::size_t coupling) {
  check_member(member);
  WFE_REQUIRE(coupling < member.analyses.size(), "coupling index out of range");
  const AnaSteady& a = member.analyses[coupling];
  return (a.r + a.a) <= (member.sim.s + member.sim.w)
             ? CouplingRegime::kIdleAnalyzer
             : CouplingRegime::kIdleSimulation;
}

double sim_idle(const MemberSteady& member) {
  return non_overlapped_segment(member) - (member.sim.s + member.sim.w);
}

double ana_idle(const MemberSteady& member, std::size_t coupling) {
  check_member(member);
  WFE_REQUIRE(coupling < member.analyses.size(), "coupling index out of range");
  const AnaSteady& a = member.analyses[coupling];
  return non_overlapped_segment(member) - (a.r + a.a);
}

bool is_idle_analyzer_feasible(const MemberSteady& member) {
  check_member(member);
  const double sim_side = member.sim.s + member.sim.w;
  return std::all_of(member.analyses.begin(), member.analyses.end(),
                     [&](const AnaSteady& a) { return a.r + a.a <= sim_side; });
}

}  // namespace wfe::core
