#include "core/heuristic.hpp"

#include "core/efficiency.hpp"
#include "core/insitu.hpp"
#include "support/error.hpp"

namespace wfe::core {

ProvisioningResult provision_analysis_cores(
    const SimSteady& sim, const std::function<AnaSteady(int)>& eval,
    int max_cores) {
  WFE_REQUIRE(max_cores >= 1, "need at least one candidate core count");
  WFE_REQUIRE(static_cast<bool>(eval), "eval must be callable");

  ProvisioningResult result;
  result.candidates.reserve(static_cast<std::size_t>(max_cores));
  for (int cores = 1; cores <= max_cores; ++cores) {
    MemberSteady member{sim, {eval(cores)}};
    ProvisioningCandidate c;
    c.cores = cores;
    c.analysis = member.analyses.front();
    c.sigma = non_overlapped_segment(member);
    c.efficiency = computational_efficiency(member);
    c.feasible = is_idle_analyzer_feasible(member);
    result.candidates.push_back(c);
  }

  // Rule 1: restrict to Eq. (4)-feasible candidates (minimal makespan).
  // Rule 2: among them, maximize E. If nothing is feasible, fall back to
  // the smallest sigma* (ties broken by higher E, then fewer cores).
  std::size_t best = 0;
  bool best_feasible = result.candidates.front().feasible;
  for (std::size_t i = 1; i < result.candidates.size(); ++i) {
    const ProvisioningCandidate& c = result.candidates[i];
    const ProvisioningCandidate& b = result.candidates[best];
    bool better;
    if (c.feasible != best_feasible) {
      better = c.feasible;
    } else if (c.feasible) {
      better = c.efficiency > b.efficiency;
    } else {
      better = c.sigma < b.sigma ||
               (c.sigma == b.sigma && c.efficiency > b.efficiency);
    }
    if (better) {
      best = i;
      best_feasible = c.feasible;
    }
  }
  result.chosen_index = best;
  result.cores = result.candidates[best].cores;
  result.any_feasible = best_feasible;
  return result;
}

}  // namespace wfe::core
