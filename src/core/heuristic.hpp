// The provisioning heuristic of §3.4: choose the analysis core count.
//
// Given fixed simulation settings (user-provided, per the paper's first
// assumption) and a way to evaluate the analysis steady state at any core
// count, pick the allocation that (1) minimizes the makespan — i.e.
// satisfies Eq. (4), R* + A* <= S* + W*, so sigma* = S* + W* — and
// (2) among those, maximizes the computational efficiency E, which selects
// the smallest idle time (the paper picks 8 of 32 cores this way).
#pragma once

#include <functional>
#include <vector>

#include "core/stages.hpp"

namespace wfe::core {

/// One evaluated candidate of the sweep (a row of Figure 7).
struct ProvisioningCandidate {
  int cores = 0;
  AnaSteady analysis;       ///< R*, A* at this core count
  double sigma = 0.0;       ///< Eq. (1) for (sim, this analysis)
  double efficiency = 0.0;  ///< Eq. (3) for the single coupling
  bool feasible = false;    ///< Eq. (4): R* + A* <= S* + W*
};

struct ProvisioningResult {
  /// Chosen core count; candidates[chosen_index] describes it.
  int cores = 0;
  std::size_t chosen_index = 0;
  /// Whether any candidate satisfied Eq. (4). If none did, the result is
  /// the candidate minimizing sigma* (best effort).
  bool any_feasible = false;
  /// The full sweep, one entry per evaluated core count (ascending).
  std::vector<ProvisioningCandidate> candidates;
};

/// Evaluate `eval(cores)` for cores = 1..max_cores and apply the §3.4
/// selection rule. `eval` returns the steady-state analysis stages (R*, A*)
/// measured or modelled at that core count; K identical analyses share the
/// choice (the paper's second assumption).
ProvisioningResult provision_analysis_cores(
    const SimSteady& sim, const std::function<AnaSteady(int)>& eval,
    int max_cores);

}  // namespace wfe::core
