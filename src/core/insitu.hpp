// In situ step arithmetic: Eq. (1), Eq. (2) and the coupling regimes (§3.2).
#pragma once

#include <cstdint>

#include "core/stages.hpp"

namespace wfe::core {

/// The two coupled-execution scenarios of Figure 6.
enum class CouplingRegime {
  kIdleAnalyzer,    ///< the analysis step is faster; it waits for data
  kIdleSimulation,  ///< the analysis step is slower; the simulation waits
};

const char* to_string(CouplingRegime regime);

/// Eq. (1): the non-overlapped segment of an in situ step,
///   sigma* = max(S* + W*, R*^1 + A*^1, ..., R*^K + A*^K).
/// Requires at least one coupling.
double non_overlapped_segment(const MemberSteady& member);

/// Eq. (2): MAKESPAN = n_steps * sigma*.
double member_makespan_model(const MemberSteady& member,
                             std::uint64_t n_steps);

/// Classify coupling (Sim, Ana^i). A coupling whose R+A exactly equals S+W
/// is reported as Idle Analyzer (the simulation never waits on it).
CouplingRegime classify_coupling(const MemberSteady& member,
                                 std::size_t coupling);

/// Derived steady idle stages (§3.3):
///   I^S* = sigma* - (S* + W*);  I^{A_i}* = sigma* - (R*^i + A*^i).
double sim_idle(const MemberSteady& member);
double ana_idle(const MemberSteady& member, std::size_t coupling);

/// Eq. (4): true iff every coupling satisfies R*^i + A*^i <= S* + W*,
/// i.e. all couplings fall into the Idle Analyzer scenario and
/// sigma* = S* + W* is minimal for the given simulation settings.
bool is_idle_analyzer_feasible(const MemberSteady& member);

}  // namespace wfe::core
