// Multi-stage performance indicators — Eqs. (5), (7), (8) and the
// alternative stage order of §5.2.
//
// The paper refines a member's indicator in stages, each adding a layer of
// information:
//   U  (resource usage,        Eq. 5):  P^U       = E_i / c_i
//   A  (resource allocation,   Eq. 7):  P^{U,A}   = P^U * CP_i
//   P  (resource provisioning, Eq. 8):  P^{U,A,P} = P^{U,A} / M
// and, following the alternative path evaluated in §5.2:
//              P^{U,P} = P^U / M,   P^{U,P,A} = P^{U,P} * CP_i
// with P^{U,P,A} == P^{U,A,P} (the layers commute).
#pragma once

#include <string>

#include "core/placement.hpp"
#include "core/stages.hpp"

namespace wfe::core {

/// Which layers are stacked on top of the usage stage.
enum class IndicatorKind {
  kU,    ///< P^U
  kUA,   ///< P^{U,A}
  kUP,   ///< P^{U,P}
  kUAP,  ///< P^{U,A,P}  (== P^{U,P,A})
  kUPA,  ///< P^{U,P,A}  (== P^{U,A,P}; kept distinct for reporting §5.2)
};

const char* to_string(IndicatorKind kind);

/// Everything needed to compute any indicator stage for one member.
struct MemberIndicatorInputs {
  double efficiency = 0.0;      ///< E_i, from Eq. (3)
  MemberPlacement placement;    ///< c_i, s_i, a_i^j
  int ensemble_nodes = 1;       ///< M: nodes used by the entire ensemble
};

/// Eq. (5): P^U = E_i / c_i.
double indicator_u(const MemberIndicatorInputs& in);

/// Eq. (7): P^{U,A} = (E_i / c_i) * CP_i.
double indicator_ua(const MemberIndicatorInputs& in);

/// §5.2 path (1): P^{U,P} = P^U / M.
double indicator_up(const MemberIndicatorInputs& in);

/// Eq. (8): P^{U,A,P} = (E_i / (c_i M)) * CP_i.
double indicator_uap(const MemberIndicatorInputs& in);

/// Dispatch on the stage chain.
double member_indicator(const MemberIndicatorInputs& in, IndicatorKind kind);

}  // namespace wfe::core
