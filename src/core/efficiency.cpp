#include "core/efficiency.hpp"

#include "core/insitu.hpp"
#include "support/error.hpp"

namespace wfe::core {

double coupling_efficiency(const MemberSteady& member, std::size_t coupling) {
  const double sigma = non_overlapped_segment(member);
  WFE_REQUIRE(sigma > 0.0,
              "efficiency is undefined for a zero-length in situ step");
  const double idle = sim_idle(member) + ana_idle(member, coupling);
  return 1.0 - idle / sigma;
}

double computational_efficiency(const MemberSteady& member) {
  const double sigma = non_overlapped_segment(member);
  WFE_REQUIRE(sigma > 0.0,
              "efficiency is undefined for a zero-length in situ step");
  // Closed form of Eq. (3); equivalent to averaging coupling_efficiency
  // over the K couplings.
  double analyses_sum = 0.0;
  for (const AnaSteady& a : member.analyses) analyses_sum += a.a + a.r;
  const auto k = static_cast<double>(member.analyses.size());
  return (member.sim.s + member.sim.w) / sigma + analyses_sum / (k * sigma) -
         1.0;
}

}  // namespace wfe::core
