// Component placement descriptors and the placement indicator — Eq. (6).
//
// Mirrors the paper's notation (Table 3): the simulation Sim_i of member
// EM_i runs with cs_i cores on the node set s_i; analysis Ana_i^j runs with
// ca_i^j cores on the node set a_i^j.
#pragma once

#include <set>
#include <vector>

namespace wfe::core {

/// Where one ensemble component runs: which nodes, and how many cores.
struct ComponentPlacement {
  std::set<int> nodes;  ///< node indexes (s_i for a simulation, a_i^j for an analysis)
  int cores = 1;        ///< cs_i / ca_i^j
};

/// Placement of a whole ensemble member: one simulation, K analyses.
struct MemberPlacement {
  ComponentPlacement sim;
  std::vector<ComponentPlacement> analyses;

  /// c_i = cs_i + sum_j ca_i^j.
  int total_cores() const;

  /// d_i = | s_i  U  union_j a_i^j |.
  int node_count() const;

  /// The union of all node sets used by this member.
  std::set<int> node_union() const;

  /// Throws wfe::SpecError if any component has no nodes or no cores.
  void validate() const;
};

/// Eq. (6): CP_i = (|s_i| / K_i) * sum_j 1 / |s_i U a_i^j|.
///
/// CP_i is in (0, 1]; CP_i = 1 iff every analysis is fully co-located with
/// the simulation (a_i^j a subset of s_i); it shrinks as components spread
/// over more dedicated nodes.
double placement_indicator(const MemberPlacement& placement);

/// True iff coupling j of the member is co-located with its simulation,
/// i.e. |s_i| == |s_i U a_i^j| (the paper's co-location criterion, §4.3).
bool is_colocated(const MemberPlacement& placement, std::size_t coupling);

}  // namespace wfe::core
