// The fine-grained stage algebra of the paper's execution model (§3.1).
//
// Every simulation step divides into: a simulation stage S, an idle stage
// I^S, and a writing stage W, in that order. Every analysis step divides
// into: a reading stage R, an analyzing stage A, and an idle stage I^A, in
// that order. After warm-up the execution reaches a steady state where each
// stage has a stable duration; starred values (S*, W*, R*, A*) denote those
// steady-state durations and are the inputs of Eqs. (1)-(4).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wfe::core {

/// The six fine-grained stages of Figure 6, plus the failure-semantics
/// stages of the resilience extension (docs/RESILIENCE.md). The extra kinds
/// are first-class trace citizens so effective makespan/efficiency under
/// faults fall out of the same Table 1 computations, while steady-state
/// extraction (which selects by kind) ignores them untouched.
enum class StageKind : std::uint8_t {
  kSimulate,    ///< S: the simulation computes
  kSimIdle,     ///< I^S: the simulation waits for readers to drain
  kWrite,       ///< W: the simulation stages data out
  kRead,        ///< R: an analysis fetches staged data
  kAnalyze,     ///< A: an analysis computes
  kAnaIdle,     ///< I^A: an analysis waits for the next chunk
  kFault,       ///< F: work killed by an injected fault (wasted partial stage)
  kBackoff,     ///< B: retry backoff / node-repair wait before a re-attempt
  kCheckpoint,  ///< C: the simulation persists a restart checkpoint
  kRestart,     ///< X: a member re-enters its state machine from a checkpoint
  kMigrate,     ///< M: a member re-homes onto surviving nodes after a death
};

/// Number of StageKind enumerators — kMigrate is the last one. Sized for
/// per-kind count/duration arrays (e.g. met::StageColumns) so they can be
/// flat arrays indexed by the enum value instead of maps.
inline constexpr std::size_t kStageKindCount =
    static_cast<std::size_t>(StageKind::kMigrate) + 1;

const char* to_string(StageKind kind);

/// Steady-state durations of the simulation side of a member: S* and W*.
/// (I^S* is derived, not measured independently — Eq. (1) fixes it.)
struct SimSteady {
  double s = 0.0;  ///< S*: simulation compute time per in situ step
  double w = 0.0;  ///< W*: write/staging time per in situ step
};

/// Steady-state durations of one analysis coupling: R* and A*.
struct AnaSteady {
  double r = 0.0;  ///< R*: read time per in situ step
  double a = 0.0;  ///< A*: analysis compute time per in situ step
};

/// Steady-state stage profile of one ensemble member: a single simulation
/// coupled with K >= 1 analyses (the paper's (Sim, Ana^i) couplings).
struct MemberSteady {
  SimSteady sim;
  std::vector<AnaSteady> analyses;

  std::size_t coupling_count() const { return analyses.size(); }
};

}  // namespace wfe::core
