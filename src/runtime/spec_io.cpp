#include "runtime/spec_io.hpp"

#include <cinttypes>
#include <fstream>
#include <sstream>

#include "support/error.hpp"
#include "support/str.hpp"

namespace wfe::rt {

namespace {

std::string nodes_to_text(const std::set<int>& nodes) {
  std::vector<std::string> parts;
  for (int n : nodes) parts.push_back(std::to_string(n));
  return join(parts, " ");
}

std::set<int> read_nodes(std::istringstream& ls, const char* what) {
  std::set<int> nodes;
  int n;
  while (ls >> n) {
    if (n < 0) throw SerializationError("WFES: negative node index");
    nodes.insert(n);
  }
  if (nodes.empty()) {
    throw SerializationError(std::string("WFES: ") + what + " has no nodes");
  }
  return nodes;
}

void expect_word(std::istringstream& ls, const char* word) {
  std::string got;
  if (!(ls >> got) || got != word) {
    throw SerializationError(strprintf("WFES: expected '%s'", word));
  }
}

}  // namespace

std::string spec_to_text(const EnsembleSpec& spec) {
  std::string out = "WFES 1\n";
  out += "name " + spec.name + "\n";
  out += strprintf("steps %" PRIu64 "\n", spec.n_steps);
  for (const MemberSpec& m : spec.members) {
    out += strprintf("member buffer %d\n", m.buffer_capacity);
    out += strprintf("sim cores %d stride %d natoms %zu nodes %s\n",
                     m.sim.cores, m.sim.stride, m.sim.natoms,
                     nodes_to_text(m.sim.nodes).c_str());
    for (const AnalysisSpec& a : m.analyses) {
      out += strprintf("analysis kernel %s cores %d nodes %s\n",
                       a.kernel.c_str(), a.cores,
                       nodes_to_text(a.nodes).c_str());
    }
  }
  out += strprintf("end %zu\n", spec.members.size());
  return out;
}

EnsembleSpec spec_from_text(std::string_view text) {
  std::istringstream in{std::string(text)};
  std::string line;
  if (!std::getline(in, line) || line != "WFES 1") {
    throw SerializationError("WFES: missing or unsupported header");
  }

  EnsembleSpec spec;
  spec.members.clear();
  bool saw_end = false;
  bool saw_steps = false;

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;

    if (tag == "name") {
      std::string rest;
      std::getline(ls, rest);
      spec.name = rest.empty() ? "" : rest.substr(1);  // drop the space
    } else if (tag == "steps") {
      if (!(ls >> spec.n_steps)) {
        throw SerializationError("WFES: malformed steps line");
      }
      saw_steps = true;
    } else if (tag == "member") {
      MemberSpec m;
      expect_word(ls, "buffer");
      if (!(ls >> m.buffer_capacity)) {
        throw SerializationError("WFES: malformed member line");
      }
      spec.members.push_back(std::move(m));
    } else if (tag == "sim") {
      if (spec.members.empty()) {
        throw SerializationError("WFES: sim line before any member");
      }
      MemberSpec& m = spec.members.back();
      expect_word(ls, "cores");
      if (!(ls >> m.sim.cores)) {
        throw SerializationError("WFES: malformed sim cores");
      }
      expect_word(ls, "stride");
      if (!(ls >> m.sim.stride)) {
        throw SerializationError("WFES: malformed sim stride");
      }
      expect_word(ls, "natoms");
      if (!(ls >> m.sim.natoms)) {
        throw SerializationError("WFES: malformed sim natoms");
      }
      expect_word(ls, "nodes");
      m.sim.nodes = read_nodes(ls, "sim");
    } else if (tag == "analysis") {
      if (spec.members.empty()) {
        throw SerializationError("WFES: analysis line before any member");
      }
      AnalysisSpec a;
      expect_word(ls, "kernel");
      if (!(ls >> a.kernel)) {
        throw SerializationError("WFES: malformed analysis kernel");
      }
      expect_word(ls, "cores");
      if (!(ls >> a.cores)) {
        throw SerializationError("WFES: malformed analysis cores");
      }
      expect_word(ls, "nodes");
      a.nodes = read_nodes(ls, "analysis");
      spec.members.back().analyses.push_back(std::move(a));
    } else if (tag == "end") {
      std::size_t count = 0;
      if (!(ls >> count) || count != spec.members.size()) {
        throw SerializationError("WFES: member count mismatch in trailer");
      }
      saw_end = true;
      break;
    } else {
      throw SerializationError("WFES: unexpected line tag '" + tag + "'");
    }
  }
  if (!saw_end) {
    throw SerializationError("WFES: missing 'end' trailer (truncated file?)");
  }
  if (!saw_steps) throw SerializationError("WFES: missing steps line");
  for (const MemberSpec& m : spec.members) {
    if (m.sim.nodes.empty()) {
      throw SerializationError("WFES: member missing its sim line");
    }
  }
  return spec;
}

void save_spec(const std::filesystem::path& path, const EnsembleSpec& spec) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw Error("cannot open " + path.string() + " for writing");
  out << spec_to_text(spec);
  if (!out) throw Error("short write to " + path.string());
}

EnsembleSpec load_spec(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open " + path.string());
  std::stringstream buffer;
  buffer << in.rdbuf();
  return spec_from_text(buffer.str());
}

}  // namespace wfe::rt
