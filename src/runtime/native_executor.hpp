// NativeExecutor: really runs the ensemble with threads, the MD engine, the
// analysis kernels, and the in-memory DTL.
//
// One std::thread per component; components of one member couple through a
// CouplingChannel + MemoryStaging pair — the genuine data plane (chunks are
// serialized, staged, fetched and deserialized). Stage boundaries are timed
// with a monotonic clock and recorded in the same trace format as the
// simulated executor, so the entire assessment pipeline (steady state ->
// efficiency -> indicators -> objective) runs unchanged on real executions.
//
// Scope notes: node pinning and hardware counters are not available inside
// a single-host process, so placements are ignored here (use the simulated
// executor for placement studies) and the counter fields of native traces
// stay zero — Table 1 cache metrics are a simulated-mode product.
#pragma once

#include "dtl/plugin.hpp"
#include "runtime/result.hpp"
#include "runtime/spec.hpp"

namespace wfe::rt {

struct NativeOptions {
  /// Cap threads' in situ steps (0 = use spec.n_steps). Lets tests run a
  /// paper-shaped spec for only a few real steps.
  std::uint64_t max_steps = 0;
  /// Which DTL tier carries the chunks: in-memory staging (DIMES-like) or
  /// a file-backed spool (parallel-file-system tier). Used by the DTL
  /// ablation bench.
  enum class StagingTier { kMemory, kFile } staging = StagingTier::kMemory;
  /// Spool directory for the file tier (empty = std temp dir).
  std::string spool_dir;
  /// Bound every coupling handshake wait (I^S, I^A) to this many seconds;
  /// a hung or dead peer component then surfaces as wfe::TimeoutError from
  /// run() instead of deadlocking the ensemble. 0 = wait forever.
  double coupling_timeout_s = 0.0;
  /// Retry/backoff schedule for staged-chunk fetches (see dtl::FetchRetry);
  /// the default is the historical single-shot read.
  dtl::FetchRetry chunk_fetch;
};

class NativeExecutor {
 public:
  explicit NativeExecutor(NativeOptions options = {}) : options_(options) {}

  /// Run every member's components on threads until all finish; returns the
  /// timed trace and the analyses' collective-variable series.
  ExecutionResult run(const EnsembleSpec& spec) const;

 private:
  NativeOptions options_;
};

}  // namespace wfe::rt
