#include "runtime/bridge.hpp"

#include "core/efficiency.hpp"
#include "metrics/traditional.hpp"
#include "support/error.hpp"

namespace wfe::rt {

Assessment assess(const EnsembleSpec& spec, const ExecutionResult& result,
                  const met::SteadyStateOptions& options) {
  WFE_REQUIRE(!result.trace.empty(), "cannot assess an empty trace");
  WFE_REQUIRE(result.trace.members().size() == spec.members.size(),
              "trace and spec disagree on the number of members");

  std::vector<MemberAssessment> members;
  std::vector<core::EnsembleMemberModel> model_members;
  members.reserve(spec.members.size());
  for (std::size_t i = 0; i < spec.members.size(); ++i) {
    const auto member_id = static_cast<std::uint32_t>(i);
    MemberAssessment a;
    a.steady = met::member_steady_state(result.trace, member_id, options);
    a.sigma = core::non_overlapped_segment(a.steady);
    a.efficiency = core::computational_efficiency(a.steady);
    a.makespan_measured = met::member_makespan(result.trace, member_id);
    a.makespan_model = core::member_makespan_model(a.steady, result.n_steps);
    model_members.push_back({a.steady, spec.members[i].placement()});
    members.push_back(std::move(a));
  }

  Assessment out{std::move(members), spec.total_nodes(),
                 met::ensemble_makespan(result.trace),
                 core::EnsembleModel(std::move(model_members))};
  return out;
}

}  // namespace wfe::rt
