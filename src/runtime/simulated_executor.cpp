#include "runtime/simulated_executor.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/cost_model.hpp"
#include "dtl/serde.hpp"
#include "mdsim/cost_model.hpp"
#include "platform/cluster.hpp"
#include "simengine/engine.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace wfe::rt {

namespace {

using core::StageKind;
using sim::Engine;

/// Whole-replay context shared by all component state machines.
struct Replay {
  const EnsembleSpec& spec;
  plat::Cluster cluster;
  Engine engine;
  met::TraceRecorder recorder;
  Xoshiro256 rng;
  double jitter_sigma = 0.0;  ///< lognormal sigma; 0 = deterministic

  Replay(const EnsembleSpec& s, const plat::PlatformSpec& platform,
         const SimulatedOptions& options)
      : spec(s), cluster(platform), rng(options.seed) {
    if (options.jitter_cv > 0.0) {
      // For lognormal noise, CV^2 = exp(sigma^2) - 1.
      jitter_sigma =
          std::sqrt(std::log1p(options.jitter_cv * options.jitter_cv));
    }
  }

  /// Mean-preserving multiplicative noise factor for one stage duration.
  double jitter() {
    if (jitter_sigma == 0.0) return 1.0;
    return std::exp(jitter_sigma * rng.normal() -
                    0.5 * jitter_sigma * jitter_sigma);
  }
};

/// A component's presence on the cluster, supporting multi-node node sets
/// (the paper's s_i / a_i^j may span several nodes).
///
/// Cores and the working set are spread evenly over the node set; every
/// partition is registered as a resident of its node. A compute stage is
/// priced as: contention-free whole-allocation duration (Amdahl over the
/// total cores), stretched by the WORST partition's contention slowdown
/// and by the cross-node scaling penalty (1 + p (n - 1)). With one node
/// this reduces exactly to the single-node model. Counters are summed over
/// partitions (each missing at its own node's effective ratio).
struct ComponentFootprint {
  struct Partition {
    int node = 0;
    int cores = 1;
    plat::ComputeProfile profile;      ///< scaled to the partition share
    std::uint64_t residency = 0;
  };
  std::vector<Partition> partitions;
  plat::ComputeProfile whole;  ///< unscaled profile (total instructions)
  int total_cores = 1;

  void init(Replay& rp, const std::set<int>& nodes, int cores,
            const plat::ComputeProfile& profile) {
    WFE_REQUIRE(!nodes.empty(), "a component needs at least one node");
    whole = profile;
    total_cores = cores;
    const auto n = static_cast<int>(nodes.size());
    const int base = cores / n;
    const int remainder = cores % n;
    int index = 0;
    partitions.clear();
    partitions.reserve(nodes.size());
    for (int node : nodes) {
      Partition p;
      p.node = node;
      p.cores = base + (index < remainder ? 1 : 0);
      if (p.cores == 0) p.cores = 1;  // degenerate: more nodes than cores
      p.profile = profile;
      p.profile.instructions /= n;
      p.profile.working_set_bytes /= n;
      p.residency = rp.cluster.begin_compute(p.node, p.profile, p.cores);
      partitions.push_back(p);
      ++index;
    }
  }

  int primary_node() const { return partitions.front().node; }
  std::size_t node_count() const { return partitions.size(); }
  bool resides_on(int node) const {
    return std::any_of(partitions.begin(), partitions.end(),
                       [&](const Partition& p) { return p.node == node; });
  }

  /// Price one compute stage at the current cluster state.
  plat::StageCost priced(Replay& rp) const;
};

plat::StageCost ComponentFootprint::priced(Replay& rp) const {
  plat::StageCost total;
  double worst_slowdown = 1.0;
  for (const Partition& p : partitions) {
    const plat::StageCost c = rp.cluster.stage_cost_excluding(
        p.node, p.profile, p.cores, p.residency);
    worst_slowdown = std::max(worst_slowdown, c.slowdown);
    total.counters += c.counters;
    total.effective_miss_ratio =
        std::max(total.effective_miss_ratio, c.effective_miss_ratio);
  }
  // Contention-free duration of the WHOLE allocation (Amdahl over the
  // total core count — splitting across nodes must never speed a fixed
  // allocation up), stretched by contention and the cross-node penalty.
  const plat::StageCost free_whole =
      plat::compute_stage_cost(rp.cluster.spec(), whole, total_cores, {});
  const double penalty =
      1.0 + rp.cluster.spec().interconnect.cross_node_compute_penalty *
                static_cast<double>(partitions.size() - 1);
  total.slowdown = worst_slowdown * penalty;
  total.seconds = free_whole.seconds * total.slowdown;
  return total;
}

struct MemberRun;

/// One analysis component's state machine.
struct AnalysisRun {
  MemberRun* member = nullptr;
  met::ComponentId id;
  ComponentFootprint footprint;
  std::uint64_t next_step = 0;
  double idle_since = 0.0;  ///< when the current I^A wait began
  bool waiting = false;     ///< parked until the chunk is committed

  void try_read(Replay& rp);
  void start_read(Replay& rp);
};

/// One member: simulation state machine + K analyses + the chunk handshake.
struct MemberRun {
  met::ComponentId sim_id;
  ComponentFootprint sim;
  double chunk_bytes = 0.0;

  std::uint64_t sim_step = 0;
  double s_end = 0.0;           ///< when the current S stage finished
  bool sim_blocked = false;     ///< parked in I^S until readers drain
  std::int64_t committed = -1;  ///< last committed (written) step
  int buffer_capacity = 1;      ///< staging-buffer depth (1 = paper)
  std::vector<std::int64_t> consumed;  ///< per-reader last finished R

  std::vector<AnalysisRun> analyses;

  /// Bounded-buffer rule: W of `step` may start once every reader drained
  /// step - capacity (capacity 1 = the paper's no-buffering protocol).
  bool can_write(std::uint64_t step) const {
    const auto horizon = static_cast<std::int64_t>(step) - buffer_capacity;
    for (std::int64_t c : consumed) {
      if (c < horizon) return false;
    }
    return true;
  }

  /// DIMES-style distributed write: each simulation partition publishes
  /// its shard into node-local memory, in parallel.
  double write_time(Replay& rp) const {
    const double shard = chunk_bytes / static_cast<double>(sim.node_count());
    double w = 0.0;
    for (const auto& p : sim.partitions) {
      w = std::max(w, rp.cluster.spec().staging.write_overhead_s +
                          rp.cluster.transfer_time(p.node, p.node, shard));
    }
    return w;
  }

  /// Gather time of the staged chunk to a reader spanning `reader`'s node
  /// set: every reader partition pulls its slice from every producer
  /// shard in parallel; the slowest pair dominates. Slices landing on
  /// their own shard's node are local copies.
  double read_time(Replay& rp, const ComponentFootprint& reader) const {
    const double piece =
        chunk_bytes / static_cast<double>(sim.node_count() *
                                          reader.node_count());
    double r = 0.0;
    for (const auto& dst : reader.partitions) {
      for (const auto& src : sim.partitions) {
        r = std::max(r, rp.cluster.spec().staging.read_overhead_s +
                            rp.cluster.transfer_time(src.node, dst.node,
                                                     piece));
      }
    }
    return r;
  }

  void start_sim_step(Replay& rp);
  void after_sim_compute(Replay& rp);
  void start_write(Replay& rp);
  void commit(Replay& rp);
  void on_read_done(Replay& rp, int reader, std::uint64_t step);
};

void MemberRun::start_sim_step(Replay& rp) {
  // Residency-based contention: price against the other components that
  // live on these nodes for the whole run.
  plat::StageCost cost = sim.priced(rp);
  const double factor = rp.jitter();
  cost.seconds *= factor;
  cost.counters.cycles *= factor;  // time noise shows up as cycle noise
  const double now = rp.engine.now();
  rp.recorder.record({sim_id, sim_step, StageKind::kSimulate, now,
                      now + cost.seconds, cost.counters});
  rp.engine.schedule_in(cost.seconds, [this, &rp] { after_sim_compute(rp); });
}

void MemberRun::after_sim_compute(Replay& rp) {
  s_end = rp.engine.now();
  if (can_write(sim_step)) {
    start_write(rp);
  } else {
    sim_blocked = true;  // resumed by on_read_done
  }
}

void MemberRun::start_write(Replay& rp) {
  const double now = rp.engine.now();
  rp.recorder.record(
      {sim_id, sim_step, StageKind::kSimIdle, s_end, now, {}});
  const double w = write_time(rp) * rp.jitter();
  rp.recorder.record({sim_id, sim_step, StageKind::kWrite, now, now + w, {}});
  rp.engine.schedule_in(w, [this, &rp] { commit(rp); });
}

void MemberRun::commit(Replay& rp) {
  committed = static_cast<std::int64_t>(sim_step);
  ++sim_step;
  // Wake readers parked on this chunk.
  for (AnalysisRun& a : analyses) {
    if (a.waiting && static_cast<std::int64_t>(a.next_step) <= committed) {
      a.waiting = false;
      a.start_read(rp);
    }
  }
  if (sim_step < rp.spec.n_steps) {
    start_sim_step(rp);
  }
}

void MemberRun::on_read_done(Replay& rp, int reader, std::uint64_t step) {
  auto& last = consumed[static_cast<std::size_t>(reader)];
  WFE_REQUIRE(last + 1 == static_cast<std::int64_t>(step),
              "reader finished a step out of order");
  last = static_cast<std::int64_t>(step);
  if (sim_blocked && can_write(sim_step)) {
    sim_blocked = false;
    start_write(rp);
  }
}

void AnalysisRun::try_read(Replay& rp) {
  idle_since = rp.engine.now();
  if (static_cast<std::int64_t>(next_step) <= member->committed) {
    start_read(rp);
  } else {
    waiting = true;  // resumed by MemberRun::commit
  }
}

void AnalysisRun::start_read(Replay& rp) {
  const double now = rp.engine.now();
  rp.recorder.record(
      {id, next_step, StageKind::kAnaIdle, idle_since, now, {}});
  // Fetch the chunk from the producer's node(s) (data locality:
  // co-located partitions pay memory copies, remote ones network
  // transfers).
  const double r = member->read_time(rp, footprint) * rp.jitter();
  rp.recorder.record({id, next_step, StageKind::kRead, now, now + r, {}});
  rp.engine.schedule_in(r, [this, &rp] {
    member->on_read_done(rp, id.analysis, next_step);
    // Analyze.
    plat::StageCost cost = footprint.priced(rp);
    const double factor = rp.jitter();
    cost.seconds *= factor;
    cost.counters.cycles *= factor;
    const double t = rp.engine.now();
    rp.recorder.record({id, next_step, StageKind::kAnalyze, t,
                        t + cost.seconds, cost.counters});
    rp.engine.schedule_in(cost.seconds, [this, &rp] {
      ++next_step;
      if (next_step < rp.spec.n_steps) try_read(rp);
    });
  });
}

}  // namespace

SimulatedExecutor::SimulatedExecutor(plat::PlatformSpec platform,
                                     SimulatedOptions options)
    : platform_(std::move(platform)), options_(options) {
  platform_.validate();
  WFE_REQUIRE(options_.jitter_cv >= 0.0,
              "jitter coefficient of variation must be non-negative");
}

ExecutionResult SimulatedExecutor::run(const EnsembleSpec& spec) const {
  spec.validate(platform_);

  Replay rp(spec, platform_, options_);
  std::vector<std::unique_ptr<MemberRun>> members;
  members.reserve(spec.members.size());

  for (std::size_t i = 0; i < spec.members.size(); ++i) {
    const MemberSpec& ms = spec.members[i];
    auto run = std::make_unique<MemberRun>();
    run->sim_id = met::ComponentId{static_cast<std::uint32_t>(i), -1};
    // Register every component as a node resident for the whole run: its
    // working set competes for the shared LLC whether or not it is mid-
    // stage, which is what drives steady-state co-location interference.
    run->sim.init(rp, ms.sim.nodes, ms.sim.cores,
                  md::md_stage_profile(ms.sim.cost, ms.sim.natoms,
                                       ms.sim.stride));
    run->chunk_bytes =
        md::frame_payload_bytes(ms.sim.natoms) +
        static_cast<double>(dtl::kChunkHeaderBytes);
    run->buffer_capacity = ms.buffer_capacity;
    run->consumed.assign(ms.analyses.size(), -1);

    for (std::size_t j = 0; j < ms.analyses.size(); ++j) {
      const AnalysisSpec& as = ms.analyses[j];
      AnalysisRun a;
      a.member = run.get();
      a.id = met::ComponentId{static_cast<std::uint32_t>(i),
                              static_cast<std::int32_t>(j)};
      a.footprint.init(rp, as.nodes, as.cores,
                       ana::analysis_stage_profile(as.cost, ms.sim.natoms));
      run->analyses.push_back(a);
    }
    members.push_back(std::move(run));
  }

  // All simulations start simultaneously (paper §2.1); analyses begin
  // waiting for their first chunk at t = 0.
  for (auto& m : members) {
    MemberRun* raw = m.get();
    rp.engine.schedule_at(0.0, [raw, &rp] { raw->start_sim_step(rp); });
    for (AnalysisRun& a : raw->analyses) {
      AnalysisRun* ap = &a;
      rp.engine.schedule_at(0.0, [ap, &rp] { ap->try_read(rp); });
    }
  }

  rp.engine.run();

  ExecutionResult result;
  result.trace = rp.recorder.take();
  result.n_steps = spec.n_steps;
  return result;
}

}  // namespace wfe::rt
