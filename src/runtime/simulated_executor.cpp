#include "runtime/simulated_executor.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "analysis/cost_model.hpp"
#include "dtl/replication.hpp"
#include "dtl/serde.hpp"
#include "exec/thread_pool.hpp"
#include "mdsim/cost_model.hpp"
#include "metrics/trace_io.hpp"
#include "obs/recorder.hpp"
#include "platform/cluster.hpp"
#include "platform/health.hpp"
#include "resilience/fault_injector.hpp"
#include "simengine/engine.hpp"
#include "simengine/parallel.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/str.hpp"

// Per-component replay profiling (PERF.md §7): WFENS_REPLAY_PROFILE=1 —
// defined only for the wfens_runtime_prof twin library that
// bench_replay_profile links — compiles scoped section timers into the hot
// path. The production build gets nothing, not even a branch.
#if defined(WFENS_REPLAY_PROFILE) && WFENS_REPLAY_PROFILE
#include "obs/replay_profile.hpp"
#define WFE_REPLAY_PROF(section)                    \
  const ::wfe::obs::ReplaySectionTimer wfe_replay_prof_scope { \
    ::wfe::obs::ReplaySection::section                         \
  }
#else
#define WFE_REPLAY_PROF(section) \
  do {                           \
  } while (false)
#endif

namespace wfe::rt {

namespace {

using core::StageKind;
using sim::Engine;

struct MemberRun;

/// Thread-local pool of columnar stage buffers. A replay checks one out for
/// its lifetime and returns it cleared, so steady-state replays (campaign
/// drivers and placement searches execute thousands back to back) reuse the
/// high-water capacity of all seven columns instead of re-growing them every
/// run. A pool — not a single slot — so a nested replay (a re-planning
/// probe running inside an outer replay's callback) checks out its own
/// buffer instead of corrupting its parent's.
std::vector<met::StageColumns>& column_pool() {
  thread_local std::vector<met::StageColumns> pool;
  return pool;
}

/// One non-stage observability emission an LP lane defers for the ordered
/// merge (today only the staging-buffer occupancy gauge from
/// MemberRun::commit — every other traced emission on the fault-free path
/// is derivable 1:1 from a stage push). `at_push` anchors it between the
/// lane's stage pushes: the op precedes the lane's push with that index.
struct ObsOp {
  std::uint32_t member = 0;
  double t = 0.0;
  double value = 0.0;
  std::uint32_t at_push = 0;
};

/// Whole-replay context shared by all component state machines.
struct Replay {
  const EnsembleSpec& spec;
  plat::Cluster cluster;
  /// The event queue driving this replay. Sequential replays own theirs
  /// (`own_engine`); an LP lane binds to its lane engine inside the
  /// ParallelEngine instead, so the state machines are engine-agnostic.
  Engine own_engine;
  Engine& engine;
  /// Replay is single-threaded by construction (one engine, one clock), so
  /// stages accumulate in a columnar SoA buffer — no TraceRecorder mutex
  /// and no per-event StageRecord construction on the hot path.
  /// StageColumns::take_trace() applies the same (start, component) stable
  /// sort as TraceRecorder::take(), so the resulting trace is bit-identical.
  met::StageColumns columns;
  Xoshiro256 rng;
  double jitter_sigma = 0.0;  ///< lognormal sigma; 0 = deterministic

  /// Observability, decided once per run: emission is passive (no events,
  /// no RNG draws), so traced and untraced replays are bit-identical.
  const bool traced;

  /// Fault layer; null while injection is disabled, in which case every
  /// stage takes the pristine code path (bit-identical to the fault-free
  /// replay: no extra RNG draws, no extra events, no extra records).
  std::unique_ptr<res::FaultInjector> injector;
  res::RecoveryPolicy policy;
  res::FailureSummary summary;
  /// Non-null exactly when `injector` is: node health as the replay
  /// discovers it from the injector's deterministic timeline.
  std::unique_ptr<plat::HealthTracker> health;
  /// Staged-chunk replication; priced whenever factor > 1 even without an
  /// injector so scheduler probes see the same write cost as fault runs.
  dtl::ReplicationSpec replication;
  /// Online re-planning hook (null = built-in migration policy).
  MigrationPlanner migrate;

  /// Non-null on an LP lane: traced non-stage emissions are appended here
  /// (in lane order, with their push anchor) instead of reaching the
  /// recorder, and the merge replays them in the global event order. Null
  /// on sequential replays — emission stays direct and unchanged.
  std::vector<ObsOp>* obs_log = nullptr;

  Replay(const EnsembleSpec& s, const plat::PlatformSpec& platform,
         const SimulatedOptions& options, std::uint64_t seed,
         Engine* lane_engine = nullptr)
      : spec(s),
        cluster(platform),
        engine(lane_engine != nullptr ? *lane_engine : own_engine),
        rng(seed),
        traced(options.trace_obs && obs::enabled()) {
    engine.set_obs(traced);
    if (auto& pool = column_pool(); !pool.empty()) {
      columns = std::move(pool.back());
      pool.pop_back();
    }
    // ~4 stages per simulation step + ~3 per analysis step; overshooting
    // slightly keeps the record stream out of the allocator entirely.
    std::size_t components = 0;
    for (const MemberSpec& m : s.members) components += 1 + m.analyses.size();
    columns.reserve(components * (s.n_steps + 1) * 4);
    if (options.jitter_cv > 0.0) {
      // For lognormal noise, CV^2 = exp(sigma^2) - 1.
      jitter_sigma =
          std::sqrt(std::log1p(options.jitter_cv * options.jitter_cv));
    }
    replication.factor = options.recovery.chunk_replication;
    if (options.faults.enabled()) {
      injector = std::make_unique<res::FaultInjector>(options.faults,
                                                      platform.node_count);
      policy = options.recovery;
      health = std::make_unique<plat::HealthTracker>(platform.node_count);
      migrate = options.migrate;
    }
  }

  ~Replay() {
    // Return the stage buffer to the pool with its capacity intact; the
    // clear also covers replays abandoned mid-run by an exception.
    columns.clear();
    column_pool().push_back(std::move(columns));
  }

  bool faulty() const { return injector != nullptr; }

  int node_count() const { return cluster.node_count(); }

  /// Mean-preserving multiplicative noise factor for one stage duration.
  double jitter() {
    if (jitter_sigma == 0.0) return 1.0;
    return std::exp(jitter_sigma * rng.normal() -
                    0.5 * jitter_sigma * jitter_sigma);
  }

  /// Straggler stretch for a compute stage starting now on `nodes`, with
  /// the health bookkeeping that makes degradation observable. Exactly 1.0
  /// (bit-safe to multiply by) while injection is off.
  double compute_stretch(const std::vector<int>& nodes) {
    if (!injector) return 1.0;
    const double now = engine.now();
    double f = 1.0;
    for (int n : nodes) {
      const bool slow = injector->straggling(n, now);
      if (slow) f = injector->spec().straggler_factor;
      if (health->state(n) != plat::NodeHealth::kDown) {
        health->transition(now, n,
                           slow ? plat::NodeHealth::kDegraded
                                : plat::NodeHealth::kHealthy);
      }
    }
    return f;
  }

  /// Network-degradation stretch for a transfer starting now.
  double transfer_stretch() {
    return injector ? injector->transfer_slowdown(engine.now()) : 1.0;
  }
};

/// A component's presence on the cluster, supporting multi-node node sets
/// (the paper's s_i / a_i^j may span several nodes).
///
/// Cores and the working set are spread evenly over the node set; every
/// partition is registered as a resident of its node. A compute stage is
/// priced as: contention-free whole-allocation duration (Amdahl over the
/// total cores), stretched by the WORST partition's contention slowdown
/// and by the cross-node scaling penalty (1 + p (n - 1)). With one node
/// this reduces exactly to the single-node model. Counters are summed over
/// partitions (each missing at its own node's effective ratio).
struct ComponentFootprint {
  struct Partition {
    int node = 0;
    int cores = 1;
    plat::ComputeProfile profile;      ///< scaled to the partition share
    std::uint64_t residency = 0;
  };
  std::vector<Partition> partitions;
  plat::ComputeProfile whole;  ///< unscaled profile (total instructions)
  int total_cores = 1;

  /// Bumped whenever the partition→node layout changes (init, rehome).
  /// Downstream layout-dependent caches (write/read staging times) key on
  /// it; 0 never matches, so fresh caches start stale.
  std::uint64_t layout_epoch = 0;
  /// Contention-free duration of the whole allocation — a pure function of
  /// (spec, whole, total_cores), so priced once at init.
  double free_seconds = 0.0;
  /// Cross-node scaling penalty 1 + γ(distinct_nodes - 1), refreshed on
  /// layout changes (a migration may fold two partitions onto one node).
  double cross_penalty = 1.0;

  void init(Replay& rp, const std::set<int>& nodes, int cores,
            const plat::ComputeProfile& profile) {
    WFE_REQUIRE(!nodes.empty(), "a component needs at least one node");
    whole = profile;
    total_cores = cores;
    const auto n = static_cast<int>(nodes.size());
    const int base = cores / n;
    const int remainder = cores % n;
    int index = 0;
    partitions.clear();
    partitions.reserve(nodes.size());
    for (int node : nodes) {
      Partition p;
      p.node = node;
      p.cores = base + (index < remainder ? 1 : 0);
      if (p.cores == 0) p.cores = 1;  // degenerate: more nodes than cores
      p.profile = profile;
      p.profile.instructions /= n;
      p.profile.working_set_bytes /= n;
      p.residency = rp.cluster.begin_compute(p.node, p.profile, p.cores);
      partitions.push_back(p);
      ++index;
    }
    free_seconds =
        plat::compute_stage_cost(rp.cluster.spec(), whole, total_cores, {})
            .seconds;
    refresh_layout(rp);
  }

  /// Re-derive the layout-dependent terms and invalidate downstream caches.
  void refresh_layout(Replay& rp) {
    ++layout_epoch;
    // Count distinct nodes, not partitions: a migration may fold two
    // partitions onto one survivor, and co-located partitions pay no
    // cross-node penalty against each other. Equal to partitions.size() for
    // any un-migrated footprint (node sets are distinct by construction).
    std::size_t distinct_nodes = 0;
    for (std::size_t i = 0; i < partitions.size(); ++i) {
      bool seen = false;
      for (std::size_t j = 0; j < i; ++j) {
        if (partitions[j].node == partitions[i].node) {
          seen = true;
          break;
        }
      }
      if (!seen) ++distinct_nodes;
    }
    cross_penalty =
        1.0 + rp.cluster.spec().interconnect.cross_node_compute_penalty *
                  static_cast<double>(distinct_nodes - 1);
  }

  /// Move every partition resident on `from` to `to` (after a permanent
  /// node death): release the dead residency, re-register on the survivor.
  /// Partitions already elsewhere are untouched.
  void rehome(Replay& rp, int from, int to) {
    for (Partition& p : partitions) {
      if (p.node != from) continue;
      rp.cluster.end_compute(p.residency);
      p.node = to;
      p.residency = rp.cluster.begin_compute(to, p.profile, p.cores);
    }
    refresh_layout(rp);
  }

  int primary_node() const { return partitions.front().node; }
  std::size_t node_count() const { return partitions.size(); }
  bool resides_on(int node) const {
    return std::any_of(partitions.begin(), partitions.end(),
                       [&](const Partition& p) { return p.node == node; });
  }
  std::vector<int> node_list() const {
    std::vector<int> nodes;
    nodes.reserve(partitions.size());
    for (const Partition& p : partitions) nodes.push_back(p.node);
    return nodes;
  }

  /// Price one compute stage at the current cluster state.
  plat::StageCost priced(Replay& rp) const;
};

plat::StageCost ComponentFootprint::priced(Replay& rp) const {
  WFE_REPLAY_PROF(kInterference);
  plat::StageCost total;
  double worst_slowdown = 1.0;
  for (const Partition& p : partitions) {
    // Cached co-location pricing: the cluster reprices a node's whole
    // resident set in one batch pass only when its occupancy epoch moved
    // (residencies change at init and migration, not per stage), so the
    // steady-state cost here is a lookup — bit-identical to the scalar
    // stage_cost_excluding call it replaces.
    const plat::StageCost& c = rp.cluster.resident_cost(p.residency);
    worst_slowdown = std::max(worst_slowdown, c.slowdown);
    total.counters += c.counters;
    total.effective_miss_ratio =
        std::max(total.effective_miss_ratio, c.effective_miss_ratio);
  }
  // Contention-free duration of the WHOLE allocation (Amdahl over the
  // total core count — splitting across nodes must never speed a fixed
  // allocation up, priced once at init), stretched by contention and the
  // cross-node penalty (refreshed on layout changes).
  total.slowdown = worst_slowdown * cross_penalty;
  total.seconds = free_seconds * total.slowdown;
  return total;
}

/// Mirror one stage into the observability layer: always onto the
/// component's own track, staging stages additionally onto the member's
/// DTL-view track, and failure-semantics stages onto the shared resilience
/// track. All timestamps are virtual seconds, so traced runs replay
/// bit-identically. Called only when tracing is on — emission order and
/// content are unchanged from the AoS path.
void trace_obs_stage(const met::ComponentId& component, StageKind kind,
                     double start, double end) {
  obs::span(component.str(), met::stage_mnemonic(kind), start, end);
  switch (kind) {
    case StageKind::kWrite:
      obs::span(strprintf("dtl/m%u", component.member), "put", start, end);
      obs::add_counter("dtl.puts", end, 1.0);
      break;
    case StageKind::kRead:
      obs::span(strprintf("dtl/m%u", component.member), "get", start, end);
      obs::add_counter("dtl.gets", end, 1.0);
      break;
    case StageKind::kFault:
      obs::span("resilience", "fault", start, end);
      break;
    case StageKind::kBackoff:
      obs::span("resilience", "backoff", start, end);
      break;
    case StageKind::kCheckpoint:
      obs::span("resilience", "checkpoint", start, end);
      break;
    case StageKind::kRestart:
      obs::span("resilience", "restart", start, end);
      break;
    case StageKind::kMigrate:
      obs::span("resilience", "migrate", start, end);
      break;
    default:
      break;
  }
}

/// Append one counter-less stage (idle, I/O, fault bookkeeping) to the
/// columnar member trace: five column writes, no StageRecord construction
/// on the hot path.
void record_stage(Replay& rp, const met::ComponentId& component,
                  std::uint64_t step, StageKind kind, double start,
                  double end) {
  WFE_REPLAY_PROF(kMetrics);
  WFE_REQUIRE(end >= start, "a stage cannot end before it starts");
  rp.columns.push(component, step, kind, start, end);
  // On an LP lane the span is re-derived from this push at merge time (1:1,
  // same arguments), so nothing needs logging — just defer emission.
  if (rp.traced && rp.obs_log == nullptr) {
    trace_obs_stage(component, kind, start, end);
  }
}

/// Compute-stage variant carrying synthesized counters. All-zero counters
/// (W/R/checkpoint stages route through exec_stage with empty counters)
/// take the counter-less column path, keeping the dense counter array S/A
/// stages only — the materialized trace is identical either way.
void record_stage(Replay& rp, const met::ComponentId& component,
                  std::uint64_t step, StageKind kind, double start, double end,
                  const plat::HwCounters& counters) {
  WFE_REPLAY_PROF(kMetrics);
  WFE_REQUIRE(end >= start, "a stage cannot end before it starts");
  if (counters.instructions == 0.0 && counters.cycles == 0.0 &&
      counters.llc_references == 0.0 && counters.llc_misses == 0.0) {
    rp.columns.push(component, step, kind, start, end);
  } else {
    rp.columns.push(component, step, kind, start, end, counters);
  }
  if (rp.traced && rp.obs_log == nullptr) {
    trace_obs_stage(component, kind, start, end);
  }
}

/// One fault-killable execution slot: the component's pending engine event
/// (stage completion, scheduled fault, or retry re-attempt) plus everything
/// a recovery needs to account for it or re-run it.
struct InFlight {
  bool active = false;
  sim::EventId event{};
  StageKind kind = StageKind::kSimulate;
  std::uint64_t step = 0;
  double start = 0.0;
  double duration = 0.0;
  plat::HwCounters counters;
  int attempt = 1;
  std::function<void()> done;
};

/// The fault-visible identity of one component's execution: who it is,
/// where it computes, which member recovery escalates to, and its in-flight
/// slot. Embedded in MemberRun (simulation side) and AnalysisRun.
struct StageExec {
  met::ComponentId id;
  MemberRun* member = nullptr;
  const ComponentFootprint* footprint = nullptr;
  std::vector<int> nodes;  ///< cached node list for crash queries
  InFlight fl;
};

void attempt_stage(Replay& rp, StageExec& se, std::uint64_t step,
                   StageKind kind, double seconds,
                   const plat::HwCounters& counters,
                   std::function<void()> done, int attempt);

/// Run one stage to completion, recording it in the trace. Fault-free mode
/// is byte-for-byte the original replay (record at start, one completion
/// event) and hands the continuation lambda straight to the engine's
/// SmallFn — no std::function materializes on the hot path. Fault mode
/// wraps it for the retry machinery (InFlight re-runs need type erasure).
template <typename F>
void exec_stage(Replay& rp, StageExec& se, std::uint64_t step, StageKind kind,
                double seconds, const plat::HwCounters& counters, F&& done) {
  if (!rp.faulty()) {
    const double now = rp.engine.now();
    record_stage(rp, se.id, step, kind, now, now + seconds, counters);
    rp.engine.schedule_in(seconds, std::forward<F>(done));
    return;
  }
  attempt_stage(rp, se, step, kind, seconds, counters,
                std::function<void()>(std::forward<F>(done)), 1);
}

/// One analysis component's state machine.
struct AnalysisRun {
  MemberRun* member = nullptr;
  met::ComponentId id;
  ComponentFootprint footprint;
  StageExec sx;
  std::uint64_t next_step = 0;
  double idle_since = 0.0;  ///< when the current I^A wait began
  bool waiting = false;     ///< parked until the chunk is committed

  /// Layout-keyed cache for the chunk gather time: valid while neither the
  /// producer's nor this reader's partition layout changed (stamps 0 never
  /// match, so the first read computes).
  double read_cache = 0.0;
  std::uint64_t read_stamp_sim = 0;
  std::uint64_t read_stamp_self = 0;

  double read_cost(Replay& rp);
  void try_read(Replay& rp);
  void start_read(Replay& rp);
};

/// One member: simulation state machine + K analyses + the chunk handshake.
struct MemberRun {
  met::ComponentId sim_id;
  ComponentFootprint sim;
  StageExec sim_sx;
  double chunk_bytes = 0.0;

  std::uint64_t sim_step = 0;
  double s_end = 0.0;           ///< when the current S stage finished
  bool sim_blocked = false;     ///< parked in I^S until readers drain
  std::int64_t committed = -1;  ///< last committed (written) step
  int buffer_capacity = 1;      ///< staging-buffer depth (1 = paper)
  std::vector<std::int64_t> consumed;  ///< per-reader last finished R

  std::vector<AnalysisRun> analyses;

  // -- resilience state (untouched while injection is disabled) -----------
  bool faulted = false;   ///< saw at least one injected fault
  bool failed = false;    ///< abandoned by policy; schedules nothing more
  int restarts = 0;       ///< checkpoint rollbacks performed so far
  std::uint64_t checkpoint_step = 0;  ///< sim re-enters here on restart
  std::vector<int> union_nodes;       ///< all nodes any component touches

  /// Bounded-buffer rule: W of `step` may start once every reader drained
  /// step - capacity (capacity 1 = the paper's no-buffering protocol).
  bool can_write(std::uint64_t step) const {
    const auto horizon = static_cast<std::int64_t>(step) - buffer_capacity;
    for (std::int64_t c : consumed) {
      if (c < horizon) return false;
    }
    return true;
  }

  /// Layout-keyed cache for write_time(): the staging cost is a pure
  /// function of the producer layout (plus replay constants), so it only
  /// needs recomputing after a migration. Stamp 0 never matches a layout
  /// epoch, so the first call computes.
  double write_cache = 0.0;
  std::uint64_t write_stamp = 0;

  /// DIMES-style distributed write: each simulation partition publishes
  /// its shard into node-local memory, in parallel. With replication the
  /// shard is additionally pushed to its ring neighbours — the transfer
  /// cost of surviving a producer-node death. Jitter and degradation
  /// stretches multiply *after* this, so the cached base stays valid.
  double write_time(Replay& rp) {
    WFE_REPLAY_PROF(kStageModel);
    if (write_stamp == sim.layout_epoch) return write_cache;
    const double shard = chunk_bytes / static_cast<double>(sim.node_count());
    double w = 0.0;
    for (const auto& p : sim.partitions) {
      w = std::max(w, rp.cluster.spec().staging.write_overhead_s +
                          rp.cluster.transfer_time(p.node, p.node, shard));
      if (rp.replication.factor > 1) {
        for (int dst : rp.replication.replica_nodes(p.node, rp.node_count())) {
          w = std::max(w, rp.cluster.spec().staging.write_overhead_s +
                              rp.cluster.transfer_time(p.node, dst, shard));
        }
      }
    }
    write_cache = w;
    write_stamp = sim.layout_epoch;
    return w;
  }

  /// Gather time of the staged chunk to a reader spanning `reader`'s node
  /// set: every reader partition pulls its slice from every producer
  /// shard in parallel; the slowest pair dominates. Slices landing on
  /// their own shard's node are local copies.
  double read_time(Replay& rp, const ComponentFootprint& reader) const {
    WFE_REPLAY_PROF(kStageModel);
    const double piece =
        chunk_bytes / static_cast<double>(sim.node_count() *
                                          reader.node_count());
    double r = 0.0;
    for (const auto& dst : reader.partitions) {
      for (const auto& src : sim.partitions) {
        r = std::max(r, rp.cluster.spec().staging.read_overhead_s +
                            rp.cluster.transfer_time(src.node, dst.node,
                                                     piece));
      }
    }
    return r;
  }

  void start_sim_step(Replay& rp);
  void after_sim_compute(Replay& rp);
  void start_write(Replay& rp);
  void commit(Replay& rp);
  void on_read_done(Replay& rp, int reader, std::uint64_t step);

  // -- recovery entry points (fault mode only) ----------------------------
  void kill_all_in_flight(Replay& rp);
  void restart_from_checkpoint(Replay& rp);
  void handle_node_loss(Replay& rp);
  void fail(Replay& rp);
};

/// Cancel one component's pending event. Killed work (anything but a
/// pending retry backoff) is recorded as a kFault stage and priced into the
/// wasted-work account; the cancelled event never fires.
void kill_in_flight(Replay& rp, StageExec& se) {
  if (!se.fl.active) return;
  rp.engine.cancel(se.fl.event);
  se.fl.active = false;
  if (se.fl.kind == StageKind::kBackoff) return;  // no work was in flight
  const double now = rp.engine.now();
  record_stage(rp, se.id, se.fl.step, StageKind::kFault, se.fl.start, now);
  rp.summary.wasted_core_seconds +=
      (now - se.fl.start) * static_cast<double>(se.footprint->total_cores);
}

void on_stage_fault(Replay& rp, StageExec& se, bool is_crash);

/// One attempt of one fault-killable stage. Consults the injector for the
/// first crash or transient error landing inside the attempt and schedules
/// either the completion or the kill, whichever comes first.
void attempt_stage(Replay& rp, StageExec& se, std::uint64_t step,
                   StageKind kind, double seconds,
                   const plat::HwCounters& counters,
                   std::function<void()> done, int attempt) {
  if (se.member->failed) return;
  const double t0 = rp.engine.now();

  // A node mid-repair defers the attempt until the whole node set is up; a
  // permanently dead node makes waiting futile — migrate instead.
  const double up = rp.injector->all_up_at(se.nodes, t0);
  if (up == res::FaultInjector::kNever) {
    se.member->handle_node_loss(rp);
    return;
  }
  if (up > t0) {
    se.fl = InFlight{true, {}, StageKind::kBackoff, step, t0,
                     up - t0,  counters, attempt, done};
    se.fl.event = rp.engine.schedule_at(
        up, [&rp, &se, step, kind, seconds, counters, done, attempt, t0,
             up] {
          se.fl.active = false;
          record_stage(rp, se.id, step, StageKind::kBackoff, t0, up);
          attempt_stage(rp, se, step, kind, seconds, counters, done,
                        attempt);
        });
    return;
  }

  // When does this attempt die, if at all?
  double fail_t = rp.injector->first_crash_in(se.nodes, t0, t0 + seconds);
  bool is_crash = true;
  if (const auto frac = rp.injector->transient_point(
          se.id.member, se.id.analysis, step, kind, attempt)) {
    const double tt = t0 + *frac * seconds;
    if (tt < fail_t) {
      fail_t = tt;
      is_crash = false;
    }
  }

  if (fail_t == res::FaultInjector::kNever) {
    se.fl = InFlight{true, {}, kind, step, t0, seconds, counters, attempt,
                     done};
    se.fl.event = rp.engine.schedule_in(
        seconds, [&rp, &se, step, kind, seconds, counters, done, t0] {
          se.fl.active = false;
          record_stage(rp, se.id, step, kind, t0, t0 + seconds, counters);
          done();
        });
    return;
  }

  se.fl = InFlight{true, {}, kind, step, t0, seconds, counters, attempt,
                   done};
  se.fl.event = rp.engine.schedule_at(fail_t, [&rp, &se, is_crash] {
    se.fl.active = false;
    on_stage_fault(rp, se, is_crash);
  });
}

/// An injected fault killed `se`'s in-flight stage: account for the lost
/// work and dispatch the member's recovery policy.
void on_stage_fault(Replay& rp, StageExec& se, bool is_crash) {
  const InFlight fl = se.fl;  // copy: recovery below overwrites the slot
  const double now = rp.engine.now();
  record_stage(rp, se.id, fl.step, StageKind::kFault, fl.start, now);
  rp.summary.wasted_core_seconds +=
      (now - fl.start) * static_cast<double>(se.footprint->total_cores);
  if (is_crash) {
    ++rp.summary.crash_stage_kills;
  } else {
    ++rp.summary.transient_stage_faults;
  }
  if (rp.traced) {
    obs::instant("resilience", is_crash ? "crash" : "transient", now);
    obs::add_counter(is_crash ? "res.crash_kills" : "res.transient_faults",
                     now, 1.0);
  }
  se.member->faulted = true;

  // A crash kill at a node's death instant is a whole-node fault-domain
  // loss, not a transient availability gap: route to migration instead of
  // the per-stage policy.
  if (is_crash && rp.injector->first_down_node(se.nodes, now).has_value()) {
    se.member->handle_node_loss(rp);
    return;
  }

  switch (rp.policy.kind) {
    case res::RecoveryKind::kRetry: {
      if (fl.attempt > rp.policy.max_retries) {
        se.member->fail(rp);
        return;
      }
      ++rp.summary.stage_retries;
      if (rp.traced) obs::add_counter("res.retries", now, 1.0);
      const int next_attempt = fl.attempt + 1;
      // Wait out any repair window, then the exponential backoff.
      const double resume =
          rp.injector->all_up_at(se.nodes, now) + rp.policy.backoff(fl.attempt);
      se.fl = InFlight{true, {}, StageKind::kBackoff, fl.step, now,
                       resume - now, fl.counters, next_attempt, fl.done};
      se.fl.event = rp.engine.schedule_at(
          resume, [&rp, &se, fl, now, resume, next_attempt] {
            se.fl.active = false;
            record_stage(rp, se.id, fl.step, StageKind::kBackoff, now,
                         resume);
            attempt_stage(rp, se, fl.step, fl.kind, fl.duration, fl.counters,
                          fl.done, next_attempt);
          });
      return;
    }
    case res::RecoveryKind::kCheckpointRestart:
      se.member->restart_from_checkpoint(rp);
      return;
    case res::RecoveryKind::kFailMember:
      se.member->fail(rp);
      return;
  }
}

void MemberRun::kill_all_in_flight(Replay& rp) {
  kill_in_flight(rp, sim_sx);
  for (AnalysisRun& a : analyses) kill_in_flight(rp, a.sx);
}

void MemberRun::restart_from_checkpoint(Replay& rp) {
  faulted = true;
  if (restarts >= rp.policy.max_restarts) {
    fail(rp);
    return;
  }
  const double now = rp.engine.now();
  const double up = rp.injector->all_up_at(union_nodes, now);
  if (up == res::FaultInjector::kNever) {
    handle_node_loss(rp);
    return;
  }
  ++restarts;
  ++rp.summary.member_restarts;
  kill_all_in_flight(rp);

  const double resume = up + rp.policy.restart_cost_s;
  record_stage(rp, sim_id, checkpoint_step, StageKind::kRestart, now,
               resume);
  if (rp.traced) obs::add_counter("res.restarts", now, 1.0);

  // Roll the member back: the simulation re-enters at the checkpointed
  // step and re-commits from there. Analyses keep their own progress —
  // one that already consumed step k simply waits until the simulation
  // catches back up to k (re-reads after a rollback are idempotent in
  // on_read_done).
  sim_step = checkpoint_step;
  committed = static_cast<std::int64_t>(checkpoint_step) - 1;
  sim_blocked = false;
  for (AnalysisRun& a : analyses) a.waiting = false;

  rp.engine.schedule_at(resume, [this, &rp] {
    if (failed) return;
    if (sim_step < rp.spec.n_steps) start_sim_step(rp);
    for (AnalysisRun& a : analyses) {
      if (a.next_step < rp.spec.n_steps) a.try_read(rp);
    }
  });
}

void MemberRun::fail(Replay& rp) {
  if (failed) return;
  failed = true;
  kill_all_in_flight(rp);
  ++rp.summary.members_failed;
  rp.summary.failed_members.push_back(sim_id.member);
  if (rp.traced) {
    const double now = rp.engine.now();
    obs::instant("resilience", "member_failed", now);
    obs::add_counter("res.members_failed", now, 1.0);
  }
}

/// A node in this member's set died permanently: record the fault-domain
/// loss, ask the re-planner (or the built-in policy) for a new home among
/// the survivors, account staged chunks lost with the dead node, and resume
/// through the checkpoint-restart tail behind a kMigrate stage. Migrations
/// draw from the same budget as restarts.
void MemberRun::handle_node_loss(Replay& rp) {
  if (failed) return;
  const double now = rp.engine.now();
  std::vector<int> dead;
  for (int n : union_nodes) {
    if (rp.injector->down_at(n) <= now) dead.push_back(n);
  }
  // Another component of this member already migrated us this instant.
  if (dead.empty()) return;
  faulted = true;

  for (int n : dead) {
    if (rp.health->state(n) == plat::NodeHealth::kDown) continue;
    rp.health->transition(now, n, plat::NodeHealth::kDown);
    ++rp.summary.node_downs;
    if (rp.traced) {
      obs::instant("resilience", "node_down", now);
      obs::add_counter("res.node_downs", now, 1.0);
    }
  }

  if (restarts >= rp.policy.max_restarts) {
    fail(rp);
    return;
  }
  // Survivors across the whole platform. Mid-repair nodes count: the next
  // attempt on one simply waits the repair window out.
  std::vector<int> up;
  for (int n = 0; n < rp.node_count(); ++n) {
    if (rp.injector->down_at(n) > now) up.push_back(n);
  }
  if (up.empty()) {
    fail(rp);
    return;
  }

  // Staged-chunk survival, judged against the pre-migration layout: the
  // shard on a dead partition is gone unless some ring replica is alive.
  const bool sim_hit = std::any_of(dead.begin(), dead.end(),
                                   [&](int d) { return sim.resides_on(d); });
  bool chunks_survive = true;
  if (sim_hit) {
    for (const auto& p : sim.partitions) {
      bool shard_ok = false;
      for (int r : rp.replication.replica_nodes(p.node, rp.node_count())) {
        if (rp.injector->down_at(r) > now) {
          shard_ok = true;
          break;
        }
      }
      if (!shard_ok) {
        chunks_survive = false;
        break;
      }
    }
  }

  ++restarts;
  ++rp.summary.migrations;

  for (int d : dead) {
    int target = -1;
    if (rp.migrate) {
      ++rp.summary.replans;
      if (rp.traced) {
        obs::instant("sched", "replan", now);
        obs::add_counter("sched.replans", now, 1.0);
      }
      target =
          rp.migrate(MigrationRequest{sim_id.member, d, now, union_nodes, up});
    }
    if (target < 0) {
      // Built-in policy: least-loaded survivor (by active cores),
      // preferring nodes outside the member's own set; ties to lower ids.
      int best = -1;
      int best_load = 0;
      bool best_outside = false;
      for (int n : up) {
        const bool outside = std::find(union_nodes.begin(), union_nodes.end(),
                                       n) == union_nodes.end();
        const int load = rp.cluster.active_cores(n);
        if (best < 0 || (outside && !best_outside) ||
            (outside == best_outside && load < best_load)) {
          best = n;
          best_load = load;
          best_outside = outside;
        }
      }
      target = best;
    }
    WFE_REQUIRE(std::find(up.begin(), up.end(), target) != up.end(),
                "migration target must be a surviving node");
    sim.rehome(rp, d, target);
    for (AnalysisRun& a : analyses) a.footprint.rehome(rp, d, target);
    std::replace(union_nodes.begin(), union_nodes.end(), d, target);
  }
  std::sort(union_nodes.begin(), union_nodes.end());
  union_nodes.erase(std::unique(union_nodes.begin(), union_nodes.end()),
                    union_nodes.end());
  sim_sx.nodes = sim.node_list();
  for (AnalysisRun& a : analyses) a.sx.nodes = a.footprint.node_list();

  std::int64_t drained = committed;
  for (std::int64_t c : consumed) drained = std::min(drained, c);
  if (sim_hit && !chunks_survive && committed > drained) {
    const auto lost = static_cast<std::uint64_t>(committed - drained);
    rp.summary.chunks_lost += lost;
    if (rp.traced) {
      obs::add_counter("res.chunks_lost", now, static_cast<double>(lost));
    }
  }

  kill_all_in_flight(rp);

  // Losing a sim partition loses the simulation state: roll back to the
  // checkpoint. Lost staged chunks additionally pull the target back to
  // the newest checkpoint no later than the earliest lost chunk, so
  // stranded readers get their steps re-produced (the retained-checkpoint
  // window is bounded by the staging-buffer capacity). With replication
  // the staged data survives and the rollback re-commits idempotently.
  if (sim_hit) {
    std::uint64_t target = checkpoint_step;
    if (!chunks_survive) {
      target = std::min(target, static_cast<std::uint64_t>(drained + 1));
    }
    if (sim_step < rp.spec.n_steps || !chunks_survive) {
      sim_step = target;
      committed = static_cast<std::int64_t>(target) - 1;
      checkpoint_step = std::min(checkpoint_step, target);
    }
  }
  sim_blocked = false;
  for (AnalysisRun& a : analyses) a.waiting = false;

  const double resume =
      now + rp.policy.migration_cost_s + rp.policy.restart_cost_s;
  record_stage(rp, sim_id, sim_step, StageKind::kMigrate, now, resume);
  if (rp.traced) obs::add_counter("res.migrations", now, 1.0);
  rp.engine.schedule_at(resume, [this, &rp] {
    if (failed) return;
    if (sim_step < rp.spec.n_steps) start_sim_step(rp);
    for (AnalysisRun& a : analyses) {
      if (a.next_step < rp.spec.n_steps) a.try_read(rp);
    }
  });
}

void MemberRun::start_sim_step(Replay& rp) {
  // Residency-based contention: price against the other components that
  // live on these nodes for the whole run.
  plat::StageCost cost = sim.priced(rp);
  double factor = rp.jitter();
  factor *= rp.compute_stretch(sim_sx.nodes);  // straggling nodes run slower
  cost.seconds *= factor;
  cost.counters.cycles *= factor;  // time noise shows up as cycle noise
  exec_stage(rp, sim_sx, sim_step, StageKind::kSimulate, cost.seconds,
             cost.counters, [this, &rp] { after_sim_compute(rp); });
}

void MemberRun::after_sim_compute(Replay& rp) {
  s_end = rp.engine.now();
  if (can_write(sim_step)) {
    start_write(rp);
  } else {
    sim_blocked = true;  // resumed by on_read_done
  }
}

void MemberRun::start_write(Replay& rp) {
  const double now = rp.engine.now();
  record_stage(rp, sim_id, sim_step, StageKind::kSimIdle, s_end, now);
  double w = write_time(rp) * rp.jitter();
  w *= rp.transfer_stretch();  // network-degradation windows stretch staging
  exec_stage(rp, sim_sx, sim_step, StageKind::kWrite, w, {},
             [this, &rp] { commit(rp); });
}

void MemberRun::commit(Replay& rp) {
  committed = static_cast<std::int64_t>(sim_step);
  ++sim_step;
  if (rp.traced) {
    // Staging-buffer occupancy: chunks committed but not yet drained by
    // every reader of this member.
    std::int64_t drained = committed;
    for (std::int64_t c : consumed) drained = std::min(drained, c);
    const double occupancy = static_cast<double>(committed - drained);
    if (rp.obs_log != nullptr) {
      rp.obs_log->push_back({sim_id.member, rp.engine.now(), occupancy,
                             static_cast<std::uint32_t>(rp.columns.size())});
    } else {
      obs::set_counter(strprintf("dtl.m%u.occupancy", sim_id.member),
                       rp.engine.now(), occupancy);
    }
  }
  // Wake readers parked on this chunk.
  for (AnalysisRun& a : analyses) {
    if (a.waiting && static_cast<std::int64_t>(a.next_step) <= committed) {
      a.waiting = false;
      a.start_read(rp);
    }
  }
  // Under checkpoint-restart, persist a restart point every
  // checkpoint_period committed steps before computing on (the checkpoint
  // itself is a killable stage; only its completion moves the rollback
  // target forward).
  if (rp.faulty() &&
      rp.policy.kind == res::RecoveryKind::kCheckpointRestart &&
      sim_step < rp.spec.n_steps &&
      sim_step % rp.policy.checkpoint_period == 0) {
    const std::uint64_t target = sim_step;
    exec_stage(rp, sim_sx, sim_step - 1, StageKind::kCheckpoint,
               rp.policy.checkpoint_cost_s, {}, [this, &rp, target] {
                 checkpoint_step = target;
                 ++rp.summary.checkpoints_written;
                 if (rp.traced) {
                   obs::add_counter("res.checkpoints", rp.engine.now(), 1.0);
                 }
                 start_sim_step(rp);
               });
    return;
  }
  if (sim_step < rp.spec.n_steps) {
    start_sim_step(rp);
  }
}

void MemberRun::on_read_done(Replay& rp, int reader, std::uint64_t step) {
  auto& last = consumed[static_cast<std::size_t>(reader)];
  if (last == static_cast<std::int64_t>(step)) {
    // A checkpoint rollback re-committed a step this reader had already
    // consumed before the fault; the repeated read is idempotent.
    return;
  }
  WFE_REQUIRE(last + 1 == static_cast<std::int64_t>(step),
              "reader finished a step out of order");
  last = static_cast<std::int64_t>(step);
  if (sim_blocked && can_write(sim_step)) {
    sim_blocked = false;
    start_write(rp);
  }
}

double AnalysisRun::read_cost(Replay& rp) {
  if (read_stamp_sim != member->sim.layout_epoch ||
      read_stamp_self != footprint.layout_epoch) {
    read_cache = member->read_time(rp, footprint);
    read_stamp_sim = member->sim.layout_epoch;
    read_stamp_self = footprint.layout_epoch;
  }
  return read_cache;
}

void AnalysisRun::try_read(Replay& rp) {
  idle_since = rp.engine.now();
  if (static_cast<std::int64_t>(next_step) <= member->committed) {
    start_read(rp);
  } else {
    waiting = true;  // resumed by MemberRun::commit
  }
}

void AnalysisRun::start_read(Replay& rp) {
  const double now = rp.engine.now();
  record_stage(rp, id, next_step, StageKind::kAnaIdle, idle_since, now);
  // Fetch the chunk from the producer's node(s) (data locality:
  // co-located partitions pay memory copies, remote ones network
  // transfers).
  double r = read_cost(rp) * rp.jitter();
  r *= rp.transfer_stretch();
  exec_stage(rp, sx, next_step, StageKind::kRead, r, {}, [this, &rp] {
    member->on_read_done(rp, id.analysis, next_step);
    // Analyze.
    plat::StageCost cost = footprint.priced(rp);
    double factor = rp.jitter();
    factor *= rp.compute_stretch(sx.nodes);
    cost.seconds *= factor;
    cost.counters.cycles *= factor;
    exec_stage(rp, sx, next_step, StageKind::kAnalyze, cost.seconds,
               cost.counters, [this, &rp] {
                 ++next_step;
                 if (next_step < rp.spec.n_steps) try_read(rp);
               });
  });
}

/// Construct every member's state machines and register every component's
/// residency on the replay's cluster. Shared by the sequential path and by
/// each LP lane: a lane builds the FULL member set (co-location pricing
/// must see every resident working set, exactly as the sequential cluster
/// does) but schedules roots only for its own member.
std::vector<std::unique_ptr<MemberRun>> build_members(Replay& rp) {
  const EnsembleSpec& spec = rp.spec;
  std::vector<std::unique_ptr<MemberRun>> members;
  members.reserve(spec.members.size());

  for (std::size_t i = 0; i < spec.members.size(); ++i) {
    const MemberSpec& ms = spec.members[i];
    auto run = std::make_unique<MemberRun>();
    run->sim_id = met::ComponentId{static_cast<std::uint32_t>(i), -1};
    // Register every component as a node resident for the whole run: its
    // working set competes for the shared LLC whether or not it is mid-
    // stage, which is what drives steady-state co-location interference.
    run->sim.init(rp, ms.sim.nodes, ms.sim.cores,
                  md::md_stage_profile(ms.sim.cost, ms.sim.natoms,
                                       ms.sim.stride));
    run->chunk_bytes =
        md::frame_payload_bytes(ms.sim.natoms) +
        static_cast<double>(dtl::kChunkHeaderBytes);
    run->buffer_capacity = ms.buffer_capacity;
    run->consumed.assign(ms.analyses.size(), -1);
    run->sim_sx =
        StageExec{run->sim_id, run.get(), &run->sim, run->sim.node_list(), {}};
    run->union_nodes = run->sim.node_list();

    for (std::size_t j = 0; j < ms.analyses.size(); ++j) {
      const AnalysisSpec& as = ms.analyses[j];
      AnalysisRun a;
      a.member = run.get();
      a.id = met::ComponentId{static_cast<std::uint32_t>(i),
                              static_cast<std::int32_t>(j)};
      a.footprint.init(rp, as.nodes, as.cores,
                       ana::analysis_stage_profile(as.cost, ms.sim.natoms));
      run->analyses.push_back(std::move(a));
    }
    // AnalysisRun addresses are stable from here on; wire the back-pointers
    // used by the fault layer.
    for (AnalysisRun& a : run->analyses) {
      a.sx = StageExec{a.id, run.get(), &a.footprint, a.footprint.node_list(),
                       {}};
      for (int n : a.sx.nodes) {
        if (std::find(run->union_nodes.begin(), run->union_nodes.end(), n) ==
            run->union_nodes.end()) {
          run->union_nodes.push_back(n);
        }
      }
    }
    members.push_back(std::move(run));
  }
  return members;
}

}  // namespace

SimulatedExecutor::SimulatedExecutor(plat::PlatformSpec platform,
                                     SimulatedOptions options)
    : platform_(std::move(platform)), options_(options) {
  platform_.validate();
  WFE_REQUIRE(std::isfinite(options_.jitter_cv),
              "jitter coefficient of variation must be finite");
  WFE_REQUIRE(options_.jitter_cv >= 0.0,
              "jitter coefficient of variation must be non-negative");
  options_.faults.validate();
  options_.recovery.validate();
  // Resolve the engine selection once (possibly from $WFENS_ENGINE), so
  // every replay this executor runs uses the same engine and options()
  // reports the concrete choice.
  options_.engine = options_.engine.resolved();
  WFE_REQUIRE(options_.engine.threads >= 1,
              "engine selection needs at least one thread");
}

ExecutionResult SimulatedExecutor::run(const EnsembleSpec& spec) const {
  return run_seeded(spec, options_.seed);
}

ExecutionResult SimulatedExecutor::run_seeded(const EnsembleSpec& spec,
                                              std::uint64_t seed) const {
  spec.validate(platform_);
  // The LP runtime only takes replays it can partition into independent
  // member pipelines: jitter draws from one shared RNG in global event
  // order, and fault injection cancels events and mutates shared recovery
  // state, so both fall back to the sequential engine (results are
  // bit-identical either way — the fallback costs nothing but speedup).
  // The seed override never reaches the LP path: with jitter disabled (the
  // precondition for partitioning) no replay consults the RNG at all.
  if (options_.engine.kind == EngineSelection::Kind::kLp &&
      options_.jitter_cv == 0.0 && !options_.faults.enabled()) {
    return run_lp(spec);
  }
  return run_sequential(spec, seed);
}

ExecutionResult SimulatedExecutor::run_sequential(
    const EnsembleSpec& spec, std::uint64_t seed) const {
  Replay rp(spec, platform_, options_, seed);
  std::vector<std::unique_ptr<MemberRun>> members = build_members(rp);

  // All simulations start simultaneously (paper §2.1); analyses begin
  // waiting for their first chunk at t = 0.
  for (auto& m : members) {
    MemberRun* raw = m.get();
    rp.engine.schedule_at(0.0, [raw, &rp] { raw->start_sim_step(rp); });
    for (AnalysisRun& a : raw->analyses) {
      AnalysisRun* ap = &a;
      rp.engine.schedule_at(0.0, [ap, &rp] { ap->try_read(rp); });
    }
  }

  rp.engine.run();

  if (rp.faulty()) {
    for (const auto& m : members) {
      if (m->faulted && !m->failed) ++rp.summary.members_recovered;
    }
  }

  ExecutionResult result;
  // Flush the per-replay counter accumulator once, then materialize the
  // columns (same (start, component) stable sort as the AoS constructor).
  result.hw_totals = rp.columns.counter_total();
  {
    WFE_REPLAY_PROF(kMetrics);
    result.trace = rp.columns.take_trace();
  }
  result.n_steps = spec.n_steps;
  result.events_processed = rp.engine.events_processed();
  result.failure_summary = std::move(rp.summary);
  if (rp.health) result.health_events = rp.health->events();
  if (rp.traced) {
    if (obs::Recorder* rec = obs::current()) {
      const double t_end = rp.engine.now();
      obs::set_counter("run.makespan_s", t_end, t_end);
      obs::add_counter("run.stage_records", t_end,
                       static_cast<double>(result.trace.size()));
      result.counters = rec->counters().snapshot();
    }
  }
  return result;
}

ExecutionResult SimulatedExecutor::run_lp(const EnsembleSpec& spec) const {
  const std::size_t lps = spec.members.size();
  sim::ParallelEngine pe(lps);

  // Per-LP replay context: a full replica of the modelled cluster with
  // EVERY member's residency registered (so co-location interference
  // pricing is bit-identical to the sequential cluster), bound to its lane
  // engine. Only the lane's own member gets roots; the other members'
  // state machines exist solely as cluster residents and never execute.
  // Lanes therefore share no mutable state at all — the conservative
  // window protocol synchronizes progress, not data.
  struct LaneCtx {
    std::unique_ptr<Replay> rp;
    std::vector<std::unique_ptr<MemberRun>> members;
    std::vector<ObsOp> obs_ops;
    /// Per executed event: lane columns size after it — the merge's push
    /// ranges. Written by the boundary hook on the lane's worker thread.
    std::vector<std::uint32_t> ev_push_end;
    std::vector<std::uint32_t> ev_obs_end;
  };
  std::vector<LaneCtx> lanes(lps);
  for (std::size_t i = 0; i < lps; ++i) {
    lanes[i].rp = std::make_unique<Replay>(spec, platform_, options_,
                                           options_.seed, &pe.lp_engine(i));
    lanes[i].rp->obs_log = &lanes[i].obs_ops;
    lanes[i].members = build_members(*lanes[i].rp);
  }
  const bool traced = lanes[0].rp->traced;

  pe.set_boundary(
      [](void* ctx, std::size_t lp, std::uint64_t /*event_index*/) {
        auto& all = *static_cast<std::vector<LaneCtx>*>(ctx);
        LaneCtx& lane = all[lp];
        lane.ev_push_end.push_back(
            static_cast<std::uint32_t>(lane.rp->columns.size()));
        lane.ev_obs_end.push_back(
            static_cast<std::uint32_t>(lane.obs_ops.size()));
      },
      &lanes);

  // Roots in the exact order the sequential engine schedules them
  // (member-major: each member's simulation, then its analyses) — their
  // call order defines the merge's global sequence numbers 0..R-1.
  for (std::size_t i = 0; i < lps; ++i) {
    Replay& rp = *lanes[i].rp;
    MemberRun* raw = lanes[i].members[i].get();
    pe.schedule_root(i, 0.0, [raw, &rp] { raw->start_sim_step(rp); });
    for (AnalysisRun& a : raw->analyses) {
      AnalysisRun* ap = &a;
      pe.schedule_root(i, 0.0, [ap, &rp] { ap->try_read(rp); });
    }
  }

  // Conservative lookahead from the coupling protocol W_i < R_i < W_{i+1}:
  // the soonest a committed chunk could influence anything downstream is
  // one write + read turnaround, so the tightest member's W + min R bounds
  // cross-LP interaction spacing from below (docs/PERF.md §8). Computing
  // the bound pre-warms the same layout-keyed caches the replay fills
  // lazily — identical values, so the trace is unaffected.
  double lookahead = sim::ParallelEngine::kUnbounded;
  for (std::size_t i = 0; i < lps; ++i) {
    Replay& rp = *lanes[i].rp;
    MemberRun& m = *lanes[i].members[i];
    double turnaround = m.write_time(rp);
    double min_read = sim::ParallelEngine::kUnbounded;
    for (AnalysisRun& a : m.analyses) {
      min_read = std::min(min_read, a.read_cost(rp));
    }
    if (min_read != sim::ParallelEngine::kUnbounded) turnaround += min_read;
    lookahead = std::min(lookahead, turnaround);
  }
  if (!(lookahead > 0.0)) lookahead = sim::ParallelEngine::kUnbounded;

  const auto threads = std::min(static_cast<std::size_t>(std::max(
                                    1, options_.engine.threads)),
                                lps);
  if (threads > 1) {
    // A local crew per replay: executors may be driven concurrently (the
    // batch evaluator runs one per worker), so nothing pool-shaped hangs
    // off `this`.
    exec::ThreadPool pool(static_cast<int>(threads));
    pe.run(&pool, lookahead);
  } else {
    pe.run(nullptr, lookahead);
  }

  // Ordered merge: visit every event in the sequential global (time, seq)
  // order and replay its lane's stage pushes and deferred obs emissions,
  // rebuilding the exact insertion order (and therefore the exact
  // floating-point accumulation order of the counter totals) plus the
  // sequential traced run()'s engine telemetry.
  struct PooledColumns {
    met::StageColumns columns;
    PooledColumns() {
      if (auto& pool = column_pool(); !pool.empty()) {
        columns = std::move(pool.back());
        pool.pop_back();
      }
    }
    ~PooledColumns() {
      columns.clear();
      column_pool().push_back(std::move(columns));
    }
  };
  PooledColumns merged;
  {
    std::size_t components = 0;
    for (const MemberSpec& m : spec.members) components += 1 + m.analyses.size();
    merged.columns.reserve(components * (spec.n_steps + 1) * 4);
  }

  {
    WFE_REPLAY_PROF(kMetrics);
    std::vector<std::size_t> obs_cursor(lps, 0);
    std::uint64_t processed = 0;
    std::uint64_t last = 0;
    double t_last = 0.0;
    pe.replay([&](std::size_t lp, std::uint64_t index, sim::SimTime time,
                  std::size_t depth) {
      LaneCtx& lane = lanes[lp];
      const met::StageColumns& cols = lane.rp->columns;
      const std::uint32_t p0 = index == 0 ? 0 : lane.ev_push_end[index - 1];
      const std::uint32_t p1 = lane.ev_push_end[index];
      const std::uint32_t o1 = lane.ev_obs_end[index];
      std::size_t& oc = obs_cursor[lp];
      for (std::uint32_t i = p0; i < p1; ++i) {
        while (oc < o1 && lane.obs_ops[oc].at_push <= i) {
          const ObsOp& op = lane.obs_ops[oc++];
          obs::set_counter(strprintf("dtl.m%u.occupancy", op.member), op.t,
                           op.value);
        }
        const met::ComponentId& component = cols.row_component(i);
        const core::StageKind kind = cols.row_kind(i);
        const double start = cols.row_start(i);
        const double end = cols.row_end(i);
        if (const plat::HwCounters* c = cols.row_counters(i)) {
          merged.columns.push(component, cols.row_step(i), kind, start, end,
                              *c);
        } else {
          merged.columns.push(component, cols.row_step(i), kind, start, end);
        }
        if (traced) trace_obs_stage(component, kind, start, end);
      }
      while (oc < o1) {
        const ObsOp& op = lane.obs_ops[oc++];
        obs::set_counter(strprintf("dtl.m%u.occupancy", op.member), op.t,
                         op.value);
      }
      t_last = time;
      ++processed;
      // The sequential traced run() samples the engine counters every
      // kObsEventStride dispatched events; replicate its cadence over the
      // merged order, with the merge heap's size standing in for the
      // engine's queue depth (they are equal by construction).
      if (traced && processed - last >= Engine::kObsEventStride) {
        obs::add_counter("engine.events", time,
                         static_cast<double>(processed - last));
        obs::set_counter("engine.queue_depth", time,
                         static_cast<double>(depth));
        last = processed;
      }
    });
    if (traced) {
      if (processed != last) {
        obs::add_counter("engine.events", t_last,
                         static_cast<double>(processed - last));
        obs::set_counter("engine.queue_depth", t_last, 0.0);
      }
      obs::span("engine", "run", 0.0, t_last);
    }
  }

  ExecutionResult result;
  result.hw_totals = merged.columns.counter_total();
  {
    WFE_REPLAY_PROF(kMetrics);
    result.trace = merged.columns.take_trace();
  }
  result.n_steps = spec.n_steps;
  result.events_processed = pe.events_processed();
  // Fault injection never routes here, so the failure summary and health
  // log keep their defaults — exactly the sequential fault-free values.
  if (traced) {
    if (obs::Recorder* rec = obs::current()) {
      const double t_end = pe.now();
      obs::set_counter("run.makespan_s", t_end, t_end);
      obs::add_counter("run.stage_records", t_end,
                       static_cast<double>(result.trace.size()));
      result.counters = rec->counters().snapshot();
    }
  }
  return result;
}

}  // namespace wfe::rt
