// EnsembleSpec persistence: the WFES text format.
//
// Captures the structural specification — member placements, core counts,
// workload scale (atoms, stride), staging-buffer depth, step count and
// kernel names — which is everything the assessment pipeline needs to
// compute indicators from a saved trace (wfens_report --spec). Cost-model
// constants are NOT serialized; loading applies the library's calibrated
// defaults (DESIGN.md §7).
//
//   WFES 1
//   name <free text>
//   steps <n>
//   member buffer <capacity>
//   sim cores <c> stride <s> natoms <n> nodes <i> [<i> ...]
//   analysis kernel <k> cores <c> nodes <i> [<i> ...]
//   [more `analysis` lines]
//   [more `member` blocks]
//   end <member_count>
#pragma once

#include <filesystem>
#include <string>
#include <string_view>

#include "runtime/spec.hpp"

namespace wfe::rt {

/// Serialize to the WFES text format.
std::string spec_to_text(const EnsembleSpec& spec);

/// Parse a WFES buffer; throws wfe::SerializationError on malformation.
EnsembleSpec spec_from_text(std::string_view text);

/// File convenience wrappers (throw wfe::Error on I/O failure).
void save_spec(const std::filesystem::path& path, const EnsembleSpec& spec);
EnsembleSpec load_spec(const std::filesystem::path& path);

}  // namespace wfe::rt
