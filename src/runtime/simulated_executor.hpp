// SimulatedExecutor: replays a workflow ensemble on the modelled cluster.
//
// Every component runs as an event-driven state machine on the discrete-
// event engine, enforcing the same synchronous coupling protocol the native
// DTL enforces with condition variables:
//   * W_i waits for every reader's R_{i-1} (stage I^S),
//   * R_i waits for W_i (stage I^A),
// while compute stages (S, A) occupy the cluster and are priced against the
// components co-active on their node at the instant they start — so
// co-location interference, data-locality of reads, and the Idle-Analyzer /
// Idle-Simulation regimes all emerge from the replay rather than being
// assumed.
//
// Stage accounting conventions (they only shift labels between adjacent
// steps; steady-state values are unaffected):
//   * I^S_i  = the wait between S_i's end and W_i's start;
//   * I^A_i  = the wait before R_i (including the initial wait while S_0
//     runs), rather than after A_i as drawn in Figure 6.
// Zero-length idle intervals are recorded so every step carries all stages.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "platform/spec.hpp"
#include "resilience/fault_spec.hpp"
#include "runtime/engine_select.hpp"
#include "runtime/result.hpp"
#include "runtime/spec.hpp"

namespace wfe::rt {

/// One online re-planning request: a node died permanently and `member`'s
/// components on it need a new home among the survivors.
struct MigrationRequest {
  std::uint32_t member = 0;
  int dead_node = -1;
  double now_s = 0.0;             ///< virtual time of the death
  std::vector<int> member_nodes;  ///< the member's union node set (pre-move)
  std::vector<int> up_nodes;      ///< surviving platform nodes, ascending
};

/// Picks the surviving node that adopts the dead node's partitions, or
/// returns a negative value to fall back to the executor's built-in policy
/// (least-loaded survivor, preferring nodes outside the member's own set).
/// Must be a deterministic function of the request — it runs inside the
/// deterministic replay. sched::RePlanner provides the EvalCache-backed
/// implementation.
using MigrationPlanner = std::function<int(const MigrationRequest&)>;

struct SimulatedOptions {
  /// Coefficient of variation of multiplicative, mean-preserving lognormal
  /// noise applied to every stage duration. 0 (default) replays the pure
  /// deterministic model; ~0.03-0.10 imitates run-to-run variability of a
  /// real machine (the paper averages 5 trials for this reason). Noise is
  /// reproducible given `seed`.
  double jitter_cv = 0.0;
  std::uint64_t seed = 0x5eed;

  /// Mirror this run into an active obs::Session (spans, counters). On by
  /// default; the scheduler turns it off for its probe replays so a
  /// planning trace shows scheduler activity, not thousands of overlapping
  /// candidate replays. Never affects results — emission is passive.
  bool trace_obs = true;

  /// Fault model (docs/RESILIENCE.md). The default spec is all-zero rates:
  /// injection fully disabled, and the replay takes the pristine code path
  /// producing bit-identical traces to a fault-unaware build.
  res::FaultSpec faults;
  /// How the replay recovers when `faults` injects one. Ignored while
  /// injection is disabled — except chunk_replication, whose staging cost
  /// is priced whenever it exceeds 1 (scheduler probes must see it too).
  res::RecoveryPolicy recovery;

  /// Online re-planning hook consulted on every permanent node death.
  /// Null (default) = the executor's built-in migration policy.
  MigrationPlanner migrate;

  /// Which replay engine runs the event loop (engine_select.hpp):
  /// sequential calendar queue or the LP-partitioned ParallelEngine.
  /// Resolved against $WFENS_ENGINE at executor construction. Results are
  /// bit-identical either way; replays the LP runtime cannot partition
  /// (jitter or fault injection couple all members through shared state)
  /// fall back to the sequential engine automatically.
  EngineSelection engine;
};

class SimulatedExecutor {
 public:
  explicit SimulatedExecutor(plat::PlatformSpec platform,
                             SimulatedOptions options = {});

  /// Validate `spec` against the platform and replay it to completion.
  /// Deterministic: equal inputs (including options) give bit-identical
  /// traces.
  ExecutionResult run(const EnsembleSpec& spec) const;

  /// Replay with the jitter RNG seeded from `seed` instead of
  /// `options().seed`, leaving every other knob untouched. This is how the
  /// adaptive scheduler draws independent samples of a stochastic probe
  /// objective: one executor, many deterministic draws. With jitter
  /// disabled the seed is never consulted, so run_seeded(spec, s) ==
  /// run(spec) bit-for-bit for every s.
  ExecutionResult run_seeded(const EnsembleSpec& spec,
                             std::uint64_t seed) const;

  const plat::PlatformSpec& platform() const { return platform_; }
  const SimulatedOptions& options() const { return options_; }

 private:
  /// The classic single-engine replay loop. `seed` feeds the jitter RNG
  /// (normally options().seed; run_seeded passes its override).
  ExecutionResult run_sequential(const EnsembleSpec& spec,
                                 std::uint64_t seed) const;
  /// LP-partitioned replay (simengine/parallel.hpp): one logical process
  /// per ensemble member, merged back into the exact sequential event
  /// order — bit-identical results, chosen via options().engine.
  ExecutionResult run_lp(const EnsembleSpec& spec) const;

  plat::PlatformSpec platform_;
  SimulatedOptions options_;
};

}  // namespace wfe::rt
