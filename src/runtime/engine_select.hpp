// Replay engine selection: sequential calendar queue vs LP-partitioned
// parallel runtime.
//
// Both engines produce bit-identical ExecutionResults (traces, counters,
// telemetry — the LP merge reconstructs the sequential (time, seq) order
// exactly), so the knob is purely a throughput choice and is deliberately
// excluded from the scheduler's scenario fingerprints: a cache entry scored
// under one engine is valid under the other.
//
// Three ways to select, lowest to highest precedence within one process:
//   * default      — sequential, unless the environment overrides;
//   * WFENS_ENGINE — environment override ("seq", "lp", "lp:4"), consulted
//     when an executor is constructed with Kind::kDefault, so every tool,
//     bench and test can switch engines with zero code changes;
//   * explicit     — SimulatedOptions::engine / PlanOptions::engine /
//     wfens_run --engine=lp:N.
#pragma once

#include <string>
#include <string_view>

namespace wfe::rt {

struct EngineSelection {
  enum class Kind {
    kDefault,     ///< resolve from $WFENS_ENGINE, else sequential
    kSequential,  ///< single calendar-queue engine (the PR 5 hot path)
    kLp,          ///< LP-partitioned ParallelEngine with `threads` workers
  };

  Kind kind = Kind::kDefault;
  /// LP worker threads (>= 1); meaningful only with Kind::kLp. The LP
  /// count itself is one per ensemble member — threads only size the crew
  /// driving the lanes, so results are identical at every thread count.
  int threads = 1;

  /// Parse "seq" / "sequential" / "lp" / "lp:N" (N >= 1). "lp" without a
  /// count uses kDefaultLpThreads. Throws wfe::SpecError on anything else.
  static EngineSelection parse(std::string_view text);

  /// Worker count "lp" resolves to when no :N is given. A fixed constant,
  /// not hardware_concurrency(): selection must not depend on the machine
  /// (results never do, but fingerprint-adjacent knobs stay deterministic).
  static constexpr int kDefaultLpThreads = 4;

  /// Resolve kDefault against $WFENS_ENGINE (unset or empty: sequential).
  /// Explicit selections pass through unchanged. Throws wfe::SpecError if
  /// the environment value is malformed — a silent fallback would turn a
  /// typo into a perf mystery.
  EngineSelection resolved() const;

  /// Render as the same syntax parse() accepts ("default" for kDefault).
  std::string str() const;

  friend bool operator==(const EngineSelection&,
                         const EngineSelection&) = default;
};

}  // namespace wfe::rt
