#include "runtime/engine_select.hpp"

#include <cstdlib>

#include "support/error.hpp"
#include "support/str.hpp"

namespace wfe::rt {

EngineSelection EngineSelection::parse(std::string_view text) {
  if (text == "seq" || text == "sequential") {
    return {Kind::kSequential, 1};
  }
  if (text == "lp") {
    return {Kind::kLp, kDefaultLpThreads};
  }
  if (text.rfind("lp:", 0) == 0) {
    const std::string_view count = text.substr(3);
    int threads = 0;
    bool ok = !count.empty() && count.size() <= 4;
    for (char c : count) {
      if (c < '0' || c > '9') {
        ok = false;
        break;
      }
      threads = threads * 10 + (c - '0');
    }
    if (!ok || threads < 1) {
      throw SpecError(strprintf(
          "invalid LP thread count in engine selection \"%.*s\" "
          "(want lp:N with N >= 1)",
          static_cast<int>(text.size()), text.data()));
    }
    return {Kind::kLp, threads};
  }
  throw SpecError(strprintf(
      "unknown engine selection \"%.*s\" (want seq, sequential, lp, or lp:N)",
      static_cast<int>(text.size()), text.data()));
}

EngineSelection EngineSelection::resolved() const {
  if (kind != Kind::kDefault) return *this;
  const char* env = std::getenv("WFENS_ENGINE");
  if (env == nullptr || *env == '\0') return {Kind::kSequential, 1};
  return parse(env);
}

std::string EngineSelection::str() const {
  switch (kind) {
    case Kind::kDefault:
      return "default";
    case Kind::kSequential:
      return "seq";
    case Kind::kLp:
      return strprintf("lp:%d", threads);
  }
  return "default";
}

}  // namespace wfe::rt
