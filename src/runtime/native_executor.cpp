#include "runtime/native_executor.hpp"

#include <chrono>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "analysis/kernel.hpp"
#include "dtl/coupling.hpp"
#include "dtl/file_staging.hpp"
#include "dtl/memory_staging.hpp"
#include "dtl/plugin.hpp"
#include "mdsim/engine.hpp"
#include "metrics/trace_io.hpp"
#include "obs/recorder.hpp"
#include "support/error.hpp"
#include "support/lock_rank.hpp"
#include "support/str.hpp"

namespace wfe::rt {

namespace {

using core::StageKind;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Observability context of one native run. Trace records carry seconds
/// since the run epoch; the recorder's clock started earlier, so spans are
/// shifted by the epoch's position on that clock (`t0`). Both clocks are
/// the same steady_clock, making the shift exact.
struct ObsCtx {
  bool traced = false;
  double t0 = 0.0;
};

/// Append one stage record to the trace and mirror it into the
/// observability layer (component track; staging stages also onto the
/// member's DTL-view track), matching the simulated executor's shape.
void record_stage(met::TraceRecorder& recorder, const ObsCtx& octx,
                  const met::StageRecord& r) {
  recorder.record(r);
  if (!octx.traced) return;
  obs::span(r.component.str(), met::stage_mnemonic(r.kind), octx.t0 + r.start,
            octx.t0 + r.end);
  if (r.kind == StageKind::kWrite) {
    obs::span(strprintf("dtl/m%u", r.component.member), "put",
              octx.t0 + r.start, octx.t0 + r.end);
    obs::add_counter("dtl.puts", octx.t0 + r.end, 1.0);
  } else if (r.kind == StageKind::kRead) {
    obs::span(strprintf("dtl/m%u", r.component.member), "get",
              octx.t0 + r.start, octx.t0 + r.end);
    obs::add_counter("dtl.gets", octx.t0 + r.end, 1.0);
  }
}

/// First-exception latch shared by all component threads. A thread that
/// throws (TimeoutError from a bounded coupling wait, a DTL fetch failure,
/// a protocol violation) parks its exception here and closes its member's
/// channel so the coupled peers unblock; run() rethrows the first captured
/// exception after joining instead of letting std::thread call
/// std::terminate.
struct FailureLatch {
  using Mutex = support::RankedMutex<support::kRankRunLatch>;

  Mutex mutex;
  std::exception_ptr first;

  void capture(std::exception_ptr error) {
    const support::RankGuard<Mutex> lock(mutex);
    if (!first) first = error;
  }

  void rethrow_if_set() {
    const support::RankGuard<Mutex> lock(mutex);
    if (first) std::rethrow_exception(first);
  }
};

void run_simulation(const SimulationSpec& spec, std::uint32_t member,
                    std::uint64_t n_steps, dtl::DtlPlugin plugin,
                    std::shared_ptr<dtl::CouplingChannel> channel,
                    met::TraceRecorder& recorder, Clock::time_point epoch,
                    const ObsCtx& octx) {
  const met::ComponentId id{member, -1};
  md::MdEngine engine(spec.native);

  for (std::uint64_t step = 0; step < n_steps; ++step) {
    const double t0 = seconds_since(epoch);
    engine.advance(spec.stride);  // stage S: real MD compute
    const double t1 = seconds_since(epoch);
    record_stage(recorder, octx, {id, step, StageKind::kSimulate, t0, t1, {}});

    channel->begin_write(step);  // stage I^S: wait for readers to drain
    const double t2 = seconds_since(epoch);
    record_stage(recorder, octx, {id, step, StageKind::kSimIdle, t1, t2, {}});

    // begin_write guarantees step - capacity is drained by every reader.
    const auto capacity = static_cast<std::uint64_t>(channel->capacity());
    if (step >= capacity) {
      plugin.release(dtl::ChunkKey{member, step - capacity});
    }
    plugin.write(dtl::Chunk(dtl::ChunkKey{member, step},
                            dtl::PayloadKind::kPositions3N, engine.frame()));
    // Stage W ends when the data is staged; the commit below is only the
    // readers' wake-up signal, so timestamp first — this also guarantees
    // that a reader's R start (taken after the commit) never precedes the
    // recorded W end.
    const double t3 = seconds_since(epoch);
    record_stage(recorder, octx, {id, step, StageKind::kWrite, t2, t3, {}});
    channel->commit_write(step);
  }
  channel->close();
}

void run_analysis(const AnalysisSpec& spec, std::uint32_t member,
                  std::int32_t index, std::uint64_t n_steps,
                  dtl::DtlPlugin plugin, dtl::FetchRetry fetch,
                  std::shared_ptr<dtl::CouplingChannel> channel,
                  met::TraceRecorder& recorder, Clock::time_point epoch,
                  const ObsCtx& octx,
                  std::vector<ana::AnalysisResult>& outputs,
                  support::RankedMutex<support::kRankRunOutputs>& outputs_mutex) {
  const met::ComponentId id{member, index};
  const std::unique_ptr<ana::AnalysisKernel> kernel =
      ana::make_kernel(spec.kernel);

  for (std::uint64_t step = 0; step < n_steps; ++step) {
    const double t0 = seconds_since(epoch);
    const bool available = channel->await_step(index, step);  // I^A
    const double t1 = seconds_since(epoch);
    record_stage(recorder, octx, {id, step, StageKind::kAnaIdle, t0, t1, {}});
    if (!available) break;  // writer finished early

    const dtl::Chunk chunk = plugin.read(dtl::ChunkKey{member, step}, fetch);
    channel->ack_read(index, step);
    const double t2 = seconds_since(epoch);
    record_stage(recorder, octx, {id, step, StageKind::kRead, t1, t2, {}});

    ana::AnalysisResult result = kernel->analyze(chunk);  // stage A
    const double t3 = seconds_since(epoch);
    record_stage(recorder, octx, {id, step, StageKind::kAnalyze, t2, t3, {}});
    {
      const support::RankGuard<support::RankedMutex<support::kRankRunOutputs>>
          lock(outputs_mutex);
      outputs.push_back(std::move(result));
    }
  }
}

}  // namespace

ExecutionResult NativeExecutor::run(const EnsembleSpec& spec) const {
  WFE_REQUIRE(!spec.members.empty(), "ensemble needs at least one member");
  const std::uint64_t n_steps =
      options_.max_steps > 0 ? std::min(options_.max_steps, spec.n_steps)
                             : spec.n_steps;
  WFE_REQUIRE(n_steps > 0, "need at least one in situ step");

  std::unique_ptr<dtl::StagingBackend> staging;
  if (options_.staging == NativeOptions::StagingTier::kFile) {
    const std::filesystem::path root =
        options_.spool_dir.empty()
            ? std::filesystem::temp_directory_path() / "wfens-native-spool"
            : std::filesystem::path(options_.spool_dir);
    staging = std::make_unique<dtl::FileStaging>(root);
  } else {
    staging = std::make_unique<dtl::MemoryStaging>();
  }
  met::TraceRecorder recorder;
  const Clock::time_point epoch = Clock::now();
  const ObsCtx octx{obs::enabled(), obs::enabled() ? obs::now_s() : 0.0};

  struct AnalysisSlot {
    met::ComponentId id;
    std::vector<ana::AnalysisResult> outputs;
    support::RankedMutex<support::kRankRunOutputs> mutex;
  };
  std::vector<std::unique_ptr<AnalysisSlot>> slots;
  std::vector<std::thread> threads;
  FailureLatch latch;

  // Run a component body, trapping any exception: the first one is latched
  // for rethrow after join, and the member's channel closes so every peer
  // blocked on the failed component unwinds instead of waiting forever.
  const auto guarded = [&latch](std::shared_ptr<dtl::CouplingChannel> channel,
                                auto body) {
    return [&latch, channel = std::move(channel),
            body = std::move(body)]() mutable {
      try {
        body();
      } catch (...) {
        latch.capture(std::current_exception());
        channel->close();
      }
    };
  };

  for (std::size_t i = 0; i < spec.members.size(); ++i) {
    const MemberSpec& ms = spec.members[i];
    WFE_REQUIRE(!ms.analyses.empty(), "member couples no analysis");
    const auto member = static_cast<std::uint32_t>(i);
    auto channel = std::make_shared<dtl::CouplingChannel>(
        static_cast<int>(ms.analyses.size()), ms.buffer_capacity,
        options_.coupling_timeout_s);
    dtl::DtlPlugin plugin(*staging);

    threads.emplace_back(guarded(channel, [&, member, plugin, channel] {
      run_simulation(spec.members[member].sim, member, n_steps, plugin,
                     channel, recorder, epoch, octx);
    }));

    for (std::size_t j = 0; j < ms.analyses.size(); ++j) {
      auto slot = std::make_unique<AnalysisSlot>();
      slot->id = met::ComponentId{member, static_cast<std::int32_t>(j)};
      AnalysisSlot* raw = slot.get();
      slots.push_back(std::move(slot));
      threads.emplace_back(guarded(channel, [&, member, j, plugin, channel,
                                             raw] {
        run_analysis(spec.members[member].analyses[j], member,
                     static_cast<std::int32_t>(j), n_steps, plugin,
                     options_.chunk_fetch, channel, recorder, epoch, octx,
                     raw->outputs, raw->mutex);
      }));
    }
  }

  for (std::thread& t : threads) t.join();
  latch.rethrow_if_set();

  ExecutionResult result;
  result.trace = recorder.take();
  result.n_steps = n_steps;
  for (auto& slot : slots) {
    result.analysis_outputs.push_back(
        {slot->id, std::move(slot->outputs)});
  }
  if (octx.traced) {
    if (obs::Recorder* rec = obs::current()) {
      const double t_end = obs::now_s();
      obs::add_counter("run.stage_records", t_end,
                       static_cast<double>(result.trace.size()));
      result.counters = rec->counters().snapshot();
    }
  }
  return result;
}

}  // namespace wfe::rt
