// Workflow-ensemble specification: what to run, and where.
//
// Encodes the paper's experimental vocabulary (Tables 2 and 4): a workflow
// ensemble is N members; each member is one simulation coupled with K
// analyses; every component is pinned to a set of node indexes with a core
// count. The same spec drives both executors — the simulated executor uses
// the cost-model fields, the native executor the real-engine fields.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "analysis/cost_model.hpp"
#include "core/placement.hpp"
#include "mdsim/cost_model.hpp"
#include "mdsim/engine.hpp"
#include "platform/spec.hpp"

namespace wfe::rt {

/// One analysis component (Ana_i^j).
struct AnalysisSpec {
  std::set<int> nodes;  ///< a_i^j
  int cores = 8;        ///< ca_i^j
  /// Kernel name for native execution ("bipartite-eigen", "rmsd", "rgyr",
  /// "contacts").
  std::string kernel = "bipartite-eigen";
  /// Cost model for simulated execution.
  ana::AnalysisCostParams cost;
};

/// The simulation component (Sim_i).
struct SimulationSpec {
  std::set<int> nodes;  ///< s_i
  int cores = 16;       ///< cs_i
  /// Modelled workload scale (simulated mode): atoms in the system.
  std::size_t natoms = 250'000;
  /// MD steps per in situ step (the paper's stride).
  int stride = 800;
  /// Cost model for simulated execution.
  md::MdCostParams cost;
  /// Real-engine configuration for native execution.
  md::MdConfig native;
};

/// One ensemble member EM_i.
struct MemberSpec {
  SimulationSpec sim;
  std::vector<AnalysisSpec> analyses;
  /// Staging-buffer depth of the member's coupling: how many published-
  /// but-undrained chunks may be in flight. 1 reproduces the paper's
  /// no-buffering protocol (W_{i+1} waits for every R_i); larger values
  /// are the buffering extension studied by bench_ext_buffering.
  int buffer_capacity = 1;

  /// Convert to the core model's placement descriptor.
  core::MemberPlacement placement() const;
};

/// The workflow ensemble.
struct EnsembleSpec {
  std::string name = "ensemble";
  std::vector<MemberSpec> members;
  /// Number of in situ steps every member executes (the paper runs 30 000
  /// MD steps at stride 800 -> 37 in situ steps).
  std::uint64_t n_steps = 37;

  /// M: distinct nodes referenced by any component.
  int total_nodes() const;

  /// All validation: at least one member, one coupling per member, node
  /// indexes within the platform, positive core counts, and no node
  /// oversubscribed (the steady state keeps all components concurrently
  /// active, so per-node core demand is the sum over resident components).
  /// Throws wfe::SpecError.
  void validate(const plat::PlatformSpec& platform) const;
};

}  // namespace wfe::rt
