// The trace -> model bridge: turns a measured execution into the paper's
// assessment pipeline outputs (steady state -> E -> indicators -> F).
#pragma once

#include <vector>

#include "core/ensemble_model.hpp"
#include "core/insitu.hpp"
#include "metrics/steady_state.hpp"
#include "runtime/result.hpp"
#include "runtime/spec.hpp"

namespace wfe::rt {

/// Everything the paper derives for one member.
struct MemberAssessment {
  core::MemberSteady steady;      ///< measured S*, W*, R*^j, A*^j
  double sigma = 0.0;             ///< Eq. (1)
  double efficiency = 0.0;        ///< Eq. (3)
  double makespan_measured = 0.0; ///< Table 1 member makespan from the trace
  double makespan_model = 0.0;    ///< Eq. (2) with the run's step count
};

/// Ensemble-level assessment: member details plus the model object from
/// which any indicator chain and objective value can be read.
struct Assessment {
  std::vector<MemberAssessment> members;
  int total_nodes = 0;  ///< M
  double ensemble_makespan_measured = 0.0;
  core::EnsembleModel model;  ///< measured steady states + spec placements

  /// F(P) of Eq. (9) at the given indicator stage chain.
  double objective(core::IndicatorKind kind) const {
    return model.objective(kind);
  }
  /// P_1..P_N at the given stage chain.
  std::vector<double> member_indicators(core::IndicatorKind kind) const {
    return model.member_indicators(kind);
  }
};

/// Assess a finished execution of `spec`.
Assessment assess(const EnsembleSpec& spec, const ExecutionResult& result,
                  const met::SteadyStateOptions& options = {});

}  // namespace wfe::rt
