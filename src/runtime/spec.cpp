#include "runtime/spec.hpp"

#include <vector>

#include "support/error.hpp"
#include "support/str.hpp"

namespace wfe::rt {

core::MemberPlacement MemberSpec::placement() const {
  core::MemberPlacement p;
  p.sim.nodes = sim.nodes;
  p.sim.cores = sim.cores;
  for (const AnalysisSpec& a : analyses) {
    p.analyses.push_back(core::ComponentPlacement{a.nodes, a.cores});
  }
  return p;
}

int EnsembleSpec::total_nodes() const {
  std::set<int> nodes;
  for (const MemberSpec& m : members) {
    nodes.insert(m.sim.nodes.begin(), m.sim.nodes.end());
    for (const AnalysisSpec& a : m.analyses) {
      nodes.insert(a.nodes.begin(), a.nodes.end());
    }
  }
  return static_cast<int>(nodes.size());
}

void EnsembleSpec::validate(const plat::PlatformSpec& platform) const {
  platform.validate();
  if (members.empty()) {
    throw SpecError("a workflow ensemble needs at least one member");
  }
  if (n_steps == 0) {
    throw SpecError("a workflow ensemble executes at least one in situ step");
  }

  // Per-node concurrent core demand: components are all active in steady
  // state, so a node must fit the sum of its residents' core counts.
  // Components spanning several nodes contribute cores / |nodes| per node
  // (even spread), matching how MPI ranks would be distributed. Flat
  // per-node array, not a map — validation runs once per replay, and the
  // campaign drivers replay thousands of specs back to back.
  std::vector<double> demand(static_cast<std::size_t>(platform.node_count),
                             0.0);
  auto place = [&](const std::set<int>& nodes, int cores, const char* what) {
    if (nodes.empty()) {
      throw SpecError(std::string(what) + " must run on at least one node");
    }
    if (cores <= 0) {
      throw SpecError(std::string(what) + " must use at least one core");
    }
    for (int n : nodes) {
      if (n < 0 || n >= platform.node_count) {
        throw SpecError(strprintf("%s placed on node %d outside platform (%d nodes)",
                                  what, n, platform.node_count));
      }
      demand[static_cast<std::size_t>(n)] +=
          static_cast<double>(cores) / static_cast<double>(nodes.size());
    }
  };

  for (std::size_t i = 0; i < members.size(); ++i) {
    const MemberSpec& m = members[i];
    if (m.analyses.empty()) {
      throw SpecError(strprintf(
          "member %zu couples no analysis (the model needs K >= 1)", i));
    }
    if (m.sim.stride <= 0) {
      throw SpecError("the simulation stride must be positive");
    }
    if (m.buffer_capacity < 1) {
      throw SpecError("the staging buffer holds at least one chunk");
    }
    if (m.sim.natoms == 0) {
      throw SpecError("the modelled system needs at least one atom");
    }
    place(m.sim.nodes, m.sim.cores, "simulation");
    for (const AnalysisSpec& a : m.analyses) {
      place(a.nodes, a.cores, "analysis");
    }
  }

  for (int node = 0; node < platform.node_count; ++node) {
    const double cores = demand[static_cast<std::size_t>(node)];
    if (cores > static_cast<double>(platform.node.cores) + 1e-9) {
      throw SpecError(strprintf(
          "node %d oversubscribed: %.1f cores demanded, %d available", node,
          cores, platform.node.cores));
    }
  }
}

}  // namespace wfe::rt
