// Execution results shared by both executors.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/kernel.hpp"
#include "metrics/trace.hpp"
#include "obs/counters.hpp"
#include "platform/health.hpp"
#include "resilience/fault_spec.hpp"

namespace wfe::rt {

/// Output of one executor run: the stage trace (the universal observable)
/// plus, in native mode, the real collective-variable series every analysis
/// produced.
struct ExecutionResult {
  met::Trace trace;
  std::uint64_t n_steps = 0;

  /// Discrete events the simulation engine dispatched to produce this run
  /// (0 in native mode). Deterministic for equal inputs; the perf benches
  /// report it as events/sec.
  std::uint64_t events_processed = 0;

  struct AnalysisSeries {
    met::ComponentId component;
    std::vector<ana::AnalysisResult> results;
  };
  /// Empty in simulated mode (no real kernels run there).
  std::vector<AnalysisSeries> analysis_outputs;

  /// What fault injection did to this run (all zeros when injection was
  /// disabled or in native mode). `failure_summary.complete()` is false
  /// when at least one member was abandoned — its trace and indicators
  /// then describe a partial execution.
  res::FailureSummary failure_summary;

  /// Node health transitions observed during the replay, in discovery
  /// order (empty when injection was disabled or no node ever left
  /// kHealthy). Degradations are recorded when a stage first prices them;
  /// deaths when a component first trips over them.
  std::vector<plat::HealthEvent> health_events;

  /// Snapshot of the observability counter registry at the end of the run.
  /// Empty unless an obs::Session was active while the executor ran.
  obs::CounterSnapshot counters;

  /// Whole-run sum of every synthesized stage counter, flushed once from
  /// the replay's columnar accumulator (all zeros in native mode). Equals
  /// summing `trace` record counters, without walking the trace.
  plat::HwCounters hw_totals;
};

}  // namespace wfe::rt
