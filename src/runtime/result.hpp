// Execution results shared by both executors.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/kernel.hpp"
#include "metrics/trace.hpp"

namespace wfe::rt {

/// Output of one executor run: the stage trace (the universal observable)
/// plus, in native mode, the real collective-variable series every analysis
/// produced.
struct ExecutionResult {
  met::Trace trace;
  std::uint64_t n_steps = 0;

  struct AnalysisSeries {
    met::ComponentId component;
    std::vector<ana::AnalysisResult> results;
  };
  /// Empty in simulated mode (no real kernels run there).
  std::vector<AnalysisSeries> analysis_outputs;
};

}  // namespace wfe::rt
