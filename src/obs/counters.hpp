// Named run counters: the scalar side of the observability layer.
//
// Every instrumented subsystem accounts what it did into a CounterRegistry
// — engine events dispatched, scheduler memo hits, DTL puts/gets/waits,
// faults injected — under dotted names ("engine.events",
// "sched.memo_hits"). Counters are declared at first touch as either
// monotonic (only ever added to; the registry enforces non-negative deltas)
// or gauge (freely set), and the whole registry snapshots into the run's
// ExecutionResult so tools and tests can read the totals without replaying
// the event log. See docs/OBSERVABILITY.md for the counter catalog.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "support/lock_rank.hpp"

namespace wfe::obs {

enum class CounterKind : std::uint8_t {
  kMonotonic,  ///< accumulates non-negative deltas; never decreases
  kGauge,      ///< tracks a last-written level; may move both ways
};

const char* to_string(CounterKind kind);

/// One counter's final value, as captured by CounterRegistry::snapshot().
struct CounterValue {
  std::string name;
  CounterKind kind = CounterKind::kMonotonic;
  double value = 0.0;

  friend bool operator==(const CounterValue&, const CounterValue&) = default;
};

/// All counters of one run, sorted by name.
using CounterSnapshot = std::vector<CounterValue>;

/// Render a snapshot as a small human-readable table body (name = value
/// lines, monotonic counters marked). Deterministic; used by tools.
std::string snapshot_to_text(const CounterSnapshot& snapshot);

/// Thread-safe registry of named counters. A name's kind is fixed by its
/// first touch: `add` declares monotonic, `set` declares gauge, and mixing
/// the two on one name throws wfe::InvalidArgument — as does a negative or
/// non-finite monotonic delta.
class CounterRegistry {
 public:
  /// Accumulate `delta` (>= 0) into monotonic counter `name`; returns the
  /// post-add total.
  double add(std::string_view name, double delta);

  /// Set gauge `name` to `value`; returns `value`.
  double set(std::string_view name, double value);

  /// Current value, or 0.0 for a counter never touched.
  double value(std::string_view name) const;

  CounterSnapshot snapshot() const;
  std::size_t size() const;
  void clear();

 private:
  using Mutex = support::RankedMutex<support::kRankObsCounters>;

  struct Slot {
    CounterKind kind = CounterKind::kMonotonic;
    double value = 0.0;
  };

  mutable Mutex mutex_;
  std::map<std::string, Slot, std::less<>> counters_;
};

}  // namespace wfe::obs
