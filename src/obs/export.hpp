// RunLog exporters and the JSONL importer.
//
// Two serializations of one RunLog:
//  * Chrome trace_event JSON ("run.json") — the interchange format of
//    chrome://tracing and ui.perfetto.dev. Tracks become named threads of
//    one process (one per component plus engine/scheduler/dtl/resilience
//    tracks), spans become complete ("X") events, instants "i" events, and
//    counter samples "C" events that the viewers plot as area charts.
//    Timestamps are exported in microseconds, as the format requires.
//  * A compact JSONL span log ("run.jsonl") — one self-describing JSON
//    object per line, in emission order, with a trailing counter-snapshot
//    line. This one round-trips: parse_jsonl() rebuilds a RunLog such that
//    re-export is byte-identical, which is what the golden-trace harness
//    and the fuzz tests pin down.
//
// Both emitters format floating-point fields with "%.17g", so output is
// deterministic and full-precision; both escape strings through
// wfe::json::escape.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>

#include "obs/recorder.hpp"

namespace wfe::obs {

/// Serialize to Chrome trace_event JSON (the "JSON Object Format":
/// {"traceEvents": [...], "displayTimeUnit": "ms"}). Track-to-tid
/// assignment follows first appearance in the event log, so equal logs
/// serialize identically.
std::string chrome_trace_json(const RunLog& log);

/// Serialize to the JSONL span log (one event per line; a final "counters"
/// line carries the registry snapshot).
std::string runlog_to_jsonl(const RunLog& log);

/// Parse a JSONL span log back into a RunLog. Throws
/// wfe::SerializationError on malformed input (bad JSON, unknown type
/// tags, missing fields, out-of-order sequence numbers).
RunLog runlog_from_jsonl(std::string_view text);

/// Write `log` to `path`, choosing the format by extension: ".jsonl" gets
/// the span log, anything else the Chrome trace. Throws wfe::Error on I/O
/// failure.
void write_runlog(const std::filesystem::path& path, const RunLog& log);

/// Read a ".jsonl" span log from disk. Throws wfe::Error on I/O failure,
/// wfe::SerializationError on malformation.
RunLog read_runlog_jsonl(const std::filesystem::path& path);

}  // namespace wfe::obs
