// Component-attributed replay profiler (PERF.md §7).
//
// The replay hot path divides into four cost components: engine dispatch
// (the calendar queue popping and invoking callbacks), the stage model
// (write/read/staging time computation), interference pricing (the
// co-location batch kernel behind Cluster::resident_cost), and metrics
// (stage-record pushes and trace materialization). This accumulator times
// the last three with scoped timers and attributes the remainder of the
// replay wall time to engine dispatch, so `bench_replay_profile` can report
// which component a future PR slowed down.
//
// The accumulator itself is always compiled (it is tiny and testable); the
// *call sites* in the simulated executor are compiled only into the
// `wfens_runtime_prof` twin of `wfens_runtime` (see the WFE_REPLAY_PROF
// macro in simulated_executor.cpp), so the production replay path carries
// zero instrumentation — not even a branch. Counters are process-global
// relaxed atomics: replays under ThreadPool fan-out accumulate safely, and
// the bench resets between series.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace wfe::obs {

/// The instrumented sections of the replay hot path. Engine dispatch is not
/// a section: it is attributed as wall time minus the sum of sections.
enum class ReplaySection : std::uint8_t {
  kInterference,  ///< co-location pricing (batch kernel + cache lookups)
  kStageModel,    ///< write/read/transfer time computation
  kMetrics,       ///< stage-record pushes + trace materialization
};
inline constexpr std::size_t kReplaySectionCount = 3;

const char* to_string(ReplaySection section);

/// Accumulated nanoseconds and entry counts per section since last reset.
struct ReplayProfileSnapshot {
  std::uint64_t ns[kReplaySectionCount] = {0, 0, 0};
  std::uint64_t calls[kReplaySectionCount] = {0, 0, 0};

  std::uint64_t total_ns() const {
    return ns[0] + ns[1] + ns[2];
  }
};

namespace replay_profile {

/// Add `ns` nanoseconds (and one call) to a section.
void add(ReplaySection section, std::uint64_t ns);

/// Read the current accumulators.
ReplayProfileSnapshot snapshot();

/// Zero every accumulator (between bench series).
void reset();

}  // namespace replay_profile

/// RAII scope that adds its lifetime to one section's accumulator. Uses the
/// steady clock (monotonic; wall-clock adjustments never go negative).
class ReplaySectionTimer {
 public:
  explicit ReplaySectionTimer(ReplaySection section)
      : section_(section), start_(std::chrono::steady_clock::now()) {}
  ~ReplaySectionTimer() {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    replay_profile::add(section_, static_cast<std::uint64_t>(ns));
  }
  ReplaySectionTimer(const ReplaySectionTimer&) = delete;
  ReplaySectionTimer& operator=(const ReplaySectionTimer&) = delete;

 private:
  ReplaySection section_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace wfe::obs
