// Run-wide structured tracing: the observability substrate of WFEns.
//
// met::Trace captures *what the workload did* (stage intervals, the TAU
// substitute); this layer captures *what the runtime did to make that
// happen* — engine dispatch, scheduler decisions, DTL handshakes,
// fault/recovery actions — as a flat, ordered log of spans, instants and
// counter samples over named tracks, exportable to Chrome trace_event JSON
// (chrome://tracing, Perfetto) and a compact JSONL span log.
//
// Design constraints, in order:
//  * Zero observer effect on results. Emission is passive: it never
//    schedules events, draws random numbers, or otherwise perturbs either
//    executor, so a simulated run traced with the recorder enabled is
//    bit-identical to the same run untraced (the golden-trace harness
//    enforces this).
//  * Near-zero cost when off. Every emission site goes through the free
//    functions below, which reduce to one relaxed atomic load + branch when
//    no recorder is installed, and to nothing at all when the library is
//    built with WFENS_OBS_DISABLED (cmake -DWFENS_OBS=OFF).
//  * Thread-safe when on. Both executors and the scheduler's worker crew
//    emit concurrently; the recorder serializes appends behind one mutex
//    and hands out monotonic sequence ids.
//
// Time base: emissions pass timestamps explicitly. The simulated executor
// and the engine pass *virtual* seconds (deterministic, golden-traceable);
// wall-clock subsystems (native executor, DTL channel waits, scheduler
// batches) pass seconds of the recorder's own monotonic clock via now_s().
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/counters.hpp"
#include "support/lock_rank.hpp"

namespace wfe::obs {

enum class EventKind : std::uint8_t {
  kSpan,     ///< an interval [start, end] on a track
  kInstant,  ///< a point event on a track (start == end)
  kCounter,  ///< a sampled counter value at `start` (track unused)
};

/// One recorded event. Strings are interned: `track` and `name` index the
/// RunLog string table.
struct Event {
  std::uint64_t seq = 0;  ///< monotonic id in emission order
  EventKind kind = EventKind::kSpan;
  std::uint32_t track = 0;
  std::uint32_t name = 0;
  double start = 0.0;
  double end = 0.0;    ///< == start for instants and counter samples
  double value = 0.0;  ///< counter samples only

  double duration() const { return end - start; }
};

/// The immutable product of one recording session: the interned string
/// table, the events in emission order, and the final counter totals.
struct RunLog {
  std::vector<std::string> strings;
  std::vector<Event> events;
  CounterSnapshot counters;

  bool empty() const { return events.empty(); }
  std::size_t size() const { return events.size(); }
  std::string_view str(std::uint32_t id) const;

  /// Sorted unique track names over span and instant events.
  std::vector<std::string> tracks() const;
  /// All span events of one track, in emission order.
  std::vector<Event> spans_on(std::string_view track) const;
  /// All counter samples of one counter name, in emission order.
  std::vector<Event> samples_of(std::string_view name) const;
};

/// Thread-safe event sink. One Recorder == one run log; install it as the
/// process-wide session (Session below) to make the library's emission
/// sites feed it.
class Recorder {
 public:
  Recorder();

  // -- emission (thread-safe) ----------------------------------------------
  void span(std::string_view track, std::string_view name, double start,
            double end);
  void instant(std::string_view track, std::string_view name, double at);
  /// Accumulate `delta` into the monotonic counter `name` and record the
  /// post-add total as a sample at `at`.
  void add_counter(std::string_view name, double at, double delta);
  /// Set the gauge `name` to `value` and record a sample at `at`.
  void set_counter(std::string_view name, double at, double value);

  // -- introspection -------------------------------------------------------
  CounterRegistry& counters() { return registry_; }
  const CounterRegistry& counters() const { return registry_; }
  std::uint64_t events_recorded() const;
  /// Seconds since this recorder was constructed (monotonic wall clock);
  /// the time base for non-virtual-time emissions.
  double now_s() const;

  /// Move the accumulated log out (events in emission order, counter
  /// snapshot attached). The recorder is left empty and reusable, but its
  /// counter registry is cleared too.
  RunLog take();

 private:
  using Mutex = support::RankedMutex<support::kRankObsRecorder>;

  std::uint32_t intern_locked(std::string_view s);

  mutable Mutex mutex_;
  std::vector<std::string> strings_;
  // Lookup-only intern index; emission order lives in strings_/events_.
  // wfens-lint: allow(unordered-iter)
  std::unordered_map<std::string, std::uint32_t> ids_;
  std::vector<Event> events_;
  std::uint64_t next_seq_ = 0;
  CounterRegistry registry_;
  std::chrono::steady_clock::time_point epoch_;
};

// -- session management ------------------------------------------------------

/// The recorder currently installed, or nullptr. Emission helpers below go
/// through this; callers that need richer access (counter snapshots, the
/// clock) may use it directly while a session is active.
Recorder* current();

/// Runtime toggle: when false, emission helpers are inert even with a
/// session installed. Defaults to true.
void set_runtime_enabled(bool on);
bool runtime_enabled();

/// Installs `recorder` as the process-wide session for its lifetime.
/// Sessions do not nest: installing a second one throws
/// wfe::InvalidArgument. Destruction uninstalls.
class Session {
 public:
  explicit Session(Recorder& recorder);
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
};

// -- emission helpers (the only API instrumented code calls) -----------------

#if defined(WFENS_OBS_DISABLED)

inline constexpr bool kCompiledIn = false;
inline bool enabled() { return false; }
inline void span(std::string_view, std::string_view, double, double) {}
inline void instant(std::string_view, std::string_view, double) {}
inline void add_counter(std::string_view, double, double) {}
inline void set_counter(std::string_view, double, double) {}
inline double now_s() { return 0.0; }

#else

inline constexpr bool kCompiledIn = true;

namespace detail {
extern std::atomic<Recorder*> g_current;
extern std::atomic<bool> g_runtime_enabled;
}  // namespace detail

/// True when a session is installed and the runtime toggle is on: one
/// relaxed load on the hot path (instrumented code caches this per run).
inline bool enabled() {
  return detail::g_current.load(std::memory_order_acquire) != nullptr &&
         detail::g_runtime_enabled.load(std::memory_order_relaxed);
}

inline void span(std::string_view track, std::string_view name, double start,
                 double end) {
  if (Recorder* r = detail::g_current.load(std::memory_order_acquire);
      r != nullptr && detail::g_runtime_enabled.load(std::memory_order_relaxed)) {
    r->span(track, name, start, end);
  }
}

inline void instant(std::string_view track, std::string_view name, double at) {
  if (Recorder* r = detail::g_current.load(std::memory_order_acquire);
      r != nullptr && detail::g_runtime_enabled.load(std::memory_order_relaxed)) {
    r->instant(track, name, at);
  }
}

inline void add_counter(std::string_view name, double at, double delta) {
  if (Recorder* r = detail::g_current.load(std::memory_order_acquire);
      r != nullptr && detail::g_runtime_enabled.load(std::memory_order_relaxed)) {
    r->add_counter(name, at, delta);
  }
}

inline void set_counter(std::string_view name, double at, double value) {
  if (Recorder* r = detail::g_current.load(std::memory_order_acquire);
      r != nullptr && detail::g_runtime_enabled.load(std::memory_order_relaxed)) {
    r->set_counter(name, at, value);
  }
}

/// Seconds on the current session's clock (0.0 with no session): the time
/// base for wall-clock emissions, so all tracks of one session align.
inline double now_s() {
  const Recorder* r = detail::g_current.load(std::memory_order_acquire);
  return r != nullptr ? r->now_s() : 0.0;
}

#endif  // WFENS_OBS_DISABLED

}  // namespace wfe::obs
