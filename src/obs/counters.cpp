#include "obs/counters.hpp"

#include <cmath>

#include "support/error.hpp"
#include "support/str.hpp"

namespace wfe::obs {

const char* to_string(CounterKind kind) {
  switch (kind) {
    case CounterKind::kMonotonic:
      return "monotonic";
    case CounterKind::kGauge:
      return "gauge";
  }
  return "?";
}

std::string snapshot_to_text(const CounterSnapshot& snapshot) {
  std::string out;
  for (const CounterValue& c : snapshot) {
    out += strprintf("%s = %.17g (%s)\n", c.name.c_str(), c.value,
                     to_string(c.kind));
  }
  return out;
}

double CounterRegistry::add(std::string_view name, double delta) {
  WFE_REQUIRE(std::isfinite(delta) && delta >= 0.0,
              "monotonic counter deltas must be finite and non-negative");
  const support::RankGuard<Mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), Slot{}).first;
  } else {
    WFE_REQUIRE(it->second.kind == CounterKind::kMonotonic,
                "counter '" + std::string(name) +
                    "' is a gauge; use set(), not add()");
  }
  it->second.value += delta;
  return it->second.value;
}

double CounterRegistry::set(std::string_view name, double value) {
  WFE_REQUIRE(std::isfinite(value), "gauge values must be finite");
  const support::RankGuard<Mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), Slot{CounterKind::kGauge, 0.0})
             .first;
  } else {
    WFE_REQUIRE(it->second.kind == CounterKind::kGauge,
                "counter '" + std::string(name) +
                    "' is monotonic; use add(), not set()");
  }
  it->second.value = value;
  return value;
}

double CounterRegistry::value(std::string_view name) const {
  const support::RankGuard<Mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0.0 : it->second.value;
}

CounterSnapshot CounterRegistry::snapshot() const {
  const support::RankGuard<Mutex> lock(mutex_);
  CounterSnapshot out;
  out.reserve(counters_.size());
  for (const auto& [name, slot] : counters_) {
    out.push_back({name, slot.kind, slot.value});
  }
  return out;
}

std::size_t CounterRegistry::size() const {
  const support::RankGuard<Mutex> lock(mutex_);
  return counters_.size();
}

void CounterRegistry::clear() {
  const support::RankGuard<Mutex> lock(mutex_);
  counters_.clear();
}

}  // namespace wfe::obs
