#include "obs/recorder.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "support/error.hpp"

namespace wfe::obs {

#if !defined(WFENS_OBS_DISABLED)
namespace detail {
std::atomic<Recorder*> g_current{nullptr};
std::atomic<bool> g_runtime_enabled{true};
}  // namespace detail
#else
namespace detail {
// Compiled-out builds still support sessions (tools construct them
// unconditionally); only the emission sites vanish.
static std::atomic<Recorder*> g_current{nullptr};
static std::atomic<bool> g_runtime_enabled{true};
}  // namespace detail
#endif

std::string_view RunLog::str(std::uint32_t id) const {
  WFE_REQUIRE(id < strings.size(), "string id out of range");
  return strings[id];
}

std::vector<std::string> RunLog::tracks() const {
  std::set<std::string_view> seen;
  for (const Event& e : events) {
    if (e.kind != EventKind::kCounter) seen.insert(str(e.track));
  }
  return {seen.begin(), seen.end()};
}

std::vector<Event> RunLog::spans_on(std::string_view track) const {
  std::vector<Event> out;
  for (const Event& e : events) {
    if (e.kind == EventKind::kSpan && str(e.track) == track) out.push_back(e);
  }
  return out;
}

std::vector<Event> RunLog::samples_of(std::string_view name) const {
  std::vector<Event> out;
  for (const Event& e : events) {
    if (e.kind == EventKind::kCounter && str(e.name) == name) {
      out.push_back(e);
    }
  }
  return out;
}

Recorder::Recorder() : epoch_(std::chrono::steady_clock::now()) {}

std::uint32_t Recorder::intern_locked(std::string_view s) {
  const auto it = ids_.find(std::string(s));
  if (it != ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(strings_.size());
  strings_.emplace_back(s);
  ids_.emplace(strings_.back(), id);
  return id;
}

void Recorder::span(std::string_view track, std::string_view name,
                    double start, double end) {
  WFE_REQUIRE(std::isfinite(start) && std::isfinite(end) && end >= start,
              "span bounds must be finite with end >= start");
  const support::RankGuard<Mutex> lock(mutex_);
  events_.push_back(Event{next_seq_++, EventKind::kSpan,
                          intern_locked(track), intern_locked(name), start,
                          end, 0.0});
}

void Recorder::instant(std::string_view track, std::string_view name,
                       double at) {
  WFE_REQUIRE(std::isfinite(at), "instant timestamp must be finite");
  const support::RankGuard<Mutex> lock(mutex_);
  events_.push_back(Event{next_seq_++, EventKind::kInstant,
                          intern_locked(track), intern_locked(name), at, at,
                          0.0});
}

void Recorder::add_counter(std::string_view name, double at, double delta) {
  WFE_REQUIRE(std::isfinite(at), "counter timestamp must be finite");
  const double total = registry_.add(name, delta);
  const support::RankGuard<Mutex> lock(mutex_);
  events_.push_back(Event{next_seq_++, EventKind::kCounter, 0,
                          intern_locked(name), at, at, total});
}

void Recorder::set_counter(std::string_view name, double at, double value) {
  WFE_REQUIRE(std::isfinite(at), "counter timestamp must be finite");
  const double level = registry_.set(name, value);
  const support::RankGuard<Mutex> lock(mutex_);
  events_.push_back(Event{next_seq_++, EventKind::kCounter, 0,
                          intern_locked(name), at, at, level});
}

std::uint64_t Recorder::events_recorded() const {
  const support::RankGuard<Mutex> lock(mutex_);
  return static_cast<std::uint64_t>(events_.size());
}

double Recorder::now_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

RunLog Recorder::take() {
  RunLog log;
  {
    const support::RankGuard<Mutex> lock(mutex_);
    log.strings = std::move(strings_);
    log.events = std::move(events_);
    strings_.clear();
    events_.clear();
    ids_.clear();
    next_seq_ = 0;
  }
  log.counters = registry_.snapshot();
  registry_.clear();
  return log;
}

Recorder* current() {
  return detail::g_current.load(std::memory_order_acquire);
}

void set_runtime_enabled(bool on) {
  detail::g_runtime_enabled.store(on, std::memory_order_relaxed);
}

bool runtime_enabled() {
  return detail::g_runtime_enabled.load(std::memory_order_relaxed);
}

Session::Session(Recorder& recorder) {
  Recorder* expected = nullptr;
  WFE_REQUIRE(detail::g_current.compare_exchange_strong(
                  expected, &recorder, std::memory_order_acq_rel),
              "an observability session is already installed");
}

Session::~Session() {
  detail::g_current.store(nullptr, std::memory_order_release);
}

}  // namespace wfe::obs
