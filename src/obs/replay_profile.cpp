#include "obs/replay_profile.hpp"

namespace wfe::obs {

namespace {

struct Accumulators {
  std::atomic<std::uint64_t> ns[kReplaySectionCount] = {};
  std::atomic<std::uint64_t> calls[kReplaySectionCount] = {};
};

Accumulators& accs() {
  static Accumulators a;
  return a;
}

}  // namespace

const char* to_string(ReplaySection section) {
  switch (section) {
    case ReplaySection::kInterference:
      return "interference";
    case ReplaySection::kStageModel:
      return "stage_model";
    case ReplaySection::kMetrics:
      return "metrics";
  }
  return "?";
}

namespace replay_profile {

void add(ReplaySection section, std::uint64_t ns) {
  const auto i = static_cast<std::size_t>(section);
  accs().ns[i].fetch_add(ns, std::memory_order_relaxed);
  accs().calls[i].fetch_add(1, std::memory_order_relaxed);
}

ReplayProfileSnapshot snapshot() {
  ReplayProfileSnapshot out;
  for (std::size_t i = 0; i < kReplaySectionCount; ++i) {
    out.ns[i] = accs().ns[i].load(std::memory_order_relaxed);
    out.calls[i] = accs().calls[i].load(std::memory_order_relaxed);
  }
  return out;
}

void reset() {
  for (std::size_t i = 0; i < kReplaySectionCount; ++i) {
    accs().ns[i].store(0, std::memory_order_relaxed);
    accs().calls[i].store(0, std::memory_order_relaxed);
  }
}

}  // namespace replay_profile

}  // namespace wfe::obs
