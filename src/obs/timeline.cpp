#include "obs/timeline.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "support/error.hpp"
#include "support/str.hpp"

namespace wfe::obs {

double Timeline::t_min() const {
  double lo = 0.0;
  bool any = false;
  for (const TimelineTrack& t : tracks) {
    for (const TimelineSpan& s : t.spans) {
      lo = any ? std::min(lo, s.start) : s.start;
      any = true;
    }
  }
  return lo;
}

double Timeline::t_max() const {
  double hi = 0.0;
  for (const TimelineTrack& t : tracks) {
    for (const TimelineSpan& s : t.spans) hi = std::max(hi, s.end);
  }
  return hi;
}

void Timeline::add(std::string_view track, std::string_view label,
                   double start, double end) {
  WFE_REQUIRE(std::isfinite(start) && std::isfinite(end) && end >= start,
              "timeline span bounds must be finite with end >= start");
  for (TimelineTrack& t : tracks) {
    if (t.name == track) {
      t.spans.push_back({std::string(label), start, end});
      return;
    }
  }
  tracks.push_back({std::string(track), {{std::string(label), start, end}}});
}

Timeline timeline_from_runlog(const RunLog& log) {
  Timeline tl;
  for (const Event& e : log.events) {
    if (e.kind != EventKind::kSpan) continue;
    tl.add(log.str(e.track), log.str(e.name), e.start, e.end);
  }
  return tl;
}

namespace {

/// Cell glyph for a span label: first character, lowercased for idle
/// stages ("IS"/"IA" show as 'i' so they read as gaps next to S/W/R/A).
char glyph_for(const std::string& label) {
  if (label.empty()) return '?';
  if (label == "IS" || label == "IA") return 'i';
  return label[0];
}

}  // namespace

std::string render_gantt(const Timeline& timeline, int width) {
  WFE_REQUIRE(width >= 8, "gantt width must be at least 8 columns");
  const double lo = timeline.t_min();
  const double hi = timeline.t_max();
  if (timeline.tracks.empty() || hi <= lo) {
    return "(empty timeline)\n";
  }

  std::size_t gutter = 0;
  for (const TimelineTrack& t : timeline.tracks) {
    gutter = std::max(gutter, t.name.size());
  }
  gutter = std::min<std::size_t>(gutter, 28) + 2;

  const double scale = static_cast<double>(width) / (hi - lo);
  const auto col = [&](double t) {
    const int c = static_cast<int>((t - lo) * scale);
    return std::clamp(c, 0, width - 1);
  };

  std::string out;
  // Time axis: tick marks every width/4 columns.
  out += std::string(gutter, ' ');
  std::string axis(static_cast<std::size_t>(width), '-');
  out += "t = " + human_seconds(lo) + " .. " + human_seconds(hi) + "\n";
  out += std::string(gutter, ' ') + "|" + axis + "|\n";

  std::map<char, std::set<std::string>> legend;
  for (const TimelineTrack& t : timeline.tracks) {
    std::string row(static_cast<std::size_t>(width), ' ');
    for (const TimelineSpan& s : t.spans) {
      const char g = glyph_for(s.label);
      legend[g].insert(s.label);
      // Zero-length spans still mark their start cell.
      const int c0 = col(s.start);
      const int c1 = std::max(c0, col(s.end));
      for (int c = c0; c <= c1; ++c) {
        auto& cell = row[static_cast<std::size_t>(c)];
        if (cell == ' ' || cell == g) {
          cell = g;
        } else {
          cell = '#';
        }
      }
    }
    std::string name = t.name;
    if (name.size() > gutter - 2) name.resize(gutter - 2);
    out += name + std::string(gutter - name.size(), ' ') + "|" + row + "|\n";
  }

  out += "legend:";
  for (const auto& [g, labels] : legend) {
    out += strprintf(" %c=%s", g,
                     join({labels.begin(), labels.end()}, "/").c_str());
  }
  out += " #=overlap\n";
  return out;
}

}  // namespace wfe::obs
