// ASCII Gantt rendering of execution timelines.
//
// A Timeline is the lowest common denominator of the two trace sources —
// the obs RunLog (span events) and the met::Trace stage records (adapted by
// wfens_report) — so one renderer serves `wfens_report --timeline`
// regardless of where the data came from. Each track renders as one row;
// span cells show the first character of the span's label (S, W, R, A, i
// for idle, ...), and cells where differently-labeled spans collide show
// '#'. Rendering is deterministic: same timeline, same string.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/recorder.hpp"

namespace wfe::obs {

struct TimelineSpan {
  std::string label;
  double start = 0.0;
  double end = 0.0;
};

struct TimelineTrack {
  std::string name;
  std::vector<TimelineSpan> spans;
};

struct Timeline {
  std::vector<TimelineTrack> tracks;

  /// Earliest span start / latest span end over all tracks (0/0 if empty).
  double t_min() const;
  double t_max() const;

  /// Add a span, creating the track on first use (tracks keep insertion
  /// order — callers control grouping, e.g. per member).
  void add(std::string_view track, std::string_view label, double start,
           double end);
};

/// Build a timeline from a RunLog's span events, tracks in first-appearance
/// order.
Timeline timeline_from_runlog(const RunLog& log);

/// Render as an ASCII Gantt chart `width` columns wide (the plot area;
/// track-name gutters come on top of that). Includes a time-axis header in
/// seconds and a legend of the labels encountered. Throws
/// wfe::InvalidArgument for width < 8.
std::string render_gantt(const Timeline& timeline, int width = 72);

}  // namespace wfe::obs
