#include "obs/export.hpp"

#include <algorithm>
#include <cinttypes>
#include <fstream>
#include <map>
#include <sstream>
#include <unordered_map>

#include "support/error.hpp"
#include "support/json.hpp"
#include "support/str.hpp"

namespace wfe::obs {

namespace {

constexpr double kMicrosPerSecond = 1e6;

/// Deterministic track -> tid map, tids assigned in order of first
/// appearance. An ordered map: exporters iterate it, and hash-order
/// iteration would leak into golden traces (wfens_lint: unordered-iter).
std::map<std::uint32_t, int> assign_tids(const RunLog& log) {
  std::map<std::uint32_t, int> tids;
  for (const Event& e : log.events) {
    if (e.kind == EventKind::kCounter) continue;
    tids.emplace(e.track, static_cast<int>(tids.size()) + 1);
  }
  return tids;
}

std::string jsonl_counter_trailer(const RunLog& log) {
  std::string line = "{\"type\":\"counters\",\"values\":[";
  bool first = true;
  for (const CounterValue& c : log.counters) {
    if (!first) line += ",";
    first = false;
    line += strprintf("{\"name\":\"%s\",\"kind\":\"%s\",\"value\":%.17g}",
                      json::escape(c.name).c_str(), to_string(c.kind),
                      c.value);
  }
  line += "]}\n";
  return line;
}

CounterKind kind_from_name(const std::string& s) {
  if (s == "monotonic") return CounterKind::kMonotonic;
  if (s == "gauge") return CounterKind::kGauge;
  throw SerializationError("obs jsonl: unknown counter kind '" + s + "'");
}

}  // namespace

std::string chrome_trace_json(const RunLog& log) {
  const auto tids = assign_tids(log);
  // Tracks in tid order for the metadata block.
  std::vector<std::pair<int, std::uint32_t>> by_tid;
  by_tid.reserve(tids.size());
  for (const auto& [track, tid] : tids) by_tid.emplace_back(tid, track);
  std::sort(by_tid.begin(), by_tid.end());

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](std::string event) {
    if (!first) out += ",";
    first = false;
    out += "\n";
    out += event;
  };

  emit(
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"wfens\"}}");
  for (const auto& [tid, track] : by_tid) {
    emit(strprintf(
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
        "\"args\":{\"name\":\"%s\"}}",
        tid, json::escape(log.str(track)).c_str()));
    emit(strprintf(
        "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
        "\"args\":{\"sort_index\":%d}}",
        tid, tid));
  }

  for (const Event& e : log.events) {
    switch (e.kind) {
      case EventKind::kSpan:
        emit(strprintf(
            "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,"
            "\"ts\":%.17g,\"dur\":%.17g}",
            json::escape(log.str(e.name)).c_str(), tids.at(e.track),
            e.start * kMicrosPerSecond, e.duration() * kMicrosPerSecond));
        break;
      case EventKind::kInstant:
        emit(strprintf(
            "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,"
            "\"tid\":%d,\"ts\":%.17g}",
            json::escape(log.str(e.name)).c_str(), tids.at(e.track),
            e.start * kMicrosPerSecond));
        break;
      case EventKind::kCounter:
        emit(strprintf(
            "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":1,\"ts\":%.17g,"
            "\"args\":{\"value\":%.17g}}",
            json::escape(log.str(e.name)).c_str(),
            e.start * kMicrosPerSecond, e.value));
        break;
    }
  }
  out += "\n]}\n";
  return out;
}

std::string runlog_to_jsonl(const RunLog& log) {
  std::string out = strprintf(
      "{\"jsonl\":\"wfens-obs\",\"version\":1,\"events\":%zu}\n",
      log.events.size());
  for (const Event& e : log.events) {
    switch (e.kind) {
      case EventKind::kSpan:
        out += strprintf(
            "{\"type\":\"span\",\"seq\":%" PRIu64
            ",\"track\":\"%s\",\"name\":\"%s\",\"start\":%.17g,"
            "\"end\":%.17g}\n",
            e.seq, json::escape(log.str(e.track)).c_str(),
            json::escape(log.str(e.name)).c_str(), e.start, e.end);
        break;
      case EventKind::kInstant:
        out += strprintf(
            "{\"type\":\"instant\",\"seq\":%" PRIu64
            ",\"track\":\"%s\",\"name\":\"%s\",\"at\":%.17g}\n",
            e.seq, json::escape(log.str(e.track)).c_str(),
            json::escape(log.str(e.name)).c_str(), e.start);
        break;
      case EventKind::kCounter:
        out += strprintf(
            "{\"type\":\"counter\",\"seq\":%" PRIu64
            ",\"name\":\"%s\",\"at\":%.17g,\"value\":%.17g}\n",
            e.seq, json::escape(log.str(e.name)).c_str(), e.start, e.value);
        break;
    }
  }
  out += jsonl_counter_trailer(log);
  return out;
}

RunLog runlog_from_jsonl(std::string_view text) {
  RunLog log;
  // Lookup-only intern index (importer side, never iterated).
  // wfens-lint: allow(unordered-iter)
  std::unordered_map<std::string, std::uint32_t> ids;
  const auto intern = [&](const std::string& s) {
    const auto it = ids.find(s);
    if (it != ids.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(log.strings.size());
    log.strings.push_back(s);
    ids.emplace(s, id);
    return id;
  };

  std::istringstream in{std::string(text)};
  std::string line;
  bool saw_header = false;
  bool saw_trailer = false;
  std::uint64_t expect_seq = 0;
  std::size_t declared_events = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (saw_trailer) {
      throw SerializationError("obs jsonl: content after counters trailer");
    }
    const json::Value v = json::parse(line);
    if (!saw_header) {
      if (v.find("jsonl") == nullptr ||
          v.at("jsonl").as_string() != "wfens-obs") {
        throw SerializationError("obs jsonl: missing wfens-obs header line");
      }
      if (v.at("version").as_number() != 1.0) {
        throw SerializationError("obs jsonl: unsupported version");
      }
      declared_events = static_cast<std::size_t>(v.at("events").as_number());
      saw_header = true;
      continue;
    }
    const std::string& type = v.at("type").as_string();
    if (type == "counters") {
      for (const json::Value& c : v.at("values").as_array()) {
        log.counters.push_back({c.at("name").as_string(),
                                kind_from_name(c.at("kind").as_string()),
                                c.at("value").as_number()});
      }
      saw_trailer = true;
      continue;
    }
    Event e;
    e.seq = static_cast<std::uint64_t>(v.at("seq").as_number());
    if (e.seq != expect_seq) {
      throw SerializationError("obs jsonl: out-of-order sequence number");
    }
    ++expect_seq;
    if (type == "span") {
      e.kind = EventKind::kSpan;
      e.track = intern(v.at("track").as_string());
      e.name = intern(v.at("name").as_string());
      e.start = v.at("start").as_number();
      e.end = v.at("end").as_number();
      if (e.end < e.start) {
        throw SerializationError("obs jsonl: span ends before it starts");
      }
    } else if (type == "instant") {
      e.kind = EventKind::kInstant;
      e.track = intern(v.at("track").as_string());
      e.name = intern(v.at("name").as_string());
      e.start = e.end = v.at("at").as_number();
    } else if (type == "counter") {
      e.kind = EventKind::kCounter;
      e.name = intern(v.at("name").as_string());
      e.start = e.end = v.at("at").as_number();
      e.value = v.at("value").as_number();
    } else {
      throw SerializationError("obs jsonl: unknown event type '" + type +
                               "'");
    }
    log.events.push_back(e);
  }
  if (!saw_header) {
    throw SerializationError("obs jsonl: empty document");
  }
  if (!saw_trailer) {
    throw SerializationError("obs jsonl: missing counters trailer");
  }
  if (log.events.size() != declared_events) {
    throw SerializationError("obs jsonl: event count mismatch with header");
  }
  return log;
}

void write_runlog(const std::filesystem::path& path, const RunLog& log) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw Error("cannot open " + path.string() + " for writing");
  out << (path.extension() == ".jsonl" ? runlog_to_jsonl(log)
                                       : chrome_trace_json(log));
  if (!out) throw Error("short write to " + path.string());
}

RunLog read_runlog_jsonl(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open " + path.string());
  std::stringstream buffer;
  buffer << in.rdbuf();
  return runlog_from_jsonl(buffer.str());
}

}  // namespace wfe::obs
