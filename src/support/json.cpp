#include "support/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "support/error.hpp"
#include "support/str.hpp"

namespace wfe::json {

namespace {

[[noreturn]] void fail(std::size_t at, const std::string& what) {
  throw SerializationError("JSON: " + what + " at offset " +
                           std::to_string(at));
}

/// Recursive-descent parser over a string_view with an explicit cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    skip_ws();
    Value v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail(pos_, "trailing characters after document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(pos_, std::string("expected '") + c + "', got '" + peek() + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value(int depth) {
    if (depth > kMaxDepth) fail(pos_, "nesting too deep");
    switch (peek()) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return Value(parse_string());
      case 't':
        if (!consume_literal("true")) fail(pos_, "bad literal");
        return Value(true);
      case 'f':
        if (!consume_literal("false")) fail(pos_, "bad literal");
        return Value(false);
      case 'n':
        if (!consume_literal("null")) fail(pos_, "bad literal");
        return Value();
      default:
        return parse_number();
    }
  }

  Value parse_object(int depth) {
    expect('{');
    Object members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(members));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      if (!members.emplace(std::move(key), parse_value(depth + 1)).second) {
        fail(pos_, "duplicate object key");
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Value(std::move(members));
    }
  }

  Value parse_array(int depth) {
    expect('[');
    Array items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(items));
    }
    for (;;) {
      skip_ws();
      items.push_back(parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Value(std::move(items));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail(pos_, "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail(pos_ - 1, "unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail(pos_, "dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          out += parse_unicode_escape();
          break;
        }
        default:
          fail(pos_ - 1, "unknown escape");
      }
    }
  }

  /// \uXXXX escapes, encoded back to UTF-8. Surrogate pairs are accepted;
  /// a lone surrogate throws.
  std::string parse_unicode_escape() {
    const unsigned first = parse_hex4();
    unsigned cp = first;
    if (first >= 0xD800 && first <= 0xDBFF) {
      if (!consume_literal("\\u")) fail(pos_, "lone high surrogate");
      const unsigned low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail(pos_, "bad low surrogate");
      cp = 0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00);
    } else if (first >= 0xDC00 && first <= 0xDFFF) {
      fail(pos_, "lone low surrogate");
    }
    std::string out;
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
    return out;
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) fail(pos_, "truncated \\u escape");
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail(pos_ - 1, "bad hex digit in \\u escape");
      }
    }
    return value;
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(
                                    text_[pos_]))) {
      fail(start, "invalid value");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail(pos_, "digits required after decimal point");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail(pos_, "digits required in exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail(start, "invalid number");
    return Value(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value::Value(Array a)
    : type_(Type::kArray),
      array_(std::make_shared<const Array>(std::move(a))) {}

Value::Value(Object o)
    : type_(Type::kObject),
      object_(std::make_shared<const Object>(std::move(o))) {}

bool Value::as_bool() const {
  if (!is_bool()) throw SerializationError("JSON: value is not a boolean");
  return bool_;
}

double Value::as_number() const {
  if (!is_number()) throw SerializationError("JSON: value is not a number");
  return number_;
}

const std::string& Value::as_string() const {
  if (!is_string()) throw SerializationError("JSON: value is not a string");
  return string_;
}

const Array& Value::as_array() const {
  if (!is_array()) throw SerializationError("JSON: value is not an array");
  return *array_;
}

const Object& Value::as_object() const {
  if (!is_object()) throw SerializationError("JSON: value is not an object");
  return *object_;
}

const Value& Value::at(const std::string& key) const {
  const Value* v = find(key);
  if (v == nullptr) {
    throw SerializationError("JSON: missing object key '" + key + "'");
  }
  return *v;
}

const Value* Value::find(const std::string& key) const {
  if (!is_object()) throw SerializationError("JSON: value is not an object");
  const auto it = object_->find(key);
  return it == object_->end() ? nullptr : &it->second;
}

Value parse(std::string_view text) { return Parser(text).parse_document(); }

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strprintf("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace wfe::json
