// Lock ranking: a debug-build deadlock checker for WFEns' concurrent core.
//
// Every long-lived mutex in the runtime is wrapped in a RankedMutex<Rank>.
// A thread may only acquire a mutex whose rank is STRICTLY GREATER than the
// highest rank it already holds; acquiring downward (or re-acquiring the
// same rank) is, somewhere in some schedule, a potential deadlock — so the
// checker reports it deterministically on the very first occurrence, in any
// schedule, long before the timing-dependent hang would reproduce. On a
// violation the process prints both acquisition sites (the held lock's and
// the offending one's) to stderr and aborts, which makes the failure
// death-testable and unmissable in CI.
//
// The rank table (keep in sync with docs/ANALYSIS.md):
//
//   rank 10  kRankDtlChannel    dtl::CouplingChannel::mutex_ — held while
//                               emitting obs spans/counters, so it must be
//                               acquired before any obs rank.
//   rank 15  kRankDtlStaging    dtl::MemoryStaging / dtl::FileStaging store
//                               mutexes (leaf: no lock taken while held).
//   rank 20  kRankExecPool      exec::ThreadPool scheduling state (leaf;
//                               batch fns run with the pool unlocked).
//   rank 22  kRankEvalCache     sched::EvalCache shared evaluation store
//                               (leaf: lookups/inserts happen on scoring
//                               threads with no other lock held).
//   rank 25  kRankMetricsTrace  met::TraceRecorder append lock (leaf).
//   rank 30  kRankObsRecorder   obs::Recorder event log. Never held while
//                               touching the counter registry (emission
//                               accumulates into the registry first).
//   rank 40  kRankObsCounters   obs::CounterRegistry slots (leaf).
//   rank 50  kRankRunLatch      runtime failure latch (NativeExecutor).
//   rank 55  kRankRunOutputs    runtime per-analysis output slots (leaf).
//
// Build modes:
//   * WFENS_LOCK_RANK defined (Debug / RelWithDebInfo / sanitizer trees by
//     default, see the top-level CMakeLists): full checking. RankedMutex
//     wraps std::mutex plus a thread-local stack of (rank, source site);
//     RankGuard / RankLock capture their construction site so violation
//     reports show real code locations, and RankedCv is a
//     std::condition_variable_any that keeps the bookkeeping consistent
//     across waits (each wait pops the rank on unlock, re-pushes on wake).
//   * Otherwise (Release): RankedMutex<R> is an alias for std::mutex,
//     RankGuard/RankLock are std::lock_guard/std::unique_lock and RankedCv
//     is std::condition_variable — byte-for-byte the pre-checker types, so
//     the checker costs nothing where it is compiled out.
//
// A TU can force the pass-through flavour with WFENS_LOCK_RANK_FORCE_OFF
// (the release-mode unit test does); such a TU must not exchange ranked
// types with checked TUs.
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(WFENS_LOCK_RANK) && !defined(WFENS_LOCK_RANK_FORCE_OFF)
#define WFENS_LOCK_RANK_ACTIVE 1
#include <cstddef>
#include <source_location>
#include <vector>
#endif

namespace wfe::support {

// The rank table. Gaps are deliberate: new mutexes slot in without
// renumbering the world. See the header comment for what each guards.
inline constexpr int kRankDtlChannel = 10;
inline constexpr int kRankDtlStaging = 15;
// The RePlanner's mutex sits below the evaluation machinery: a re-plan
// holds it across scoring, which acquires kRankExecPool / kRankEvalCache.
inline constexpr int kRankRePlanner = 18;
inline constexpr int kRankExecPool = 20;
inline constexpr int kRankEvalCache = 22;
inline constexpr int kRankMetricsTrace = 25;
inline constexpr int kRankObsRecorder = 30;
inline constexpr int kRankObsCounters = 40;
inline constexpr int kRankRunLatch = 50;
inline constexpr int kRankRunOutputs = 55;

#if defined(WFENS_LOCK_RANK_ACTIVE)

inline constexpr bool kLockRankChecked = true;

namespace lock_rank_detail {

/// One acquisition a thread currently holds.
struct Held {
  int rank = 0;
  std::source_location site;
};

/// The calling thread's held-lock stack, innermost acquisition last.
std::vector<Held>& held_stack();

/// Report a rank-order violation (acquiring `rank` at `site` while `top`
/// is held) to stderr and abort. Never returns.
[[noreturn]] void fail(int rank, const std::source_location& site,
                       const Held& top);

/// Record an acquisition; aborts via fail() unless `rank` is strictly
/// above everything the thread already holds.
void push(int rank, const std::source_location& site);

/// Record a release. Out-of-stack-order unlocks are legal (std::unique_lock
/// allows them), so this removes the innermost entry of `rank`.
void pop(int rank) noexcept;

}  // namespace lock_rank_detail

/// std::mutex plus rank bookkeeping. Satisfies Lockable, so the std guards
/// work with it — but prefer RankGuard/RankLock, whose default
/// source_location argument captures the user's call site instead of the
/// guts of <mutex>.
template <int Rank>
class RankedMutex {
 public:
  static constexpr int rank = Rank;

  RankedMutex() = default;
  RankedMutex(const RankedMutex&) = delete;
  RankedMutex& operator=(const RankedMutex&) = delete;

  void lock(std::source_location site = std::source_location::current()) {
    lock_rank_detail::push(Rank, site);
    mutex_.lock();
  }

  bool try_lock(std::source_location site = std::source_location::current()) {
    // Rank-checked like lock(): a try_lock that *would* have blocked on a
    // lower rank is the same latent inversion, just racier.
    if (!mutex_.try_lock()) return false;
    lock_rank_detail::push(Rank, site);
    return true;
  }

  void unlock() {
    mutex_.unlock();
    lock_rank_detail::pop(Rank);
  }

 private:
  std::mutex mutex_;
};

/// Scoped lock (std::lock_guard shape) capturing the construction site.
template <class Mutex>
class [[nodiscard]] RankGuard {
 public:
  explicit RankGuard(
      Mutex& mutex,
      std::source_location site = std::source_location::current())
      : mutex_(mutex) {
    mutex_.lock(site);
  }
  ~RankGuard() { mutex_.unlock(); }

  RankGuard(const RankGuard&) = delete;
  RankGuard& operator=(const RankGuard&) = delete;

 private:
  Mutex& mutex_;
};

/// Movable owning lock (std::unique_lock shape) capturing the construction
/// site; the site is re-used when a condition-variable wait re-locks, so a
/// violation inside a wait still points at the waiting frame.
template <class Mutex>
class [[nodiscard]] RankLock {
 public:
  explicit RankLock(
      Mutex& mutex,
      std::source_location site = std::source_location::current())
      : mutex_(&mutex), site_(site) {
    mutex_->lock(site_);
    owns_ = true;
  }
  ~RankLock() {
    if (owns_) mutex_->unlock();
  }

  RankLock(RankLock&& other) noexcept
      : mutex_(other.mutex_), owns_(other.owns_), site_(other.site_) {
    other.mutex_ = nullptr;
    other.owns_ = false;
  }
  RankLock& operator=(RankLock&& other) noexcept {
    if (this != &other) {
      if (owns_) mutex_->unlock();
      mutex_ = other.mutex_;
      owns_ = other.owns_;
      site_ = other.site_;
      other.mutex_ = nullptr;
      other.owns_ = false;
    }
    return *this;
  }
  RankLock(const RankLock&) = delete;
  RankLock& operator=(const RankLock&) = delete;

  void lock() {
    mutex_->lock(site_);
    owns_ = true;
  }
  void unlock() {
    mutex_->unlock();
    owns_ = false;
  }
  bool owns_lock() const noexcept { return owns_; }

 private:
  Mutex* mutex_ = nullptr;
  bool owns_ = false;
  std::source_location site_;
};

/// Works with RankLock (any Lockable); waits unlock/relock through the
/// ranked wrapper so the held-rank stack stays truthful across blocking.
using RankedCv = std::condition_variable_any;

#else  // !WFENS_LOCK_RANK_ACTIVE

inline constexpr bool kLockRankChecked = false;

// Pass-through flavour: the ranked names ARE the plain std types, so
// Release builds pay nothing — no wrapper, no branch, no extra member.
template <int Rank>
using RankedMutex = std::mutex;

template <class Mutex>
using RankGuard = std::lock_guard<Mutex>;

template <class Mutex>
using RankLock = std::unique_lock<Mutex>;

using RankedCv = std::condition_variable;

#endif  // WFENS_LOCK_RANK_ACTIVE

}  // namespace wfe::support
