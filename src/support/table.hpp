// Plain-text table rendering for the benchmark harness, so each bench binary
// prints the same rows/series the paper's tables and figures report.
#pragma once

#include <string>
#include <vector>

namespace wfe {

/// Column-aligned ASCII table. Usage:
///   Table t({"config", "makespan [s]", "E"});
///   t.add_row({"C1.5", fixed(ms, 2), fixed(e, 3)});
///   std::cout << t.render();
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; it must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Append a horizontal separator line at this position.
  void add_separator();

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return headers_.size(); }

  /// Render with a header rule and column padding.
  std::string render() const;

  /// Render as comma-separated values (header row first).
  std::string render_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

}  // namespace wfe
