// Descriptive statistics used by the metrics layer and the ensemble-level
// objective function (Eq. 9 of the paper uses the population standard
// deviation, i.e. the 1/N form).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace wfe {

/// Summary of a sample of real values.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< population standard deviation (1/N)
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

/// Arithmetic mean; returns 0 for an empty span.
double mean(std::span<const double> xs);

/// Population standard deviation (divides by N, matching Eq. 9); 0 if empty.
double stddev_population(std::span<const double> xs);

/// Sample standard deviation (divides by N-1); 0 if fewer than two values.
double stddev_sample(std::span<const double> xs);

/// Median (average of the two middle elements for even sizes); 0 if empty.
double median(std::span<const double> xs);

/// Linear-interpolated quantile, q in [0, 1]; 0 if empty.
double quantile(std::span<const double> xs, double q);

/// Full summary in one pass over a copy of the data.
Summary summarize(std::span<const double> xs);

/// Streaming mean/variance accumulator (Welford's algorithm), used by the
/// steady-state estimator so traces need not be retained in full.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Population variance (1/N).
  double variance_population() const;
  double stddev_population() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return n_ > 0 ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace wfe
