// Error handling primitives shared by all WFEns modules.
//
// Following the C++ Core Guidelines (E.2, E.3) we throw exceptions for
// violated preconditions on public APIs and reserve assertions for internal
// invariants. All library exceptions derive from wfe::Error so callers can
// catch the whole family at one level.
#pragma once

#include <stdexcept>
#include <string>

namespace wfe {

/// Base class of every exception thrown by WFEns.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition of a public API.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A specification (ensemble, placement, platform) failed validation.
class SpecError : public Error {
 public:
  explicit SpecError(const std::string& what) : Error(what) {}
};

/// The in situ coupling protocol was violated (e.g. overwrite before read).
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what) : Error(what) {}
};

/// Data (de)serialization failed (corrupt header, size mismatch, ...).
class SerializationError : public Error {
 public:
  explicit SerializationError(const std::string& what) : Error(what) {}
};

/// A bounded wait expired (coupling handshake, staged-chunk fetch, ...)
/// before the awaited condition became true. Raised instead of blocking
/// forever when a peer component hangs or dies.
class TimeoutError : public Error {
 public:
  explicit TimeoutError(const std::string& what) : Error(what) {}
};

/// An injected or detected fault could not be recovered from (retry budget
/// exhausted, restart limit reached, member abandoned by policy).
class FaultError : public Error {
 public:
  explicit FaultError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_invalid_argument(const char* expr,
                                                const char* file, int line,
                                                const std::string& msg) {
  throw InvalidArgument(std::string(file) + ":" + std::to_string(line) +
                        ": requirement `" + expr + "` failed: " + msg);
}
}  // namespace detail

}  // namespace wfe

/// Check a documented precondition of a public entry point; throws
/// wfe::InvalidArgument with location and message on failure.
#define WFE_REQUIRE(expr, msg)                                              \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::wfe::detail::throw_invalid_argument(#expr, __FILE__, __LINE__,      \
                                            (msg));                        \
    }                                                                       \
  } while (false)
