#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace wfe {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev_population(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double stddev_sample(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double quantile(std::span<const double> xs, double q) {
  WFE_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q must be in [0, 1]");
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.mean = mean(xs);
  s.stddev = stddev_population(xs);
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  s.median = median(xs);
  return s;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance_population() const {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev_population() const {
  return std::sqrt(variance_population());
}

}  // namespace wfe
