// FNV-1a streaming hasher for fingerprinting value objects.
//
// Used to build stable cache keys (the scheduler's evaluation memo-cache
// keys placements by platform/spec fingerprint). Not cryptographic; the
// point is a cheap, deterministic digest of plain-old-data fields that is
// identical across runs and thread counts.
#pragma once

#include <bit>
#include <cstdint>
#include <string_view>
#include <type_traits>

namespace wfe {

class Fnv1a {
 public:
  void add(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      byte(static_cast<unsigned char>(v >> (8 * i)));
    }
  }
  /// Signed and narrower integrals all widen through int64 so the digest
  /// does not depend on the declared type of a field.
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool> &&
             !std::is_same_v<T, std::uint64_t>)
  void add(T v) {
    add(static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
  }
  void add(bool v) { byte(v ? 1 : 0); }
  /// Doubles are hashed by bit pattern: distinct values (including -0.0 vs
  /// 0.0) digest differently, equal values digest equally.
  void add(double v) { add(std::bit_cast<std::uint64_t>(v)); }
  void add(std::string_view s) {
    add(static_cast<std::uint64_t>(s.size()));
    for (char c : s) byte(static_cast<unsigned char>(c));
  }

  std::uint64_t digest() const { return h_; }

  /// Combine two digests (e.g. a platform and a spec fingerprint).
  static std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
    Fnv1a h;
    h.add(a);
    h.add(b);
    return h.digest();
  }

 private:
  void byte(unsigned char b) {
    h_ ^= b;
    h_ *= 0x100000001b3ULL;
  }
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

}  // namespace wfe
