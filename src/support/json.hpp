// A minimal JSON reader (RFC 8259 subset, DOM style).
//
// WFEns emits JSON in two places — the Chrome trace_event exporter and the
// JSONL span log (src/obs) — and the observability test harness must prove
// that what we emit actually parses. Rather than pull in a dependency for
// that one job, this is a small recursive-descent parser: objects, arrays,
// strings (with the standard escapes), numbers, booleans and null, with a
// depth guard. Malformed input throws wfe::SerializationError, never
// crashes; numbers are parsed as double (adequate for trace timestamps and
// counter values).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace wfe::json {

class Value;

using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

/// One JSON value. Containers hold their children by value; the tree is
/// immutable after parsing.
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;
  explicit Value(bool b) : type_(Type::kBool), bool_(b) {}
  explicit Value(double d) : type_(Type::kNumber), number_(d) {}
  explicit Value(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  explicit Value(Array a);
  explicit Value(Object o);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw wfe::SerializationError on a type mismatch so
  /// shape errors in parsed documents surface as parse-family errors.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member access; throws wfe::SerializationError when this is not
  /// an object or the key is absent. `find` returns nullptr instead.
  const Value& at(const std::string& key) const;
  const Value* find(const std::string& key) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::shared_ptr<const Array> array_;
  std::shared_ptr<const Object> object_;
};

/// Parse one complete JSON document. Leading/trailing whitespace is
/// allowed; any trailing non-whitespace throws. Throws
/// wfe::SerializationError on malformed input.
Value parse(std::string_view text);

/// Escape a string for embedding in a JSON document (adds no quotes).
std::string escape(std::string_view s);

}  // namespace wfe::json
