#include "support/table.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/str.hpp"

namespace wfe {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  WFE_REQUIRE(!headers_.empty(), "a table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  WFE_REQUIRE(cells.size() == headers_.size(),
              "row width must match header width");
  rows_.push_back(std::move(cells));
}

void Table::add_separator() { rows_.emplace_back(); }

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_line = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      line += "| " + cell + std::string(widths[c] - cell.size() + 1, ' ');
    }
    line += "|\n";
    return line;
  };
  auto rule = [&]() {
    std::string line;
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      line += "+" + std::string(widths[c] + 2, '-');
    }
    line += "+\n";
    return line;
  };

  std::string out = rule() + render_line(headers_) + rule();
  for (const auto& row : rows_) {
    out += row.empty() ? rule() : render_line(row);
  }
  out += rule();
  return out;
}

std::string Table::render_csv() const {
  std::string out = join(headers_, ",") + "\n";
  for (const auto& row : rows_) {
    if (row.empty()) continue;
    out += join(row, ",") + "\n";
  }
  return out;
}

}  // namespace wfe
