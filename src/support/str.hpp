// Small string-formatting helpers (GCC 12 lacks <format>, so we keep a thin
// snprintf-backed layer used by the table printer and bench output).
#pragma once

#include <string>
#include <vector>

namespace wfe {

/// printf-style formatting into a std::string.
std::string strprintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Fixed-precision decimal rendering, e.g. fixed(3.14159, 2) == "3.14".
std::string fixed(double value, int precision);

/// Scientific rendering, e.g. sci(0.000123, 2) == "1.23e-04".
std::string sci(double value, int precision);

/// Human-readable byte count ("6.0 MiB").
std::string human_bytes(double bytes);

/// Human-readable duration ("1.25 s", "310 ms", "42 us").
std::string human_seconds(double seconds);

/// Join items with a separator.
std::string join(const std::vector<std::string>& items, const std::string& sep);

}  // namespace wfe
