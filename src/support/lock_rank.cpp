#include "support/lock_rank.hpp"

#if defined(WFENS_LOCK_RANK_ACTIVE)

#include <cstdio>
#include <cstdlib>

namespace wfe::support::lock_rank_detail {

std::vector<Held>& held_stack() {
  thread_local std::vector<Held> stack;
  return stack;
}

void fail(int rank, const std::source_location& site, const Held& top) {
  // fprintf, not iostream: this runs on any thread, possibly mid-unwind,
  // and must stay signal-ish simple so the message always lands before the
  // abort that death tests match on.
  std::fprintf(stderr,
               "wfens lock-rank violation: acquiring rank %d at %s:%u while "
               "holding rank %d locked at %s:%u%s\n",
               rank, site.file_name(), site.line(), top.rank,
               top.site.file_name(), top.site.line(),
               rank == top.rank ? " (re-entrant acquisition of the same rank)"
                                : "");
  std::abort();
}

void push(int rank, const std::source_location& site) {
  std::vector<Held>& stack = held_stack();
  if (!stack.empty() && stack.back().rank >= rank) {
    fail(rank, site, stack.back());
  }
  stack.push_back(Held{rank, site});
}

void pop(int rank) noexcept {
  std::vector<Held>& stack = held_stack();
  for (std::size_t i = stack.size(); i-- > 0;) {
    if (stack[i].rank == rank) {
      stack.erase(stack.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
  // Unlock of a rank never pushed: only reachable by misusing the raw
  // Lockable interface; tolerate it (the std types would UB here instead).
}

}  // namespace wfe::support::lock_rank_detail

#endif  // WFENS_LOCK_RANK_ACTIVE
