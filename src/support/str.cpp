#include "support/str.hpp"

#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace wfe {

std::string strprintf(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<std::size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

std::string fixed(double value, int precision) {
  return strprintf("%.*f", precision, value);
}

std::string sci(double value, int precision) {
  return strprintf("%.*e", precision, value);
}

std::string human_bytes(double bytes) {
  static const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int u = 0;
  double v = bytes;
  while (std::fabs(v) >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  return strprintf("%.1f %s", v, units[u]);
}

std::string human_seconds(double seconds) {
  const double abs = std::fabs(seconds);
  if (abs >= 1.0) return strprintf("%.3f s", seconds);
  if (abs >= 1e-3) return strprintf("%.3f ms", seconds * 1e3);
  if (abs >= 1e-6) return strprintf("%.3f us", seconds * 1e6);
  return strprintf("%.1f ns", seconds * 1e9);
}

std::string join(const std::vector<std::string>& items,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += sep;
    out += items[i];
  }
  return out;
}

}  // namespace wfe
