// Deterministic pseudo-random number generation.
//
// Every stochastic element of WFEns (MD initial velocities, randomized test
// sweeps, jitter injection in the simulated executor) draws from these
// generators with explicit seeds, so any run is reproducible bit-for-bit.
// We implement SplitMix64 (for seeding) and xoshiro256** (for streams)
// rather than relying on std::mt19937 so streams are cheap to split and the
// algorithm is fixed across standard library versions.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

namespace wfe {

/// SplitMix64: tiny, high-quality 64-bit mixer; used to expand a single
/// user seed into the four words of xoshiro state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast all-purpose generator with 2^256-1 period.
/// Satisfies UniformRandomBitGenerator so it plugs into <random>.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    SplitMix64 sm(seed);
    for (auto& w : state_) w = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform01();
  }

  /// Uniform integer in [0, n); n must be positive.
  std::uint64_t below(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded generation.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = -n % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal variate (Marsaglia polar method).
  double normal() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    has_spare_ = true;
    return u * factor;
  }

  /// Derive an independent stream for a child object (e.g. per component).
  Xoshiro256 split() {
    SplitMix64 sm((*this)());
    Xoshiro256 child(sm.next());
    return child;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace wfe
