// Baseline schedulers the indicator-guided ones are compared against.
//
// Both are pure candidate generators: they emit assignments in a fixed,
// deterministic order and commit to the first feasible one — no replays,
// so `threads` has nothing to parallelize and the PlanOptions are unused.
#pragma once

#include <cstdint>

#include "sched/scheduler.hpp"

namespace wfe::sched {

/// Capacity-aware round robin: walk components in member order, assign
/// each to the next node in the pool with room. This is the "scatter"
/// default of many batch schedulers — it maximizes spreading, i.e. it is
/// the anti-co-location baseline.
class RoundRobin final : public Scheduler {
 public:
  std::string name() const override { return "round-robin"; }

  Schedule plan(const EnsembleShape& shape, const plat::PlatformSpec& platform,
                const ResourceBudget& budget,
                const PlanOptions& options = {}) const override;
};

/// Uniform random feasible assignment (deterministic given the seed);
/// retries until a feasible placement appears or the attempt cap hits.
class RandomPlacement final : public Scheduler {
 public:
  explicit RandomPlacement(std::uint64_t seed = 2021, int max_attempts = 4096)
      : seed_(seed), max_attempts_(max_attempts) {}

  std::string name() const override { return "random"; }

  Schedule plan(const EnsembleShape& shape, const plat::PlatformSpec& platform,
                const ResourceBudget& budget,
                const PlanOptions& options = {}) const override;

 private:
  std::uint64_t seed_;
  int max_attempts_;
};

}  // namespace wfe::sched
