// Schedule evaluation: replay on the modelled cluster, score with Eq. (9)
// over the full indicator chain P^{U,A,P}.
#pragma once

#include "platform/spec.hpp"
#include "runtime/bridge.hpp"
#include "runtime/simulated_executor.hpp"
#include "runtime/spec.hpp"

namespace wfe::sched {

struct Evaluation {
  double objective = 0.0;         ///< F(P^{U,A,P}), higher is better
  double ensemble_makespan = 0.0;
  double min_member_efficiency = 0.0;
  int nodes_used = 0;
};

/// Replays specs on one platform and scores them; counts evaluations so
/// schedulers' planning cost is measurable. The executor (and its platform
/// validation) is built once per evaluator, not once per score.
class Evaluator {
 public:
  explicit Evaluator(plat::PlatformSpec platform);

  /// Probe under a scenario: deterministic capacity effects (stragglers,
  /// degradation windows, replication write cost) are priced into every
  /// score. Callers pass FaultSpec::probe_view() — stochastic crash and
  /// transient injection belongs to the risk model, not the probes.
  /// trace_obs is forced off regardless of the passed value.
  Evaluator(plat::PlatformSpec platform, rt::SimulatedOptions scenario);

  /// Validate + replay + assess. Short replays suffice: the simulated
  /// steady state is immediate, so `probe_steps` keeps planning cheap.
  /// The spec is only copied when its step count differs from the probe.
  Evaluation score(const rt::EnsembleSpec& spec,
                   std::uint64_t probe_steps = 6) const;

  /// One stochastic sample of the probe objective: score() with the
  /// scenario's jitter RNG re-seeded from `seed` for this replay only.
  /// Identical to score() whenever the scenario is deterministic
  /// (jitter_cv == 0 never consults the RNG).
  Evaluation score_seeded(const rt::EnsembleSpec& spec,
                          std::uint64_t probe_steps, std::uint64_t seed) const;

  std::size_t evaluations() const { return evaluations_; }
  /// Engine events dispatched across all replays so far (throughput metric).
  std::uint64_t events_processed() const { return events_; }
  const plat::PlatformSpec& platform() const { return exec_.platform(); }

 private:
  rt::SimulatedExecutor exec_;
  mutable std::size_t evaluations_ = 0;
  mutable std::uint64_t events_ = 0;
};

/// FNV-1a digest of everything in `options` that can change a probe score
/// (jitter, seed, fault scenario, recovery policy). Folded into evaluation
/// cache keys so scores memoized under one scenario never serve another.
std::uint64_t scenario_fingerprint(const rt::SimulatedOptions& options);

}  // namespace wfe::sched
