// Schedule evaluation: replay on the modelled cluster, score with Eq. (9)
// over the full indicator chain P^{U,A,P}.
#pragma once

#include "platform/spec.hpp"
#include "runtime/bridge.hpp"
#include "runtime/spec.hpp"

namespace wfe::sched {

struct Evaluation {
  double objective = 0.0;         ///< F(P^{U,A,P}), higher is better
  double ensemble_makespan = 0.0;
  double min_member_efficiency = 0.0;
  int nodes_used = 0;
};

/// Replays specs on one platform and scores them; counts evaluations so
/// schedulers' planning cost is measurable.
class Evaluator {
 public:
  explicit Evaluator(plat::PlatformSpec platform);

  /// Validate + replay + assess. Short replays suffice: the simulated
  /// steady state is immediate, so `probe_steps` keeps planning cheap.
  Evaluation score(rt::EnsembleSpec spec, std::uint64_t probe_steps = 6) const;

  std::size_t evaluations() const { return evaluations_; }
  const plat::PlatformSpec& platform() const { return platform_; }

 private:
  plat::PlatformSpec platform_;
  mutable std::size_t evaluations_ = 0;
};

}  // namespace wfe::sched
