#include "sched/scheduler.hpp"

#include "sched/bai.hpp"
#include "sched/baselines.hpp"
#include "sched/exhaustive.hpp"
#include "sched/greedy.hpp"
#include "sched/greedy_refine.hpp"
#include "support/error.hpp"
#include "workload/presets.hpp"

namespace wfe::sched {

EnsembleShape EnsembleShape::paper_like(int members, int analyses_per_member,
                                        std::uint64_t n_steps) {
  WFE_REQUIRE(members >= 1, "need at least one member");
  WFE_REQUIRE(analyses_per_member >= 1, "need at least one analysis");
  EnsembleShape shape;
  shape.name = "paper-like";
  shape.n_steps = n_steps;
  for (int i = 0; i < members; ++i) {
    MemberShape m;
    m.sim = wl::gltph_like_simulation({0});  // node replaced at placement
    for (int j = 0; j < analyses_per_member; ++j) {
      m.analyses.push_back(wl::bipartite_like_analysis({0}));
    }
    shape.members.push_back(std::move(m));
  }
  return shape;
}

EnsembleShape EnsembleShape::of(const rt::EnsembleSpec& spec) {
  WFE_REQUIRE(!spec.members.empty(), "spec has no members");
  EnsembleShape shape;
  shape.name = spec.name;
  shape.n_steps = spec.n_steps;
  for (const rt::MemberSpec& m : spec.members) {
    MemberShape ms;
    ms.buffer_capacity = m.buffer_capacity;
    ms.sim = m.sim;
    ms.sim.nodes.clear();
    for (const rt::AnalysisSpec& a : m.analyses) {
      rt::AnalysisSpec as = a;
      as.nodes.clear();
      ms.analyses.push_back(std::move(as));
    }
    shape.members.push_back(std::move(ms));
  }
  return shape;
}

rt::EnsembleSpec place(const EnsembleShape& shape,
                       const std::vector<int>& assignment) {
  std::size_t slots = 0;
  for (const MemberShape& m : shape.members) slots += 1 + m.analyses.size();
  WFE_REQUIRE(assignment.size() == slots,
              "assignment must hold one node per component");

  rt::EnsembleSpec spec;
  spec.name = shape.name;
  spec.n_steps = shape.n_steps;
  std::size_t idx = 0;
  for (const MemberShape& m : shape.members) {
    rt::MemberSpec placed;
    placed.buffer_capacity = m.buffer_capacity;
    placed.sim = m.sim;
    placed.sim.nodes = {assignment[idx++]};
    for (const rt::AnalysisSpec& a : m.analyses) {
      rt::AnalysisSpec pa = a;
      pa.nodes = {assignment[idx++]};
      placed.analyses.push_back(std::move(pa));
    }
    spec.members.push_back(std::move(placed));
  }
  return spec;
}

std::unique_ptr<Scheduler> make_scheduler(const std::string& name) {
  if (name == "greedy-colocate") return std::make_unique<GreedyColocation>();
  if (name == "greedy-refine") return std::make_unique<GreedyRefine>();
  if (name == "exhaustive") return std::make_unique<Exhaustive>();
  if (name == "bai-search") return std::make_unique<BaiSearch>();
  if (name == "round-robin") return std::make_unique<RoundRobin>();
  if (name == "random") return std::make_unique<RandomPlacement>();
  throw InvalidArgument("unknown scheduler: " + name);
}

}  // namespace wfe::sched
