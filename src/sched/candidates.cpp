#include "sched/candidates.hpp"

#include <unordered_set>

#include "support/error.hpp"
#include "support/hash.hpp"

namespace wfe::sched {

namespace {

struct AssignmentHash {
  std::size_t operator()(const Assignment& a) const {
    Fnv1a h;
    for (int v : a) h.add(v);
    return static_cast<std::size_t>(h.digest());
  }
};

}  // namespace

std::size_t slot_count(const EnsembleShape& shape) {
  std::size_t slots = 0;
  for (const MemberShape& m : shape.members) slots += 1 + m.analyses.size();
  return slots;
}

Assignment canonical(const Assignment& assignment, int node_pool) {
  WFE_REQUIRE(node_pool >= 1, "need at least one node in the pool");
  // Flat relabel table indexed by node id; -1 = not seen yet.
  std::vector<int> relabel(static_cast<std::size_t>(node_pool), -1);
  int next = 0;
  Assignment out;
  out.reserve(assignment.size());
  for (int node : assignment) {
    WFE_REQUIRE(node >= 0 && node < node_pool, "node outside the pool");
    int& label = relabel[static_cast<std::size_t>(node)];
    if (label < 0) label = next++;
    out.push_back(label);
  }
  return out;
}

std::vector<Assignment> enumerate_assignments(std::size_t slots,
                                              int node_pool) {
  WFE_REQUIRE(slots >= 1, "need at least one slot");
  WFE_REQUIRE(node_pool >= 1, "need at least one node in the pool");
  std::vector<Assignment> out;
  std::unordered_set<Assignment, AssignmentHash> seen;
  Assignment assignment(slots, 0);
  for (;;) {
    Assignment canon = canonical(assignment, node_pool);
    if (seen.insert(canon).second) out.push_back(std::move(canon));
    // Odometer increment: last slot fastest, i.e. lexicographic order. The
    // canonical form of a class is its lexicographically smallest member,
    // so classes are discovered in lex order of their canonical forms.
    std::size_t pos = slots;
    while (pos > 0) {
      if (++assignment[pos - 1] < node_pool) break;
      assignment[pos - 1] = 0;
      --pos;
    }
    if (pos == 0) break;
  }
  return out;
}

std::vector<Assignment> neighbor_assignments(const Assignment& from,
                                             int node_pool) {
  const Assignment self = canonical(from, node_pool);
  std::vector<Assignment> out;
  out.reserve(from.size() * static_cast<std::size_t>(node_pool - 1));
  Assignment probe = from;
  for (std::size_t slot = 0; slot < from.size(); ++slot) {
    const int original = probe[slot];
    for (int node = 0; node < node_pool; ++node) {
      if (node == original) continue;
      probe[slot] = node;
      Assignment canon = canonical(probe, node_pool);
      if (canon != self) out.push_back(std::move(canon));
    }
    probe[slot] = original;
  }
  return out;
}

std::optional<std::size_t> pick_winner(
    const std::vector<ScoredCandidate>& scored,
    const std::vector<Assignment>& candidates) {
  WFE_REQUIRE(scored.size() == candidates.size(),
              "one score per candidate required");
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < scored.size(); ++i) {
    if (!scored[i].feasible) continue;
    if (!best || scored[i].objective > scored[*best].objective ||
        (scored[i].objective == scored[*best].objective &&
         candidates[i] < candidates[*best])) {
      best = i;
    }
  }
  return best;
}

}  // namespace wfe::sched
