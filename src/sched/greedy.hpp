// GreedyColocation: the indicator-guided constructive scheduler.
//
// It never replays anything; it applies the structural lessons the paper's
// indicator chain teaches (Section 5.2):
//   * CP_i = 1 dominates: place each member's analyses with its simulation
//     whenever the node can hold the whole member (C1.5 / C2.8 shape);
//   * small M dominates: prefer filling already-used nodes (best fit)
//     before opening fresh ones;
//   * when a member must split, keep the analyses as close to their
//     simulation as capacity allows — never co-locate pieces of different
//     members if a cheaper option exists.
// Planning cost: O(components * nodes); zero simulated replays.
#pragma once

#include <optional>
#include <vector>

#include "sched/scheduler.hpp"

namespace wfe::sched {

class GreedyColocation final : public Scheduler {
 public:
  std::string name() const override { return "greedy-colocate"; }

  Schedule plan(const EnsembleShape& shape, const plat::PlatformSpec& platform,
                const ResourceBudget& budget,
                const PlanOptions& options = {}) const override;
};

/// The two constructive candidate generators behind GreedyColocation,
/// exposed so replay-guided schedulers (GreedyRefine) can seed from them.
/// Primary: whole members on single nodes (CP = 1) where they fit, split
/// members hugging their simulation otherwise. Fallback: every simulation
/// first (the big rigid items), then every analysis. Either returns
/// nullopt when a component cannot be placed.
std::optional<std::vector<int>> colocated_assignment(
    const EnsembleShape& shape, const plat::PlatformSpec& platform,
    const ResourceBudget& budget);
std::optional<std::vector<int>> sims_first_assignment(
    const EnsembleShape& shape, const plat::PlatformSpec& platform,
    const ResourceBudget& budget);

}  // namespace wfe::sched
