// GreedyColocation: the indicator-guided constructive scheduler.
//
// It never replays anything; it applies the structural lessons the paper's
// indicator chain teaches (Section 5.2):
//   * CP_i = 1 dominates: place each member's analyses with its simulation
//     whenever the node can hold the whole member (C1.5 / C2.8 shape);
//   * small M dominates: prefer filling already-used nodes (best fit)
//     before opening fresh ones;
//   * when a member must split, keep the analyses as close to their
//     simulation as capacity allows — never co-locate pieces of different
//     members if a cheaper option exists.
// Planning cost: O(components * nodes); zero simulated replays.
#pragma once

#include "sched/scheduler.hpp"

namespace wfe::sched {

class GreedyColocation final : public Scheduler {
 public:
  std::string name() const override { return "greedy-colocate"; }

  Schedule plan(const EnsembleShape& shape, const plat::PlatformSpec& platform,
                const ResourceBudget& budget) const override;
};

}  // namespace wfe::sched
