// Exhaustive: the oracle scheduler.
//
// Enumerates every canonically distinct feasible assignment of components
// to the node pool, replays each on the modelled cluster and keeps the
// placement maximizing F(P^{U,A,P}). Exponential in component count (the
// enumeration is capped), but exact — it bounds what any other scheduler
// can achieve, which is what the comparison bench measures the greedy
// heuristic against.
//
// Candidate evaluation fans out to `options.threads` workers through the
// BatchEvaluator; the reduction's canonical tie-break (objective, then
// lexicographic canonical placement) makes the result bit-identical to the
// sequential search for any thread count.
#pragma once

#include "sched/scheduler.hpp"

namespace wfe::sched {

class Exhaustive final : public Scheduler {
 public:
  std::string name() const override { return "exhaustive"; }

  Schedule plan(const EnsembleShape& shape, const plat::PlatformSpec& platform,
                const ResourceBudget& budget,
                const PlanOptions& options = {}) const override;
};

}  // namespace wfe::sched
