// Exhaustive: the oracle scheduler.
//
// Enumerates every canonically distinct feasible assignment of components
// to the node pool, replays each on the modelled cluster and keeps the
// placement maximizing F(P^{U,A,P}). Exponential in component count (the
// enumeration is capped), but exact — it bounds what any other scheduler
// can achieve, which is what the comparison bench measures the greedy
// heuristic against.
#pragma once

#include "sched/scheduler.hpp"

namespace wfe::sched {

class Exhaustive final : public Scheduler {
 public:
  std::string name() const override { return "exhaustive"; }

  Schedule plan(const EnsembleShape& shape, const plat::PlatformSpec& platform,
                const ResourceBudget& budget) const override;
};

}  // namespace wfe::sched
