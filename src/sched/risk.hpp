// Risk-aware scoring: expected makespan under a node failure distribution.
//
// Probe replays deliberately strip stochastic crash injection (sampling a
// handful of fault timelines per candidate would make planning both
// expensive and noisy). Instead the risk model folds failures in
// analytically: each node a candidate occupies is an independent
// exponential failure domain with the FaultSpec's MTBF, and every failure
// costs one migration plus the re-execution back to the last checkpoint.
// The risk-aware objective discounts the fault-free score by the expected
// inflation, so placements on fewer fault domains — and budgets that hold
// spare nodes back as migration headroom — win exactly when failures are
// frequent enough to pay for them.
#pragma once

#include <cstdint>

#include "sched/batch_evaluator.hpp"
#include "sched/scheduler.hpp"

namespace wfe::sched {

struct RiskModel {
  double node_mtbf_s = 0.0;  ///< 0 = no stochastic crash term
  double migration_cost_s = 3.0;
  double restart_cost_s = 2.0;
  std::uint64_t checkpoint_period = 5;
  std::uint64_t campaign_steps = 37;  ///< the length the plan will run for
  /// Nodes with scripted permanent downtime (FaultSpec::node_down):
  /// occupying one guarantees a migration, so risk-aware placement maps
  /// off them (avoid_doomed) and the model charges placements that can't.
  std::vector<int> doomed;

  /// The model PlanOptions describes: active only under --risk-aware with
  /// a crash-bearing or scripted-downtime FaultSpec.
  static RiskModel of(const PlanOptions& options, std::uint64_t campaign_steps);

  bool active() const { return node_mtbf_s > 0.0 || !doomed.empty(); }

  /// Expected stochastic node failures striking `nodes_used` independent
  /// fault domains over `t_campaign` seconds (linearized Poisson rate).
  /// Scripted deaths are charged separately via `doomed_used`.
  double expected_failures(double t_campaign, int nodes_used) const;

  /// Cost of recovering from one node loss: migration + restart + half a
  /// checkpoint period of re-execution at `per_step` seconds per step.
  double recovery_cost_s(double per_step) const;

  /// Expected campaign makespan for a candidate whose probe measured
  /// `probe_makespan` over `probe_steps` steps on `nodes_used` nodes, of
  /// which `doomed_used` have scripted downtime: nominal time scaled to
  /// campaign_steps, plus per-failure recovery for the expected stochastic
  /// crashes and one guaranteed recovery per doomed node occupied.
  double expected_makespan(double probe_makespan, std::uint64_t probe_steps,
                           int nodes_used, int doomed_used = 0) const;

  /// Discount a fault-oblivious objective by the expected inflation:
  /// objective * nominal / expected. Identity while inactive.
  double adjust_objective(double objective, double probe_makespan,
                          std::uint64_t probe_steps, int nodes_used,
                          int doomed_used = 0) const;
};

/// The probe scenario PlanOptions describes: deterministic capacity effects
/// only (FaultSpec::probe_view strips crashes and transients).
rt::SimulatedOptions probe_scenario(const PlanOptions& options);

/// BatchScores -> ScoredCandidates, risk-adjusted when `risk.active()`.
/// `doomed_used` gives the scripted-downtime node count charged to each
/// candidate (empty = zero for all).
std::vector<ScoredCandidate> risk_scored(const std::vector<BatchScore>& batch,
                                         const RiskModel& risk,
                                         std::uint64_t probe_steps,
                                         const std::vector<int>& doomed_used =
                                             {});

/// Doomed nodes a canonical `nodes_used`-node placement still occupies
/// after avoid_doomed() maps it into a pool of `pool` nodes: 0 while the
/// healthy nodes suffice, the overflow otherwise.
int doomed_used_after_avoidance(const RiskModel& risk, int nodes_used,
                                int pool);

/// Scripted-downtime nodes `assignment` occupies (distinct count).
int doomed_used_of(const RiskModel& risk, const Assignment& assignment);

/// Relabel a canonical assignment away from the scripted-downtime nodes:
/// canonical node i becomes the i-th node of [healthy pool nodes
/// ascending, then doomed nodes ascending]. Identity when nothing is
/// doomed. Sound only for node-symmetric probe scenarios (the probe view
/// strips node-keyed faults, so scores are relabel-invariant).
Assignment avoid_doomed(const Assignment& assignment, int pool,
                        const RiskModel& risk);

/// The node pool left after holding back the spare-node headroom.
/// Throws wfe::SpecError when no node remains.
int effective_pool(const ResourceBudget& budget, const PlanOptions& options);

}  // namespace wfe::sched
