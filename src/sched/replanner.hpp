// Online re-planning: incremental placement repair when a node dies.
//
// A RePlanner holds the currently-running assignment and plugs into the
// simulated executor's migration hook (rt::MigrationPlanner). When a member
// loses a node, the executor calls back with the dead node and the set of
// surviving nodes; the re-planner repairs ONLY the affected member's slots
// — every occurrence of the dead node in that member is rehomed to one
// surviving target — and scores each candidate target with the same
// BatchEvaluator the offline schedulers use (same probe scenario, same
// memo/EvalCache tiers, so repeated re-plans and campaign reruns pay
// nothing twice). Under PlanOptions::risk_aware the candidates are ranked
// by risk-adjusted objective, so a repair prefers targets that keep the
// expected — not just the fault-free — makespan low.
//
// Determinism: candidates are generated in ascending target-node order and
// reduced with pick_winner's canonical total order, and the BatchEvaluator
// returns thread-count-invariant scores. A re-plan therefore picks the
// same target for any planner thread count and any rerun. The internal
// mutex (support::kRankRePlanner, held across scoring) only serializes
// concurrent executors sharing one re-planner; it never changes outcomes.
#pragma once

#include <cstddef>
#include <vector>

#include "runtime/simulated_executor.hpp"
#include "sched/batch_evaluator.hpp"
#include "sched/candidates.hpp"
#include "sched/risk.hpp"
#include "sched/scheduler.hpp"
#include "support/lock_rank.hpp"

namespace wfe::sched {

class RePlanner {
 public:
  /// `options` carries the probe scenario (faults/recovery), risk_aware,
  /// probe_steps and the planner thread count — usually the same
  /// PlanOptions the offline scheduler planned with.
  RePlanner(EnsembleShape shape, plat::PlatformSpec platform,
            PlanOptions options);

  /// Install the assignment the campaign launched with (slot order of
  /// candidates.hpp). Must be called before the first re-plan.
  void set_assignment(Assignment assignment);
  /// The assignment as repaired so far.
  Assignment assignment() const;

  /// The executor-facing hook. The returned callable shares this
  /// re-planner (which must outlive every executor holding the hook).
  rt::MigrationPlanner hook();

  /// Repair the requesting member's placement: score one candidate per
  /// surviving node and return the winning target. Returns a negative
  /// value — "defer to the executor's built-in policy" — when no candidate
  /// is feasible or the member does not use the dead node.
  int replan(const rt::MigrationRequest& request);

  std::size_t replans() const;
  /// Probe replays spent re-planning (cache misses only).
  std::size_t evaluations() const;
  /// Wall-clock seconds of the most recent replan() (0 before the first).
  /// Reported via counters and bench JSON, never via the virtual-time
  /// trace, so fault-run traces stay rerun-identical.
  double last_latency_s() const;

  /// Share scores with the offline planner / other re-planners (see
  /// BatchEvaluator::attach_shared_cache).
  void attach_shared_cache(EvalCache* shared);

 private:
  int replan_locked(const rt::MigrationRequest& request);

  mutable support::RankedMutex<support::kRankRePlanner> mutex_;
  EnsembleShape shape_;
  PlanOptions options_;
  BatchEvaluator evaluator_;
  RiskModel risk_;
  std::vector<std::size_t> slot_offset_;  ///< first slot of each member
  Assignment current_;
  std::size_t replans_ = 0;
  double last_latency_s_ = 0.0;
};

}  // namespace wfe::sched
