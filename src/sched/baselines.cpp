#include "sched/baselines.hpp"

#include <vector>

#include "sched/candidates.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace wfe::sched {

namespace {

std::vector<int> component_cores(const EnsembleShape& shape) {
  std::vector<int> cores;
  for (const MemberShape& m : shape.members) {
    cores.push_back(m.sim.cores);
    for (const auto& a : m.analyses) cores.push_back(a.cores);
  }
  return cores;
}

}  // namespace

Schedule RoundRobin::plan(const EnsembleShape& shape,
                          const plat::PlatformSpec& platform,
                          const ResourceBudget& budget,
                          const PlanOptions& /*options*/) const {
  WFE_REQUIRE(!shape.members.empty(), "shape has no members");
  const std::vector<int> cores = component_cores(shape);
  std::vector<int> free(static_cast<std::size_t>(budget.node_pool),
                        platform.node.cores);
  std::vector<int> assignment;
  int cursor = 0;
  for (int c : cores) {
    int tried = 0;
    while (tried < budget.node_pool &&
           free[static_cast<std::size_t>(cursor)] < c) {
      cursor = (cursor + 1) % budget.node_pool;
      ++tried;
    }
    if (tried == budget.node_pool) {
      throw SpecError("round-robin: component does not fit the node budget");
    }
    free[static_cast<std::size_t>(cursor)] -= c;
    assignment.push_back(cursor);
    cursor = (cursor + 1) % budget.node_pool;
  }

  Schedule schedule;
  schedule.spec = place(shape, assignment);
  schedule.spec.validate(platform);
  schedule.scheduler = name();
  return schedule;
}

Schedule RandomPlacement::plan(const EnsembleShape& shape,
                               const plat::PlatformSpec& platform,
                               const ResourceBudget& budget,
                               const PlanOptions& /*options*/) const {
  WFE_REQUIRE(!shape.members.empty(), "shape has no members");
  const std::size_t slots = slot_count(shape);
  Xoshiro256 rng(seed_);
  // Candidate generator + first-feasible selection: attempts are drawn in
  // a fixed seed-determined order, so the outcome is reproducible.
  for (int attempt = 0; attempt < max_attempts_; ++attempt) {
    std::vector<int> assignment(slots);
    for (auto& node : assignment) {
      node = static_cast<int>(
          rng.below(static_cast<std::uint64_t>(budget.node_pool)));
    }
    rt::EnsembleSpec spec = place(shape, assignment);
    try {
      spec.validate(platform);
    } catch (const SpecError&) {
      continue;
    }
    Schedule schedule;
    schedule.spec = std::move(spec);
    schedule.scheduler = name();
    return schedule;
  }
  throw SpecError("random: no feasible placement found within attempt cap");
}

}  // namespace wfe::sched
