#include "sched/exhaustive.hpp"

#include <map>
#include <set>

#include "sched/evaluator.hpp"
#include "support/error.hpp"

namespace wfe::sched {

namespace {

/// Relabel nodes in first-appearance order (placements differing only by
/// node naming are equivalent on a homogeneous pool).
std::vector<int> canonical(const std::vector<int>& assignment) {
  std::map<int, int> relabel;
  std::vector<int> out;
  out.reserve(assignment.size());
  for (int node : assignment) {
    auto [it, _] = relabel.emplace(node, static_cast<int>(relabel.size()));
    out.push_back(it->second);
  }
  return out;
}

}  // namespace

Schedule Exhaustive::plan(const EnsembleShape& shape,
                          const plat::PlatformSpec& platform,
                          const ResourceBudget& budget) const {
  WFE_REQUIRE(!shape.members.empty(), "shape has no members");
  WFE_REQUIRE(budget.node_pool >= 1 &&
                  budget.node_pool <= platform.node_count,
              "node pool must fit the platform");
  std::size_t slots = 0;
  for (const MemberShape& m : shape.members) slots += 1 + m.analyses.size();
  WFE_REQUIRE(slots <= 12, "exhaustive search capped at 12 components");

  Evaluator evaluator(platform);
  std::set<std::vector<int>> seen;
  std::vector<int> assignment(slots, 0);

  bool found = false;
  double best_f = 0.0;
  rt::EnsembleSpec best_spec;

  for (;;) {
    const std::vector<int> canon = canonical(assignment);
    if (seen.insert(canon).second) {
      rt::EnsembleSpec spec = place(shape, canon);
      bool feasible = true;
      try {
        spec.validate(platform);
      } catch (const SpecError&) {
        feasible = false;
      }
      if (feasible) {
        const Evaluation e = evaluator.score(spec);
        if (!found || e.objective > best_f) {
          found = true;
          best_f = e.objective;
          best_spec = std::move(spec);
        }
      }
    }
    // Odometer increment.
    std::size_t pos = slots;
    while (pos > 0) {
      if (++assignment[pos - 1] < budget.node_pool) break;
      assignment[pos - 1] = 0;
      --pos;
    }
    if (pos == 0) break;
  }

  if (!found) {
    throw SpecError("exhaustive: no feasible placement within the budget");
  }
  Schedule schedule;
  best_spec.n_steps = shape.n_steps;  // probes used fewer steps
  schedule.spec = std::move(best_spec);
  schedule.scheduler = name();
  schedule.evaluations = evaluator.evaluations();
  return schedule;
}

}  // namespace wfe::sched
