#include "sched/exhaustive.hpp"

#include <vector>

#include "sched/batch_evaluator.hpp"
#include "sched/candidates.hpp"
#include "sched/risk.hpp"
#include "support/error.hpp"

namespace wfe::sched {

Schedule Exhaustive::plan(const EnsembleShape& shape,
                          const plat::PlatformSpec& platform,
                          const ResourceBudget& budget,
                          const PlanOptions& options) const {
  WFE_REQUIRE(!shape.members.empty(), "shape has no members");
  WFE_REQUIRE(budget.node_pool >= 1 &&
                  budget.node_pool <= platform.node_count,
              "node pool must fit the platform");
  const std::size_t slots = slot_count(shape);
  WFE_REQUIRE(slots <= 12, "exhaustive search capped at 12 components");
  // Spare nodes are held back from placement as migration headroom.
  const ResourceBudget pool{effective_pool(budget, options)};
  const RiskModel risk = RiskModel::of(options, shape.n_steps);

  // Generate: every canonically distinct assignment, in lexicographic
  // order. Score: fan out to the worker pool, memoized. Reduce: canonical
  // winner — identical to scoring one assignment at a time in this order.
  // Under --risk-aware the reduction ranks by risk-adjusted objective.
  const std::vector<Assignment> candidates =
      enumerate_assignments(slots, pool.node_pool);
  BatchEvaluator evaluator(platform, probe_scenario(options),
                           options.threads);
  evaluator.attach_shared_cache(options.shared_cache);
  // Fixed budget: on a stochastic probe scenario, average probe_samples
  // seeded draws per candidate; deterministic probes keep the historical
  // single replay (same memo keys as every other fixed-budget caller).
  WFE_REQUIRE(options.probe_samples >= 1, "probe-samples must be at least 1");
  const bool stochastic =
      options.jitter_cv > 0.0 && options.probe_samples > 1;
  const std::vector<BatchScore> scores =
      stochastic ? evaluator.score_assignments_mean(shape, candidates,
                                                    options.probe_steps,
                                                    options.probe_samples)
                 : evaluator.score_assignments(shape, candidates,
                                               options.probe_steps);

  // Canonical candidates are relabelled off scripted-downtime nodes after
  // the reduction (avoid_doomed), so charge each one the doomed overflow
  // its node count would leave after that mapping.
  std::vector<int> doomed_used(scores.size(), 0);
  for (std::size_t i = 0; i < scores.size(); ++i) {
    doomed_used[i] = doomed_used_after_avoidance(
        risk, scores[i].eval.nodes_used, pool.node_pool);
  }
  const std::vector<ScoredCandidate> scored =
      risk_scored(scores, risk, options.probe_steps, doomed_used);
  const auto winner = pick_winner(scored, candidates);
  if (!winner) {
    throw SpecError("exhaustive: no feasible placement within the budget");
  }

  Schedule schedule;
  schedule.spec = place(
      shape, avoid_doomed(candidates[*winner], pool.node_pool, risk));
  schedule.spec.n_steps = shape.n_steps;  // probes used fewer steps
  schedule.scheduler = name();
  schedule.evaluations = evaluator.evaluations();
  schedule.cache_hits = evaluator.cache_hits();
  schedule.shared_hits = evaluator.shared_hits();
  schedule.samples = evaluator.evaluations() + evaluator.cache_hits();
  return schedule;
}

}  // namespace wfe::sched
