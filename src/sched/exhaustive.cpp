#include "sched/exhaustive.hpp"

#include <vector>

#include "sched/batch_evaluator.hpp"
#include "sched/candidates.hpp"
#include "support/error.hpp"

namespace wfe::sched {

Schedule Exhaustive::plan(const EnsembleShape& shape,
                          const plat::PlatformSpec& platform,
                          const ResourceBudget& budget,
                          const PlanOptions& options) const {
  WFE_REQUIRE(!shape.members.empty(), "shape has no members");
  WFE_REQUIRE(budget.node_pool >= 1 &&
                  budget.node_pool <= platform.node_count,
              "node pool must fit the platform");
  const std::size_t slots = slot_count(shape);
  WFE_REQUIRE(slots <= 12, "exhaustive search capped at 12 components");

  // Generate: every canonically distinct assignment, in lexicographic
  // order. Score: fan out to the worker pool, memoized. Reduce: canonical
  // winner — identical to scoring one assignment at a time in this order.
  const std::vector<Assignment> candidates =
      enumerate_assignments(slots, budget.node_pool);
  BatchEvaluator evaluator(platform, options.threads);
  const std::vector<BatchScore> scores =
      evaluator.score_assignments(shape, candidates, options.probe_steps);

  std::vector<ScoredCandidate> scored;
  scored.reserve(scores.size());
  for (const BatchScore& s : scores) scored.push_back(s.scored());
  const auto winner = pick_winner(scored, candidates);
  if (!winner) {
    throw SpecError("exhaustive: no feasible placement within the budget");
  }

  Schedule schedule;
  schedule.spec = place(shape, candidates[*winner]);
  schedule.spec.n_steps = shape.n_steps;  // probes used fewer steps
  schedule.scheduler = name();
  schedule.evaluations = evaluator.evaluations();
  schedule.cache_hits = evaluator.cache_hits();
  return schedule;
}

}  // namespace wfe::sched
