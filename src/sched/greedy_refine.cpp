#include "sched/greedy_refine.hpp"

#include <utility>
#include <vector>

#include "sched/batch_evaluator.hpp"
#include "sched/candidates.hpp"
#include "sched/greedy.hpp"
#include "support/error.hpp"

namespace wfe::sched {

namespace {

std::vector<ScoredCandidate> scored_of(const std::vector<BatchScore>& batch) {
  std::vector<ScoredCandidate> out;
  out.reserve(batch.size());
  for (const BatchScore& s : batch) out.push_back(s.scored());
  return out;
}

}  // namespace

Schedule GreedyRefine::plan(const EnsembleShape& shape,
                            const plat::PlatformSpec& platform,
                            const ResourceBudget& budget,
                            const PlanOptions& options) const {
  WFE_REQUIRE(!shape.members.empty(), "shape has no members");
  WFE_REQUIRE(budget.node_pool >= 1 &&
                  budget.node_pool <= platform.node_count,
              "node pool must fit the platform");

  // Seeds: the constructive passes, canonicalized.
  std::vector<Assignment> seeds;
  for (auto* build : {&colocated_assignment, &sims_first_assignment}) {
    if (auto a = (*build)(shape, platform, budget)) {
      Assignment canon = canonical(*a, budget.node_pool);
      if (seeds.empty() || seeds.front() != canon) {
        seeds.push_back(std::move(canon));
      }
    }
  }
  if (seeds.empty()) {
    throw SpecError(
        "greedy-refine: the ensemble does not fit the node budget (no "
        "constructive seed placement exists)");
  }

  BatchEvaluator evaluator(platform, options.threads);
  std::vector<BatchScore> scores =
      evaluator.score_assignments(shape, seeds, options.probe_steps);
  auto winner = pick_winner(scored_of(scores), seeds);
  if (!winner) {
    throw SpecError("greedy-refine: no seed placement validates");
  }
  Assignment incumbent = seeds[*winner];
  double incumbent_objective = scores[*winner].eval.objective;

  // Hill-climb: strictly improving, so each incumbent is visited once and
  // the loop terminates (the candidate space is finite). The neighborhood
  // overlap between rounds is served from the memo-cache.
  for (;;) {
    const std::vector<Assignment> neighbors =
        neighbor_assignments(incumbent, budget.node_pool);
    if (neighbors.empty()) break;
    scores = evaluator.score_assignments(shape, neighbors,
                                         options.probe_steps);
    winner = pick_winner(scored_of(scores), neighbors);
    if (!winner || scores[*winner].eval.objective <= incumbent_objective) {
      break;
    }
    incumbent = neighbors[*winner];
    incumbent_objective = scores[*winner].eval.objective;
  }

  Schedule schedule;
  schedule.spec = place(shape, incumbent);
  schedule.spec.n_steps = shape.n_steps;
  schedule.scheduler = name();
  schedule.evaluations = evaluator.evaluations();
  schedule.cache_hits = evaluator.cache_hits();
  return schedule;
}

}  // namespace wfe::sched
