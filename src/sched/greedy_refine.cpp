#include "sched/greedy_refine.hpp"

#include <utility>
#include <vector>

#include "sched/batch_evaluator.hpp"
#include "sched/candidates.hpp"
#include "sched/greedy.hpp"
#include "sched/risk.hpp"
#include "support/error.hpp"

namespace wfe::sched {

Schedule GreedyRefine::plan(const EnsembleShape& shape,
                            const plat::PlatformSpec& platform,
                            const ResourceBudget& budget,
                            const PlanOptions& options) const {
  WFE_REQUIRE(!shape.members.empty(), "shape has no members");
  WFE_REQUIRE(budget.node_pool >= 1 &&
                  budget.node_pool <= platform.node_count,
              "node pool must fit the platform");
  // Spare nodes are held back from placement as migration headroom; the
  // search only sees the remaining pool.
  const ResourceBudget pool{effective_pool(budget, options)};
  const RiskModel risk = RiskModel::of(options, shape.n_steps);

  // Seeds: the constructive passes, canonicalized.
  std::vector<Assignment> seeds;
  for (auto* build : {&colocated_assignment, &sims_first_assignment}) {
    if (auto a = (*build)(shape, platform, pool)) {
      Assignment canon = canonical(*a, pool.node_pool);
      if (seeds.empty() || seeds.front() != canon) {
        seeds.push_back(std::move(canon));
      }
    }
  }
  if (seeds.empty()) {
    throw SpecError(
        "greedy-refine: the ensemble does not fit the node budget (no "
        "constructive seed placement exists)");
  }

  BatchEvaluator evaluator(platform, probe_scenario(options),
                           options.threads);
  evaluator.attach_shared_cache(options.shared_cache);
  // Fixed budget: on a stochastic probe scenario, average probe_samples
  // seeded draws per candidate; deterministic probes keep the historical
  // single replay (same memo keys as every other fixed-budget caller).
  WFE_REQUIRE(options.probe_samples >= 1, "probe-samples must be at least 1");
  const bool stochastic =
      options.jitter_cv > 0.0 && options.probe_samples > 1;
  const auto score_batch = [&](const std::vector<Assignment>& batch) {
    return stochastic ? evaluator.score_assignments_mean(
                            shape, batch, options.probe_steps,
                            options.probe_samples)
                      : evaluator.score_assignments(shape, batch,
                                                    options.probe_steps);
  };
  // Canonical incumbents are relabelled off scripted-downtime nodes at the
  // end (avoid_doomed); charge each candidate the doomed overflow its node
  // count would leave after that mapping.
  const auto doomed_charges = [&](const std::vector<BatchScore>& batch) {
    std::vector<int> charges(batch.size(), 0);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      charges[i] = doomed_used_after_avoidance(
          risk, batch[i].eval.nodes_used, pool.node_pool);
    }
    return charges;
  };
  std::vector<BatchScore> scores = score_batch(seeds);
  std::vector<ScoredCandidate> scored =
      risk_scored(scores, risk, options.probe_steps, doomed_charges(scores));
  auto winner = pick_winner(scored, seeds);
  if (!winner) {
    throw SpecError("greedy-refine: no seed placement validates");
  }
  Assignment incumbent = seeds[*winner];
  double incumbent_objective = scored[*winner].objective;

  // Hill-climb: strictly improving, so each incumbent is visited once and
  // the loop terminates (the candidate space is finite). The neighborhood
  // overlap between rounds is served from the memo-cache. Under
  // --risk-aware the climb follows the risk-adjusted objective.
  for (;;) {
    const std::vector<Assignment> neighbors =
        neighbor_assignments(incumbent, pool.node_pool);
    if (neighbors.empty()) break;
    scores = score_batch(neighbors);
    scored = risk_scored(scores, risk, options.probe_steps,
                         doomed_charges(scores));
    winner = pick_winner(scored, neighbors);
    if (!winner || scored[*winner].objective <= incumbent_objective) {
      break;
    }
    incumbent = neighbors[*winner];
    incumbent_objective = scored[*winner].objective;
  }

  Schedule schedule;
  schedule.spec =
      place(shape, avoid_doomed(incumbent, pool.node_pool, risk));
  schedule.spec.n_steps = shape.n_steps;
  schedule.scheduler = name();
  schedule.evaluations = evaluator.evaluations();
  schedule.cache_hits = evaluator.cache_hits();
  schedule.shared_hits = evaluator.shared_hits();
  schedule.samples = evaluator.evaluations() + evaluator.cache_hits();
  return schedule;
}

}  // namespace wfe::sched
