#include "sched/batch_evaluator.hpp"

#include <unordered_map>
#include <utility>

#include "obs/recorder.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/str.hpp"

namespace wfe::sched {

namespace {

void add_cost(Fnv1a& h, const md::MdCostParams& c) {
  h.add(c.instr_per_atom_step);
  h.add(c.base_ipc);
  h.add(c.llc_refs_per_instr);
  h.add(c.base_miss_ratio);
  h.add(c.bytes_per_atom);
  h.add(c.parallel_fraction);
  h.add(c.cache_sensitivity);
}

void add_cost(Fnv1a& h, const ana::AnalysisCostParams& c) {
  h.add(c.instr_per_element_sweep);
  h.add(c.power_iterations);
  h.add(c.subsample_stride);
  h.add(c.base_ipc);
  h.add(c.llc_refs_per_instr);
  h.add(c.base_miss_ratio);
  h.add(c.fixed_working_set_bytes);
  h.add(c.max_cache_footprint_bytes);
  h.add(c.parallel_fraction);
  h.add(c.cache_sensitivity);
}

/// Memo key: (canonical placement, probe steps, platform fingerprint) plus
/// a digest of the demand itself (core counts, workload scale, cost-model
/// constants) so one evaluator can serve different shapes safely. The
/// spec's name and n_steps are deliberately excluded — probes override the
/// step count, and names only label placements. Node ids are relabeled in
/// first-appearance order: on the modelled homogeneous pool, placements
/// differing only by node naming replay identically.
std::uint64_t memo_key(const rt::EnsembleSpec& spec,
                       std::uint64_t probe_steps,
                       std::uint64_t platform_fp,
                       std::uint64_t scenario_fp) {
  Fnv1a h;
  h.add(platform_fp);
  h.add(scenario_fp);
  h.add(probe_steps);
  std::unordered_map<int, int> relabel;
  const auto canon_node = [&](int node) {
    const auto [it, _] =
        relabel.emplace(node, static_cast<int>(relabel.size()));
    return it->second;
  };
  h.add(spec.members.size());
  for (const rt::MemberSpec& m : spec.members) {
    h.add(m.buffer_capacity);
    h.add(m.sim.cores);
    h.add(m.sim.natoms);
    h.add(m.sim.stride);
    add_cost(h, m.sim.cost);
    h.add(m.sim.nodes.size());
    for (int node : m.sim.nodes) h.add(canon_node(node));
    h.add(m.analyses.size());
    for (const rt::AnalysisSpec& a : m.analyses) {
      h.add(a.cores);
      h.add(std::string_view(a.kernel));
      add_cost(h, a.cost);
      h.add(a.nodes.size());
      for (int node : a.nodes) h.add(canon_node(node));
    }
  }
  return h.digest();
}

}  // namespace

BatchEvaluator::BatchEvaluator(plat::PlatformSpec platform, int threads)
    : BatchEvaluator(std::move(platform), rt::SimulatedOptions{}, threads) {}

BatchEvaluator::BatchEvaluator(plat::PlatformSpec platform,
                               rt::SimulatedOptions scenario, int threads)
    : pool_(threads) {
  platform.validate();
  platform_fp_ = platform.fingerprint();
  scenario_fp_ = scenario_fingerprint(scenario);
  evaluators_.reserve(static_cast<std::size_t>(threads));
  for (int w = 0; w < threads; ++w) {
    evaluators_.emplace_back(platform, scenario);
  }
}

std::vector<BatchScore> BatchEvaluator::score_keyed(
    const std::vector<std::uint64_t>& keys,
    const std::vector<const rt::EnsembleSpec*>& specs,
    std::uint64_t probe_steps, const std::vector<std::uint64_t>* seeds) {
  const std::size_t n = keys.size();
  std::vector<BatchScore> out(n);
  const bool traced = obs::enabled();
  const double b0 = traced ? obs::now_s() : 0.0;
  const std::size_t hits_before = cache_hits_;
  const std::size_t shared_before = shared_hits_;

  // Sequential phase 1: resolve cache hits and within-batch duplicates;
  // collect the unique misses to simulate.
  std::vector<std::size_t> miss;       // batch indices to simulate
  std::vector<std::size_t> dup_of(n);  // same-batch duplicate -> first index
  std::unordered_map<std::uint64_t, std::size_t> inflight;
  CachedEval shared_entry;
  for (std::size_t i = 0; i < n; ++i) {
    dup_of[i] = i;
    if (const auto it = cache_.find(keys[i]); it != cache_.end()) {
      out[i] = it->second;
      out[i].cached = true;
      ++cache_hits_;
    } else if (shared_ && shared_->lookup(keys[i], &shared_entry)) {
      // Second tier: scored by another evaluator (possibly another
      // process, via EvalCache::load). Promote into the local memo so
      // later batches skip the lock.
      out[i] = {shared_entry.feasible, true, shared_entry.eval};
      cache_.emplace(keys[i], BatchScore{shared_entry.feasible, false,
                                         shared_entry.eval});
      ++cache_hits_;
      ++shared_hits_;
    } else if (const auto in = inflight.find(keys[i]);
               in != inflight.end()) {
      dup_of[i] = in->second;
      ++cache_hits_;
    } else {
      inflight.emplace(keys[i], i);
      miss.push_back(i);
    }
  }

  // Parallel phase: each worker replays with its own evaluator and writes
  // only its claimed indices' slots. Infeasible specs are marked, not run.
  pool_.for_each_index(miss.size(), [&](std::size_t j, int worker) {
    const std::size_t i = miss[j];
    BatchScore& score = out[i];
    const double w0 = traced ? obs::now_s() : 0.0;
    score.feasible = true;
    try {
      specs[i]->validate(evaluators_[static_cast<std::size_t>(worker)]
                             .platform());
    } catch (const SpecError&) {
      score.feasible = false;  // infeasible placements are marked, not run
    }
    if (score.feasible) {
      Evaluator& ev = evaluators_[static_cast<std::size_t>(worker)];
      score.eval = seeds == nullptr
                       ? ev.score(*specs[i], probe_steps)
                       : ev.score_seeded(*specs[i], probe_steps, (*seeds)[i]);
    }
    if (traced) {
      const double w1 = obs::now_s();
      obs::span(strprintf("sched/w%d", worker), "evaluate", w0, w1);
      obs::add_counter(strprintf("sched.w%d.busy_s", worker), w1, w1 - w0);
    }
  });

  // Sequential phase 2: memoize fresh scores, then resolve duplicates.
  for (const std::size_t i : miss) {
    cache_.emplace(keys[i], out[i]);
    if (shared_) shared_->insert(keys[i], {out[i].feasible, out[i].eval});
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (dup_of[i] != i) {
      out[i] = out[dup_of[i]];
      out[i].cached = true;
    }
  }
  if (traced) {
    const double b1 = obs::now_s();
    obs::span("scheduler", "batch", b0, b1);
    obs::add_counter("sched.candidates", b1, static_cast<double>(n));
    obs::add_counter("sched.evaluations", b1,
                     static_cast<double>(miss.size()));
    obs::add_counter("sched.memo_hits", b1,
                     static_cast<double>(cache_hits_ - hits_before));
    obs::add_counter("sched.shared_hits", b1,
                     static_cast<double>(shared_hits_ - shared_before));
  }
  return out;
}

std::vector<BatchScore> BatchEvaluator::score_assignments(
    const EnsembleShape& shape, const std::vector<Assignment>& assignments,
    std::uint64_t probe_steps) {
  std::vector<rt::EnsembleSpec> specs;
  specs.reserve(assignments.size());
  std::vector<std::uint64_t> keys;
  keys.reserve(assignments.size());
  std::vector<const rt::EnsembleSpec*> spec_ptrs;
  spec_ptrs.reserve(assignments.size());
  for (const Assignment& a : assignments) {
    specs.push_back(place(shape, a));
    keys.push_back(
        memo_key(specs.back(), probe_steps, platform_fp_, scenario_fp_));
  }
  for (const rt::EnsembleSpec& s : specs) spec_ptrs.push_back(&s);
  return score_keyed(keys, spec_ptrs, probe_steps);
}

std::vector<BatchScore> BatchEvaluator::score_specs(
    const std::vector<rt::EnsembleSpec>& specs, std::uint64_t probe_steps) {
  std::vector<std::uint64_t> keys;
  keys.reserve(specs.size());
  std::vector<const rt::EnsembleSpec*> spec_ptrs;
  spec_ptrs.reserve(specs.size());
  for (const rt::EnsembleSpec& s : specs) {
    keys.push_back(memo_key(s, probe_steps, platform_fp_, scenario_fp_));
    spec_ptrs.push_back(&s);
  }
  return score_keyed(keys, spec_ptrs, probe_steps);
}

std::vector<BatchScore> BatchEvaluator::score_arm_samples(
    const EnsembleShape& shape, const std::vector<Assignment>& arms,
    const std::vector<ArmSample>& samples, std::uint64_t probe_steps) {
  // Build each referenced arm's spec and base digest once. The base digest
  // is the ordinary memo key (platform + scenario + probe depth +
  // canonical placement + demand); sample seeds and sample keys both
  // derive from it, which is what makes a sample a value: the same
  // (candidate, index) names the same replay everywhere.
  std::vector<rt::EnsembleSpec> specs(arms.size());
  std::vector<std::uint64_t> base_keys(arms.size(), 0);
  std::vector<bool> built(arms.size(), false);
  for (const ArmSample& s : samples) {
    WFE_REQUIRE(s.arm < arms.size(), "sample references an unknown arm");
    if (built[s.arm]) continue;
    specs[s.arm] = place(shape, arms[s.arm]);
    base_keys[s.arm] =
        memo_key(specs[s.arm], probe_steps, platform_fp_, scenario_fp_);
    built[s.arm] = true;
  }

  std::vector<std::uint64_t> keys;
  keys.reserve(samples.size());
  std::vector<std::uint64_t> seeds;
  seeds.reserve(samples.size());
  std::vector<const rt::EnsembleSpec*> spec_ptrs;
  spec_ptrs.reserve(samples.size());
  for (const ArmSample& s : samples) {
    const std::uint64_t seed = Fnv1a::mix(base_keys[s.arm], s.index);
    seeds.push_back(seed);
    keys.push_back(Fnv1a::mix(base_keys[s.arm], seed));
    spec_ptrs.push_back(&specs[s.arm]);
  }
  return score_keyed(keys, spec_ptrs, probe_steps, &seeds);
}

std::vector<BatchScore> BatchEvaluator::score_assignments_mean(
    const EnsembleShape& shape, const std::vector<Assignment>& assignments,
    std::uint64_t probe_steps, std::uint64_t samples) {
  WFE_REQUIRE(samples >= 1, "need at least one sample per assignment");
  std::vector<ArmSample> requests;
  requests.reserve(assignments.size() * samples);
  for (std::size_t a = 0; a < assignments.size(); ++a) {
    for (std::uint64_t k = 0; k < samples; ++k) requests.push_back({a, k});
  }
  const std::vector<BatchScore> draws =
      score_arm_samples(shape, assignments, requests, probe_steps);

  // Average each assignment's draws in index order (fixed fp summation
  // order keeps the means bit-stable). Feasibility and node count are
  // placement properties — every draw agrees — so they come from draw 0.
  std::vector<BatchScore> out(assignments.size());
  const double inv = 1.0 / static_cast<double>(samples);
  for (std::size_t a = 0; a < assignments.size(); ++a) {
    const std::size_t base = a * samples;
    BatchScore mean = draws[base];
    for (std::uint64_t k = 1; k < samples; ++k) {
      const BatchScore& d = draws[base + k];
      mean.eval.objective += d.eval.objective;
      mean.eval.ensemble_makespan += d.eval.ensemble_makespan;
      mean.eval.min_member_efficiency += d.eval.min_member_efficiency;
      mean.cached = mean.cached && d.cached;
    }
    if (mean.feasible && samples > 1) {
      mean.eval.objective *= inv;
      mean.eval.ensemble_makespan *= inv;
      mean.eval.min_member_efficiency *= inv;
    }
    out[a] = mean;
  }
  return out;
}

std::size_t BatchEvaluator::evaluations() const {
  std::size_t total = 0;
  for (const Evaluator& e : evaluators_) total += e.evaluations();
  return total;
}

std::uint64_t BatchEvaluator::events_processed() const {
  std::uint64_t total = 0;
  for (const Evaluator& e : evaluators_) total += e.events_processed();
  return total;
}

}  // namespace wfe::sched
