#include "sched/bai.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <numeric>
#include <vector>

#include "sched/arm_stats.hpp"
#include "sched/batch_evaluator.hpp"
#include "sched/candidates.hpp"
#include "sched/risk.hpp"
#include "support/error.hpp"

namespace wfe::sched {
namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

/// Search-side state of one candidate placement.
struct Arm {
  ArmStats stats;
  std::uint64_t next_index = 0;  ///< next sample index (seed derivation)
  bool alive = true;             ///< still a contender
  int doomed_used = 0;           ///< risk charge, fixed by the placement
  double min_reward = std::numeric_limits<double>::infinity();
  double max_reward = -std::numeric_limits<double>::infinity();

  /// Within-arm sample spread: an estimate of the reward-noise scale
  /// (cross-arm spread is signal, not noise — see arm_stats.hpp).
  double spread() const { return stats.n >= 2 ? max_reward - min_reward : 0.0; }
};

}  // namespace

Schedule BaiSearch::plan(const EnsembleShape& shape,
                         const plat::PlatformSpec& platform,
                         const ResourceBudget& budget,
                         const PlanOptions& options) const {
  WFE_REQUIRE(!shape.members.empty(), "shape has no members");
  WFE_REQUIRE(budget.node_pool >= 1 &&
                  budget.node_pool <= platform.node_count,
              "node pool must fit the platform");
  WFE_REQUIRE(options.probe_samples >= 1,
              "probe-samples must be at least 1");
  const std::size_t slots = slot_count(shape);
  WFE_REQUIRE(slots <= 12, "bai-search capped at 12 components");
  // Spare nodes are held back from placement as migration headroom.
  const ResourceBudget pool{effective_pool(budget, options)};
  const RiskModel risk = RiskModel::of(options, shape.n_steps);

  // Arms: the same candidate set exhaustive scores, in the same
  // lexicographic canonical order — so "lowest index" is the pick_winner
  // tie-break and the two schedulers are comparable arm for arm.
  const std::vector<Assignment> candidates =
      enumerate_assignments(slots, pool.node_pool);
  BatchEvaluator evaluator(platform, probe_scenario(options),
                           options.threads);
  evaluator.attach_shared_cache(options.shared_cache);

  Schedule schedule;
  schedule.scheduler = name();

  if (options.jitter_cv == 0.0) {
    // Deterministic degenerate case: every arm's objective is a constant,
    // so the optimal sampling rule is one probe per arm and the search IS
    // the exhaustive reduction. Run it with the exact same memo keys
    // (score_assignments, no seed mixing), so the result is bit-identical
    // to Exhaustive::plan and the two schedulers share cache entries.
    const std::vector<BatchScore> scores =
        evaluator.score_assignments(shape, candidates, options.probe_steps);
    std::vector<int> doomed_used(scores.size(), 0);
    for (std::size_t i = 0; i < scores.size(); ++i) {
      doomed_used[i] = doomed_used_after_avoidance(
          risk, scores[i].eval.nodes_used, pool.node_pool);
    }
    const std::vector<ScoredCandidate> scored =
        risk_scored(scores, risk, options.probe_steps, doomed_used);
    const auto winner = pick_winner(scored, candidates);
    if (!winner) {
      throw SpecError("bai-search: no feasible placement within the budget");
    }
    schedule.spec = place(
        shape, avoid_doomed(candidates[*winner], pool.node_pool, risk));
    schedule.samples = evaluator.evaluations() + evaluator.cache_hits();
  } else {
    // Stochastic LUCB loop. The budget defaults to what the fixed-budget
    // schedulers would spend on this candidate set.
    std::vector<Arm> arms(candidates.size());
    std::uint64_t sample_budget =
        options.max_samples == 0
            ? options.probe_samples * candidates.size()
            : options.max_samples;
    sample_budget = std::max<std::uint64_t>(sample_budget, arms.size());

    std::uint64_t issued = 0;
    double reward_min = std::numeric_limits<double>::infinity();
    double reward_max = -std::numeric_limits<double>::infinity();

    // Issue one sample to each listed arm (batched: replays fan out to the
    // worker pool, but all statistics updates happen right here on the
    // calling thread, in arm-list order — thread count cannot perturb the
    // search trajectory).
    const auto sample_arms = [&](const std::vector<std::size_t>& which) {
      std::vector<BatchEvaluator::ArmSample> requests;
      requests.reserve(which.size());
      for (const std::size_t a : which) {
        requests.push_back({a, arms[a].next_index++});
      }
      const std::vector<BatchScore> scores = evaluator.score_arm_samples(
          shape, candidates, requests, options.probe_steps);
      issued += requests.size();
      for (std::size_t i = 0; i < which.size(); ++i) {
        Arm& arm = arms[which[i]];
        const BatchScore& score = scores[i];
        if (!score.feasible) {
          arm.alive = false;  // placement property: no draw can differ
          continue;
        }
        if (arm.stats.n == 0) {
          arm.doomed_used = doomed_used_after_avoidance(
              risk, score.eval.nodes_used, pool.node_pool);
        }
        double reward = score.eval.objective;
        if (risk.active()) {
          reward = risk.adjust_objective(reward, score.eval.ensemble_makespan,
                                         options.probe_steps,
                                         score.eval.nodes_used,
                                         arm.doomed_used);
        }
        arm.stats.add(reward);
        arm.min_reward = std::min(arm.min_reward, reward);
        arm.max_reward = std::max(arm.max_reward, reward);
        reward_min = std::min(reward_min, reward);
        reward_max = std::max(reward_max, reward);
      }
    };

    // Round 0: one sample per arm, so every bound is defined.
    std::vector<std::size_t> all(arms.size());
    std::iota(all.begin(), all.end(), std::size_t{0});
    sample_arms(all);

    std::size_t leader = kNone;
    for (;;) {
      // Leader: highest empirical mean among survivors, ties toward the
      // lowest index = lexicographically smallest canonical placement
      // (pick_winner's order).
      leader = kNone;
      for (std::size_t a = 0; a < arms.size(); ++a) {
        if (!arms[a].alive || arms[a].stats.n == 0) continue;
        if (leader == kNone ||
            arms[a].stats.mean > arms[leader].stats.mean) {
          leader = a;
        }
      }
      if (leader == kNone) {
        throw SpecError(
            "bai-search: no feasible placement within the budget");
      }

      // Noise-scale estimate for the range term: the widest within-arm
      // sample spread seen so far; before any arm has two samples, fall
      // back to the global reward spread (wide on purpose — the first
      // post-init round must not eliminate anything on one draw).
      double range = 0.0;
      bool any_resampled = false;
      for (const Arm& arm : arms) {
        if (arm.stats.n >= 2) {
          any_resampled = true;
          range = std::max(range, arm.spread());
        }
      }
      if (!any_resampled) {
        range = reward_max > reward_min ? reward_max - reward_min : 0.0;
      }
      const double log_term = exploration_log(issued, arms.size());
      const double leader_lb =
          lower_bound(arms[leader].stats, range, log_term);

      // Eliminate arms the leader provably beats; among the rest find the
      // strongest challenger (highest upper bound, ties toward the lowest
      // index). Elimination needs a second sample on both sides — a
      // one-draw mean says nothing about the noise it carries.
      const bool leader_seasoned = arms[leader].stats.n >= 2;
      std::size_t challenger = kNone;
      double challenger_ub = -std::numeric_limits<double>::infinity();
      for (std::size_t a = 0; a < arms.size(); ++a) {
        if (a == leader || !arms[a].alive || arms[a].stats.n == 0) continue;
        const double ub = upper_bound(arms[a].stats, range, log_term);
        if (leader_seasoned && arms[a].stats.n >= 2 && ub < leader_lb) {
          arms[a].alive = false;
          continue;
        }
        if (challenger == kNone || ub > challenger_ub) {
          challenger = a;
          challenger_ub = ub;
        }
      }
      if (challenger == kNone) break;      // leader dominates all survivors
      if (issued >= sample_budget) break;  // budget exhausted

      // LUCB step: always sample the challenger (its bound is the one
      // blocking the stop); sample the leader too only while its own
      // bound is at least as loose — once the leader is well pinned,
      // re-sampling it buys nothing and the budget goes to eliminations.
      std::vector<std::size_t> next{challenger};
      const double leader_radius =
          bound_radius(arms[leader].stats, range, log_term);
      const double challenger_radius =
          bound_radius(arms[challenger].stats, range, log_term);
      if (sample_budget - issued >= 2 &&
          leader_radius >= challenger_radius) {
        next.push_back(leader);
      }
      sample_arms(next);
    }

    schedule.spec = place(
        shape, avoid_doomed(candidates[leader], pool.node_pool, risk));
    schedule.samples = issued;
  }

  schedule.spec.n_steps = shape.n_steps;  // probes used fewer steps
  schedule.evaluations = evaluator.evaluations();
  schedule.cache_hits = evaluator.cache_hits();
  schedule.shared_hits = evaluator.shared_hits();
  return schedule;
}

}  // namespace wfe::sched
