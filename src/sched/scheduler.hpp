// Scheduling ensembles of in situ workflows with the performance indicators.
//
// The paper's conclusion: "Future work will consider leveraging the
// proposed indicators for scheduling in situ components of a workflow
// ensemble under resource constraints." This module implements that step.
//
// A Scheduler receives an EnsembleShape — WHAT must run (members, component
// core counts, workload scale) without node assignments — plus the platform
// and a node budget, and returns a fully placed EnsembleSpec. Quality is
// judged by the Evaluator (replay on the modelled cluster, score with
// F(P^{U,A,P})), which is also what indicator-guided schedulers use
// internally.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "platform/spec.hpp"
#include "resilience/fault_spec.hpp"
#include "runtime/engine_select.hpp"
#include "runtime/spec.hpp"

namespace wfe::sched {

class EvalCache;

/// One member's resource demand, before placement.
struct MemberShape {
  rt::SimulationSpec sim;               ///< nodes field ignored
  std::vector<rt::AnalysisSpec> analyses;  ///< nodes fields ignored
  int buffer_capacity = 1;              ///< carried through to the placement
};

/// A whole ensemble's demand.
struct EnsembleShape {
  std::string name = "ensemble";
  std::vector<MemberShape> members;
  std::uint64_t n_steps = 37;

  /// Convenience: the paper-shaped demand (16-core GltPh-like sims,
  /// 8-core bipartite analyses).
  static EnsembleShape paper_like(int members, int analyses_per_member,
                                  std::uint64_t n_steps = 37);

  /// Strip the placement off an already-placed ensemble: the demand that
  /// spec answers, ready to be re-planned (e.g. wfens_run --schedule).
  static EnsembleShape of(const rt::EnsembleSpec& spec);
};

/// The resources a schedule may use.
struct ResourceBudget {
  int node_pool = 3;  ///< nodes 0 .. node_pool-1 are available
};

/// Knobs of the planning run itself (not of the schedule it produces).
/// Thread count never changes the outcome: search evaluations fan out to a
/// worker pool but are reduced with a canonical tie-break (objective, then
/// lexicographic canonical placement), so any `threads` yields the same
/// winning schedule, objective, and evaluation count as `threads == 1`.
struct PlanOptions {
  int threads = 1;                ///< evaluation workers (>= 1)
  std::uint64_t probe_steps = 6;  ///< in situ steps per probe replay

  /// Run-to-run variability priced into probe replays (lognormal stage
  /// noise, see rt::SimulatedOptions::jitter_cv). 0 (default) keeps probes
  /// deterministic; > 0 makes every candidate's objective a random
  /// variable that the replay-guided schedulers sample with seeds derived
  /// from the candidate's FNV-1a digest — deterministic for any thread
  /// count, but a genuine per-sample draw.
  double jitter_cv = 0.0;

  /// Seeded draws a fixed-budget scheduler averages per candidate when the
  /// probe scenario is stochastic (jitter_cv > 0). 1 keeps the historical
  /// one-replay-per-candidate behavior; larger values buy noise reduction
  /// at probe_samples× the replay cost. Ignored on deterministic probes.
  std::uint64_t probe_samples = 1;

  /// Total sample budget for the adaptive best-arm scheduler
  /// ("bai-search"). 0 (default) = what the fixed-budget schedulers would
  /// have spent on the same candidate set: probe_samples × arm count.
  /// Never binds below one sample per arm.
  std::uint64_t max_samples = 0;

  /// Optional shared evaluation store consulted before any fresh probe
  /// replay and fed every fresh score (see EvalCache). Campaign and
  /// service callers pass EvalCache::process() so placements scored by any
  /// scheduler — or any previous process via EvalCache::load — are never
  /// re-simulated. Never changes a planned placement, only what it costs.
  EvalCache* shared_cache = nullptr;

  /// Scenario the probe replays price (replay-guided schedulers only):
  /// stragglers, network-degradation windows, and the replication write
  /// cost. Stochastic crash/transient injection is stripped via
  /// FaultSpec::probe_view() — the risk model accounts for it analytically.
  res::FaultSpec faults;
  res::RecoveryPolicy recovery;

  /// Risk-aware objective variant (--risk-aware): discount each candidate
  /// by its expected makespan under the node failure distribution (MTBF
  /// from `faults`, recovery costs from `recovery`) instead of ranking by
  /// the fault-free objective alone.
  bool risk_aware = false;

  /// Spare-node provisioning knob: hold this many nodes of the budget back
  /// from placement as migration headroom for node deaths.
  int spare_nodes = 0;

  /// Replay engine the probe replays run on (wfens_run --engine=lp:N,
  /// env WFENS_ENGINE). Purely a throughput knob: both engines score
  /// candidates bit-identically, so it is excluded from the EvalCache's
  /// scenario fingerprint — cached scores stay valid across engines.
  rt::EngineSelection engine;
};

/// A placement decision with provenance.
struct Schedule {
  rt::EnsembleSpec spec;    ///< fully placed, validated ensemble
  std::string scheduler;    ///< which algorithm produced it
  std::size_t evaluations = 0;  ///< simulated replays spent planning
  /// Probe scores served from the evaluation memo-cache instead of being
  /// re-simulated (0 for schedulers that never replay).
  std::size_t cache_hits = 0;
  /// Of cache_hits, scores served by the attached shared EvalCache tier
  /// (PlanOptions::shared_cache) — replays another scheduler or process
  /// already paid for.
  std::size_t shared_hits = 0;
  /// Probe samples the search allocated (fresh or cached). Equals
  /// evaluations + cache_hits for the fixed-budget schedulers; for
  /// bai-search the gap to the fixed budget is the adaptive saving.
  std::size_t samples = 0;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string name() const = 0;

  /// Place `shape` on at most `budget.node_pool` nodes of `platform`.
  /// Throws wfe::SpecError if the demand cannot fit the budget at all.
  virtual Schedule plan(const EnsembleShape& shape,
                        const plat::PlatformSpec& platform,
                        const ResourceBudget& budget,
                        const PlanOptions& options = {}) const = 0;
};

/// Build the placed spec from per-component node choices, in the fixed
/// order [m0.sim, m0.ana0, m0.ana1, ..., m1.sim, ...]. Shared by every
/// scheduler implementation.
rt::EnsembleSpec place(const EnsembleShape& shape,
                       const std::vector<int>& assignment);

/// Factory: "greedy-colocate", "greedy-refine", "exhaustive", "bai-search",
/// "round-robin", "random".
std::unique_ptr<Scheduler> make_scheduler(const std::string& name);

}  // namespace wfe::sched
