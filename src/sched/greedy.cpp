#include "sched/greedy.hpp"

#include <algorithm>
#include <numeric>
#include <optional>
#include <vector>

#include "support/error.hpp"
#include "support/str.hpp"

namespace wfe::sched {

namespace {

struct NodeState {
  int index = 0;
  int free_cores = 0;
  bool used = false;
};

/// Best-fit among nodes with enough room: prefer used nodes with the least
/// leftover space (packs tightly, keeps M small); open a fresh node only
/// when no used node fits.
int best_fit(std::vector<NodeState>& nodes, int cores,
             int preferred_node = -1) {
  if (preferred_node >= 0 &&
      nodes[static_cast<std::size_t>(preferred_node)].free_cores >= cores) {
    return preferred_node;
  }
  int best = -1;
  for (const NodeState& n : nodes) {
    if (n.free_cores < cores) continue;
    if (!n.used) continue;
    if (best < 0 ||
        n.free_cores < nodes[static_cast<std::size_t>(best)].free_cores) {
      best = n.index;
    }
  }
  if (best >= 0) return best;
  for (const NodeState& n : nodes) {
    if (!n.used && n.free_cores >= cores) return n.index;
  }
  return -1;
}

void commit(std::vector<NodeState>& nodes, int node, int cores) {
  auto& n = nodes[static_cast<std::size_t>(node)];
  n.free_cores -= cores;
  n.used = true;
}

struct Layout {
  std::vector<std::size_t> order;      ///< members, most demanding first
  std::vector<std::size_t> slot_base;  ///< first slot of each member
  std::size_t slots = 0;
};

Layout layout_of(const EnsembleShape& shape) {
  Layout l;
  l.order.resize(shape.members.size());
  std::iota(l.order.begin(), l.order.end(), 0u);
  auto member_cores = [&](std::size_t i) {
    int total = shape.members[i].sim.cores;
    for (const auto& a : shape.members[i].analyses) total += a.cores;
    return total;
  };
  std::stable_sort(l.order.begin(), l.order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return member_cores(a) > member_cores(b);
                   });
  l.slot_base.resize(shape.members.size());
  for (std::size_t i = 0; i < shape.members.size(); ++i) {
    l.slot_base[i] = l.slots;
    l.slots += 1 + shape.members[i].analyses.size();
  }
  return l;
}

std::vector<NodeState> fresh_pool(const plat::PlatformSpec& platform,
                                  int node_pool) {
  std::vector<NodeState> nodes;
  for (int i = 0; i < node_pool; ++i) {
    nodes.push_back({i, platform.node.cores, false});
  }
  return nodes;
}

}  // namespace

std::optional<std::vector<int>> colocated_assignment(
    const EnsembleShape& shape, const plat::PlatformSpec& platform,
    const ResourceBudget& budget) {
  const Layout l = layout_of(shape);
  std::vector<NodeState> nodes = fresh_pool(platform, budget.node_pool);
  std::vector<int> assignment(l.slots, -1);

  for (std::size_t i : l.order) {
    const MemberShape& m = shape.members[i];
    int whole = m.sim.cores;
    for (const auto& a : m.analyses) whole += a.cores;

    // Rule 1: the whole member on one node if possible (CP = 1). Prefer a
    // FRESH node: co-locating the member with pieces of other members
    // would trade its neighbours' contention for no CP gain.
    int node = -1;
    for (const NodeState& n : nodes) {
      if (n.used || n.free_cores < whole) continue;
      node = n.index;
      break;
    }
    if (node < 0) node = best_fit(nodes, whole);
    if (node >= 0) {
      commit(nodes, node, whole);
      assignment[l.slot_base[i]] = node;
      for (std::size_t j = 0; j < m.analyses.size(); ++j) {
        assignment[l.slot_base[i] + 1 + j] = node;
      }
      continue;
    }

    // Rule 2: split — simulation first, analyses hugging it.
    const int sim_node = best_fit(nodes, m.sim.cores);
    if (sim_node < 0) return std::nullopt;
    commit(nodes, sim_node, m.sim.cores);
    assignment[l.slot_base[i]] = sim_node;
    for (std::size_t j = 0; j < m.analyses.size(); ++j) {
      const int ana_node = best_fit(nodes, m.analyses[j].cores, sim_node);
      if (ana_node < 0) return std::nullopt;
      commit(nodes, ana_node, m.analyses[j].cores);
      assignment[l.slot_base[i] + 1 + j] = ana_node;
    }
  }
  return assignment;
}

/// Feasibility fallback for tight bin-packing cases the co-location-first
/// pass cannot solve. Sacrifices CP where it must, in exchange for fitting
/// the budget.
std::optional<std::vector<int>> sims_first_assignment(
    const EnsembleShape& shape, const plat::PlatformSpec& platform,
    const ResourceBudget& budget) {
  const Layout l = layout_of(shape);
  std::vector<NodeState> nodes = fresh_pool(platform, budget.node_pool);
  std::vector<int> assignment(l.slots, -1);

  for (std::size_t i : l.order) {
    const int sim_node = best_fit(nodes, shape.members[i].sim.cores);
    if (sim_node < 0) return std::nullopt;
    commit(nodes, sim_node, shape.members[i].sim.cores);
    assignment[l.slot_base[i]] = sim_node;
  }
  for (std::size_t i : l.order) {
    const MemberShape& m = shape.members[i];
    const int sim_node = assignment[l.slot_base[i]];
    for (std::size_t j = 0; j < m.analyses.size(); ++j) {
      const int ana_node = best_fit(nodes, m.analyses[j].cores, sim_node);
      if (ana_node < 0) return std::nullopt;
      commit(nodes, ana_node, m.analyses[j].cores);
      assignment[l.slot_base[i] + 1 + j] = ana_node;
    }
  }
  return assignment;
}

Schedule GreedyColocation::plan(const EnsembleShape& shape,
                                const plat::PlatformSpec& platform,
                                const ResourceBudget& budget,
                                const PlanOptions& /*options*/) const {
  WFE_REQUIRE(!shape.members.empty(), "shape has no members");
  WFE_REQUIRE(budget.node_pool >= 1 &&
                  budget.node_pool <= platform.node_count,
              "node pool must fit the platform");

  std::optional<std::vector<int>> assignment =
      colocated_assignment(shape, platform, budget);
  if (!assignment) assignment = sims_first_assignment(shape, platform, budget);
  if (!assignment) {
    throw SpecError(strprintf(
        "greedy-colocate: the ensemble does not fit the %d-node budget "
        "(neither co-location-first nor sims-first packing succeeded)",
        budget.node_pool));
  }

  Schedule schedule;
  schedule.spec = place(shape, *assignment);
  schedule.spec.validate(platform);
  schedule.scheduler = name();
  schedule.evaluations = 0;
  return schedule;
}

}  // namespace wfe::sched
