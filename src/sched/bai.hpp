// BaiSearch: adaptive best-arm placement search.
//
// Exhaustive and greedy-refine spend the same replay budget on every
// candidate, even ones a handful of samples already rule out. On stochastic
// probe scenarios (PlanOptions::jitter_cv > 0) this scheduler treats each
// canonically distinct placement as a bandit arm and runs a LUCB-style
// best-arm identification: sample the empirical leader and its strongest
// challenger, maintain empirical-Bernstein confidence bounds per arm
// (arm_stats.hpp), eliminate arms whose upper bound falls below the
// leader's lower bound, and stop as soon as one arm dominates every
// survivor — or the sample budget (PlanOptions::max_samples, default: what
// the fixed-budget schedulers would spend) runs out. The saving is fewer
// fresh probe replays for an equal-or-better expected objective
// (bench/search_efficiency.cpp measures both).
//
// Determinism contract:
//  * On a deterministic scenario (jitter_cv == 0) a candidate's objective
//    is a constant, so sampling degenerates to one probe per arm and the
//    search runs the exact exhaustive reduction — same memo keys, same
//    canonical tie-break, bit-identical Schedule::spec (golden-gated by
//    tests/sched/test_bai.cpp).
//  * On stochastic scenarios each sample's replay seed derives from the
//    arm's FNV-1a candidate digest and the sample index (see
//    BatchEvaluator::score_arm_samples), and all sampling decisions happen
//    on the calling thread over batch results reduced in arm order — so
//    the winner is byte-identical across runs, processes, and planner
//    thread counts.
#pragma once

#include "sched/scheduler.hpp"

namespace wfe::sched {

class BaiSearch final : public Scheduler {
 public:
  std::string name() const override { return "bai-search"; }

  Schedule plan(const EnsembleShape& shape, const plat::PlatformSpec& platform,
                const ResourceBudget& budget,
                const PlanOptions& options = {}) const override;
};

}  // namespace wfe::sched
