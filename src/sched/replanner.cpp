#include "sched/replanner.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/recorder.hpp"
#include "support/error.hpp"

namespace wfe::sched {

RePlanner::RePlanner(EnsembleShape shape, plat::PlatformSpec platform,
                     PlanOptions options)
    : shape_(std::move(shape)),
      options_(std::move(options)),
      evaluator_(std::move(platform), probe_scenario(options_),
                 options_.threads),
      risk_(RiskModel::of(options_, shape_.n_steps)) {
  WFE_REQUIRE(!shape_.members.empty(), "re-planner needs a non-empty shape");
  WFE_REQUIRE(options_.probe_samples >= 1,
              "probe-samples must be at least 1");
  evaluator_.attach_shared_cache(options_.shared_cache);
  slot_offset_.reserve(shape_.members.size());
  std::size_t offset = 0;
  for (const MemberShape& m : shape_.members) {
    slot_offset_.push_back(offset);
    offset += 1 + m.analyses.size();
  }
  current_.assign(offset, 0);
}

void RePlanner::set_assignment(Assignment assignment) {
  WFE_REQUIRE(assignment.size() == slot_count(shape_),
              "assignment size must match the shape's slot count");
  support::RankGuard guard(mutex_);
  current_ = std::move(assignment);
}

Assignment RePlanner::assignment() const {
  support::RankGuard guard(mutex_);
  return current_;
}

rt::MigrationPlanner RePlanner::hook() {
  return [this](const rt::MigrationRequest& request) {
    return replan(request);
  };
}

int RePlanner::replan(const rt::MigrationRequest& request) {
  const auto t0 = std::chrono::steady_clock::now();
  int target = -1;
  double latency = 0.0;
  {
    support::RankGuard guard(mutex_);
    target = replan_locked(request);
    latency = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0)
                  .count();
    last_latency_s_ = latency;
  }
  if (obs::enabled()) {
    // Latency is wall-clock, so it is a counter (not part of the
    // virtual-time stage trace): fault-run traces stay rerun-identical.
    obs::add_counter("sched.replan_latency_s", request.now_s, latency);
  }
  return target;
}

int RePlanner::replan_locked(const rt::MigrationRequest& request) {
  const std::size_t member = request.member;
  WFE_REQUIRE(member < shape_.members.size(),
              "migration request names a member outside the shape");
  const std::size_t begin = slot_offset_[member];
  const std::size_t width = 1 + shape_.members[member].analyses.size();

  bool uses_dead = false;
  for (std::size_t s = begin; s < begin + width; ++s) {
    uses_dead = uses_dead || current_[s] == request.dead_node;
  }
  if (!uses_dead) return -1;

  // One candidate per surviving node, ascending: the member's occurrences
  // of the dead node all move to that target. Other members keep their
  // placement — each repairs itself when (and if) its own loss fires.
  std::vector<int> targets = request.up_nodes;
  std::sort(targets.begin(), targets.end());
  targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
  std::erase(targets, request.dead_node);
  if (targets.empty()) return -1;

  std::vector<Assignment> candidates;
  candidates.reserve(targets.size());
  for (const int target : targets) {
    Assignment candidate = current_;
    for (std::size_t s = begin; s < begin + width; ++s) {
      if (candidate[s] == request.dead_node) candidate[s] = target;
    }
    candidates.push_back(std::move(candidate));
  }

  // Same fixed-budget sampling rule as the planners: average probe_samples
  // seeded draws per repair candidate when the probe scenario is stochastic.
  const bool stochastic =
      options_.jitter_cv > 0.0 && options_.probe_samples > 1;
  const std::vector<BatchScore> batch =
      stochastic ? evaluator_.score_assignments_mean(shape_, candidates,
                                                     options_.probe_steps,
                                                     options_.probe_samples)
                 : evaluator_.score_assignments(shape_, candidates,
                                                options_.probe_steps);
  // Repair candidates carry real node ids, so charge each for the
  // scripted-downtime nodes it actually occupies — migrating onto a node
  // that is itself scheduled to die should rank below a healthy target.
  std::vector<int> doomed_used(candidates.size(), 0);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    doomed_used[i] = doomed_used_of(risk_, candidates[i]);
  }
  const std::vector<ScoredCandidate> scored =
      risk_scored(batch, risk_, options_.probe_steps, doomed_used);
  const std::optional<std::size_t> winner = pick_winner(scored, candidates);
  if (!winner) return -1;

  ++replans_;
  current_ = candidates[*winner];
  return targets[*winner];
}

std::size_t RePlanner::replans() const {
  support::RankGuard guard(mutex_);
  return replans_;
}

std::size_t RePlanner::evaluations() const {
  support::RankGuard guard(mutex_);
  return evaluator_.evaluations();
}

double RePlanner::last_latency_s() const {
  support::RankGuard guard(mutex_);
  return last_latency_s_;
}

void RePlanner::attach_shared_cache(EvalCache* shared) {
  support::RankGuard guard(mutex_);
  evaluator_.attach_shared_cache(shared);
}

}  // namespace wfe::sched
