// Candidate generation and reduction shared by the search schedulers.
//
// Every replay-guided scheduler has the same two halves: generate candidate
// assignments (one node per component slot) and batch-score them. This
// header holds the generation side — canonical relabeling, exhaustive
// enumeration, local-move neighborhoods — plus the canonical winner
// reduction the batch side feeds into. Keeping the reduction here, with one
// total order (objective desc, then lexicographic canonical placement asc),
// is what makes parallel search results bit-identical to sequential ones.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "sched/scheduler.hpp"

namespace wfe::sched {

/// One node choice per component in the fixed slot order
/// [m0.sim, m0.ana0, ..., m1.sim, ...] (see place()).
using Assignment = std::vector<int>;

/// Components of `shape` = slots of an assignment.
std::size_t slot_count(const EnsembleShape& shape);

/// Relabel nodes in first-appearance order (placements differing only by
/// node naming are equivalent on a homogeneous pool). `node_pool` bounds
/// the node values; the relabel table is a flat array of that size, not a
/// map — this runs once per odometer tick and dominates small searches.
Assignment canonical(const Assignment& assignment, int node_pool);

/// Every canonically distinct assignment of `slots` components to nodes
/// 0..node_pool-1, in lexicographic order of the canonical form. This is
/// the exhaustive search space (exponential: capped by callers).
std::vector<Assignment> enumerate_assignments(std::size_t slots,
                                              int node_pool);

/// All canonical single-component moves from `from`: for each slot, every
/// other node in the pool. Duplicates under relabeling are kept (the
/// evaluation memo-cache collapses them for free); the assignment equal to
/// canonical(from) itself is dropped.
std::vector<Assignment> neighbor_assignments(const Assignment& from,
                                             int node_pool);

/// The canonical reduction: among candidates where `feasible(i)` and with
/// score `objective(i)`, pick the highest objective, breaking ties toward
/// the lexicographically smallest canonical assignment. Returns nullopt if
/// none is feasible. Sequential and order-independent of how the scores
/// were produced — the keystone of thread-count-invariant search.
struct ScoredCandidate {
  bool feasible = false;
  double objective = 0.0;
};
std::optional<std::size_t> pick_winner(
    const std::vector<ScoredCandidate>& scored,
    const std::vector<Assignment>& candidates);

}  // namespace wfe::sched
