// GreedyRefine: replay-guided local search seeded by the constructive
// greedy passes.
//
// Scores the greedy-colocate and sims-first seeds, then hill-climbs over
// single-component moves: each round, every "move one component to another
// node" neighbor of the incumbent is batch-scored on the worker pool and
// the canonical winner (objective, then lexicographic canonical placement)
// replaces the incumbent if it is strictly better. The evaluation
// memo-cache makes revisited placements free — consecutive rounds share
// most of their neighborhoods — and the canonical reduction makes the
// trajectory, the winner, and the evaluation count identical for any
// thread count.
#pragma once

#include "sched/scheduler.hpp"

namespace wfe::sched {

class GreedyRefine final : public Scheduler {
 public:
  std::string name() const override { return "greedy-refine"; }

  Schedule plan(const EnsembleShape& shape, const plat::PlatformSpec& platform,
                const ResourceBudget& budget,
                const PlanOptions& options = {}) const override;
};

}  // namespace wfe::sched
