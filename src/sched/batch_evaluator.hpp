// BatchEvaluator: parallel, memoized candidate scoring.
//
// Fans a batch of candidate placements out to per-worker SimulatedExecutors
// (via wfe::exec::ThreadPool) and returns the scores in candidate order, so
// callers can reduce deterministically (see candidates.hpp::pick_winner).
//
// An evaluation memo-cache keyed on (canonical placement, probe steps,
// platform fingerprint, demand fingerprint) ensures a placement is never
// re-simulated once scored: exhaustive enumeration, greedy refinement
// rounds, and repeated bench sweeps all hit the cache instead. Cache
// lookups and inserts happen only on the calling thread, before and after
// the parallel section — workers touch nothing but their own evaluator and
// their own result slots, which keeps the whole layer race-free and the
// results bit-identical for any thread count.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "exec/thread_pool.hpp"
#include "platform/spec.hpp"
#include "sched/candidates.hpp"
#include "sched/eval_cache.hpp"
#include "sched/evaluator.hpp"

namespace wfe::sched {

/// Score of one candidate. `feasible == false` means the placement failed
/// spec validation (oversubscribed node, out-of-range index) and was not
/// replayed. `cached` marks scores served without a fresh simulation.
struct BatchScore {
  bool feasible = false;
  bool cached = false;
  Evaluation eval;

  ScoredCandidate scored() const { return {feasible, eval.objective}; }
};

class BatchEvaluator {
 public:
  explicit BatchEvaluator(plat::PlatformSpec platform, int threads = 1);

  /// Score under a probe scenario (see Evaluator's scenario constructor).
  /// The scenario's fingerprint is folded into every memo key — local and
  /// shared tier alike — so scores memoized under one fault/recovery
  /// configuration are never reused for another.
  BatchEvaluator(plat::PlatformSpec platform, rt::SimulatedOptions scenario,
                 int threads);

  /// Score place(shape, assignment) for every assignment, in order.
  /// Assignments should be canonical (see candidates.hpp); equal canonical
  /// forms in one batch are simulated once.
  std::vector<BatchScore> score_assignments(
      const EnsembleShape& shape, const std::vector<Assignment>& assignments,
      std::uint64_t probe_steps = 6);

  /// Score pre-built specs (the enumeration benches). Memoization keys on
  /// the spec's canonicalized placement and content, not its name.
  std::vector<BatchScore> score_specs(
      const std::vector<rt::EnsembleSpec>& specs,
      std::uint64_t probe_steps = 6);

  /// One seeded sample of one arm: sample `index` of candidate
  /// `arms[arm]`. The replay seed is derived from the arm's FNV-1a memo
  /// digest and the index, so a sample is identified by value — bit-stable
  /// across runs, thread counts, and processes (the shared cache tier
  /// serves it on a warm rerun).
  struct ArmSample {
    std::size_t arm = 0;
    std::uint64_t index = 0;
  };

  /// Score stochastic probe samples, one BatchScore per request in
  /// request order. Each sample replays under its derived seed; the memo
  /// key folds that seed in, so distinct samples never alias and repeated
  /// samples (across rounds or processes) are never re-simulated. On a
  /// deterministic scenario every sample of an arm scores identically to
  /// score_assignments() on that arm — only the cache keys differ.
  std::vector<BatchScore> score_arm_samples(
      const EnsembleShape& shape, const std::vector<Assignment>& arms,
      const std::vector<ArmSample>& samples, std::uint64_t probe_steps = 6);

  /// Fixed-budget sampling: `samples` seeded draws per assignment (indices
  /// 0..samples-1), averaged into one BatchScore per assignment (mean
  /// objective / makespan / efficiency; nodes_used and feasibility are
  /// placement properties, taken from the first draw). With samples == 1
  /// on a deterministic scenario, prefer score_assignments(): same result,
  /// but its keys are shared with every other fixed-budget caller.
  std::vector<BatchScore> score_assignments_mean(
      const EnsembleShape& shape, const std::vector<Assignment>& assignments,
      std::uint64_t probe_steps, std::uint64_t samples);

  /// Simulated replays actually run (cache misses). Deterministic for a
  /// given call sequence, independent of the thread count.
  std::size_t evaluations() const;
  /// Scores served from the memo-cache (including within-batch duplicates).
  std::size_t cache_hits() const { return cache_hits_; }
  /// Of cache_hits(), scores served by the attached shared EvalCache tier
  /// (replays some other evaluator — possibly another process — paid for).
  std::size_t shared_hits() const { return shared_hits_; }
  /// Engine events dispatched across all replays (throughput metric).
  std::uint64_t events_processed() const;
  std::size_t cache_size() const { return cache_.size(); }
  int threads() const { return pool_.threads(); }

  /// Attach a shared evaluation store (campaign runs pass
  /// EvalCache::process()). Misses of the local memo consult it before
  /// simulating and fresh scores are published back, so placements scored
  /// by any evaluator — including one in a previous process, via
  /// EvalCache::load — are never re-simulated. Pass nullptr to detach.
  /// Keys are identical in both tiers, so attachment cannot change any
  /// score, only where it is found.
  void attach_shared_cache(EvalCache* shared) { shared_ = shared; }
  EvalCache* shared_cache() const { return shared_; }
  const plat::PlatformSpec& platform() const {
    return evaluators_.front().platform();
  }

 private:
  /// Convert candidate i of the batch into a spec to replay. Infeasible
  /// candidates throw wfe::SpecError from validate(). `seeds`, when
  /// non-null, gives each index a replay-seed override (the seeded-sample
  /// path); null replays under the scenario's base seed.
  std::vector<BatchScore> score_keyed(
      const std::vector<std::uint64_t>& keys,
      const std::vector<const rt::EnsembleSpec*>& specs,
      std::uint64_t probe_steps,
      const std::vector<std::uint64_t>* seeds = nullptr);

  exec::ThreadPool pool_;
  std::vector<Evaluator> evaluators_;  // one per worker, index = worker id
  std::uint64_t platform_fp_ = 0;
  std::uint64_t scenario_fp_ = 0;
  std::unordered_map<std::uint64_t, BatchScore> cache_;
  std::size_t cache_hits_ = 0;
  std::size_t shared_hits_ = 0;
  EvalCache* shared_ = nullptr;  // optional second tier; not owned
};

}  // namespace wfe::sched
