#include "sched/arm_stats.hpp"

#include <cmath>

#include "support/error.hpp"

namespace wfe::sched {

void ArmStats::add(double x) {
  WFE_REQUIRE(std::isfinite(x), "arm samples must be finite");
  ++n;
  const double delta = x - mean;
  mean += delta / static_cast<double>(n);
  m2 += delta * (x - mean);
}

double ArmStats::variance() const {
  if (n < 2) return 0.0;
  // m2 accumulates rounding dust that can dip infinitesimally below zero
  // on identical samples; clamp so callers can sqrt() it.
  const double v = m2 / static_cast<double>(n - 1);
  return v > 0.0 ? v : 0.0;
}

double bound_radius(const ArmStats& stats, double range, double log_term) {
  WFE_REQUIRE(stats.n >= 1, "bounds need at least one sample");
  WFE_REQUIRE(range >= 0.0 && log_term >= 0.0,
              "range and log term must be non-negative");
  const double n = static_cast<double>(stats.n);
  return std::sqrt(2.0 * stats.variance() * log_term / n) +
         3.0 * range / n;
}

double lower_bound(const ArmStats& stats, double range, double log_term) {
  return stats.mean - bound_radius(stats, range, log_term);
}

double upper_bound(const ArmStats& stats, double range, double log_term) {
  return stats.mean + bound_radius(stats, range, log_term);
}

double exploration_log(std::uint64_t issued, std::size_t arms) {
  return std::log(static_cast<double>(arms < 1 ? 1 : arms) *
                  (2.0 + static_cast<double>(issued)));
}

}  // namespace wfe::sched
