#include "sched/evaluator.hpp"

#include <algorithm>
#include <utility>

#include "support/error.hpp"
#include "support/hash.hpp"

namespace wfe::sched {

namespace {

rt::SimulatedOptions probe_options(rt::SimulatedOptions options = {}) {
  // Probe replays are an implementation detail of scoring: a planning
  // trace wants scheduler-level activity, not thousands of overlapping
  // candidate replays on the component tracks.
  options.trace_obs = false;
  return options;
}

}  // namespace

Evaluator::Evaluator(plat::PlatformSpec platform)
    : exec_(std::move(platform),
            probe_options()) {}  // the executor validates the platform

Evaluator::Evaluator(plat::PlatformSpec platform, rt::SimulatedOptions scenario)
    : exec_(std::move(platform), probe_options(std::move(scenario))) {}

std::uint64_t scenario_fingerprint(const rt::SimulatedOptions& options) {
  Fnv1a h;
  h.add(options.jitter_cv);
  h.add(options.seed);
  h.add(options.faults.digest());
  h.add(options.recovery.digest());
  return h.digest();
}

Evaluation Evaluator::score(const rt::EnsembleSpec& spec,
                            std::uint64_t probe_steps) const {
  return score_seeded(spec, probe_steps, exec_.options().seed);
}

Evaluation Evaluator::score_seeded(const rt::EnsembleSpec& spec,
                                   std::uint64_t probe_steps,
                                   std::uint64_t seed) const {
  WFE_REQUIRE(probe_steps >= 2, "probes need at least two steps");

  rt::EnsembleSpec adjusted;
  const rt::EnsembleSpec* probe = &spec;
  if (spec.n_steps != probe_steps) {
    adjusted = spec;  // copy only for the n_steps override
    adjusted.n_steps = probe_steps;
    probe = &adjusted;
  }
  const rt::ExecutionResult result = exec_.run_seeded(*probe, seed);
  events_ += result.events_processed;
  const rt::Assessment a = rt::assess(*probe, result);
  ++evaluations_;

  Evaluation out;
  out.objective = a.objective(core::IndicatorKind::kUAP);
  out.ensemble_makespan = a.ensemble_makespan_measured;
  out.nodes_used = a.total_nodes;
  out.min_member_efficiency = 1.0;
  for (const auto& m : a.members) {
    out.min_member_efficiency =
        std::min(out.min_member_efficiency, m.efficiency);
  }
  return out;
}

}  // namespace wfe::sched
