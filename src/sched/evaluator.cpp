#include "sched/evaluator.hpp"

#include <algorithm>

#include "runtime/simulated_executor.hpp"
#include "support/error.hpp"

namespace wfe::sched {

Evaluator::Evaluator(plat::PlatformSpec platform)
    : platform_(std::move(platform)) {
  platform_.validate();
}

Evaluation Evaluator::score(rt::EnsembleSpec spec,
                            std::uint64_t probe_steps) const {
  WFE_REQUIRE(probe_steps >= 2, "probes need at least two steps");
  spec.n_steps = probe_steps;
  rt::SimulatedExecutor exec(platform_);
  const rt::ExecutionResult result = exec.run(spec);
  const rt::Assessment a = rt::assess(spec, result);
  ++evaluations_;

  Evaluation out;
  out.objective = a.objective(core::IndicatorKind::kUAP);
  out.ensemble_makespan = a.ensemble_makespan_measured;
  out.nodes_used = a.total_nodes;
  out.min_member_efficiency = 1.0;
  for (const auto& m : a.members) {
    out.min_member_efficiency =
        std::min(out.min_member_efficiency, m.efficiency);
  }
  return out;
}

}  // namespace wfe::sched
