#include "sched/risk.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace wfe::sched {

RiskModel RiskModel::of(const PlanOptions& options,
                        std::uint64_t campaign_steps) {
  RiskModel risk;
  if (options.risk_aware) {
    risk.node_mtbf_s = options.faults.node_mtbf_s;
    risk.migration_cost_s = options.recovery.migration_cost_s;
    risk.restart_cost_s = options.recovery.restart_cost_s;
    risk.checkpoint_period = options.recovery.checkpoint_period;
    for (const res::NodeDown& down : options.faults.node_down) {
      risk.doomed.push_back(down.node);
    }
    std::sort(risk.doomed.begin(), risk.doomed.end());
    risk.doomed.erase(std::unique(risk.doomed.begin(), risk.doomed.end()),
                      risk.doomed.end());
  }
  risk.campaign_steps = campaign_steps;
  return risk;
}

double RiskModel::expected_failures(double t_campaign, int nodes_used) const {
  if (node_mtbf_s <= 0.0) return 0.0;
  return static_cast<double>(nodes_used) * t_campaign / node_mtbf_s;
}

double RiskModel::recovery_cost_s(double per_step) const {
  return migration_cost_s + restart_cost_s +
         per_step * 0.5 * static_cast<double>(checkpoint_period);
}

double RiskModel::expected_makespan(double probe_makespan,
                                    std::uint64_t probe_steps, int nodes_used,
                                    int doomed_used) const {
  const double per_step =
      probe_makespan / static_cast<double>(probe_steps);
  const double nominal = per_step * static_cast<double>(campaign_steps);
  if (!active()) return nominal;
  const double recovery = recovery_cost_s(per_step);
  const double failures = expected_failures(nominal, nodes_used) +
                          static_cast<double>(doomed_used);
  return nominal + failures * recovery;
}

double RiskModel::adjust_objective(double objective, double probe_makespan,
                                   std::uint64_t probe_steps, int nodes_used,
                                   int doomed_used) const {
  if (!active() || probe_makespan <= 0.0) return objective;
  const double per_step =
      probe_makespan / static_cast<double>(probe_steps);
  const double nominal = per_step * static_cast<double>(campaign_steps);
  const double expected = expected_makespan(probe_makespan, probe_steps,
                                            nodes_used, doomed_used);
  return objective * nominal / expected;
}

rt::SimulatedOptions probe_scenario(const PlanOptions& options) {
  rt::SimulatedOptions scenario;
  // Jitter is the only per-sample randomness a probe carries: probe_view()
  // strips stochastic crash/transient injection, and the deterministic
  // capacity effects it keeps (stragglers, degradation windows,
  // replication cost) are seeded by the fault spec, not the replay seed.
  scenario.jitter_cv = options.jitter_cv;
  scenario.faults = options.faults.probe_view();
  scenario.recovery = options.recovery;
  scenario.trace_obs = false;
  scenario.engine = options.engine;
  return scenario;
}

std::vector<ScoredCandidate> risk_scored(const std::vector<BatchScore>& batch,
                                         const RiskModel& risk,
                                         std::uint64_t probe_steps,
                                         const std::vector<int>& doomed_used) {
  std::vector<ScoredCandidate> out;
  out.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const BatchScore& s = batch[i];
    ScoredCandidate c = s.scored();
    if (c.feasible && risk.active()) {
      const int doomed = i < doomed_used.size() ? doomed_used[i] : 0;
      c.objective =
          risk.adjust_objective(c.objective, s.eval.ensemble_makespan,
                                probe_steps, s.eval.nodes_used, doomed);
    }
    out.push_back(c);
  }
  return out;
}

int doomed_used_after_avoidance(const RiskModel& risk, int nodes_used,
                                int pool) {
  int doomed_in_pool = 0;
  for (const int node : risk.doomed) {
    if (node >= 0 && node < pool) ++doomed_in_pool;
  }
  const int healthy = pool - doomed_in_pool;
  return std::max(0, nodes_used - healthy);
}

int doomed_used_of(const RiskModel& risk, const Assignment& assignment) {
  std::vector<int> used(assignment);
  std::sort(used.begin(), used.end());
  used.erase(std::unique(used.begin(), used.end()), used.end());
  int count = 0;
  for (const int node : used) {
    if (std::binary_search(risk.doomed.begin(), risk.doomed.end(), node)) {
      ++count;
    }
  }
  return count;
}

Assignment avoid_doomed(const Assignment& assignment, int pool,
                        const RiskModel& risk) {
  if (risk.doomed.empty()) return assignment;
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(pool));
  for (int node = 0; node < pool; ++node) {
    if (!std::binary_search(risk.doomed.begin(), risk.doomed.end(), node)) {
      order.push_back(node);
    }
  }
  for (const int node : risk.doomed) {
    if (node >= 0 && node < pool) order.push_back(node);
  }
  Assignment mapped;
  mapped.reserve(assignment.size());
  for (const int node : assignment) {
    WFE_REQUIRE(node >= 0 && node < static_cast<int>(order.size()),
                "canonical node id outside the pool");
    mapped.push_back(order[static_cast<std::size_t>(node)]);
  }
  return mapped;
}

int effective_pool(const ResourceBudget& budget, const PlanOptions& options) {
  WFE_REQUIRE(options.spare_nodes >= 0,
              "spare-node count must be non-negative");
  const int pool = budget.node_pool - options.spare_nodes;
  if (pool < 1) {
    throw SpecError(
        "spare-node headroom leaves no node to place the ensemble on");
  }
  return pool;
}

}  // namespace wfe::sched
