// EvalCache: a process-wide, optionally disk-persisted store of placement
// evaluations.
//
// BatchEvaluator's memo-cache (PR 2) deduplicates within one evaluator's
// lifetime. Campaign runs build many evaluators — one per figure/table
// unit — and re-score overlapping (platform, placement, demand) probes
// across units and across repeated campaign regenerations. EvalCache is
// the shared tier behind those local memos: keys are the same FNV-1a
// digests (platform fingerprint + probe steps + canonical placement +
// demand digest, see batch_evaluator.cpp::memo_key), values are the
// Evaluation plus the feasibility verdict.
//
// Persistence is a line-oriented text format ("wfens-eval-cache 1"), one
// entry per line, written sorted by key via tmp+rename so concurrent
// writers cannot tear the file and repeated saves of equal content are
// byte-identical. Doubles round-trip through %.17g, so a reloaded entry
// reproduces the in-memory score bit-for-bit. Invalidation is automatic:
// any change to the platform, the cost-model constants, or the probe depth
// changes the key, so stale entries are simply never looked up again (and
// can be dropped by deleting the file).
//
// Thread safety: all operations take one leaf-ranked mutex
// (support::kRankEvalCache); callers never hold it while simulating.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "sched/evaluator.hpp"
#include "support/lock_rank.hpp"

namespace wfe::sched {

/// One cached scoring outcome. `feasible == false` records that the
/// placement failed spec validation — remembering that is as valuable as
/// remembering a score, since validation also costs a replay slot.
struct CachedEval {
  bool feasible = false;
  Evaluation eval;
};

class EvalCache {
 public:
  EvalCache() = default;
  EvalCache(const EvalCache&) = delete;
  EvalCache& operator=(const EvalCache&) = delete;

  /// Look up `key`; copies the entry into `*out` and returns true on a hit.
  bool lookup(std::uint64_t key, CachedEval* out) const;

  /// Insert (or overwrite) an entry.
  void insert(std::uint64_t key, const CachedEval& value);

  std::size_t size() const;
  /// Hits served since construction (lookup() returning true).
  std::size_t hits() const;

  /// Merge entries from a cache file into memory. Returns the number of
  /// entries read; a missing file is an empty cache (returns 0). Throws
  /// wfe::SerializationError on a malformed or wrong-version file.
  std::size_t load(const std::string& path);

  /// Write every entry to `path` (sorted by key, tmp+rename). Returns the
  /// number of entries written. Throws wfe::Error when unwritable.
  std::size_t save(const std::string& path) const;

  /// Default on-disk location: $WFENS_CACHE if set, else $HOME/.wfens_cache,
  /// else ".wfens_cache" in the working directory.
  static std::string default_path();

  /// The process-wide instance shared by campaign runs.
  static EvalCache& process();

 private:
  using Mutex = support::RankedMutex<support::kRankEvalCache>;

  mutable Mutex mutex_;
  // std::map: iteration is key-sorted, which save() relies on for
  // deterministic bytes.
  std::map<std::uint64_t, CachedEval> entries_;
  mutable std::size_t hits_ = 0;
};

}  // namespace wfe::sched
