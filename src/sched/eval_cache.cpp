#include "sched/eval_cache.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "support/error.hpp"
#include "support/str.hpp"

namespace wfe::sched {

namespace {

constexpr const char* kMagic = "wfens-eval-cache";
constexpr int kVersion = 1;

}  // namespace

bool EvalCache::lookup(std::uint64_t key, CachedEval* out) const {
  const support::RankGuard<Mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  *out = it->second;
  ++hits_;
  return true;
}

void EvalCache::insert(std::uint64_t key, const CachedEval& value) {
  const support::RankGuard<Mutex> lock(mutex_);
  entries_[key] = value;
}

std::size_t EvalCache::size() const {
  const support::RankGuard<Mutex> lock(mutex_);
  return entries_.size();
}

std::size_t EvalCache::hits() const {
  const support::RankGuard<Mutex> lock(mutex_);
  return hits_;
}

std::size_t EvalCache::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return 0;  // no cache yet: cold start, not an error
  std::string magic;
  int version = 0;
  in >> magic >> version;
  if (magic != kMagic || version != kVersion) {
    throw SerializationError(
        strprintf("%s: not a wfens-eval-cache v%d file", path.c_str(),
                  kVersion));
  }
  std::size_t read = 0;
  std::string line;
  std::getline(in, line);  // consume the header's newline
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::uint64_t key = 0;
    int feasible = 0;
    CachedEval entry;
    // %la scans the hex-float fields save() emits: exact round-trip with
    // no decimal detour.
    if (std::sscanf(line.c_str(),
                    "%" SCNx64 " %d %la %la %la %d", &key, &feasible,
                    &entry.eval.objective, &entry.eval.ensemble_makespan,
                    &entry.eval.min_member_efficiency,
                    &entry.eval.nodes_used) != 6) {
      throw SerializationError(
          strprintf("%s: malformed cache line: %s", path.c_str(),
                    line.c_str()));
    }
    entry.feasible = feasible != 0;
    {
      const support::RankGuard<Mutex> lock(mutex_);
      entries_[key] = entry;
    }
    ++read;
  }
  return read;
}

std::size_t EvalCache::save(const std::string& path) const {
  std::ostringstream body;
  std::size_t written = 0;
  {
    const support::RankGuard<Mutex> lock(mutex_);
    body << kMagic << ' ' << kVersion << '\n';
    for (const auto& [key, entry] : entries_) {
      body << strprintf("%016" PRIx64 " %d %a %a %a %d\n", key,
                        entry.feasible ? 1 : 0, entry.eval.objective,
                        entry.eval.ensemble_makespan,
                        entry.eval.min_member_efficiency,
                        entry.eval.nodes_used);
      ++written;
    }
  }
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw Error(strprintf("cannot write %s", tmp.c_str()));
    out << body.str();
    if (!out.flush()) {
      throw Error(strprintf("short write to %s", tmp.c_str()));
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw Error(strprintf("cannot move %s into place", tmp.c_str()));
  }
  return written;
}

std::string EvalCache::default_path() {
  if (const char* env = std::getenv("WFENS_CACHE")) return env;
  if (const char* home = std::getenv("HOME")) {
    return std::string(home) + "/.wfens_cache";
  }
  return ".wfens_cache";
}

EvalCache& EvalCache::process() {
  static EvalCache instance;
  return instance;
}

}  // namespace wfe::sched
