// Per-arm sample statistics and confidence bounds for best-arm search.
//
// The adaptive scheduler (bai.hpp) treats each candidate placement as a
// bandit arm whose reward is the stochastic probe objective. This module
// holds the arm-side math, kept separate so the fuzz tests can exercise it
// against reference implementations without replaying anything:
//
//  * ArmStats — streaming mean/variance (Welford's algorithm), numerically
//    stable over any sample count and bitwise-deterministic for a fixed
//    insertion order (the search always feeds samples in seed order).
//  * bound_radius — an empirical-Bernstein-style confidence radius
//        sqrt(2 * var * L / n) + 3 * range / n
//    where `range` is the caller's estimate of the reward-noise spread
//    (the search passes the widest within-arm sample spread observed, not
//    the cross-arm spread — cross-arm differences are signal, not noise)
//    and `L` the exploration log-term. The variance term carries the
//    union-bound log and dominates once an arm is well sampled; the
//    3*range/n term corrects for a small-sample variance estimate that
//    can be near zero by luck, without the proof-grade L multiplier that
//    would keep practical budgets from ever separating arms. Zero
//    variance and zero range give a zero radius — the degenerate
//    deterministic case where one sample decides an arm. The search
//    additionally never eliminates an arm before its second sample, so a
//    one-sample arm cannot die on a single unlucky draw even when the
//    noise estimate is still tiny.
//  * exploration_log — the L schedule shared by search and tests:
//    log(arms * (2 + issued)), growing with samples issued and arm count
//    so the union bound over all (arm, round) confidence events stays
//    conservative without the proof-grade constant factors that would
//    keep practical budgets from ever separating arms.
//
// Everything here is plain value math: no locks (the search updates stats
// only on the planning thread), no RNG, no replay types. The wfens_lint
// rule `arm-state-outside-sched` keeps these types inside src/sched/.
#pragma once

#include <cstddef>
#include <cstdint>

namespace wfe::sched {

/// Streaming moments of one arm's sampled objective.
struct ArmStats {
  std::uint64_t n = 0;  ///< samples folded in
  double mean = 0.0;    ///< empirical mean
  double m2 = 0.0;      ///< sum of squared deviations (Welford's M2)

  /// Fold one sample in (Welford update).
  void add(double x);

  /// Unbiased sample variance (n-1 denominator); 0.0 until two samples.
  double variance() const;
};

/// Empirical-Bernstein confidence radius for an arm with `stats`, given
/// the reward-noise spread estimate `range` (the search passes the widest
/// within-arm max - min observed so far) and exploration term `log_term`.
/// Requires stats.n >= 1.
double bound_radius(const ArmStats& stats, double range, double log_term);

/// Lower/upper confidence bounds: mean -/+ bound_radius.
double lower_bound(const ArmStats& stats, double range, double log_term);
double upper_bound(const ArmStats& stats, double range, double log_term);

/// The exploration log-term after `issued` total samples across `arms`
/// arms: log(arms * (2 + issued)). Monotonic in both, so bounds only
/// widen relative to a fixed sample count as the search progresses —
/// elimination decisions already taken would also be taken later.
double exploration_log(std::uint64_t issued, std::size_t arms);

}  // namespace wfe::sched
