// Resource-demand profiles of workload stages.
//
// A ComputeProfile describes what one computational stage (a simulation
// stage S or an analysis stage A, Section 3.1) asks of a node: how many
// instructions, how cache-hungry the instruction stream is, how large the
// working set is, and how well the stage scales across cores. The platform
// turns a profile plus the current co-location state into a duration and a
// set of hardware counters.
#pragma once

#include <string>

namespace wfe::plat {

struct ComputeProfile {
  /// Total dynamic instructions of the stage (across all its threads).
  double instructions = 0.0;
  /// Per-core instructions-per-cycle when running contention-free and
  /// never missing in the LLC.
  double base_ipc = 1.6;
  /// LLC references issued per instruction.
  double llc_refs_per_instr = 0.02;
  /// Contention-free LLC miss ratio (misses / references).
  double base_miss_ratio = 0.05;
  /// Resident working set competing for LLC capacity (bytes).
  double working_set_bytes = 0.0;
  /// How strongly this stage suffers when competitors evict its lines,
  /// in [0, 1]. Data-intensive analyses are near 1; compute-bound
  /// simulations are small.
  double cache_sensitivity = 0.3;
  /// Amdahl parallel fraction in [0, 1]: effective speedup on c cores is
  /// 1 / ((1 - f) + f / c).
  double parallel_fraction = 0.95;
};

/// Amdahl's-law effective core count for `cores` cores and parallel
/// fraction `f`: the factor by which the stage's serial time shrinks.
inline double amdahl_speedup(int cores, double f) {
  if (cores <= 1) return 1.0;
  return 1.0 / ((1.0 - f) + f / static_cast<double>(cores));
}

}  // namespace wfe::plat
