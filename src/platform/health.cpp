#include "platform/health.hpp"

#include <cmath>

#include "support/error.hpp"

namespace wfe::plat {

const char* to_string(NodeHealth h) {
  switch (h) {
    case NodeHealth::kHealthy:
      return "healthy";
    case NodeHealth::kDegraded:
      return "degraded";
    case NodeHealth::kDown:
      return "down";
  }
  return "?";
}

HealthTracker::HealthTracker(int node_count) {
  WFE_REQUIRE(node_count > 0, "health tracker needs at least one node");
  state_.assign(static_cast<std::size_t>(node_count), NodeHealth::kHealthy);
}

NodeHealth HealthTracker::state(int node) const {
  WFE_REQUIRE(node >= 0 && node < node_count(),
              "node index outside the health tracker's platform");
  return state_[static_cast<std::size_t>(node)];
}

void HealthTracker::transition(double t_s, int node, NodeHealth to) {
  WFE_REQUIRE(std::isfinite(t_s) && t_s >= 0.0,
              "health transition time must be finite and non-negative");
  const NodeHealth from = state(node);
  if (from == to) return;
  WFE_REQUIRE(from != NodeHealth::kDown,
              "a permanently failed node cannot change health again");
  state_[static_cast<std::size_t>(node)] = to;
  if (to == NodeHealth::kDown) ++down_count_;
  events_.push_back(HealthEvent{t_s, node, from, to});
}

std::vector<int> HealthTracker::up_nodes() const {
  std::vector<int> up;
  up.reserve(state_.size() - down_count_);
  for (int n = 0; n < node_count(); ++n) {
    if (state_[static_cast<std::size_t>(n)] != NodeHealth::kDown) {
      up.push_back(n);
    }
  }
  return up;
}

}  // namespace wfe::plat
