#include "platform/interference.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/error.hpp"

namespace wfe::plat {

namespace {

/// Contention-free cycles-per-instruction of a profile: the base pipeline
/// CPI plus the stall contribution of its baseline LLC misses.
double baseline_cpi(const NodeSpec& node, const ComputeProfile& p) {
  return 1.0 / p.base_ipc +
         p.llc_refs_per_instr * p.base_miss_ratio * node.llc_miss_penalty_cycles;
}

/// Instruction throughput (instructions/s) of a stage given its CPI and
/// core allocation, summed over its cores.
double instr_rate(const NodeSpec& node, const ComputeProfile& p, int cores,
                  double cpi) {
  return node.core_freq_hz * amdahl_speedup(cores, p.parallel_fraction) / cpi;
}

/// Memory-bandwidth demand (bytes/s) of a stage missing at ratio m.
double bw_demand(const NodeSpec& node, const ComputeProfile& p, int cores,
                 double cpi, double m) {
  return instr_rate(node, p, cores, cpi) * p.llc_refs_per_instr * m *
         node.cacheline_bytes;
}

}  // namespace

double cache_pressure(const PlatformSpec& spec, double competitor_ws_bytes) {
  WFE_REQUIRE(competitor_ws_bytes >= 0.0, "working set must be non-negative");
  if (!spec.interference.enabled) return 0.0;
  const double scaled =
      spec.interference.capacity_sharing_strength * competitor_ws_bytes;
  return scaled / (scaled + spec.node.llc_bytes);
}

double effective_miss_ratio(const PlatformSpec& spec,
                            const ComputeProfile& victim,
                            double competitor_ws_bytes) {
  const double pressure = cache_pressure(spec, competitor_ws_bytes);
  const double headroom =
      std::max(0.0, spec.interference.max_miss_ratio - victim.base_miss_ratio);
  return std::min(spec.interference.max_miss_ratio,
                  victim.base_miss_ratio +
                      headroom * victim.cache_sensitivity * pressure);
}

void compute_stage_costs_batch(const PlatformSpec& spec,
                               std::span<const ActiveStage> stages,
                               std::span<StageCost> out) {
  WFE_REQUIRE(stages.size() == out.size(),
              "batch pricing needs one output slot per stage");
  const NodeSpec& node = spec.node;
  const std::size_t n = stages.size();

  // Victim-independent per-stage terms, hoisted once instead of once per
  // victim×competitor pair: Amdahl effective-speedup, inverse base IPC,
  // working set. Each is the exact value the scalar path computes inline,
  // so reusing them cannot perturb a single bit of the result.
  std::vector<double> amdahl(n);
  std::vector<double> inv_ipc(n);
  std::vector<double> ws(n);
  for (std::size_t i = 0; i < n; ++i) {
    WFE_REQUIRE(stages[i].cores > 0, "a compute stage needs at least one core");
    WFE_REQUIRE(stages[i].profile.instructions >= 0.0,
                "instruction count must be >= 0");
    amdahl[i] =
        amdahl_speedup(stages[i].cores, stages[i].profile.parallel_fraction);
    inv_ipc[i] = 1.0 / stages[i].profile.base_ipc;
    ws[i] = stages[i].profile.working_set_bytes;
  }

  // bw_demand() with the Amdahl factor pre-computed; the expression shape
  // (association order) mirrors instr_rate()*refs*m*cacheline exactly.
  const auto demand = [&node](const ComputeProfile& p, double a, double cpi,
                              double m) {
    return node.core_freq_hz * a / cpi * p.llc_refs_per_instr * m *
           node.cacheline_bytes;
  };

  for (std::size_t v = 0; v < n; ++v) {
    const ComputeProfile& victim = stages[v].profile;
    // Competitor working set, accumulated in set order skipping the victim
    // — the same summation order the scalar path sees, so the rounding is
    // identical.
    double other_ws = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j != v) other_ws += ws[j];
    }
    const double m_eff = effective_miss_ratio(spec, victim, other_ws);
    const double cpi_v = inv_ipc[v] + victim.llc_refs_per_instr * m_eff *
                                          node.llc_miss_penalty_cycles;
    double total_demand = demand(victim, amdahl[v], cpi_v, m_eff);
    if (spec.interference.enabled) {
      for (std::size_t j = 0; j < n; ++j) {
        if (j == v) continue;
        const ComputeProfile& c = stages[j].profile;
        const double ws_seen = other_ws - ws[j] + ws[v];
        const double m_c = effective_miss_ratio(spec, c, ws_seen);
        const double cpi_c = inv_ipc[j] + c.llc_refs_per_instr * m_c *
                                              node.llc_miss_penalty_cycles;
        total_demand += demand(c, amdahl[j], cpi_c, m_c);
      }
    }
    const double bw_factor =
        spec.interference.enabled
            ? std::max(1.0, total_demand / node.mem_bw_bytes_per_s)
            : 1.0;
    const double cpi_eff = inv_ipc[v] + victim.llc_refs_per_instr * m_eff *
                                            node.llc_miss_penalty_cycles *
                                            bw_factor;
    const double cpi_free = inv_ipc[v] + victim.llc_refs_per_instr *
                                             victim.base_miss_ratio *
                                             node.llc_miss_penalty_cycles;
    StageCost& cost = out[v];
    cost = StageCost{};
    cost.effective_miss_ratio = m_eff;
    cost.slowdown = cpi_eff / cpi_free;
    cost.seconds =
        victim.instructions * cpi_eff / (node.core_freq_hz * amdahl[v]);
    cost.counters.instructions = victim.instructions;
    cost.counters.cycles = victim.instructions * cpi_eff;
    cost.counters.llc_references =
        victim.instructions * victim.llc_refs_per_instr;
    cost.counters.llc_misses = cost.counters.llc_references * m_eff;
  }
}

StageCost compute_stage_cost(const PlatformSpec& spec,
                             const ComputeProfile& victim, int cores,
                             std::span<const ActiveStage> competitors) {
  WFE_REQUIRE(cores > 0, "a compute stage needs at least one core");
  WFE_REQUIRE(victim.instructions >= 0.0, "instruction count must be >= 0");
  const NodeSpec& node = spec.node;

  // Cache pressure on the victim from everyone else on the node.
  double other_ws = 0.0;
  for (const ActiveStage& c : competitors) other_ws += c.profile.working_set_bytes;
  const double m_eff = effective_miss_ratio(spec, victim, other_ws);

  // First pass: provisional CPIs with cache effects only, used to estimate
  // aggregate memory-bandwidth demand (avoids a fixed-point iteration; the
  // approximation is exact when bandwidth is unsaturated).
  auto cache_cpi = [&](const ComputeProfile& p, double m) {
    return 1.0 / p.base_ipc +
           p.llc_refs_per_instr * m * node.llc_miss_penalty_cycles;
  };

  double total_demand = bw_demand(node, victim, cores, cache_cpi(victim, m_eff), m_eff);
  if (spec.interference.enabled) {
    for (const ActiveStage& c : competitors) {
      // Each competitor's own pressure includes the victim and the other
      // competitors.
      const double ws_seen_by_c =
          other_ws - c.profile.working_set_bytes + victim.working_set_bytes;
      const double m_c = effective_miss_ratio(spec, c.profile, ws_seen_by_c);
      total_demand +=
          bw_demand(node, c.profile, c.cores, cache_cpi(c.profile, m_c), m_c);
    }
  }
  const double bw_factor =
      spec.interference.enabled
          ? std::max(1.0, total_demand / node.mem_bw_bytes_per_s)
          : 1.0;

  // Final CPI: pipeline + (possibly bandwidth-stretched) miss stalls.
  const double cpi_eff = 1.0 / victim.base_ipc +
                         victim.llc_refs_per_instr * m_eff *
                             node.llc_miss_penalty_cycles * bw_factor;
  const double cpi_free = baseline_cpi(node, victim);

  StageCost cost;
  cost.effective_miss_ratio = m_eff;
  cost.slowdown = cpi_eff / cpi_free;
  const double speedup = amdahl_speedup(cores, victim.parallel_fraction);
  cost.seconds = victim.instructions * cpi_eff / (node.core_freq_hz * speedup);
  cost.counters.instructions = victim.instructions;
  cost.counters.cycles = victim.instructions * cpi_eff;
  cost.counters.llc_references = victim.instructions * victim.llc_refs_per_instr;
  cost.counters.llc_misses = cost.counters.llc_references * m_eff;
  return cost;
}

}  // namespace wfe::plat
