#include "platform/topology.hpp"

#include <cmath>

#include "support/error.hpp"

namespace wfe::plat {

int hop_count(const InterconnectSpec& net, int src_node, int dst_node) {
  WFE_REQUIRE(src_node >= 0 && dst_node >= 0, "node indexes are non-negative");
  if (src_node == dst_node) return 0;
  const int src_group = src_node / net.group_size;
  const int dst_group = dst_node / net.group_size;
  return src_group == dst_group ? net.intra_group_hops
                                : net.inter_group_hops;
}

double network_transfer_time(const InterconnectSpec& net, int src_node,
                             int dst_node, double bytes) {
  WFE_REQUIRE(src_node != dst_node,
              "network transfer requires distinct nodes; use local_copy_time");
  WFE_REQUIRE(bytes >= 0.0, "transfer size must be non-negative");
  const int hops = hop_count(net, src_node, dst_node);
  const double latency = net.latency_per_hop_s * static_cast<double>(hops);
  const double messages =
      bytes > 0.0 ? std::ceil(bytes / net.message_bytes) : 0.0;
  const double payload =
      bytes / (net.link_bw_bytes_per_s * net.stream_efficiency);
  return latency + messages * net.per_message_overhead_s + payload;
}

double local_copy_time(const NodeSpec& node, double bytes) {
  WFE_REQUIRE(bytes >= 0.0, "copy size must be non-negative");
  return bytes / node.copy_bw_bytes_per_s;
}

}  // namespace wfe::plat
