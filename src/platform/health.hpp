// Per-node health state machine for node-level fault domains.
//
// The platform spec describes the machine as provisioned; this module tracks
// what each node is worth *right now* during one execution: fully healthy,
// degraded (straggling compute or in a network-degradation window — still
// correct, just slower), or permanently down (a whole-node fault domain has
// failed: its cores are gone and any data staged only there is lost).
//
// The tracker is purely observational — transitions are recorded by the
// executor as it discovers them from the deterministic FaultInjector
// timeline, so a zero-fault run records nothing and stays bit-identical to a
// build without this module. Schedulers consult `up_nodes()` when
// re-planning around a death; tools replay `events()` for reporting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wfe::plat {

/// Health of one node at a point in virtual time.
enum class NodeHealth : std::uint8_t {
  kHealthy = 0,   ///< full service
  kDegraded = 1,  ///< straggling or network-degraded: slower, not wrong
  kDown = 2,      ///< permanently failed; never returns to service
};

const char* to_string(NodeHealth h);

/// One recorded transition of one node.
struct HealthEvent {
  double t_s = 0.0;  ///< virtual time of the transition
  int node = 0;
  NodeHealth from = NodeHealth::kHealthy;
  NodeHealth to = NodeHealth::kHealthy;
};

/// Tracks the health of every node of one platform across one execution.
class HealthTracker {
 public:
  explicit HealthTracker(int node_count);

  int node_count() const { return static_cast<int>(state_.size()); }

  NodeHealth state(int node) const;

  /// Record a transition at virtual time `t_s`. Transitions out of kDown
  /// are rejected (a dead fault domain never rejoins); recording the
  /// current state again is a no-op (no event emitted). Events must be
  /// recorded in non-decreasing time order per node.
  void transition(double t_s, int node, NodeHealth to);

  /// Nodes currently not kDown, ascending — the capacity a re-planner may
  /// still place work on.
  std::vector<int> up_nodes() const;

  std::size_t down_count() const { return down_count_; }

  /// All transitions recorded so far, in recording order.
  const std::vector<HealthEvent>& events() const { return events_; }

 private:
  std::vector<NodeHealth> state_;
  std::vector<HealthEvent> events_;
  std::size_t down_count_ = 0;
};

}  // namespace wfe::plat
