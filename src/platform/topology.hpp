// Interconnect topology: hop counts and transfer-time model.
//
// Cori's Aries dragonfly gives near-uniform latency inside a group and a
// few extra hops across groups. We reproduce that coarse structure: the hop
// count between two nodes depends only on whether they share a group, and a
// transfer pays per-hop latency, per-message software overhead (the
// DIMES-style index lookup / registration cost) and payload time at an
// effective stream bandwidth.
#pragma once

#include "platform/spec.hpp"

namespace wfe::plat {

/// Hop count between two node indexes under minimal dragonfly routing.
/// Same node -> 0 hops.
int hop_count(const InterconnectSpec& net, int src_node, int dst_node);

/// One-way time to move `bytes` from src_node to dst_node over the network.
/// src_node == dst_node is invalid here (local movement is a memory copy and
/// is priced by the node's copy bandwidth, not the network).
double network_transfer_time(const InterconnectSpec& net, int src_node,
                             int dst_node, double bytes);

/// Time to stage `bytes` within one node's memory (memcpy-class).
double local_copy_time(const NodeSpec& node, double bytes);

}  // namespace wfe::plat
