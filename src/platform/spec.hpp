// Platform specification: the modelled HPC machine.
//
// This is the substitute for the paper's testbed, Cori (Cray XC40): compute
// nodes with a fixed core count, a shared last-level cache and finite memory
// bandwidth, connected by a dragonfly-style interconnect. Every constant of
// the interference and transfer models lives here so experiments can pin,
// sweep, or disable them (see bench_ablation_interference).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace wfe::plat {

/// One compute node. Defaults approximate a Cori Haswell node: 2x16 cores,
/// 2.3 GHz, 2x40 MiB LLC, ~120 GB/s STREAM-like memory bandwidth.
struct NodeSpec {
  int cores = 32;
  double core_freq_hz = 2.3e9;
  /// Shared last-level cache capacity per node.
  double llc_bytes = 80.0 * 1024 * 1024;
  /// Sustainable node memory bandwidth (bytes/s).
  double mem_bw_bytes_per_s = 120.0e9;
  /// In-memory copy bandwidth for local staging (bytes/s). Local DIMES-style
  /// writes/reads are memcpy-class operations.
  double copy_bw_bytes_per_s = 8.0e9;
  /// Cache line size used to convert misses into bandwidth demand.
  double cacheline_bytes = 64.0;
  /// Average stall penalty of one LLC miss, in core cycles.
  double llc_miss_penalty_cycles = 180.0;
};

/// Dragonfly-inspired interconnect. Nodes are grouped; intra-group messages
/// traverse fewer hops than inter-group ones.
struct InterconnectSpec {
  /// One-way small-message latency per hop (seconds).
  double latency_per_hop_s = 1.2e-6;
  /// Peak point-to-point link bandwidth (bytes/s).
  double link_bw_bytes_per_s = 10.0e9;
  /// Nodes per dragonfly group.
  int group_size = 384;
  /// Hop count within a group / across groups (minimal routing).
  int intra_group_hops = 2;
  int inter_group_hops = 5;
  /// Fixed software overhead per RDMA/get request (seconds). In-memory
  /// staging systems such as DIMES issue index lookups and registration
  /// per request; this is their per-message cost.
  double per_message_overhead_s = 8.0e-6;
  /// Maximum payload per message; larger transfers are pipelined in chunks.
  double message_bytes = 1.0 * 1024 * 1024;
  /// Effective fraction of link bandwidth achievable by a single staging
  /// stream (protocol + packetization efficiency).
  double stream_efficiency = 0.65;
  /// Relative compute slowdown per additional node when one component
  /// spans several nodes (halo exchanges / collectives crossing the
  /// network instead of shared memory): a component on n nodes runs
  /// (1 + penalty * (n - 1)) times longer than the same allocation on one
  /// big node.
  double cross_node_compute_penalty = 0.06;
};

/// Software costs of the staging layer itself (DIMES-like index updates,
/// buffer registration), on top of the raw copy/transfer time.
struct StagingCostSpec {
  /// Fixed cost of publishing one chunk into the local staging area.
  double write_overhead_s = 250.0e-6;
  /// Fixed cost of locating and fetching one staged chunk (metadata query).
  double read_overhead_s = 250.0e-6;
};

/// Knobs of the co-location interference model (see DESIGN.md Section 7).
struct InterferenceSpec {
  /// Master switch; when false co-located components do not disturb each
  /// other (ablation baseline).
  bool enabled = true;
  /// Upper bound of the achievable miss ratio under full cache pressure.
  double max_miss_ratio = 0.95;
  /// Scales how strongly a competitor's working set evicts a victim's lines.
  double capacity_sharing_strength = 1.0;
};

/// The whole machine.
struct PlatformSpec {
  std::string name = "modelled-cluster";
  int node_count = 8;
  NodeSpec node;
  InterconnectSpec interconnect;
  StagingCostSpec staging;
  InterferenceSpec interference;

  /// Throws wfe::SpecError if any field is out of range.
  void validate() const;

  /// Deterministic digest of every model constant. Two platforms with equal
  /// fingerprints price stages identically, which is what lets evaluation
  /// caches (sched::BatchEvaluator) key memoized scores on it.
  std::uint64_t fingerprint() const;
};

}  // namespace wfe::plat
