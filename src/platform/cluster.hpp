// Stateful cluster: tracks which compute stages are active on every node and
// prices new stages against that state.
//
// The SimulatedExecutor drives it with a begin/end protocol:
//   auto cost = cluster.stage_cost(node, profile, cores);   // price first
//   auto h = cluster.begin_compute(node, profile, cores);   // then occupy
//   ... virtual time advances by cost.seconds ...
//   cluster.end_compute(h);
//
// The price of a stage is fixed when it starts, based on the competitors
// active at that instant (a standard discrete-event approximation; the
// steady-state phases the paper's model relies on make it accurate because
// co-location sets are stable across in situ steps).
//
// Because co-location sets only change at begin/end_compute (residents are
// registered once per run and move only on migration), each node carries an
// occupancy epoch and a cached batch pricing of all its residents: the hot
// replay path asks for `resident_cost(handle)`, which is a lookup unless the
// node's occupancy changed since the last pricing — see PERF.md §7.
#pragma once

#include <cstdint>
#include <vector>

#include "platform/interference.hpp"
#include "platform/spec.hpp"

namespace wfe::plat {

class Cluster {
 public:
  /// Validates and stores the spec.
  explicit Cluster(PlatformSpec spec);

  const PlatformSpec& spec() const { return spec_; }
  int node_count() const { return spec_.node_count; }

  /// Price a compute stage if it started now on `node` with `cores` cores,
  /// against the currently active competitors on that node.
  StageCost stage_cost(int node, const ComputeProfile& profile,
                       int cores) const;

  /// Same, but ignore the active stage `self` — used when a component is
  /// registered as a long-lived node resident and prices its own stages
  /// against the *other* residents (a resident's working set keeps
  /// occupying the shared LLC even while it briefly idles, so residency,
  /// not instantaneous activity, is what drives steady-state contention).
  StageCost stage_cost_excluding(int node, const ComputeProfile& profile,
                                 int cores, std::uint64_t self) const;

  /// Cached price of the active stage `handle` against the other active
  /// stages of its node. Bit-identical to
  /// `stage_cost_excluding(node, profile, cores, handle)` with the handle's
  /// registered profile and cores; the node's whole co-location set is
  /// priced in one `compute_stage_costs_batch` pass the first time any of
  /// its residents asks after an occupancy change, then served from cache.
  const StageCost& resident_cost(std::uint64_t handle) const;

  /// Mark a compute stage active; returns a handle for end_compute.
  std::uint64_t begin_compute(int node, const ComputeProfile& profile,
                              int cores);

  /// Mark a stage inactive. Throws InvalidArgument on an unknown handle.
  void end_compute(std::uint64_t handle);

  /// Monotonic counter bumped every time `node`'s co-location set changes
  /// (begin/end_compute). Cached pricings are valid exactly as long as this
  /// does not move.
  std::uint64_t occupancy_epoch(int node) const;

  /// Time to move `bytes` between two placements: same node -> memory copy;
  /// different nodes -> network transfer (topology model).
  double transfer_time(int src_node, int dst_node, double bytes) const;

  /// Number of active compute stages on a node.
  std::size_t active_count(int node) const;

  /// Sum of cores of active compute stages on a node.
  int active_cores(int node) const;

  /// True if starting `cores` more on `node` would exceed its core count.
  bool would_oversubscribe(int node, int cores) const;

 private:
  void check_node(int node) const;
  const ActiveStage& stage_of(std::uint64_t handle) const {
    return slots_[static_cast<std::size_t>(handle - 1)].stage;
  }

  PlatformSpec spec_;
  struct Record {
    int node = 0;
    bool live = false;
    ActiveStage stage;
  };
  /// Slot storage indexed by handle-1; handles are never reused, so a slot
  /// with live == false stays a tombstone. Replays create a fresh Cluster
  /// each, and residents register once per run, so growth is bounded by the
  /// partition count plus migrations — no free-list needed.
  std::vector<Record> slots_;
  std::vector<std::vector<std::uint64_t>> by_node_;
  /// Per-node occupancy epochs, starting at 1 so the never-priced cache
  /// sentinel (epoch 0) is always stale.
  std::vector<std::uint64_t> node_epoch_;
  struct NodeCache {
    std::uint64_t epoch = 0;
    std::vector<ActiveStage> stages;
    std::vector<StageCost> costs;
  };
  mutable std::vector<NodeCache> cache_;
};

}  // namespace wfe::plat
