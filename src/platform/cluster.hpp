// Stateful cluster: tracks which compute stages are active on every node and
// prices new stages against that state.
//
// The SimulatedExecutor drives it with a begin/end protocol:
//   auto cost = cluster.stage_cost(node, profile, cores);   // price first
//   auto h = cluster.begin_compute(node, profile, cores);   // then occupy
//   ... virtual time advances by cost.seconds ...
//   cluster.end_compute(h);
//
// The price of a stage is fixed when it starts, based on the competitors
// active at that instant (a standard discrete-event approximation; the
// steady-state phases the paper's model relies on make it accurate because
// co-location sets are stable across in situ steps).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "platform/interference.hpp"
#include "platform/spec.hpp"

namespace wfe::plat {

class Cluster {
 public:
  /// Validates and stores the spec.
  explicit Cluster(PlatformSpec spec);

  const PlatformSpec& spec() const { return spec_; }
  int node_count() const { return spec_.node_count; }

  /// Price a compute stage if it started now on `node` with `cores` cores,
  /// against the currently active competitors on that node.
  StageCost stage_cost(int node, const ComputeProfile& profile,
                       int cores) const;

  /// Same, but ignore the active stage `self` — used when a component is
  /// registered as a long-lived node resident and prices its own stages
  /// against the *other* residents (a resident's working set keeps
  /// occupying the shared LLC even while it briefly idles, so residency,
  /// not instantaneous activity, is what drives steady-state contention).
  StageCost stage_cost_excluding(int node, const ComputeProfile& profile,
                                 int cores, std::uint64_t self) const;

  /// Mark a compute stage active; returns a handle for end_compute.
  std::uint64_t begin_compute(int node, const ComputeProfile& profile,
                              int cores);

  /// Mark a stage inactive. Throws InvalidArgument on an unknown handle.
  void end_compute(std::uint64_t handle);

  /// Time to move `bytes` between two placements: same node -> memory copy;
  /// different nodes -> network transfer (topology model).
  double transfer_time(int src_node, int dst_node, double bytes) const;

  /// Number of active compute stages on a node.
  std::size_t active_count(int node) const;

  /// Sum of cores of active compute stages on a node.
  int active_cores(int node) const;

  /// True if starting `cores` more on `node` would exceed its core count.
  bool would_oversubscribe(int node, int cores) const;

 private:
  void check_node(int node) const;

  PlatformSpec spec_;
  struct Record {
    int node;
    ActiveStage stage;
  };
  std::unordered_map<std::uint64_t, Record> active_;
  std::vector<std::vector<std::uint64_t>> by_node_;
  std::uint64_t next_handle_ = 1;
};

}  // namespace wfe::plat
