// Hardware-counter accounting.
//
// The paper collects (via TAU/PAPI) the component-level metrics of Table 1:
// instructions per cycle, LLC miss ratio (misses / references) and memory
// intensity (misses / instructions). The platform model synthesizes the four
// underlying raw counters for every compute stage; this struct accumulates
// them and derives the Table 1 ratios.
#pragma once

#include <cstdint>

namespace wfe::plat {

struct HwCounters {
  double instructions = 0.0;
  double cycles = 0.0;  ///< aggregated core cycles
  double llc_references = 0.0;
  double llc_misses = 0.0;

  HwCounters& operator+=(const HwCounters& o) {
    instructions += o.instructions;
    cycles += o.cycles;
    llc_references += o.llc_references;
    llc_misses += o.llc_misses;
    return *this;
  }
  friend HwCounters operator+(HwCounters a, const HwCounters& b) {
    a += b;
    return a;
  }

  /// Instructions per cycle (Table 1); 0 when no cycles elapsed.
  double ipc() const { return cycles > 0.0 ? instructions / cycles : 0.0; }

  /// LLC miss ratio = misses / references (Table 1); 0 when no references.
  double llc_miss_ratio() const {
    return llc_references > 0.0 ? llc_misses / llc_references : 0.0;
  }

  /// Memory intensity = misses / instructions (Table 1); 0 if no work.
  double memory_intensity() const {
    return instructions > 0.0 ? llc_misses / instructions : 0.0;
  }
};

}  // namespace wfe::plat
