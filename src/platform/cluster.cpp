#include "platform/cluster.hpp"

#include <algorithm>

#include "platform/topology.hpp"
#include "support/error.hpp"

namespace wfe::plat {

Cluster::Cluster(PlatformSpec spec) : spec_(std::move(spec)) {
  spec_.validate();
  by_node_.resize(static_cast<std::size_t>(spec_.node_count));
}

void Cluster::check_node(int node) const {
  WFE_REQUIRE(node >= 0 && node < spec_.node_count,
              "node index out of range for this platform");
}

StageCost Cluster::stage_cost(int node, const ComputeProfile& profile,
                              int cores) const {
  return stage_cost_excluding(node, profile, cores, 0);
}

StageCost Cluster::stage_cost_excluding(int node,
                                        const ComputeProfile& profile,
                                        int cores, std::uint64_t self) const {
  check_node(node);
  std::vector<ActiveStage> competitors;
  competitors.reserve(by_node_[static_cast<std::size_t>(node)].size());
  for (std::uint64_t h : by_node_[static_cast<std::size_t>(node)]) {
    if (h == self) continue;
    competitors.push_back(active_.at(h).stage);
  }
  return compute_stage_cost(spec_, profile, cores, competitors);
}

std::uint64_t Cluster::begin_compute(int node, const ComputeProfile& profile,
                                     int cores) {
  check_node(node);
  WFE_REQUIRE(cores > 0, "a compute stage needs at least one core");
  const std::uint64_t h = next_handle_++;
  active_.emplace(h, Record{node, ActiveStage{profile, cores}});
  by_node_[static_cast<std::size_t>(node)].push_back(h);
  return h;
}

void Cluster::end_compute(std::uint64_t handle) {
  auto it = active_.find(handle);
  WFE_REQUIRE(it != active_.end(), "unknown compute-stage handle");
  auto& vec = by_node_[static_cast<std::size_t>(it->second.node)];
  vec.erase(std::remove(vec.begin(), vec.end(), handle), vec.end());
  active_.erase(it);
}

double Cluster::transfer_time(int src_node, int dst_node, double bytes) const {
  check_node(src_node);
  check_node(dst_node);
  if (src_node == dst_node) return local_copy_time(spec_.node, bytes);
  return network_transfer_time(spec_.interconnect, src_node, dst_node, bytes);
}

std::size_t Cluster::active_count(int node) const {
  check_node(node);
  return by_node_[static_cast<std::size_t>(node)].size();
}

int Cluster::active_cores(int node) const {
  check_node(node);
  int total = 0;
  for (std::uint64_t h : by_node_[static_cast<std::size_t>(node)]) {
    total += active_.at(h).stage.cores;
  }
  return total;
}

bool Cluster::would_oversubscribe(int node, int cores) const {
  return active_cores(node) + cores > spec_.node.cores;
}

}  // namespace wfe::plat
