#include "platform/cluster.hpp"

#include <algorithm>

#include "platform/topology.hpp"
#include "support/error.hpp"

namespace wfe::plat {

Cluster::Cluster(PlatformSpec spec) : spec_(std::move(spec)) {
  spec_.validate();
  const auto nodes = static_cast<std::size_t>(spec_.node_count);
  by_node_.resize(nodes);
  node_epoch_.assign(nodes, 1);
  cache_.resize(nodes);
}

void Cluster::check_node(int node) const {
  WFE_REQUIRE(node >= 0 && node < spec_.node_count,
              "node index out of range for this platform");
}

StageCost Cluster::stage_cost(int node, const ComputeProfile& profile,
                              int cores) const {
  return stage_cost_excluding(node, profile, cores, 0);
}

StageCost Cluster::stage_cost_excluding(int node,
                                        const ComputeProfile& profile,
                                        int cores, std::uint64_t self) const {
  check_node(node);
  std::vector<ActiveStage> competitors;
  competitors.reserve(by_node_[static_cast<std::size_t>(node)].size());
  for (std::uint64_t h : by_node_[static_cast<std::size_t>(node)]) {
    if (h == self) continue;
    competitors.push_back(stage_of(h));
  }
  return compute_stage_cost(spec_, profile, cores, competitors);
}

const StageCost& Cluster::resident_cost(std::uint64_t handle) const {
  WFE_REQUIRE(handle >= 1 && handle <= slots_.size() &&
                  slots_[static_cast<std::size_t>(handle - 1)].live,
              "unknown compute-stage handle");
  const Record& rec = slots_[static_cast<std::size_t>(handle - 1)];
  const auto node = static_cast<std::size_t>(rec.node);
  NodeCache& cache = cache_[node];
  const auto& handles = by_node_[node];
  if (cache.epoch != node_epoch_[node]) {
    // Reprice the whole co-location set in node order: the batch kernel's
    // per-victim walk then sees competitors in exactly the order the scalar
    // stage_cost_excluding() path would hand them.
    cache.stages.clear();
    cache.stages.reserve(handles.size());
    for (std::uint64_t h : handles) cache.stages.push_back(stage_of(h));
    cache.costs.resize(handles.size());
    compute_stage_costs_batch(spec_, cache.stages, cache.costs);
    cache.epoch = node_epoch_[node];
  }
  for (std::size_t i = 0; i < handles.size(); ++i) {
    if (handles[i] == handle) return cache.costs[i];
  }
  WFE_REQUIRE(false, "active stage missing from its node's co-location set");
  return cache.costs[0];  // unreachable
}

std::uint64_t Cluster::begin_compute(int node, const ComputeProfile& profile,
                                     int cores) {
  check_node(node);
  WFE_REQUIRE(cores > 0, "a compute stage needs at least one core");
  slots_.push_back(Record{node, true, ActiveStage{profile, cores}});
  const auto h = static_cast<std::uint64_t>(slots_.size());
  by_node_[static_cast<std::size_t>(node)].push_back(h);
  ++node_epoch_[static_cast<std::size_t>(node)];
  return h;
}

void Cluster::end_compute(std::uint64_t handle) {
  WFE_REQUIRE(handle >= 1 && handle <= slots_.size() &&
                  slots_[static_cast<std::size_t>(handle - 1)].live,
              "unknown compute-stage handle");
  Record& rec = slots_[static_cast<std::size_t>(handle - 1)];
  auto& vec = by_node_[static_cast<std::size_t>(rec.node)];
  vec.erase(std::remove(vec.begin(), vec.end(), handle), vec.end());
  rec.live = false;
  ++node_epoch_[static_cast<std::size_t>(rec.node)];
}

std::uint64_t Cluster::occupancy_epoch(int node) const {
  check_node(node);
  return node_epoch_[static_cast<std::size_t>(node)];
}

double Cluster::transfer_time(int src_node, int dst_node, double bytes) const {
  check_node(src_node);
  check_node(dst_node);
  if (src_node == dst_node) return local_copy_time(spec_.node, bytes);
  return network_transfer_time(spec_.interconnect, src_node, dst_node, bytes);
}

std::size_t Cluster::active_count(int node) const {
  check_node(node);
  return by_node_[static_cast<std::size_t>(node)].size();
}

int Cluster::active_cores(int node) const {
  check_node(node);
  int total = 0;
  for (std::uint64_t h : by_node_[static_cast<std::size_t>(node)]) {
    total += stage_of(h).cores;
  }
  return total;
}

bool Cluster::would_oversubscribe(int node, int cores) const {
  return active_cores(node) + cores > spec_.node.cores;
}

}  // namespace wfe::plat
