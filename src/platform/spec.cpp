#include "platform/spec.hpp"

#include "support/error.hpp"
#include "support/hash.hpp"

namespace wfe::plat {

namespace {
void require_positive(double v, const char* what) {
  if (!(v > 0.0)) throw SpecError(std::string(what) + " must be positive");
}
}  // namespace

void PlatformSpec::validate() const {
  if (node_count <= 0) throw SpecError("platform needs at least one node");
  if (node.cores <= 0) throw SpecError("node needs at least one core");
  require_positive(node.core_freq_hz, "core frequency");
  require_positive(node.llc_bytes, "LLC capacity");
  require_positive(node.mem_bw_bytes_per_s, "memory bandwidth");
  require_positive(node.copy_bw_bytes_per_s, "copy bandwidth");
  require_positive(node.cacheline_bytes, "cache line size");
  if (node.llc_miss_penalty_cycles < 0.0)
    throw SpecError("LLC miss penalty must be non-negative");

  require_positive(interconnect.link_bw_bytes_per_s, "link bandwidth");
  require_positive(interconnect.message_bytes, "message size");
  if (interconnect.latency_per_hop_s < 0.0)
    throw SpecError("hop latency must be non-negative");
  if (interconnect.per_message_overhead_s < 0.0)
    throw SpecError("per-message overhead must be non-negative");
  if (interconnect.group_size <= 0)
    throw SpecError("dragonfly group size must be positive");
  if (interconnect.intra_group_hops <= 0 || interconnect.inter_group_hops <= 0)
    throw SpecError("hop counts must be positive");
  if (!(interconnect.stream_efficiency > 0.0 &&
        interconnect.stream_efficiency <= 1.0))
    throw SpecError("stream efficiency must be in (0, 1]");
  if (interconnect.cross_node_compute_penalty < 0.0)
    throw SpecError("cross-node compute penalty must be non-negative");

  if (staging.write_overhead_s < 0.0 || staging.read_overhead_s < 0.0)
    throw SpecError("staging overheads must be non-negative");

  if (!(interference.max_miss_ratio > 0.0 &&
        interference.max_miss_ratio <= 1.0))
    throw SpecError("max miss ratio must be in (0, 1]");
  if (interference.capacity_sharing_strength < 0.0)
    throw SpecError("capacity sharing strength must be non-negative");
}

std::uint64_t PlatformSpec::fingerprint() const {
  Fnv1a h;
  h.add(std::string_view(name));
  h.add(node_count);
  h.add(node.cores);
  h.add(node.core_freq_hz);
  h.add(node.llc_bytes);
  h.add(node.mem_bw_bytes_per_s);
  h.add(node.copy_bw_bytes_per_s);
  h.add(node.cacheline_bytes);
  h.add(node.llc_miss_penalty_cycles);
  h.add(interconnect.latency_per_hop_s);
  h.add(interconnect.link_bw_bytes_per_s);
  h.add(interconnect.group_size);
  h.add(interconnect.intra_group_hops);
  h.add(interconnect.inter_group_hops);
  h.add(interconnect.per_message_overhead_s);
  h.add(interconnect.message_bytes);
  h.add(interconnect.stream_efficiency);
  h.add(interconnect.cross_node_compute_penalty);
  h.add(staging.write_overhead_s);
  h.add(staging.read_overhead_s);
  h.add(interference.enabled);
  h.add(interference.max_miss_ratio);
  h.add(interference.capacity_sharing_strength);
  return h.digest();
}

}  // namespace wfe::plat
