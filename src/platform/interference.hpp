// Co-location interference model (DESIGN.md Section 7).
//
// The paper's Section 2.3 observations that this model must reproduce:
//   * co-located components raise each other's LLC miss ratio;
//   * analyses are more memory-intensive than simulations, so analysis/
//     analysis sharing (C1.1, C1.4) misses more than simulation/simulation
//     sharing (C1.2);
//   * heterogeneous sharing (simulation with analysis, C1.3/C1.5) yields the
//     highest miss ratios, because the simulation's large working set evicts
//     the cache-hungry analysis;
//   * contention inflates execution time (lower IPC), which can flip a
//     coupling from the Idle Analyzer to the Idle Simulation regime.
//
// Mechanism: a victim stage's effective miss ratio grows with the cache
// pressure exerted by the working sets of co-active competitors, scaled by
// the victim's cache sensitivity. Extra misses add stall cycles; aggregate
// miss traffic can additionally saturate the node memory bandwidth, which
// stretches the stall term for everyone.
//
// All functions are pure: they take the platform spec and the co-active set
// and return costs, so they are unit-testable without a cluster object.
#pragma once

#include <span>

#include "platform/counters.hpp"
#include "platform/profile.hpp"
#include "platform/spec.hpp"

namespace wfe::plat {

/// A compute stage currently occupying cores of a node.
struct ActiveStage {
  ComputeProfile profile;
  int cores = 1;
};

/// Priced execution of one compute stage.
struct StageCost {
  double seconds = 0.0;
  HwCounters counters;
  double effective_miss_ratio = 0.0;
  /// Time inflation relative to running the same stage contention-free.
  double slowdown = 1.0;
};

/// Cache pressure in [0, 1) that `competitor_ws_bytes` of co-resident
/// working set exerts on a victim, for the given LLC capacity.
double cache_pressure(const PlatformSpec& spec, double competitor_ws_bytes);

/// Effective miss ratio of a victim under the pressure of competitors whose
/// working sets sum to `competitor_ws_bytes`.
double effective_miss_ratio(const PlatformSpec& spec,
                            const ComputeProfile& victim,
                            double competitor_ws_bytes);

/// Price a compute stage of `victim` on `cores` cores, co-active with
/// `competitors` on the same node. The victim must NOT be in `competitors`.
StageCost compute_stage_cost(const PlatformSpec& spec,
                             const ComputeProfile& victim, int cores,
                             std::span<const ActiveStage> competitors);

/// Batched form: price every stage of one node's co-location set against
/// the others in a single pass over flat arrays. `out[i]` is bit-identical
/// to `compute_stage_cost(spec, stages[i].profile, stages[i].cores,
/// stages-without-i)` — the per-victim accumulation walks the set in the
/// same order and with the same expression shapes as the scalar entry
/// point, so caching layers (Cluster::resident_cost) can switch between
/// the two without disturbing golden traces. Victim-independent terms
/// (Amdahl speedups, contention-free CPIs, working sets) are hoisted and
/// computed once per stage instead of once per victim×competitor pair.
/// Requires out.size() == stages.size(). Only runs when a node's occupancy
/// changes (cold path), so it may allocate its per-stage scratch.
void compute_stage_costs_batch(const PlatformSpec& spec,
                               std::span<const ActiveStage> stages,
                               std::span<StageCost> out);

}  // namespace wfe::plat
