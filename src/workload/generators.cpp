#include "workload/generators.hpp"

#include <set>
#include <string>

#include "support/error.hpp"
#include "support/str.hpp"
#include "workload/presets.hpp"

namespace wfe::wl {

namespace {

/// Relabel nodes in first-appearance order so placements that differ only
/// by node naming collapse to one canonical assignment vector. The relabel
/// table is a flat array indexed by node id (-1 = unseen) — this runs once
/// per enumerated candidate, so no per-candidate tree allocations.
std::vector<int> canonical_form(const std::vector<int>& assignment,
                                int node_pool) {
  std::vector<int> relabel(static_cast<std::size_t>(node_pool), -1);
  int next = 0;
  std::vector<int> out;
  out.reserve(assignment.size());
  for (int node : assignment) {
    int& label = relabel[static_cast<std::size_t>(node)];
    if (label < 0) label = next++;
    out.push_back(label);
  }
  return out;
}

std::string assignment_name(const std::vector<int>& assignment, int members,
                            int analyses) {
  std::string name;
  std::size_t idx = 0;
  for (int m = 0; m < members; ++m) {
    if (m != 0) name += "|";
    name += strprintf("s%d", assignment[idx++]);
    for (int j = 0; j < analyses; ++j) {
      name += strprintf("a%d", assignment[idx++]);
    }
  }
  return name;
}

}  // namespace

std::vector<NamedConfig> enumerate_placements(
    const plat::PlatformSpec& platform, const EnumerationOptions& options) {
  WFE_REQUIRE(options.members >= 1, "need at least one member");
  WFE_REQUIRE(options.analyses_per_member >= 1, "need at least one analysis");
  WFE_REQUIRE(options.node_pool >= 1, "need at least one node in the pool");
  WFE_REQUIRE(options.node_pool <= platform.node_count,
              "node pool larger than the platform");

  const int slots = options.members * (1 + options.analyses_per_member);
  WFE_REQUIRE(slots <= 12, "enumeration is exponential; cap at 12 components");

  std::vector<NamedConfig> out;
  std::set<std::vector<int>> seen;
  std::vector<int> assignment(static_cast<std::size_t>(slots), 0);

  for (;;) {
    const std::vector<int> canon =
        options.canonicalize ? canonical_form(assignment, options.node_pool)
                             : assignment;
    if (seen.insert(canon).second) {
      // Build the spec for this assignment.
      rt::EnsembleSpec spec;
      spec.n_steps = kPaperInSituSteps;
      std::size_t idx = 0;
      for (int m = 0; m < options.members; ++m) {
        rt::MemberSpec member;
        member.sim = gltph_like_simulation({canon[idx++]});
        for (int j = 0; j < options.analyses_per_member; ++j) {
          member.analyses.push_back(bipartite_like_analysis({canon[idx++]}));
        }
        spec.members.push_back(std::move(member));
      }
      spec.name = assignment_name(canon, options.members,
                                  options.analyses_per_member);

      bool feasible = true;
      if (options.skip_oversubscribed) {
        try {
          spec.validate(platform);
        } catch (const SpecError&) {
          feasible = false;
        }
      }
      if (feasible) {
        NamedConfig config;
        config.name = spec.name;
        config.nodes = spec.total_nodes();
        config.spec = std::move(spec);
        out.push_back(std::move(config));
      }
    }

    // Odometer increment over the assignment vector.
    int pos = slots - 1;
    while (pos >= 0) {
      if (++assignment[static_cast<std::size_t>(pos)] < options.node_pool) {
        break;
      }
      assignment[static_cast<std::size_t>(pos)] = 0;
      --pos;
    }
    if (pos < 0) break;
  }
  return out;
}

}  // namespace wfe::wl
