// The paper's experimental configurations, encoded verbatim.
//
// Table 2: seven configurations with one analysis per simulation
//   (C_f, C_c, C1.1 ... C1.5).
// Table 4: eight configurations with two analyses per simulation
//   (C2.1 ... C2.8).
// Every member uses the paper's resource settings: 16-core simulation,
// 8-core analyses, stride 800, 37 in situ steps.
#pragma once

#include <string>
#include <vector>

#include "runtime/spec.hpp"

namespace wfe::wl {

struct NamedConfig {
  std::string name;       ///< "Cf", "Cc", "C1.1", ..., "C2.8"
  int nodes = 0;          ///< the table's node count
  rt::EnsembleSpec spec;  ///< fully populated ensemble
};

/// Table 2 rows, in table order.
std::vector<NamedConfig> paper_table2();

/// Table 4 rows, in table order.
std::vector<NamedConfig> paper_table4();

/// Just the 2-member one-analysis set C1.1 ... C1.5 (Figures 3-5, 8).
std::vector<NamedConfig> paper_set1();

/// Look up any configuration by name; throws wfe::InvalidArgument.
NamedConfig paper_config(const std::string& name);

}  // namespace wfe::wl
