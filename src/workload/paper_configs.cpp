#include "workload/paper_configs.hpp"

#include "support/error.hpp"
#include "workload/presets.hpp"

namespace wfe::wl {

namespace {

/// Build a member from node assignments: the simulation on `sim_node`, one
/// analysis per entry of `analysis_nodes`.
rt::MemberSpec member(int sim_node, std::vector<int> analysis_nodes) {
  rt::MemberSpec m;
  m.sim = gltph_like_simulation({sim_node});
  for (int n : analysis_nodes) {
    m.analyses.push_back(bipartite_like_analysis({n}));
  }
  return m;
}

NamedConfig config(std::string name, int nodes,
                   std::vector<rt::MemberSpec> members) {
  NamedConfig c;
  c.name = std::move(name);
  c.nodes = nodes;
  c.spec.name = c.name;
  c.spec.n_steps = kPaperInSituSteps;
  c.spec.members = std::move(members);
  return c;
}

}  // namespace

std::vector<NamedConfig> paper_table2() {
  // Table 2: node indexes per component.
  std::vector<NamedConfig> out;
  out.push_back(config("Cf", 2, {member(0, {1})}));
  out.push_back(config("Cc", 1, {member(0, {0})}));
  out.push_back(config("C1.1", 3, {member(0, {2}), member(1, {2})}));
  out.push_back(config("C1.2", 3, {member(0, {1}), member(0, {2})}));
  out.push_back(config("C1.3", 3, {member(0, {0}), member(1, {2})}));
  out.push_back(config("C1.4", 2, {member(0, {1}), member(0, {1})}));
  out.push_back(config("C1.5", 2, {member(0, {0}), member(1, {1})}));
  return out;
}

std::vector<NamedConfig> paper_table4() {
  // Table 4: two analyses per simulation.
  std::vector<NamedConfig> out;
  out.push_back(config("C2.1", 3, {member(0, {2, 2}), member(1, {2, 2})}));
  out.push_back(config("C2.2", 3, {member(0, {1, 1}), member(0, {2, 2})}));
  out.push_back(config("C2.3", 3, {member(0, {1, 2}), member(0, {1, 2})}));
  out.push_back(config("C2.4", 3, {member(0, {0, 2}), member(1, {1, 2})}));
  out.push_back(config("C2.5", 3, {member(0, {1, 2}), member(1, {0, 2})}));
  out.push_back(config("C2.6", 2, {member(0, {1, 1}), member(0, {1, 1})}));
  out.push_back(config("C2.7", 2, {member(0, {0, 1}), member(1, {0, 1})}));
  out.push_back(config("C2.8", 2, {member(0, {0, 0}), member(1, {1, 1})}));
  return out;
}

std::vector<NamedConfig> paper_set1() {
  std::vector<NamedConfig> all = paper_table2();
  return {all.begin() + 2, all.end()};
}

NamedConfig paper_config(const std::string& name) {
  for (auto& c : paper_table2()) {
    if (c.name == name) return c;
  }
  for (auto& c : paper_table4()) {
    if (c.name == name) return c;
  }
  throw InvalidArgument("unknown paper configuration: " + name);
}

}  // namespace wfe::wl
