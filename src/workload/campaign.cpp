#include "workload/campaign.hpp"

#include <algorithm>

#include "runtime/bridge.hpp"
#include "runtime/simulated_executor.hpp"
#include "support/error.hpp"

namespace wfe::wl {

std::vector<ConfigStats> run_campaign(const std::vector<NamedConfig>& configs,
                                      const plat::PlatformSpec& platform,
                                      const CampaignOptions& options) {
  WFE_REQUIRE(!configs.empty(), "a campaign needs at least one configuration");
  WFE_REQUIRE(options.trials >= 1, "a campaign needs at least one trial");
  WFE_REQUIRE(options.jitter_cv >= 0.0, "jitter must be non-negative");

  std::vector<std::vector<double>> objectives(configs.size());
  std::vector<std::vector<double>> makespans(configs.size());
  std::vector<std::vector<double>> min_effs(configs.size());
  std::vector<int> wins(configs.size(), 0);

  for (int trial = 0; trial < options.trials; ++trial) {
    rt::SimulatedOptions sim_options;
    sim_options.jitter_cv = options.jitter_cv;
    sim_options.seed = options.base_seed + static_cast<std::uint64_t>(trial);
    rt::SimulatedExecutor exec(platform, sim_options);

    std::size_t best = 0;
    double best_f = 0.0;
    for (std::size_t i = 0; i < configs.size(); ++i) {
      rt::EnsembleSpec spec = configs[i].spec;
      if (options.n_steps > 0) spec.n_steps = options.n_steps;
      const rt::Assessment a =
          rt::assess(spec, exec.run(spec), options.steady);
      const double f = a.objective(options.indicator);
      objectives[i].push_back(f);
      makespans[i].push_back(a.ensemble_makespan_measured);
      double min_e = 1.0;
      for (const auto& m : a.members) min_e = std::min(min_e, m.efficiency);
      min_effs[i].push_back(min_e);
      if (i == 0 || f > best_f) {
        best = i;
        best_f = f;
      }
    }
    ++wins[best];
  }

  std::vector<ConfigStats> out;
  out.reserve(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    ConfigStats s;
    s.name = configs[i].name;
    s.objective = summarize(objectives[i]);
    s.makespan = summarize(makespans[i]);
    s.min_member_efficiency = summarize(min_effs[i]);
    s.wins = wins[i];
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace wfe::wl
