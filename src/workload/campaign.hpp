// Measurement campaigns: repeated trials with noise, aggregated.
//
// The paper's measurements are "averaged over 5 trials" (§2.2). This
// module makes that methodology a first-class API: run a set of named
// configurations across seeded jittered trials on one platform, collect
// the objective and makespan distributions per configuration, and count
// how often each configuration wins — the noise-robustness view of the
// indicator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/indicators.hpp"
#include "metrics/steady_state.hpp"
#include "platform/spec.hpp"
#include "support/stats.hpp"
#include "workload/paper_configs.hpp"

namespace wfe::wl {

struct CampaignOptions {
  /// Trials per configuration (the paper uses 5).
  int trials = 5;
  /// Stage-duration noise per trial (0 = all trials identical).
  double jitter_cv = 0.05;
  /// Trial t of every configuration uses seed base_seed + t, so different
  /// configurations see the same "machine weather" per trial.
  std::uint64_t base_seed = 1;
  /// Override the configurations' step counts (0 = leave as specified).
  std::uint64_t n_steps = 0;
  /// Indicator stage the campaign scores with.
  core::IndicatorKind indicator = core::IndicatorKind::kUAP;
  met::SteadyStateOptions steady;
};

/// Aggregated results of one configuration across the campaign's trials.
struct ConfigStats {
  std::string name;
  Summary objective;  ///< F at the chosen indicator stage
  Summary makespan;   ///< measured ensemble makespan
  Summary min_member_efficiency;
  int wins = 0;  ///< trials in which this configuration had the highest F
};

/// Run every configuration `options.trials` times on `platform` and
/// aggregate. Result order matches `configs`. Throws on invalid options
/// or specs.
std::vector<ConfigStats> run_campaign(const std::vector<NamedConfig>& configs,
                                      const plat::PlatformSpec& platform,
                                      const CampaignOptions& options = {});

}  // namespace wfe::wl
