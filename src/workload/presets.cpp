#include "workload/presets.hpp"

namespace wfe::wl {

plat::PlatformSpec cori_like_platform(int node_count) {
  plat::PlatformSpec spec;
  spec.name = "cori-like";
  spec.node_count = node_count;

  spec.node.cores = 32;
  spec.node.core_freq_hz = 2.3e9;
  spec.node.llc_bytes = 80.0 * 1024 * 1024;
  spec.node.mem_bw_bytes_per_s = 120.0e9;
  spec.node.copy_bw_bytes_per_s = 8.0e9;
  spec.node.llc_miss_penalty_cycles = 180.0;

  spec.interconnect.latency_per_hop_s = 1.2e-6;
  spec.interconnect.link_bw_bytes_per_s = 10.0e9;
  spec.interconnect.group_size = 384;
  spec.interconnect.intra_group_hops = 2;
  spec.interconnect.inter_group_hops = 5;
  // DIMES-style remote gets pay an index query + RPC per block; with
  // 128 KiB blocks at 150 ms each, a ~10 MiB frame costs ~11 s remotely
  // while the co-located copy costs ~1 ms. This is the data-locality
  // asymmetry behind the paper's co-location findings (§5.2): the baseline
  // analysis allocation sits just inside the Eq. (4) boundary, so a remote
  // read tips distributed couplings into the Idle Simulation regime.
  spec.interconnect.message_bytes = 128.0 * 1024;
  spec.interconnect.per_message_overhead_s = 150.0e-3;
  spec.interconnect.stream_efficiency = 0.65;

  spec.staging.write_overhead_s = 250.0e-6;
  spec.staging.read_overhead_s = 250.0e-6;

  spec.interference.enabled = true;
  spec.interference.max_miss_ratio = 0.5;
  spec.interference.capacity_sharing_strength = 1.0;
  return spec;
}

rt::SimulationSpec gltph_like_simulation(std::set<int> nodes, int cores) {
  rt::SimulationSpec sim;
  sim.nodes = std::move(nodes);
  sim.cores = cores;
  sim.natoms = 400'000;  // GltPh trimer + membrane + solvent scale
  sim.stride = 800;
  // Cost defaults in md::MdCostParams are the calibrated ones.
  sim.native = native_md_config();
  return sim;
}

rt::AnalysisSpec bipartite_like_analysis(std::set<int> nodes, int cores) {
  rt::AnalysisSpec ana;
  ana.nodes = std::move(nodes);
  ana.cores = cores;
  ana.kernel = "bipartite-eigen";
  // Cost defaults in ana::AnalysisCostParams are the calibrated ones.
  return ana;
}

md::MdConfig native_md_config(std::uint64_t seed) {
  md::MdConfig config;
  config.fcc_cells = 4;  // 256 particles
  config.density = 0.8442;
  config.temperature = 0.728;
  config.lj.cutoff = 2.5;
  config.integrator.dt = 0.002;
  config.integrator.thermostat_tau = 0.2;
  config.integrator.target_temperature = 0.728;
  config.seed = seed;
  return config;
}

rt::EnsembleSpec small_native_ensemble(int members, int analyses_per_member,
                                       std::uint64_t n_steps) {
  rt::EnsembleSpec spec;
  spec.name = "native-small";
  spec.n_steps = n_steps;
  for (int i = 0; i < members; ++i) {
    rt::MemberSpec m;
    m.sim.nodes = {0};
    m.sim.cores = 1;
    m.sim.natoms = 256;
    m.sim.stride = 10;
    m.sim.native = native_md_config(42 + static_cast<std::uint64_t>(i));
    for (int j = 0; j < analyses_per_member; ++j) {
      rt::AnalysisSpec a;
      a.nodes = {0};
      a.cores = 1;
      a.kernel = (j % 2 == 0) ? "bipartite-eigen" : "rgyr";
      m.analyses.push_back(std::move(a));
    }
    spec.members.push_back(std::move(m));
  }
  return spec;
}

res::FaultSpec fault_free() { return {}; }

res::FaultSpec transient_noise(double stage_error_prob, std::uint64_t seed) {
  res::FaultSpec faults;
  faults.stage_error_prob = stage_error_prob;
  faults.transfer_loss_prob = stage_error_prob / 2.0;
  faults.seed = seed;
  faults.validate();
  return faults;
}

res::FaultSpec node_crashes(double mtbf_s, double repair_s,
                            std::uint64_t seed) {
  res::FaultSpec faults;
  faults.node_mtbf_s = mtbf_s;
  faults.node_repair_s = repair_s;
  faults.seed = seed;
  faults.validate();
  return faults;
}

res::FaultSpec node_down_at(int node, double at_s, std::uint64_t seed) {
  res::FaultSpec faults;
  faults.node_down.push_back({node, at_s});
  faults.seed = seed;
  faults.validate();
  return faults;
}

res::FaultSpec fatal_node_crashes(double mtbf_s, std::uint64_t seed) {
  res::FaultSpec faults;
  faults.node_mtbf_s = mtbf_s;
  faults.crashes_are_fatal = true;
  faults.seed = seed;
  faults.validate();
  return faults;
}

res::FaultSpec degraded_nodes(double mtbf_s, double factor,
                              std::uint64_t seed) {
  res::FaultSpec faults;
  faults.straggler_mtbf_s = mtbf_s;
  faults.straggler_factor = factor;
  faults.net_degrade_mtbf_s = mtbf_s * 2.0;
  faults.seed = seed;
  faults.validate();
  return faults;
}

}  // namespace wfe::wl
