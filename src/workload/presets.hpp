// Calibrated presets of the paper's experimental setup (§2.2).
//
// The absolute constants cannot equal Cori's (different metal entirely);
// they are calibrated so the *relations* the paper reports hold on the
// modelled platform:
//   * a simulation stage (16 cores, stride 800) takes tens of seconds and
//     is compute-bound (low memory intensity);
//   * the analysis crosses the Eq. (4) feasibility boundary between 4 and
//     8 cores, and 8 cores maximizes E among feasible counts (Figure 7);
//   * co-located components visibly raise each other's LLC miss ratio,
//     analyses more than simulations (Figure 3);
//   * a remote DIMES-style staging read costs whole seconds (per-block
//     query/RPC overheads), so data locality matters (Figures 4-5, §5.2).
#pragma once

#include "platform/spec.hpp"
#include "resilience/fault_spec.hpp"
#include "runtime/spec.hpp"

namespace wfe::wl {

/// Cori-like modelled platform: 32-core nodes, shared 80 MiB LLC,
/// dragonfly-ish interconnect, DIMES-like staging costs.
plat::PlatformSpec cori_like_platform(int node_count = 8);

/// GltPh-like simulation component: 400k atoms, stride 800, 16 cores,
/// compute-bound cost profile; `nodes` is the paper's s_i.
rt::SimulationSpec gltph_like_simulation(std::set<int> nodes, int cores = 16);

/// Bipartite-eigenvalue analysis component at the paper's chosen 8 cores;
/// `nodes` is a_i^j.
rt::AnalysisSpec bipartite_like_analysis(std::set<int> nodes, int cores = 8);

/// Number of in situ steps of the paper's runs: 30 000 MD steps at
/// stride 800 -> 37 full frames.
inline constexpr std::uint64_t kPaperInSituSteps = 37;

/// A small, really-runnable MD configuration for the native executor
/// (hundreds of particles, short strides).
md::MdConfig native_md_config(std::uint64_t seed = 42);

/// A tiny native ensemble: `members` members, each one simulation plus
/// `analyses_per_member` kernels, a few in situ steps. Node placements are
/// nominal (native mode does not pin).
rt::EnsembleSpec small_native_ensemble(int members = 2,
                                       int analyses_per_member = 1,
                                       std::uint64_t n_steps = 4);

// -- fault scenarios (resilience study) -------------------------------------

/// The all-zeros fault spec: injection disabled, traces bit-identical to a
/// run without the resilience layer at all.
res::FaultSpec fault_free();

/// Transient-noise scenario: no node crashes, each compute stage fails with
/// probability `stage_error_prob` and each transfer with half of it (soft
/// errors / flaky staging fabric).
res::FaultSpec transient_noise(double stage_error_prob = 0.02,
                               std::uint64_t seed = 0xfa117u);

/// Node-crash scenario: exponential per-node MTBF of `mtbf_s` seconds and
/// `repair_s` repair windows, no transient errors — the classic
/// crash/repair availability model.
res::FaultSpec node_crashes(double mtbf_s, double repair_s = 120.0,
                            std::uint64_t seed = 0xfa117u);

/// Scripted node-death scenario: node `node` goes down permanently at
/// `at_s` virtual seconds, no stochastic injection at all — the
/// deterministic backbone of the migration tests and goldens.
res::FaultSpec node_down_at(int node, double at_s,
                            std::uint64_t seed = 0xfa117u);

/// Fatal-crash scenario: exponential per-node MTBF as node_crashes(), but
/// the first crash of each node is permanent (no repair) — every crash
/// costs a migration.
res::FaultSpec fatal_node_crashes(double mtbf_s,
                                  std::uint64_t seed = 0xfa117u);

/// Degraded-mode scenario: no crashes; nodes straggle (compute stretched
/// by `factor`) in exponential windows of mean arrival `mtbf_s`, and the
/// interconnect degrades in windows half as frequent.
res::FaultSpec degraded_nodes(double mtbf_s, double factor = 1.5,
                              std::uint64_t seed = 0xfa117u);

}  // namespace wfe::wl
