// Configuration-space generators: enumerate candidate placements.
//
// The paper's conclusion points at scheduling: "Future work will consider
// leveraging the proposed indicators for scheduling in situ components of
// a workflow ensemble under resource constraints." These generators feed
// that use case (bench_placement_search, examples/placement_explorer): they
// produce every distinct assignment of an ensemble's components to a node
// pool, so the indicator can rank them.
#pragma once

#include <vector>

#include "platform/spec.hpp"
#include "workload/paper_configs.hpp"

namespace wfe::wl {

struct EnumerationOptions {
  int members = 2;
  int analyses_per_member = 1;
  /// Nodes available to place onto (node indexes 0 .. node_pool-1).
  int node_pool = 3;
  /// Drop placements whose per-node core demand exceeds the platform node.
  bool skip_oversubscribed = true;
  /// Collapse placements equivalent under node relabeling (e.g. sim on n0
  /// vs sim on n1 with everything else mirrored).
  bool canonicalize = true;
};

/// All (canonically distinct, feasible) placements of the paper-shaped
/// ensemble (16-core GltPh-like sims, 8-core bipartite analyses). Names
/// encode the assignment, e.g. "s0a0|s1a1" for C1.5.
std::vector<NamedConfig> enumerate_placements(
    const plat::PlatformSpec& platform, const EnumerationOptions& options);

}  // namespace wfe::wl
