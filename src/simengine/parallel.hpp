// Conservative parallel discrete-event runtime: logical-process (LP)
// partitioning of one replay.
//
// The coupling protocol W_i < R_i < W_{i+1} (paper §2.2) couples each
// simulation only to its own analyses: with deterministic stage costs the
// member pipelines of an ensemble never interact through the event queue,
// so one replay partitions naturally into one LP per ensemble member (the
// simulation plus its coupled analyses). Each LP owns its own calendar-
// queue Engine (PR 5) and advances through null-message-free barrier
// windows: every window runs each LP up to `soonest pending event +
// lookahead`, where the lookahead is derived from the protocol's lower
// bound on cross-LP interaction times (the minimum W+R turnaround; see
// docs/PERF.md §8). Synchronization is a rank-ordered barrier — the
// exec::ThreadPool batch barrier under support/lock_rank.hpp — one
// for_each_index batch per window.
//
// Equivalence, not approximation: the merge (`replay_order`) reconstructs
// the *exact* global (time, seq) FIFO order the sequential engine would
// have dispatched, by re-assigning global sequence numbers over the
// per-lane execution logs. Each lane records, per dispatched event, its
// timestamp and the timestamps of the events it scheduled (the Engine's
// schedule log); a min-heap seeded with the roots in their global
// scheduling order then replays seq assignment: pop the (time, seq)
// minimum, consume the owning lane's next logged event (a lane's local
// execution order equals the global order restricted to that lane — both
// engines break timestamp ties by scheduling order, and the lane schedules
// its events in the same relative order the sequential engine does), and
// hand its children the next consecutive seqs. Traces, counters, and
// queue-depth telemetry replayed over this order are bit-identical to the
// sequential engine's (tests/simengine/test_lp_equivalence.cpp).
//
// Requirements on the partitioned workload: no cross-lane scheduling and
// no cancellation (a cancelled event consumes a sequence number but never
// executes, which would desynchronize the log cursors — the merge detects
// this and throws). The SimulatedExecutor therefore only routes
// fault-free, jitter-free replays here and falls back to the sequential
// engine otherwise (jitter draws from one shared RNG in global event
// order; fault injection cancels in-flight events and mutates shared
// recovery state).
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "simengine/engine.hpp"

namespace wfe::exec {
class ThreadPool;
}

namespace wfe::sim {

/// One logical process: a private calendar-queue engine plus the execution
/// logs the merge consumes. Internal to the LP runtime — code outside
/// src/simengine must drive lanes through ParallelEngine's interface
/// (schedule_root / run / replay_order), never mutate one directly
/// (enforced by wfens_lint rule lp-state-outside-simengine).
struct LpLane {
  Engine engine;

  /// One entry per dispatched event, in this lane's execution order.
  struct Done {
    SimTime time;               ///< virtual time the event fired at
    std::uint32_t child_first;  ///< index of its first child in child_times
    std::uint32_t child_count;  ///< events it scheduled while dispatching
  };
  std::vector<Done> done;
  /// The engine's schedule log while run() is active: timestamps of every
  /// scheduled event, in per-lane seq order.
  std::vector<SimTime> child_times;
};

/// Coordinator of an LP-partitioned replay. Usage:
///   1. construct with the partition size (one LP per ensemble member),
///   2. schedule the roots in the exact order the sequential engine would
///      see them (their call order defines global seqs 0..R-1),
///   3. run(pool, lookahead) — conservative barrier windows,
///   4. replay_order(...) — visit every event in the sequential global
///      (time, seq) order to rebuild traces / counters / telemetry.
class ParallelEngine {
 public:
  /// Post-dispatch hook, called after every event a lane executes (on the
  /// worker thread driving that lane; lanes never share a thread within a
  /// window, so per-lane hook state needs no locking). A raw function
  /// pointer: src/simengine bans std::function from the hot path.
  using BoundaryFn = void (*)(void* ctx, std::size_t lp,
                              std::uint64_t event_index);

  /// replay_order visitor: one call per event in exact global dispatch
  /// order. `time` is the event's virtual timestamp (the sequential
  /// engine's clock at dispatch); `queue_depth` is the number of
  /// scheduled-but-unfired events after this dispatch — equal to the
  /// sequential Engine::queue_depth() at the same point, which is how
  /// traced runs rebuild the `engine.queue_depth` telemetry bit-for-bit.
  using VisitFn = void (*)(void* ctx, std::size_t lp,
                           std::uint64_t event_index, SimTime time,
                           std::size_t queue_depth);

  /// Lookahead disabling the window protocol: one barrier-free window runs
  /// every lane to completion.
  static constexpr SimTime kUnbounded =
      std::numeric_limits<SimTime>::infinity();

  explicit ParallelEngine(std::size_t lps);

  std::size_t lp_count() const { return lanes_.size(); }

  /// The LP's own calendar queue. Valid for the ParallelEngine's lifetime;
  /// the lane count is fixed at construction, so references never move.
  Engine& lp_engine(std::size_t lp) { return lanes_[lp].engine; }
  const Engine& lp_engine(std::size_t lp) const { return lanes_[lp].engine; }

  void set_boundary(BoundaryFn fn, void* ctx) {
    boundary_ = fn;
    boundary_ctx_ = ctx;
  }

  /// Schedule one of the replay's root events onto `lp` at time `t`. Call
  /// order across all lanes defines the roots' global sequence numbers,
  /// exactly as consecutive schedule_at calls would on the sequential
  /// engine. Roots must be scheduled before run().
  EventId schedule_root(std::size_t lp, SimTime t, Engine::Callback fn);

  /// Run every lane to completion through conservative barrier windows:
  /// each window advances all lanes to `min pending timestamp + lookahead`
  /// (inclusive), with one pool batch — and its check-out barrier — per
  /// window. `pool == nullptr` (or a single lane) runs the windows inline,
  /// lane-by-lane, producing identical logs: the merge order depends only
  /// on per-lane execution, never on worker count or window shape.
  /// Single-shot, like one sequential Engine::run().
  void run(exec::ThreadPool* pool, SimTime lookahead = kUnbounded);

  /// Visit every executed event in the exact global (time, seq) order the
  /// sequential engine would have dispatched. Throws wfe::Error if the
  /// logs are inconsistent with a cancellation-free sequential order.
  void replay_order(VisitFn visit, void* ctx) const;

  /// Convenience adapter over replay_order for callable objects.
  template <typename F>
  void replay(F&& f) const {
    replay_order(
        [](void* ctx, std::size_t lp, std::uint64_t index, SimTime time,
           std::size_t depth) {
          (*static_cast<F*>(ctx))(lp, index, time, depth);
        },
        const_cast<void*>(static_cast<const void*>(std::addressof(f))));
  }

  // -- LP-aware aggregation of the per-engine telemetry ---------------------
  // The sequential Engine reports its own queue; a partitioned replay is
  // the sum over lanes. Semantics pinned by tests/simengine/
  // test_parallel_engine.cpp on both engines.

  /// Live pending events across all lanes (Σ Engine::queue_depth()).
  std::size_t queue_depth() const;
  /// Alias of queue_depth(), mirroring the sequential Engine's API.
  std::size_t pending() const { return queue_depth(); }
  /// Queue refs held across all lanes, including uncollected corpses
  /// (Σ Engine::refs_held()).
  std::size_t refs_held() const;
  /// Events dispatched across all lanes (Σ Engine::events_processed()).
  std::uint64_t events_processed() const;
  /// Virtual time of the latest event any lane dispatched — after run(),
  /// the same final time the sequential engine's clock ends at.
  SimTime now() const;
  bool empty() const { return queue_depth() == 0; }

  /// Barrier windows the run() loop executed (diagnostics; 1 with
  /// kUnbounded lookahead).
  std::uint64_t windows_run() const { return windows_; }

 private:
  void run_lane_window(std::size_t lp, SimTime horizon);

  std::vector<LpLane> lanes_;
  struct Root {
    std::uint32_t lp;
    SimTime time;
  };
  std::vector<Root> roots_;
  BoundaryFn boundary_ = nullptr;
  void* boundary_ctx_ = nullptr;
  std::uint64_t windows_ = 0;
  bool ran_ = false;
};

}  // namespace wfe::sim
