// Discrete-event simulation engine.
//
// The SimulatedExecutor (src/runtime) replays workflow-ensemble executions on
// the modelled cluster by scheduling the fine-grained stages of every
// component (S, I^S, W, R, A, I^A — Section 3.1 of the paper) as events on
// this engine. The engine itself is domain-agnostic: a virtual clock, a
// stable priority queue of callbacks, and cancellation.
//
// Determinism: events at equal timestamps fire in scheduling order (a
// monotonically increasing sequence number breaks ties), so simulations are
// reproducible bit-for-bit regardless of container or load.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

namespace wfe::sim {

/// Virtual time in seconds.
using SimTime = double;

/// Handle to a scheduled event; valid until the event fires or is cancelled.
struct EventId {
  std::uint64_t value = 0;
  friend bool operator==(EventId a, EventId b) { return a.value == b.value; }
};

/// Event-driven virtual-time engine.
class Engine {
 public:
  using Callback = std::function<void()>;

  /// Current virtual time. Starts at 0.
  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute virtual time `t` (must be >= now()).
  EventId schedule_at(SimTime t, Callback fn);

  /// Schedule `fn` after a non-negative delay relative to now().
  EventId schedule_in(SimTime delay, Callback fn);

  /// Cancel a pending event. Returns true if the event was still pending;
  /// cancelling an already-fired or already-cancelled event is a no-op.
  bool cancel(EventId id);

  /// Run one event. Returns false if the queue is empty.
  bool step();

  /// Run until the queue drains. Returns the final virtual time.
  SimTime run();

  /// Run events with time <= t, then advance the clock to exactly t.
  void run_until(SimTime t);

  bool empty() const { return pending_ids_.empty(); }
  std::size_t pending() const { return pending_ids_.size(); }
  std::uint64_t events_processed() const { return processed_; }

  /// Heap entries held, including cancelled ones not yet collected.
  /// Diagnostics only: cancellation is lazy, but compaction bounds this at
  /// a constant factor of pending() so cancel-heavy runs (fault injection
  /// kills in-flight events en masse) cannot grow the heap without bound.
  std::size_t queue_depth() const { return heap_.size(); }

  /// Abort: drop all pending events without running them.
  void clear();

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    std::uint64_t id;
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Pop heap entries whose ids are no longer pending (lazy deletion).
  void drop_dead_entries();

  /// Rebuild the heap from live entries when dead ones dominate it.
  void compact_if_mostly_dead();

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t processed_ = 0;
  std::vector<Entry> heap_;  // min-heap under Later
  std::unordered_set<std::uint64_t> pending_ids_;
};

}  // namespace wfe::sim
