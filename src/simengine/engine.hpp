// Discrete-event simulation engine.
//
// The SimulatedExecutor (src/runtime) replays workflow-ensemble executions on
// the modelled cluster by scheduling the fine-grained stages of every
// component (S, I^S, W, R, A, I^A — Section 3.1 of the paper) as events on
// this engine. The engine itself is domain-agnostic: a virtual clock, a
// stable priority queue of callbacks, and cancellation.
//
// Determinism: events at equal timestamps fire in scheduling order (a
// monotonically increasing sequence number breaks ties), so simulations are
// reproducible bit-for-bit regardless of container or load.
//
// Hot-path layout: pending-membership is tracked by generation-stamped
// slots (an EventId is a (slot, generation) pair; cancellation bumps the
// slot's generation) instead of a per-event hash-set entry, and callbacks
// use a small-buffer type (SmallFn) instead of std::function, so scheduling
// an event allocates nothing beyond amortized vector growth.
#pragma once

#include <cstdint>
#include <vector>

#include "simengine/small_fn.hpp"

namespace wfe::sim {

/// Virtual time in seconds.
using SimTime = double;

/// Handle to a scheduled event; valid until the event fires or is cancelled.
/// Encodes a slot index (low 32 bits) and that slot's generation at
/// scheduling time (high 32 bits): stale handles — fired, cancelled, or
/// wiped by clear() — simply fail the generation check.
struct EventId {
  std::uint64_t value = 0;
  friend bool operator==(EventId a, EventId b) { return a.value == b.value; }
};

/// Event-driven virtual-time engine.
class Engine {
 public:
  using Callback = SmallFn;

  /// Current virtual time. Starts at 0.
  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute virtual time `t` (must be >= now()).
  EventId schedule_at(SimTime t, Callback fn);

  /// Schedule `fn` after a non-negative delay relative to now().
  EventId schedule_in(SimTime delay, Callback fn);

  /// Cancel a pending event. Returns true if the event was still pending;
  /// cancelling an already-fired or already-cancelled event is a no-op.
  bool cancel(EventId id);

  /// Run one event. Returns false if the queue is empty.
  bool step();

  /// Run until the queue drains. Returns the final virtual time.
  SimTime run();

  /// Run events with time <= t, then advance the clock to exactly t.
  void run_until(SimTime t);

  bool empty() const { return pending_ == 0; }
  std::size_t pending() const { return pending_; }
  std::uint64_t events_processed() const { return processed_; }

  /// Heap entries held, including cancelled ones not yet collected.
  /// Diagnostics only: cancellation is lazy, but compaction bounds this at
  /// a constant factor of pending() so cancel-heavy runs (fault injection
  /// kills in-flight events en masse) cannot grow the heap without bound.
  std::size_t queue_depth() const { return heap_.size(); }

  /// Abort: drop all pending events without running them.
  void clear();

  /// Opt this engine out of (or back into) observability emission. Run
  /// traces only want the foreground replay; background engines (the
  /// scheduler's probe replays) stay quiet. No effect on results either
  /// way — emission is passive.
  void set_obs(bool on) { obs_ = on; }
  bool obs() const { return obs_; }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    std::uint32_t slot;
    std::uint32_t gen;
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// A slot's entry is pending iff its stamped generation is current.
  bool live(const Entry& e) const { return generations_[e.slot] == e.gen; }

  /// Invalidate a slot's outstanding id and recycle it.
  void retire(std::uint32_t slot);

  /// Pop heap entries whose slots are no longer pending (lazy deletion).
  void drop_dead_entries();

  /// Rebuild the heap from live entries when dead ones dominate it.
  void compact_if_mostly_dead();

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::size_t pending_ = 0;
  bool obs_ = true;
  std::vector<Entry> heap_;  // min-heap under Later
  std::vector<std::uint32_t> generations_;  // per-slot current generation
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace wfe::sim
