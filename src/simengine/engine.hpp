// Discrete-event simulation engine.
//
// The SimulatedExecutor (src/runtime) replays workflow-ensemble executions on
// the modelled cluster by scheduling the fine-grained stages of every
// component (S, I^S, W, R, A, I^A — Section 3.1 of the paper) as events on
// this engine. The engine itself is domain-agnostic: a virtual clock, a
// stable priority queue of callbacks, and cancellation.
//
// Determinism: events at equal timestamps fire in scheduling order (a
// monotonically increasing sequence number breaks ties), so simulations are
// reproducible bit-for-bit regardless of container or load.
//
// Hot-path layout: the pending set is a two-tier calendar/ladder queue over
// an entry arena, not a binary heap.
//
//  * Callbacks live in a slot arena (`fns_`): one SmallFn per slot, slots
//    recycled through a free-list, liveness tracked by a per-slot
//    generation (an EventId is a (slot, generation) pair; cancellation or
//    dispatch bumps the generation, so stale handles are inert).
//  * The queue tiers hold 24-byte trivially-copyable refs (time, seq,
//    slot, gen) — scheduling, splitting and sorting never move a callback;
//    a SmallFn is moved exactly twice: into its slot and out at dispatch.
//  * `near_` is a batch of the soonest refs, sorted descending so dispatch
//    is pop_back. `rungs_` are lazily-split bucket arrays covering the
//    middle distance. `far_` is an unsorted overflow for the far future.
//    New events append to `far_` in O(1); when `near_` drains, the next
//    bucket (or `far_` itself) is split or sorted into the next batch, so
//    ordering work is O(log batch) amortized per event and touches only
//    refs near their dispatch time. Cancelled refs are dropped when the
//    tier holding them is split/sorted, or by a global sweep once corpses
//    outnumber live events.
//
// Steady state (every vector at its high-water capacity) performs zero heap
// allocations across schedule/cancel/step — see
// tests/simengine/test_queue_equivalence.cpp for the counting harness.
#pragma once

#include <cstdint>
#include <vector>

#include "simengine/small_fn.hpp"

namespace wfe::sim {

/// Virtual time in seconds.
using SimTime = double;

/// Handle to a scheduled event; valid until the event fires or is cancelled.
/// Encodes a slot index (low 32 bits) and that slot's generation at
/// scheduling time (high 32 bits): stale handles — fired, cancelled, or
/// wiped by clear() — simply fail the generation check.
struct EventId {
  std::uint64_t value = 0;
  friend bool operator==(EventId a, EventId b) { return a.value == b.value; }
};

/// Event-driven virtual-time engine.
class Engine {
 public:
  using Callback = SmallFn;

  /// Pending-event-set implementation, for benchmark reports
  /// (BENCH_engine.json `queue_policy`) and perf-trajectory diffs.
  static constexpr const char* kQueuePolicy = "calendar";

  /// Counter-sample cadence of a traced run(): one `engine.events` /
  /// `engine.queue_depth` emission per this many dispatched events. Public
  /// because the LP merge (ParallelEngine) replicates the traced run()'s
  /// instrumentation byte-for-byte over the merged event order.
  static constexpr std::uint64_t kObsEventStride = 64;

  /// Current virtual time. Starts at 0.
  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute virtual time `t` (must be >= now()).
  EventId schedule_at(SimTime t, Callback fn);

  /// Schedule `fn` after a non-negative delay relative to now().
  EventId schedule_in(SimTime delay, Callback fn);

  /// Cancel a pending event. Returns true if the event was still pending;
  /// cancelling an already-fired or already-cancelled event is a no-op.
  bool cancel(EventId id);

  /// Run one event. Returns false if the queue is empty.
  bool step();

  /// Timestamp of the next event to fire, without dispatching it. Returns
  /// false when no live events remain. May reorganize queue tiers (it
  /// forces the near batch), but never observably: dispatch order is
  /// unchanged. The LP runtime uses this to bound conservative windows.
  bool peek_time(SimTime* t);

  /// Point `log` at a vector to have every schedule_at/schedule_in append
  /// the scheduled timestamp (in seq order); null disables. The LP runtime
  /// records each event's children this way to reconstruct the sequential
  /// engine's global (time, seq) order at merge time. Emission is passive:
  /// no effect on dispatch order or results.
  void set_schedule_log(std::vector<SimTime>* log) { sched_log_ = log; }

  /// Run until the queue drains. Returns the final virtual time.
  SimTime run();

  /// Run events with time <= t, then advance the clock to exactly t.
  void run_until(SimTime t);

  bool empty() const { return pending_ == 0; }
  std::size_t pending() const { return pending_; }
  std::uint64_t events_processed() const { return processed_; }

  /// Live pending events — cancellation takes effect here immediately.
  /// (Historically this reported internal queue entries including
  /// lazily-deleted corpses; diagnostics that want that number use
  /// refs_held().)
  std::size_t queue_depth() const { return pending_; }

  /// Queue refs currently held across all tiers, including cancelled ones
  /// not yet collected. Diagnostics only: dead refs are dropped when their
  /// tier is split or sorted, and a global sweep bounds this at a constant
  /// factor of pending(), so cancel-heavy runs (fault injection kills
  /// in-flight events en masse) cannot grow the queue without bound.
  std::size_t refs_held() const { return refs_held_; }

  /// Arena slots ever created (high-water mark of concurrently pending
  /// events). Diagnostics for the reuse tests: steady-state workloads must
  /// recycle slots instead of growing this.
  std::size_t arena_slots() const { return generations_.size(); }

  /// Abort: drop all pending events without running them.
  void clear();

  /// Opt this engine out of (or back into) observability emission. Run
  /// traces only want the foreground replay; background engines (the
  /// scheduler's probe replays) stay quiet. No effect on results either
  /// way — emission is passive.
  void set_obs(bool on) { obs_ = on; }
  bool obs() const { return obs_; }

 private:
  /// Queue entry: everything ordering needs, nothing dispatch owns. The
  /// callback stays in the arena; refs are trivially copyable so tier
  /// moves, sorts and splits are flat memory operations.
  struct Ref {
    SimTime time;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    std::uint32_t slot;
    std::uint32_t gen;
  };

  /// Descending (time, seq): sorted ranges dispatch from the back.
  struct RefLater {
    bool operator()(const Ref& a, const Ref& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// One ladder rung: `nbuckets` equal-width buckets over [start, limit).
  /// `cursor` is the next unconsumed bucket; buckets below it are spent.
  /// Rung objects (and their bucket vectors) are pooled in `rungs_` and
  /// reused across spawns so steady-state splitting never allocates.
  struct Rung {
    SimTime start = 0.0;
    SimTime width = 0.0;
    SimTime limit = 0.0;
    std::size_t cursor = 0;
    std::size_t nbuckets = 0;
    std::vector<std::vector<Ref>> buckets;
  };

  /// A ref is pending iff its stamped generation is the slot's current one.
  bool live(const Ref& r) const { return generations_[r.slot] == r.gen; }

  /// Invalidate a slot's outstanding id and recycle it.
  void retire(std::uint32_t slot);

  /// File a ref into the tier covering its timestamp.
  void route(const Ref& r);

  /// Bucket index for `t` in `g`, clamped to [cursor, nbuckets).
  std::size_t bucket_index(const Rung& g, SimTime t) const;

  /// Refill `near_` from the rungs / far tier until it holds a live ref.
  /// Returns false when no live events remain anywhere.
  bool ensure_near();

  /// Distribute `refs` over a fresh (pooled) finest rung spanning
  /// [lo, hi). Caller guarantees a usable positive bucket width.
  void spawn_rung(const std::vector<Ref>& refs, SimTime lo, SimTime hi);

  /// Sort `bucket`'s survivors into `near_` as the next dispatch batch.
  void fill_near(std::vector<Ref>& bucket);

  /// Drop dead refs from every tier when corpses dominate the queue.
  void sweep_if_mostly_dead();

  /// Pop the back of `near_` (must be live) and run its callback.
  void dispatch_back();

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::vector<SimTime>* sched_log_ = nullptr;
  std::uint64_t processed_ = 0;
  std::size_t pending_ = 0;
  std::size_t refs_held_ = 0;
  bool obs_ = true;

  // Entry arena: per-slot callback storage + generation stamps.
  std::vector<Callback> fns_;
  std::vector<std::uint32_t> generations_;
  std::vector<std::uint32_t> free_slots_;

  // Queue tiers.
  std::vector<Ref> near_;    // sorted descending; back = next to fire
  std::vector<Rung> rungs_;  // rung pool; [0, active_rungs_) are live,
  std::size_t active_rungs_ = 0;  // coarsest first, finest last
  std::vector<Ref> far_;     // unsorted overflow beyond every rung
};

}  // namespace wfe::sim
