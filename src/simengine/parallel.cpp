#include "simengine/parallel.hpp"

#include <algorithm>
#include <utility>

#include "exec/thread_pool.hpp"
#include "support/error.hpp"

namespace wfe::sim {

ParallelEngine::ParallelEngine(std::size_t lps) : lanes_(lps) {
  WFE_REQUIRE(lps >= 1, "an LP partition needs at least one lane");
}

EventId ParallelEngine::schedule_root(std::size_t lp, SimTime t,
                                      Engine::Callback fn) {
  WFE_REQUIRE(lp < lanes_.size(), "root scheduled onto a lane out of range");
  WFE_REQUIRE(!ran_, "roots must be scheduled before run()");
  roots_.push_back({static_cast<std::uint32_t>(lp), t});
  return lanes_[lp].engine.schedule_at(t, std::move(fn));
}

void ParallelEngine::run_lane_window(std::size_t lp, SimTime horizon) {
  LpLane& lane = lanes_[lp];
  SimTime t = 0.0;
  while (lane.engine.peek_time(&t) && t <= horizon) {
    const auto child_first = static_cast<std::uint32_t>(lane.child_times.size());
    lane.engine.step();
    lane.done.push_back(
        {lane.engine.now(), child_first,
         static_cast<std::uint32_t>(lane.child_times.size()) - child_first});
    if (boundary_) boundary_(boundary_ctx_, lp, lane.done.size() - 1);
  }
}

void ParallelEngine::run(exec::ThreadPool* pool, SimTime lookahead) {
  WFE_REQUIRE(lookahead > 0.0, "LP lookahead must be positive");
  WFE_REQUIRE(!ran_, "a ParallelEngine runs its partition once");
  ran_ = true;
  // Log scheduling only while dispatching: the roots are already recorded
  // in roots_, so child_times holds in-run children exclusively.
  for (LpLane& lane : lanes_) lane.engine.set_schedule_log(&lane.child_times);

  for (;;) {
    // Conservative window bound: no lane may pass the globally soonest
    // pending event by more than the lookahead. With independent lanes any
    // positive lookahead is safe (there is no cross-LP traffic to wait
    // for); the bound only shapes barrier granularity — and documents
    // where a future cross-member DTL channel would hook its null-message
    // constraint.
    SimTime soonest = kUnbounded;
    bool any = false;
    for (LpLane& lane : lanes_) {
      SimTime t = 0.0;
      if (lane.engine.peek_time(&t)) {
        any = true;
        soonest = std::min(soonest, t);
      }
    }
    if (!any) break;
    const SimTime horizon = soonest + lookahead;  // inf lookahead: one window
    ++windows_;
    if (pool != nullptr && lanes_.size() > 1) {
      // One batch per window; for_each_index's check-out is the rank-
      // ordered barrier (kRankExecPool) every lane passes before the next
      // window's horizon is derived.
      pool->for_each_index(lanes_.size(), [this, horizon](std::size_t lp,
                                                          int /*worker*/) {
        run_lane_window(lp, horizon);
      });
    } else {
      for (std::size_t lp = 0; lp < lanes_.size(); ++lp) {
        run_lane_window(lp, horizon);
      }
    }
  }

  for (LpLane& lane : lanes_) lane.engine.set_schedule_log(nullptr);
}

void ParallelEngine::replay_order(VisitFn visit, void* ctx) const {
  // Reconstruct the sequential engine's dispatch order by replaying its
  // sequence-number assignment over the merged lanes: scheduled-not-fired
  // events live in a min-heap ordered by the same (time, seq) FIFO
  // tie-break the calendar queue uses; popping the minimum consumes the
  // owning lane's next logged event and hands that event's children the
  // next consecutive seqs — exactly what schedule_at would have done.
  struct HeapRef {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t lp;
  };
  struct Later {
    bool operator()(const HeapRef& a, const HeapRef& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::vector<HeapRef> heap;
  heap.reserve(roots_.size() + 16);
  std::vector<std::size_t> cursor(lanes_.size(), 0);
  std::uint64_t seq = 0;
  for (const Root& r : roots_) heap.push_back({r.time, seq++, r.lp});
  std::make_heap(heap.begin(), heap.end(), Later{});

  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), Later{});
    const HeapRef top = heap.back();
    heap.pop_back();
    const std::size_t lp = top.lp;
    const LpLane& lane = lanes_[lp];
    WFE_REQUIRE(cursor[lp] < lane.done.size(),
                "LP merge consumed more events than the lane executed "
                "(was an event cancelled?)");
    const LpLane::Done& e = lane.done[cursor[lp]];
    WFE_REQUIRE(e.time == top.time,
                "LP merge diverged from the lane's execution order");
    for (std::uint32_t j = 0; j < e.child_count; ++j) {
      heap.push_back({lane.child_times[e.child_first + j], seq++,
                      static_cast<std::uint32_t>(lp)});
      std::push_heap(heap.begin(), heap.end(), Later{});
    }
    const std::uint64_t index = cursor[lp]++;
    visit(ctx, lp, index, e.time, heap.size());
  }

  for (std::size_t lp = 0; lp < lanes_.size(); ++lp) {
    WFE_REQUIRE(cursor[lp] == lanes_[lp].done.size(),
                "LP merge left lane events unvisited");
  }
}

std::size_t ParallelEngine::queue_depth() const {
  std::size_t depth = 0;
  for (const LpLane& lane : lanes_) depth += lane.engine.queue_depth();
  return depth;
}

std::size_t ParallelEngine::refs_held() const {
  std::size_t refs = 0;
  for (const LpLane& lane : lanes_) refs += lane.engine.refs_held();
  return refs;
}

std::uint64_t ParallelEngine::events_processed() const {
  std::uint64_t n = 0;
  for (const LpLane& lane : lanes_) n += lane.engine.events_processed();
  return n;
}

SimTime ParallelEngine::now() const {
  SimTime t = 0.0;
  for (const LpLane& lane : lanes_) t = std::max(t, lane.engine.now());
  return t;
}

}  // namespace wfe::sim
