#include "simengine/engine.hpp"

#include <cmath>
#include <utility>

#include "support/error.hpp"

namespace wfe::sim {

EventId Engine::schedule_at(SimTime t, Callback fn) {
  WFE_REQUIRE(std::isfinite(t), "event time must be finite");
  WFE_REQUIRE(t >= now_, "cannot schedule an event in the virtual past");
  WFE_REQUIRE(static_cast<bool>(fn), "event callback must be callable");
  const std::uint64_t id = next_id_++;
  queue_.push(Entry{t, next_seq_++, id, std::move(fn)});
  pending_ids_.insert(id);
  return EventId{id};
}

EventId Engine::schedule_in(SimTime delay, Callback fn) {
  WFE_REQUIRE(delay >= 0.0, "event delay must be non-negative");
  return schedule_at(now_ + delay, std::move(fn));
}

bool Engine::cancel(EventId id) {
  // Lazy deletion: forget the id; the queue entry is dropped when popped.
  return pending_ids_.erase(id.value) > 0;
}

void Engine::drop_dead_entries() {
  while (!queue_.empty() && !pending_ids_.contains(queue_.top().id)) {
    queue_.pop();
  }
}

bool Engine::step() {
  drop_dead_entries();
  if (queue_.empty()) return false;
  Entry e = queue_.top();
  queue_.pop();
  pending_ids_.erase(e.id);
  now_ = e.time;
  ++processed_;
  e.fn();
  return true;
}

SimTime Engine::run() {
  while (step()) {
  }
  return now_;
}

void Engine::run_until(SimTime t) {
  WFE_REQUIRE(t >= now_, "run_until target must not be in the past");
  for (;;) {
    drop_dead_entries();
    if (queue_.empty() || queue_.top().time > t) break;
    step();
  }
  now_ = t;
}

void Engine::clear() {
  queue_ = {};
  pending_ids_.clear();
}

}  // namespace wfe::sim
