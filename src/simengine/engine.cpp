#include "simengine/engine.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "support/error.hpp"

namespace wfe::sim {

EventId Engine::schedule_at(SimTime t, Callback fn) {
  WFE_REQUIRE(std::isfinite(t), "event time must be finite");
  WFE_REQUIRE(t >= now_, "cannot schedule an event in the virtual past");
  WFE_REQUIRE(static_cast<bool>(fn), "event callback must be callable");
  const std::uint64_t id = next_id_++;
  heap_.push_back(Entry{t, next_seq_++, id, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  pending_ids_.insert(id);
  return EventId{id};
}

EventId Engine::schedule_in(SimTime delay, Callback fn) {
  WFE_REQUIRE(delay >= 0.0, "event delay must be non-negative");
  return schedule_at(now_ + delay, std::move(fn));
}

bool Engine::cancel(EventId id) {
  // Lazy deletion: forget the id; the heap entry is dropped when it reaches
  // the top or at the next compaction. Stale ids — already fired, already
  // cancelled, or wiped by clear() — are a no-op returning false.
  if (pending_ids_.erase(id.value) == 0) return false;
  compact_if_mostly_dead();
  return true;
}

void Engine::compact_if_mostly_dead() {
  // A cancelled far-future event would otherwise sit in the heap until the
  // clock reaches it. Rebuilding once dead entries outnumber live ones
  // keeps memory proportional to pending() at amortized O(1) per cancel.
  if (heap_.size() < 64 || heap_.size() < 2 * pending_ids_.size()) return;
  std::erase_if(heap_,
                [&](const Entry& e) { return !pending_ids_.contains(e.id); });
  std::make_heap(heap_.begin(), heap_.end(), Later{});
}

void Engine::drop_dead_entries() {
  while (!heap_.empty() && !pending_ids_.contains(heap_.front().id)) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

bool Engine::step() {
  drop_dead_entries();
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  pending_ids_.erase(e.id);
  now_ = e.time;
  ++processed_;
  e.fn();
  return true;
}

SimTime Engine::run() {
  while (step()) {
  }
  return now_;
}

void Engine::run_until(SimTime t) {
  WFE_REQUIRE(t >= now_, "run_until target must not be in the past");
  for (;;) {
    drop_dead_entries();
    if (heap_.empty() || heap_.front().time > t) break;
    step();
  }
  now_ = t;
}

void Engine::clear() {
  heap_.clear();
  pending_ids_.clear();
}

}  // namespace wfe::sim
