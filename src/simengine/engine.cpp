#include "simengine/engine.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/recorder.hpp"
#include "support/error.hpp"

namespace wfe::sim {

namespace {

constexpr std::uint64_t pack(std::uint32_t slot, std::uint32_t gen) {
  return (static_cast<std::uint64_t>(gen) << 32) | slot;
}

/// Counter-sample cadence of a traced run(): amortizes emission to one
/// registry touch per this many dispatched events.
constexpr std::uint64_t kObsEventStride = 64;

}  // namespace

EventId Engine::schedule_at(SimTime t, Callback fn) {
  WFE_REQUIRE(std::isfinite(t), "event time must be finite");
  WFE_REQUIRE(t >= now_, "cannot schedule an event in the virtual past");
  WFE_REQUIRE(static_cast<bool>(fn), "event callback must be callable");
  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(generations_.size());
    generations_.push_back(1);  // start at 1 so EventId{0} never matches
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
  }
  const std::uint32_t gen = generations_[slot];
  heap_.push_back(Entry{t, next_seq_++, slot, gen, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++pending_;
  return EventId{pack(slot, gen)};
}

EventId Engine::schedule_in(SimTime delay, Callback fn) {
  WFE_REQUIRE(delay >= 0.0, "event delay must be non-negative");
  return schedule_at(now_ + delay, std::move(fn));
}

void Engine::retire(std::uint32_t slot) {
  ++generations_[slot];
  free_slots_.push_back(slot);
  --pending_;
}

bool Engine::cancel(EventId id) {
  // Lazy deletion: bump the slot's generation so the heap entry is seen as
  // dead when it reaches the top or at the next compaction. Stale ids —
  // already fired, already cancelled, or wiped by clear() — fail the
  // generation check and are a no-op returning false.
  const auto slot = static_cast<std::uint32_t>(id.value & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(id.value >> 32);
  if (gen == 0 || slot >= generations_.size() || generations_[slot] != gen) {
    return false;
  }
  retire(slot);
  compact_if_mostly_dead();
  return true;
}

void Engine::compact_if_mostly_dead() {
  // A cancelled far-future event would otherwise sit in the heap until the
  // clock reaches it. Rebuilding once dead entries outnumber live ones
  // keeps memory proportional to pending() at amortized O(1) per cancel.
  if (heap_.size() < 64 || heap_.size() < 2 * pending_) return;
  std::erase_if(heap_, [&](const Entry& e) { return !live(e); });
  std::make_heap(heap_.begin(), heap_.end(), Later{});
}

void Engine::drop_dead_entries() {
  while (!heap_.empty() && !live(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

bool Engine::step() {
  drop_dead_entries();
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  retire(e.slot);
  now_ = e.time;
  ++processed_;
  e.fn();
  return true;
}

SimTime Engine::run() {
  // The untraced path is byte-for-byte the historical loop: tracing is
  // decided once per run() (one atomic load), never per event.
  if (!obs_ || !obs::enabled()) {
    while (step()) {
    }
    return now_;
  }
  const SimTime t0 = now_;
  std::uint64_t last = processed_;
  while (step()) {
    if (processed_ - last >= kObsEventStride) {
      obs::add_counter("engine.events", now_,
                       static_cast<double>(processed_ - last));
      obs::set_counter("engine.queue_depth", now_,
                       static_cast<double>(queue_depth()));
      last = processed_;
    }
  }
  if (processed_ != last) {
    obs::add_counter("engine.events", now_,
                     static_cast<double>(processed_ - last));
    obs::set_counter("engine.queue_depth", now_, 0.0);
  }
  obs::span("engine", "run", t0, now_);
  return now_;
}

void Engine::run_until(SimTime t) {
  WFE_REQUIRE(t >= now_, "run_until target must not be in the past");
  for (;;) {
    drop_dead_entries();
    if (heap_.empty() || heap_.front().time > t) break;
    step();
  }
  now_ = t;
}

void Engine::clear() {
  for (const Entry& e : heap_) {
    if (live(e)) retire(e.slot);
  }
  heap_.clear();
}

}  // namespace wfe::sim
