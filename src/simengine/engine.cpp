#include "simengine/engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "obs/recorder.hpp"
#include "support/error.hpp"

namespace wfe::sim {

namespace {

constexpr std::uint64_t pack(std::uint32_t slot, std::uint32_t gen) {
  return (static_cast<std::uint64_t>(gen) << 32) | slot;
}

/// Batch size the near tier aims for: a bucket (or the whole far tier) at
/// or below this size is sorted straight into `near_` instead of being
/// split further. Amortized ordering cost per event is one insertion into
/// a sort of this many 24-byte refs.
constexpr std::size_t kNearBatch = 64;

/// Rung shape: aim for this many refs per bucket when splitting, within
/// [kMinBuckets, kMaxBuckets]. A split of m refs therefore lands whole
/// buckets near kNearBatch-sized, so most buckets sort directly into the
/// near tier without a second split.
constexpr std::size_t kRefsPerBucket = 8;
constexpr std::size_t kMinBuckets = 8;
constexpr std::size_t kMaxBuckets = 4096;

/// Recursion bound: beyond this many stacked rungs the current bucket is
/// sorted into `near_` whole, whatever its size. Sorting is always
/// correct; the cap only bounds pathological time distributions.
constexpr std::size_t kMaxRungs = 32;

/// Sweep threshold: dead refs are collected once the tiers hold more than
/// twice the live count (and more than one batch), bounding memory at a
/// constant factor of pending() at amortized O(1) per cancel.
constexpr std::size_t kSweepFloor = 64;

}  // namespace

EventId Engine::schedule_at(SimTime t, Callback fn) {
  WFE_REQUIRE(std::isfinite(t), "event time must be finite");
  WFE_REQUIRE(t >= now_, "cannot schedule an event in the virtual past");
  WFE_REQUIRE(static_cast<bool>(fn), "event callback must be callable");
  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(generations_.size());
    generations_.push_back(1);  // start at 1 so EventId{0} never matches
    fns_.emplace_back();
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
  }
  fns_[slot] = std::move(fn);
  const std::uint32_t gen = generations_[slot];
  if (sched_log_) sched_log_->push_back(t);
  route(Ref{t, next_seq_++, slot, gen});
  ++pending_;
  return EventId{pack(slot, gen)};
}

EventId Engine::schedule_in(SimTime delay, Callback fn) {
  WFE_REQUIRE(delay >= 0.0, "event delay must be non-negative");
  return schedule_at(now_ + delay, std::move(fn));
}

void Engine::route(const Ref& r) {
  ++refs_held_;
  // Tier invariant: every ref outside `near_` is (time, seq)-after every
  // ref inside it. A new ref carries the globally largest seq, so it may
  // go outside whenever its time is at or beyond the latest near time.
  if (!near_.empty()) {
    // Fires before everything pending (back is the soonest): descending
    // order means it appends in O(1) — the common case when a component
    // schedules its next stage a short delay ahead.
    if (RefLater{}(near_.back(), r)) {
      near_.push_back(r);
      return;
    }
    if (r.time < near_.front().time) {
      near_.insert(
          std::lower_bound(near_.begin(), near_.end(), r, RefLater{}), r);
      return;
    }
  }
  // Finest rung first: the first rung whose range still covers r.time owns
  // it. Times below the rung's unconsumed region clamp into the cursor
  // bucket — that bucket is sorted wholesale when it becomes the near
  // batch, so early refs inside it still dispatch in order.
  for (std::size_t i = active_rungs_; i-- > 0;) {
    Rung& g = rungs_[i];
    if (g.cursor < g.nbuckets && r.time < g.limit) {
      g.buckets[bucket_index(g, r.time)].push_back(r);
      return;
    }
  }
  far_.push_back(r);
}

std::size_t Engine::bucket_index(const Rung& g, SimTime t) const {
  const double d = (t - g.start) / g.width;
  std::size_t idx = 0;
  if (d > 0.0) {
    idx = std::min(static_cast<std::size_t>(d), g.nbuckets - 1);
  }
  return std::max(idx, g.cursor);
}

void Engine::spawn_rung(const std::vector<Ref>& refs, SimTime lo,
                        SimTime hi) {
  if (rungs_.size() == active_rungs_) rungs_.emplace_back();
  Rung& g = rungs_[active_rungs_++];
  g.start = lo;
  g.limit = hi;
  g.cursor = 0;
  g.nbuckets = std::clamp(refs.size() / kRefsPerBucket, kMinBuckets,
                          kMaxBuckets);
  if (g.buckets.size() < g.nbuckets) g.buckets.resize(g.nbuckets);
  g.width = (hi - lo) / static_cast<double>(g.nbuckets);
  for (const Ref& r : refs) {
    const double d = (r.time - g.start) / g.width;
    std::size_t idx = 0;
    if (d > 0.0) idx = std::min(static_cast<std::size_t>(d), g.nbuckets - 1);
    g.buckets[idx].push_back(r);
  }
}

void Engine::fill_near(std::vector<Ref>& bucket) {
  near_.insert(near_.end(), bucket.begin(), bucket.end());
  bucket.clear();
  std::sort(near_.begin(), near_.end(), RefLater{});
}

bool Engine::ensure_near() {
  for (;;) {
    while (!near_.empty() && !live(near_.back())) {
      near_.pop_back();
      --refs_held_;
    }
    if (!near_.empty()) return true;

    if (active_rungs_ > 0) {
      Rung& g = rungs_[active_rungs_ - 1];
      while (g.cursor < g.nbuckets && g.buckets[g.cursor].empty()) {
        ++g.cursor;
      }
      if (g.cursor == g.nbuckets) {
        --active_rungs_;  // rung spent; its storage stays pooled
        continue;
      }
      std::vector<Ref>& bucket = g.buckets[g.cursor];
      const std::size_t before = bucket.size();
      std::erase_if(bucket, [&](const Ref& r) { return !live(r); });
      refs_held_ -= before - bucket.size();
      const SimTime lo = g.start + g.width * static_cast<double>(g.cursor);
      const SimTime hi = (g.cursor + 1 == g.nbuckets)
                             ? g.limit
                             : g.start + g.width *
                                             static_cast<double>(g.cursor + 1);
      ++g.cursor;  // consume now: spawning below may stack a finer rung
      if (bucket.empty()) continue;
      if (bucket.size() <= kNearBatch || active_rungs_ >= kMaxRungs) {
        fill_near(bucket);
        return true;
      }
      // Splittable only if the bucket actually spans distinct times and
      // the sub-bucket width stays representable; otherwise sort it whole.
      const auto [mn, mx] = std::minmax_element(
          bucket.begin(), bucket.end(),
          [](const Ref& a, const Ref& b) { return a.time < b.time; });
      const double width =
          (hi - lo) / static_cast<double>(kMinBuckets);
      if (mn->time == mx->time || !(lo + width > lo)) {
        fill_near(bucket);
        return true;
      }
      spawn_rung(bucket, lo, hi);
      bucket.clear();
      continue;
    }

    if (!far_.empty()) {
      const std::size_t before = far_.size();
      std::erase_if(far_, [&](const Ref& r) { return !live(r); });
      refs_held_ -= before - far_.size();
      if (far_.empty()) return false;
      SimTime mn = far_.front().time;
      SimTime mx = mn;
      for (const Ref& r : far_) {
        mn = std::min(mn, r.time);
        mx = std::max(mx, r.time);
      }
      const double width = (mx - mn) / static_cast<double>(kMinBuckets);
      if (far_.size() <= kNearBatch || mn == mx || !(mn + width > mn)) {
        fill_near(far_);
        return true;
      }
      // The rung must cover its own maximum: nudge the limit past mx so
      // `time < limit` holds for every ref routed while this rung lives.
      const SimTime hi = std::nextafter(
          mx, std::numeric_limits<SimTime>::infinity());
      spawn_rung(far_, mn, hi);
      far_.clear();
      continue;
    }

    return false;
  }
}

void Engine::retire(std::uint32_t slot) {
  ++generations_[slot];
  free_slots_.push_back(slot);
  --pending_;
}

bool Engine::cancel(EventId id) {
  // Lazy deletion: bump the slot's generation so the queued ref is seen as
  // dead when its tier is consumed, split, or swept. Stale ids — already
  // fired, already cancelled, or wiped by clear() — fail the generation
  // check and are a no-op returning false.
  const auto slot = static_cast<std::uint32_t>(id.value & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(id.value >> 32);
  if (gen == 0 || slot >= generations_.size() || generations_[slot] != gen) {
    return false;
  }
  fns_[slot] = Callback{};  // release the payload immediately
  retire(slot);
  sweep_if_mostly_dead();
  return true;
}

void Engine::sweep_if_mostly_dead() {
  if (refs_held_ <= kSweepFloor || refs_held_ <= 2 * pending_) return;
  const auto dead = [&](const Ref& r) { return !live(r); };
  std::erase_if(near_, dead);  // erase_if preserves the sorted order
  for (std::size_t i = 0; i < active_rungs_; ++i) {
    Rung& g = rungs_[i];
    for (std::size_t b = g.cursor; b < g.nbuckets; ++b) {
      std::erase_if(g.buckets[b], dead);
    }
  }
  std::erase_if(far_, dead);
  std::size_t held = near_.size() + far_.size();
  for (std::size_t i = 0; i < active_rungs_; ++i) {
    const Rung& g = rungs_[i];
    for (std::size_t b = g.cursor; b < g.nbuckets; ++b) {
      held += g.buckets[b].size();
    }
  }
  refs_held_ = held;
}

void Engine::dispatch_back() {
  const Ref r = near_.back();
  near_.pop_back();
  --refs_held_;
  now_ = r.time;
  ++processed_;
  Callback fn = std::move(fns_[r.slot]);
  retire(r.slot);
  fn();
}

bool Engine::step() {
  if (!ensure_near()) return false;
  dispatch_back();
  return true;
}

bool Engine::peek_time(SimTime* t) {
  if (!ensure_near()) return false;
  *t = near_.back().time;
  return true;
}

SimTime Engine::run() {
  // The untraced path is byte-for-byte the historical loop: tracing is
  // decided once per run() (one atomic load), never per event.
  if (!obs_ || !obs::enabled()) {
    while (step()) {
    }
    return now_;
  }
  const SimTime t0 = now_;
  std::uint64_t last = processed_;
  while (step()) {
    if (processed_ - last >= kObsEventStride) {
      obs::add_counter("engine.events", now_,
                       static_cast<double>(processed_ - last));
      obs::set_counter("engine.queue_depth", now_,
                       static_cast<double>(queue_depth()));
      last = processed_;
    }
  }
  if (processed_ != last) {
    obs::add_counter("engine.events", now_,
                     static_cast<double>(processed_ - last));
    obs::set_counter("engine.queue_depth", now_, 0.0);
  }
  obs::span("engine", "run", t0, now_);
  return now_;
}

void Engine::run_until(SimTime t) {
  WFE_REQUIRE(t >= now_, "run_until target must not be in the past");
  while (ensure_near() && near_.back().time <= t) {
    dispatch_back();
  }
  now_ = t;
}

void Engine::clear() {
  const auto drop = [&](std::vector<Ref>& refs) {
    for (const Ref& r : refs) {
      if (live(r)) {
        fns_[r.slot] = Callback{};
        retire(r.slot);
      }
    }
    refs.clear();
  };
  drop(near_);
  for (std::size_t i = 0; i < active_rungs_; ++i) {
    Rung& g = rungs_[i];
    for (std::size_t b = g.cursor; b < g.nbuckets; ++b) {
      drop(g.buckets[b]);
    }
  }
  active_rungs_ = 0;
  drop(far_);
  refs_held_ = 0;
}

}  // namespace wfe::sim
