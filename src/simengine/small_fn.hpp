// SmallFn: a move-only `void()` callable with small-buffer storage.
//
// The event engine schedules hundreds of thousands of closures per replay;
// with std::function each of them may heap-allocate. The engine's callbacks
// are almost all tiny lambdas (a couple of pointers), so SmallFn stores
// callables up to kInlineBytes in-place and only falls back to the heap for
// oversized or throwing-move types. Move-only is deliberate: heap entries
// are moved, never copied, and dropping copyability keeps captured state
// unambiguous.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace wfe::sim {

class SmallFn {
 public:
  /// In-place capacity. Sized for the executor's stage closures (a few
  /// pointers plus a small amount of state) while keeping heap entries
  /// cache-friendly.
  static constexpr std::size_t kInlineBytes = 48;

  SmallFn() = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, SmallFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
    constexpr bool kInline = sizeof(D) <= kInlineBytes &&
                             alignof(D) <= alignof(std::max_align_t) &&
                             std::is_nothrow_move_constructible_v<D>;
    if constexpr (kInline) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &InlineOps<D>::ops;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &HeapOps<D>::ops;
    }
  }

  SmallFn(SmallFn&& other) noexcept { move_from(other); }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buf_); }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-construct the payload into `dst` and destroy it in `src`.
    void (*relocate)(void* src, void* dst);
    void (*destroy)(void*);
    /// Inline payload that is trivially copyable (hence trivially
    /// destructible): relocation is a buffer memcpy and destruction a
    /// no-op, so the move and reset paths skip the indirect calls. The
    /// engine's stage closures capture a couple of raw pointers, so this
    /// is the hot case.
    bool trivial;
  };

  template <typename D>
  struct InlineOps {
    static void invoke(void* p) { (*static_cast<D*>(p))(); }
    static void relocate(void* src, void* dst) {
      ::new (dst) D(std::move(*static_cast<D*>(src)));
      static_cast<D*>(src)->~D();
    }
    static void destroy(void* p) { static_cast<D*>(p)->~D(); }
    static constexpr Ops ops{&invoke, &relocate, &destroy,
                             std::is_trivially_copyable_v<D>};
  };

  template <typename D>
  struct HeapOps {
    static D* ptr(void* p) { return *static_cast<D**>(p); }
    static void invoke(void* p) { (*ptr(p))(); }
    static void relocate(void* src, void* dst) {
      ::new (dst) D*(ptr(src));
    }
    static void destroy(void* p) { delete ptr(p); }
    // Never trivial: destroy must free the heap payload.
    static constexpr Ops ops{&invoke, &relocate, &destroy, false};
  };

  void move_from(SmallFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      if (ops_->trivial) {
        // Payload size is erased; copying the whole buffer is harmless.
        std::memcpy(buf_, other.buf_, kInlineBytes);
      } else {
        ops_->relocate(other.buf_, buf_);
      }
      other.ops_ = nullptr;
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      if (!ops_->trivial) ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace wfe::sim
