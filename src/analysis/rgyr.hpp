// Radius of gyration: RMS distance of atoms from their centroid.
#pragma once

#include "analysis/kernel.hpp"

namespace wfe::ana {

class RgyrKernel final : public AnalysisKernel {
 public:
  std::string name() const override { return "rgyr"; }

  /// values = { radius_of_gyration }.
  AnalysisResult analyze(const dtl::Chunk& chunk) override;
};

/// Radius of gyration of a 3N coordinate array (unit masses).
double radius_of_gyration(std::span<const double> xyz);

}  // namespace wfe::ana
