// Gyration-tensor shape analysis.
//
// G = (1/N) sum_i (r_i - rbar)(r_i - rbar)^T is the 3x3 gyration tensor;
// its ordered eigenvalues l1 >= l2 >= l3 yield the classic molecular shape
// descriptors: squared radius of gyration Rg^2 = l1+l2+l3, asphericity
// b = l1 - (l2+l3)/2, acylindricity c = l2 - l3, and the relative shape
// anisotropy kappa^2 = (b^2 + 0.75 c^2) / (Rg^2)^2. Complements the
// bipartite-eigenvalue collective variable with a cheap O(N) kernel.
#pragma once

#include <array>

#include "analysis/kernel.hpp"

namespace wfe::ana {

/// Eigenvalues of a symmetric 3x3 matrix in descending order, computed in
/// closed form (trigonometric / Cardano method; Smith 1961). The matrix is
/// given by its six independent entries.
std::array<double, 3> symmetric3_eigenvalues(double xx, double yy, double zz,
                                             double xy, double xz, double yz);

class GyrationTensorKernel final : public AnalysisKernel {
 public:
  std::string name() const override { return "gyration-tensor"; }

  /// values = { l1, l2, l3, rg2, asphericity, acylindricity, kappa2 }.
  AnalysisResult analyze(const dtl::Chunk& chunk) override;
};

}  // namespace wfe::ana
