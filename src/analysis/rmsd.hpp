// Root-mean-square deviation against a reference frame.
//
// The first frame a kernel instance sees becomes the reference; subsequent
// frames report their centered RMSD to it (translation removed; we skip the
// rotational Kabsch fit, which is unnecessary for a periodic bulk fluid).
#pragma once

#include <optional>
#include <vector>

#include "analysis/kernel.hpp"

namespace wfe::ana {

class RmsdKernel final : public AnalysisKernel {
 public:
  std::string name() const override { return "rmsd"; }

  /// values = { rmsd } (0 for the reference frame itself).
  AnalysisResult analyze(const dtl::Chunk& chunk) override;

  bool has_reference() const { return reference_.has_value(); }

 private:
  std::optional<std::vector<double>> reference_;  // centered coordinates
};

/// Centered RMSD between two equally sized 3N coordinate arrays.
double centered_rmsd(std::span<const double> a, std::span<const double> b);

}  // namespace wfe::ana
