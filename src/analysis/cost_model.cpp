#include "analysis/cost_model.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace wfe::ana {

std::size_t effective_atoms(const AnalysisCostParams& params,
                            std::size_t natoms) {
  WFE_REQUIRE(params.subsample_stride >= 1, "subsample stride must be >= 1");
  return natoms / static_cast<std::size_t>(params.subsample_stride);
}

plat::ComputeProfile analysis_stage_profile(const AnalysisCostParams& params,
                                            std::size_t natoms) {
  WFE_REQUIRE(natoms > 0, "cost model needs a positive atom count");
  WFE_REQUIRE(params.power_iterations > 0, "need at least one sweep");
  const auto n = static_cast<double>(effective_atoms(params, natoms));
  const double n1 = n / 2.0;
  const double n2 = n - n1;
  const double matrix_elements = n1 * n2;

  plat::ComputeProfile p;
  // Matrix construction (one pass) + power sweeps (two matvecs each).
  p.instructions = params.instr_per_element_sweep * matrix_elements *
                   (1.0 + 2.0 * static_cast<double>(params.power_iterations));
  p.base_ipc = params.base_ipc;
  p.llc_refs_per_instr = params.llc_refs_per_instr;
  p.base_miss_ratio = params.base_miss_ratio;
  p.working_set_bytes =
      std::min(matrix_elements * sizeof(double),
               params.max_cache_footprint_bytes) +
      params.fixed_working_set_bytes;
  p.cache_sensitivity = params.cache_sensitivity;
  p.parallel_fraction = params.parallel_fraction;
  return p;
}

}  // namespace wfe::ana
