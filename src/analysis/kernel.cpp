#include "analysis/kernel.hpp"

#include "analysis/bipartite_eigen.hpp"
#include "analysis/contact_map.hpp"
#include "analysis/gyration_tensor.hpp"
#include "analysis/rgyr.hpp"
#include "analysis/rmsd.hpp"
#include "support/error.hpp"

namespace wfe::ana {

std::unique_ptr<AnalysisKernel> make_kernel(const std::string& name) {
  if (name == "bipartite-eigen") {
    return std::make_unique<BipartiteEigenKernel>();
  }
  if (name == "rmsd") return std::make_unique<RmsdKernel>();
  if (name == "rgyr") return std::make_unique<RgyrKernel>();
  if (name == "contacts") return std::make_unique<ContactMapKernel>();
  if (name == "gyration-tensor") {
    return std::make_unique<GyrationTensorKernel>();
  }
  throw InvalidArgument("unknown analysis kernel: " + name);
}

}  // namespace wfe::ana
