// Largest eigenvalue of bipartite distance matrices — the paper's analysis.
//
// Following Johnston et al. (J. Comput. Chem. 38(16), 2017), the frame's
// atoms are split into two partitions; the bipartite matrix B holds the
// pairwise Euclidean distances between partitions; the largest singular
// value of B (equivalently, the square root of the largest eigenvalue of
// B^T B) serves as a collective variable capturing global molecular motion.
//
// We never materialize B^T B: power iteration applies B and B^T per sweep,
// which keeps the kernel O(n1 * n2) per iteration in time and O(n1 * n2)
// in memory for B itself — exactly the data-intensive, cache-hungry
// behaviour the paper attributes to its analyses.
#pragma once

#include <cstddef>

#include "analysis/kernel.hpp"

namespace wfe::ana {

struct BipartiteEigenConfig {
  /// Power-iteration sweeps (fixed count keeps cost deterministic).
  int power_iterations = 20;
  /// Take every k-th atom before partitioning (1 = all atoms); lets native
  /// runs bound the O(n^2) matrix at large frames.
  int subsample_stride = 1;
  /// RNG seed for the start vector.
  std::uint64_t seed = 7;
};

class BipartiteEigenKernel final : public AnalysisKernel {
 public:
  explicit BipartiteEigenKernel(BipartiteEigenConfig config = {});

  std::string name() const override { return "bipartite-eigen"; }

  /// values = { largest_singular_value, n1, n2 }.
  AnalysisResult analyze(const dtl::Chunk& chunk) override;

 private:
  BipartiteEigenConfig config_;
};

/// Free-function core (exposed for direct testing): largest singular value
/// of the n1 x n2 matrix `b` (row-major), via `iterations` power sweeps of
/// B^T B starting from a deterministic unit vector.
double largest_singular_value(const std::vector<double>& b, std::size_t n1,
                              std::size_t n2, int iterations,
                              std::uint64_t seed);

}  // namespace wfe::ana
