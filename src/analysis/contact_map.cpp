#include "analysis/contact_map.hpp"

#include "support/error.hpp"

namespace wfe::ana {

ContactMapKernel::ContactMapKernel(ContactMapConfig config) : config_(config) {
  WFE_REQUIRE(config_.cutoff > 0.0, "contact cutoff must be positive");
  WFE_REQUIRE(config_.subsample_stride >= 1, "subsample stride must be >= 1");
}

AnalysisResult ContactMapKernel::analyze(const dtl::Chunk& chunk) {
  WFE_REQUIRE(chunk.kind() == dtl::PayloadKind::kPositions3N,
              "contacts consumes position frames");
  const auto xyz = chunk.values();
  const auto stride = static_cast<std::size_t>(config_.subsample_stride);
  const std::size_t atoms = chunk.atom_count() / stride;
  WFE_REQUIRE(atoms >= 2, "need at least two (subsampled) atoms");

  const double rc2 = config_.cutoff * config_.cutoff;
  std::size_t contacts = 0;
  for (std::size_t i = 0; i < atoms; ++i) {
    const std::size_t ai = i * stride * 3;
    for (std::size_t j = i + 1; j < atoms; ++j) {
      const std::size_t aj = j * stride * 3;
      const double dx = xyz[ai] - xyz[aj];
      const double dy = xyz[ai + 1] - xyz[aj + 1];
      const double dz = xyz[ai + 2] - xyz[aj + 2];
      if (dx * dx + dy * dy + dz * dz < rc2) ++contacts;
    }
  }

  const double pairs = static_cast<double>(atoms) *
                       static_cast<double>(atoms - 1) / 2.0;
  AnalysisResult result;
  result.kernel = name();
  result.step = chunk.key().step;
  result.values = {static_cast<double>(contacts),
                   static_cast<double>(contacts) / pairs};
  return result;
}

}  // namespace wfe::ana
