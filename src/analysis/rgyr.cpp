#include "analysis/rgyr.hpp"

#include <cmath>

#include "support/error.hpp"

namespace wfe::ana {

double radius_of_gyration(std::span<const double> xyz) {
  WFE_REQUIRE(!xyz.empty() && xyz.size() % 3 == 0,
              "need a non-empty 3N coordinate array");
  const std::size_t atoms = xyz.size() / 3;
  double cx = 0.0, cy = 0.0, cz = 0.0;
  for (std::size_t i = 0; i < atoms; ++i) {
    cx += xyz[i * 3];
    cy += xyz[i * 3 + 1];
    cz += xyz[i * 3 + 2];
  }
  const double inv = 1.0 / static_cast<double>(atoms);
  cx *= inv;
  cy *= inv;
  cz *= inv;
  double acc = 0.0;
  for (std::size_t i = 0; i < atoms; ++i) {
    const double dx = xyz[i * 3] - cx;
    const double dy = xyz[i * 3 + 1] - cy;
    const double dz = xyz[i * 3 + 2] - cz;
    acc += dx * dx + dy * dy + dz * dz;
  }
  return std::sqrt(acc * inv);
}

AnalysisResult RgyrKernel::analyze(const dtl::Chunk& chunk) {
  WFE_REQUIRE(chunk.kind() == dtl::PayloadKind::kPositions3N,
              "rgyr consumes position frames");
  AnalysisResult result;
  result.kernel = name();
  result.step = chunk.key().step;
  result.values = {radius_of_gyration(chunk.values())};
  return result;
}

}  // namespace wfe::ana
