#include "analysis/bipartite_eigen.hpp"

#include <cmath>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace wfe::ana {

BipartiteEigenKernel::BipartiteEigenKernel(BipartiteEigenConfig config)
    : config_(config) {
  WFE_REQUIRE(config_.power_iterations > 0,
              "need at least one power iteration");
  WFE_REQUIRE(config_.subsample_stride >= 1,
              "subsample stride must be >= 1");
}

double largest_singular_value(const std::vector<double>& b, std::size_t n1,
                              std::size_t n2, int iterations,
                              std::uint64_t seed) {
  WFE_REQUIRE(b.size() == n1 * n2, "matrix size mismatch");
  WFE_REQUIRE(n1 > 0 && n2 > 0, "matrix must be non-empty");

  // Deterministic start vector on the unit sphere.
  Xoshiro256 rng(seed);
  std::vector<double> v(n2);
  double norm = 0.0;
  for (auto& x : v) {
    x = rng.normal();
    norm += x * x;
  }
  norm = std::sqrt(norm);
  for (auto& x : v) x /= norm;

  std::vector<double> u(n1);
  double sigma = 0.0;
  for (int it = 0; it < iterations; ++it) {
    // u = B v
    for (std::size_t i = 0; i < n1; ++i) {
      double acc = 0.0;
      const double* row = b.data() + i * n2;
      for (std::size_t j = 0; j < n2; ++j) acc += row[j] * v[j];
      u[i] = acc;
    }
    // v = B^T u, tracking ||B v|| for the Rayleigh estimate.
    double unorm = 0.0;
    for (double x : u) unorm += x * x;
    unorm = std::sqrt(unorm);
    if (unorm == 0.0) return 0.0;  // zero matrix
    sigma = unorm;                 // since ||v|| == 1: sigma_est = ||B v||
    for (std::size_t i = 0; i < n1; ++i) u[i] /= unorm;

    for (std::size_t j = 0; j < n2; ++j) {
      double acc = 0.0;
      for (std::size_t i = 0; i < n1; ++i) acc += b[i * n2 + j] * u[i];
      v[j] = acc;
    }
    double vnorm = 0.0;
    for (double x : v) vnorm += x * x;
    vnorm = std::sqrt(vnorm);
    if (vnorm == 0.0) return sigma;
    for (auto& x : v) x /= vnorm;
  }
  return sigma;
}

AnalysisResult BipartiteEigenKernel::analyze(const dtl::Chunk& chunk) {
  WFE_REQUIRE(chunk.kind() == dtl::PayloadKind::kPositions3N,
              "bipartite-eigen consumes position frames");
  const auto xyz = chunk.values();
  const std::size_t stride = static_cast<std::size_t>(config_.subsample_stride);
  const std::size_t atoms = chunk.atom_count() / stride;
  WFE_REQUIRE(atoms >= 2, "need at least two (subsampled) atoms");

  const std::size_t n1 = atoms / 2;
  const std::size_t n2 = atoms - n1;

  // Bipartite distance matrix between the first and second partition.
  std::vector<double> b(n1 * n2);
  for (std::size_t i = 0; i < n1; ++i) {
    const std::size_t ai = i * stride * 3;
    for (std::size_t j = 0; j < n2; ++j) {
      const std::size_t aj = (n1 + j) * stride * 3;
      const double dx = xyz[ai] - xyz[aj];
      const double dy = xyz[ai + 1] - xyz[aj + 1];
      const double dz = xyz[ai + 2] - xyz[aj + 2];
      b[i * n2 + j] = std::sqrt(dx * dx + dy * dy + dz * dz);
    }
  }

  AnalysisResult result;
  result.kernel = name();
  result.step = chunk.key().step;
  result.values = {largest_singular_value(b, n1, n2, config_.power_iterations,
                                          config_.seed),
                   static_cast<double>(n1), static_cast<double>(n2)};
  return result;
}

}  // namespace wfe::ana
