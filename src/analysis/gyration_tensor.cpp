#include "analysis/gyration_tensor.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace wfe::ana {

std::array<double, 3> symmetric3_eigenvalues(double xx, double yy, double zz,
                                             double xy, double xz,
                                             double yz) {
  const double off2 = xy * xy + xz * xz + yz * yz;
  if (off2 < 1e-30) {
    std::array<double, 3> eig{xx, yy, zz};
    std::sort(eig.begin(), eig.end(), std::greater<>());
    return eig;
  }
  // Smith's trigonometric method for symmetric 3x3 matrices.
  const double q = (xx + yy + zz) / 3.0;
  const double p2 = (xx - q) * (xx - q) + (yy - q) * (yy - q) +
                    (zz - q) * (zz - q) + 2.0 * off2;
  const double p = std::sqrt(p2 / 6.0);
  // B = (A - q I) / p; r = det(B) / 2, clamped into [-1, 1].
  const double bxx = (xx - q) / p, byy = (yy - q) / p, bzz = (zz - q) / p;
  const double bxy = xy / p, bxz = xz / p, byz = yz / p;
  double r = (bxx * (byy * bzz - byz * byz) - bxy * (bxy * bzz - byz * bxz) +
              bxz * (bxy * byz - byy * bxz)) /
             2.0;
  r = std::clamp(r, -1.0, 1.0);
  const double phi = std::acos(r) / 3.0;
  const double l1 = q + 2.0 * p * std::cos(phi);
  const double l3 = q + 2.0 * p * std::cos(phi + 2.0 * M_PI / 3.0);
  const double l2 = 3.0 * q - l1 - l3;  // trace invariant
  return {l1, l2, l3};
}

AnalysisResult GyrationTensorKernel::analyze(const dtl::Chunk& chunk) {
  WFE_REQUIRE(chunk.kind() == dtl::PayloadKind::kPositions3N,
              "gyration-tensor consumes position frames");
  const auto xyz = chunk.values();
  const std::size_t atoms = chunk.atom_count();
  WFE_REQUIRE(atoms >= 1, "need at least one atom");

  double cx = 0.0, cy = 0.0, cz = 0.0;
  for (std::size_t i = 0; i < atoms; ++i) {
    cx += xyz[i * 3];
    cy += xyz[i * 3 + 1];
    cz += xyz[i * 3 + 2];
  }
  const double inv = 1.0 / static_cast<double>(atoms);
  cx *= inv;
  cy *= inv;
  cz *= inv;

  double xx = 0.0, yy = 0.0, zz = 0.0, xy = 0.0, xz = 0.0, yz = 0.0;
  for (std::size_t i = 0; i < atoms; ++i) {
    const double dx = xyz[i * 3] - cx;
    const double dy = xyz[i * 3 + 1] - cy;
    const double dz = xyz[i * 3 + 2] - cz;
    xx += dx * dx;
    yy += dy * dy;
    zz += dz * dz;
    xy += dx * dy;
    xz += dx * dz;
    yz += dy * dz;
  }
  xx *= inv;
  yy *= inv;
  zz *= inv;
  xy *= inv;
  xz *= inv;
  yz *= inv;

  const auto [l1, l2, l3] = symmetric3_eigenvalues(xx, yy, zz, xy, xz, yz);
  const double rg2 = l1 + l2 + l3;
  const double asphericity = l1 - 0.5 * (l2 + l3);
  const double acylindricity = l2 - l3;
  const double kappa2 =
      rg2 > 0.0 ? (asphericity * asphericity +
                   0.75 * acylindricity * acylindricity) /
                      (rg2 * rg2)
                : 0.0;

  AnalysisResult result;
  result.kernel = name();
  result.step = chunk.key().step;
  result.values = {l1, l2, l3, rg2, asphericity, acylindricity, kappa2};
  return result;
}

}  // namespace wfe::ana
