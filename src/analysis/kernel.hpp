// Analysis-kernel interface.
//
// In the paper, each analysis component applies an algorithm to the frames
// its simulation stages in memory; the chunk "defines a unique data type
// standard for the analysis kernels, though each of them may perform
// different computations" (§2.2). Kernels here consume a Chunk and emit a
// small vector of collective-variable values. Kernels may hold state across
// steps (e.g. the RMSD reference frame).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dtl/chunk.hpp"

namespace wfe::ana {

struct AnalysisResult {
  std::string kernel;
  std::uint64_t step = 0;
  std::vector<double> values;
};

class AnalysisKernel {
 public:
  virtual ~AnalysisKernel() = default;

  virtual std::string name() const = 0;

  /// Process one frame. Throws wfe::InvalidArgument if the chunk's payload
  /// kind does not match what the kernel expects.
  virtual AnalysisResult analyze(const dtl::Chunk& chunk) = 0;
};

/// Factory by kernel name: "bipartite-eigen", "rmsd", "rgyr", "contacts",
/// "gyration-tensor". Throws wfe::InvalidArgument for unknown names.
std::unique_ptr<AnalysisKernel> make_kernel(const std::string& name);

}  // namespace wfe::ana
