// Analytic cost model of the bipartite-eigenvalue analysis.
//
// Counterpart of mdsim/cost_model.hpp for the analysis component: the
// simulated executor prices each analysis stage A from this model. The
// kernel builds an (n/2 x n/2) distance matrix and runs power iteration
// over it, so its instruction count is quadratic in the (subsampled) atom
// count and its memory behaviour is streaming and cache-hungry — the
// "data-intensive" profile the paper contrasts with the compute-bound
// simulation.
#pragma once

#include <cstddef>

#include "platform/profile.hpp"

namespace wfe::ana {

struct AnalysisCostParams {
  /// Instructions per matrix element per power sweep (distance evaluation
  /// amortized in): matvec multiply-add plus address arithmetic.
  double instr_per_element_sweep = 4.45;
  /// Power-iteration sweeps.
  int power_iterations = 20;
  /// Every k-th atom enters the matrix.
  int subsample_stride = 8;
  /// Dense streaming matvecs sustain a lower pipeline IPC than the MD force
  /// loop once data leaves the cache.
  double base_ipc = 1.4;
  /// High LLC traffic: the matrix streams through the hierarchy each sweep.
  double llc_refs_per_instr = 0.10;
  double base_miss_ratio = 0.10;
  /// Matrix + vectors resident bytes are derived from the frame; this adds
  /// the kernel's fixed overhead (buffers, bookkeeping).
  double fixed_working_set_bytes = 8.0 * 1024 * 1024;
  /// The matrix can dwarf the LLC; a streaming pass only keeps a bounded
  /// hot set cache-resident, so the *cache-competing* footprint seen by
  /// node neighbours is capped at this many bytes.
  double max_cache_footprint_bytes = 64.0 * 1024 * 1024;
  /// Matvec rows parallelize, but reductions and the serial sweep structure
  /// cap scaling harder than MD domain decomposition.
  double parallel_fraction = 0.92;
  /// Analyses suffer from cache eviction much more than the compute-bound
  /// simulation (paper §2.3: analyses are more memory-intensive).
  double cache_sensitivity = 0.12;
};

/// Number of (subsampled) atoms entering the bipartite matrix.
std::size_t effective_atoms(const AnalysisCostParams& params,
                            std::size_t natoms);

/// Compute profile of one analysis stage A over a `natoms`-atom frame.
plat::ComputeProfile analysis_stage_profile(const AnalysisCostParams& params,
                                            std::size_t natoms);

}  // namespace wfe::ana
