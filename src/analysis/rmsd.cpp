#include "analysis/rmsd.hpp"

#include <cmath>

#include "support/error.hpp"

namespace wfe::ana {

namespace {
std::vector<double> centered(std::span<const double> xyz) {
  const std::size_t atoms = xyz.size() / 3;
  double cx = 0.0, cy = 0.0, cz = 0.0;
  for (std::size_t i = 0; i < atoms; ++i) {
    cx += xyz[i * 3];
    cy += xyz[i * 3 + 1];
    cz += xyz[i * 3 + 2];
  }
  const double inv = 1.0 / static_cast<double>(atoms);
  cx *= inv;
  cy *= inv;
  cz *= inv;
  std::vector<double> out(xyz.size());
  for (std::size_t i = 0; i < atoms; ++i) {
    out[i * 3] = xyz[i * 3] - cx;
    out[i * 3 + 1] = xyz[i * 3 + 1] - cy;
    out[i * 3 + 2] = xyz[i * 3 + 2] - cz;
  }
  return out;
}
}  // namespace

double centered_rmsd(std::span<const double> a, std::span<const double> b) {
  WFE_REQUIRE(a.size() == b.size() && !a.empty() && a.size() % 3 == 0,
              "coordinate arrays must be equal-sized non-empty 3N arrays");
  const std::vector<double> ca = centered(a);
  const std::vector<double> cb = centered(b);
  double acc = 0.0;
  for (std::size_t i = 0; i < ca.size(); ++i) {
    const double d = ca[i] - cb[i];
    acc += d * d;
  }
  return std::sqrt(acc / (static_cast<double>(a.size()) / 3.0));
}

AnalysisResult RmsdKernel::analyze(const dtl::Chunk& chunk) {
  WFE_REQUIRE(chunk.kind() == dtl::PayloadKind::kPositions3N,
              "rmsd consumes position frames");
  AnalysisResult result;
  result.kernel = name();
  result.step = chunk.key().step;
  if (!reference_) {
    reference_ = centered(chunk.values());
    result.values = {0.0};
    return result;
  }
  WFE_REQUIRE(reference_->size() == chunk.values().size(),
              "frame size changed between steps");
  result.values = {centered_rmsd(*reference_, chunk.values())};
  return result;
}

}  // namespace wfe::ana
