// Contact counting: pairs of (subsampled) atoms closer than a cutoff.
#pragma once

#include "analysis/kernel.hpp"

namespace wfe::ana {

struct ContactMapConfig {
  double cutoff = 1.5;
  /// Consider every k-th atom (bounds the O(n^2) pair loop).
  int subsample_stride = 1;
};

class ContactMapKernel final : public AnalysisKernel {
 public:
  explicit ContactMapKernel(ContactMapConfig config = {});

  std::string name() const override { return "contacts"; }

  /// values = { contact_count, contact_fraction }.
  AnalysisResult analyze(const dtl::Chunk& chunk) override;

 private:
  ContactMapConfig config_;
};

}  // namespace wfe::ana
