// Quickstart: assess a two-member in situ workflow ensemble end to end.
//
//  1. Describe the ensemble (who runs where, with how many cores).
//  2. Replay it on the modelled Cori-like platform (simulated executor).
//  3. Read back the paper's whole assessment chain: steady-state stages,
//     the non-overlapped in situ step sigma* (Eq. 1), the computational
//     efficiency E (Eq. 3), the member indicators (Eqs. 5-8) and the
//     ensemble objective F (Eq. 9).
//
// Build & run:  ./quickstart
#include <iostream>

#include "runtime/bridge.hpp"
#include "runtime/simulated_executor.hpp"
#include "support/str.hpp"
#include "workload/presets.hpp"

int main() {
  using namespace wfe;

  // -- 1. the ensemble: two members; member 1 co-locates its analysis with
  //       the simulation, member 2 puts it on a dedicated node (this is
  //       the paper's configuration C1.3).
  rt::EnsembleSpec spec;
  spec.name = "quickstart";
  spec.n_steps = 12;

  rt::MemberSpec member1;
  member1.sim = wl::gltph_like_simulation(/*nodes=*/{0}, /*cores=*/16);
  member1.analyses.push_back(wl::bipartite_like_analysis({0}, 8));
  spec.members.push_back(member1);

  rt::MemberSpec member2;
  member2.sim = wl::gltph_like_simulation({1});
  member2.analyses.push_back(wl::bipartite_like_analysis({2}));
  spec.members.push_back(member2);

  // -- 2. replay on the modelled platform.
  rt::SimulatedExecutor executor(wl::cori_like_platform());
  const rt::ExecutionResult result = executor.run(spec);

  // -- 3. assess.
  const rt::Assessment a = rt::assess(spec, result);
  std::cout << "members: " << a.members.size()
            << "   nodes used (M): " << a.total_nodes
            << "   ensemble makespan: "
            << fixed(a.ensemble_makespan_measured, 1) << " s\n\n";

  for (std::size_t i = 0; i < a.members.size(); ++i) {
    const auto& m = a.members[i];
    std::cout << "member " << i + 1 << ":  S*=" << fixed(m.steady.sim.s, 2)
              << "  W*=" << sci(m.steady.sim.w, 1)
              << "  R*=" << sci(m.steady.analyses[0].r, 1)
              << "  A*=" << fixed(m.steady.analyses[0].a, 2)
              << "  sigma*=" << fixed(m.sigma, 2)
              << "  E=" << fixed(m.efficiency, 3) << "\n";
  }

  std::cout << "\nindicator chain (higher is better):\n";
  for (const auto kind :
       {core::IndicatorKind::kU, core::IndicatorKind::kUA,
        core::IndicatorKind::kUP, core::IndicatorKind::kUAP}) {
    std::cout << "  F(" << core::to_string(kind)
              << ") = " << sci(a.objective(kind), 3) << "\n";
  }
  std::cout << "\nThe co-located member 1 drives the allocation-aware\n"
               "indicators up; try moving member 2's analysis onto node 1\n"
               "(the paper's C1.5) and watch F(P^{U,A,P}) rise.\n";
  return 0;
}
