// Capacity planner: the §3.4 heuristic as a user-facing tool.
//
// "In most cases scientists have a rough estimate of the best settings for
//  their simulations, but not for the analyses." Given the simulation's
// settings (cores, stride, system size), sweep the analysis core count on
// the modelled platform and report, per candidate: the in situ step
// decomposition, Eq. (4) feasibility and the efficiency E — then recommend
// the allocation that minimizes the makespan and maximizes E.
//
// Usage:  ./capacity_planner [sim_cores] [stride] [natoms]
#include <cstdlib>
#include <iostream>

#include "core/heuristic.hpp"
#include "runtime/bridge.hpp"
#include "runtime/simulated_executor.hpp"
#include "support/str.hpp"
#include "support/table.hpp"
#include "workload/presets.hpp"

int main(int argc, char** argv) {
  using namespace wfe;

  const int sim_cores = argc > 1 ? std::atoi(argv[1]) : 16;
  const int stride = argc > 2 ? std::atoi(argv[2]) : 800;
  const std::size_t natoms =
      argc > 3 ? static_cast<std::size_t>(std::atoll(argv[3])) : 400'000;

  const auto platform = wl::cori_like_platform();
  rt::SimulatedExecutor executor(platform);

  auto member_at = [&](int ana_cores) {
    rt::EnsembleSpec spec;
    spec.n_steps = 6;
    rt::MemberSpec m;
    m.sim = wl::gltph_like_simulation({0}, sim_cores);
    m.sim.stride = stride;
    m.sim.natoms = natoms;
    m.analyses.push_back(wl::bipartite_like_analysis({1}, ana_cores));
    spec.members.push_back(std::move(m));
    return rt::assess(spec, executor.run(spec)).members[0];
  };

  std::cout << "planning analysis allocation for: " << sim_cores
            << "-core simulation, stride " << stride << ", " << natoms
            << " atoms (co-location-free baseline)\n\n";

  const core::SimSteady sim_side = member_at(8).steady.sim;
  const auto result = core::provision_analysis_cores(
      sim_side, [&](int c) { return member_at(c).steady.analyses[0]; },
      platform.node.cores);

  Table table({"analysis cores", "R*+A* [s]", "sigma* [s]", "E",
               "Eq. 4 feasible"});
  for (const auto& c : result.candidates) {
    if (c.cores > 8 && c.cores % 4 != 0) continue;
    table.add_row({strprintf("%d", c.cores),
                   fixed(c.analysis.r + c.analysis.a, 2), fixed(c.sigma, 2),
                   fixed(c.efficiency, 3), c.feasible ? "yes" : "no"});
  }
  std::cout << table.render();

  std::cout << "\nsimulation side S*+W* = " << fixed(sim_side.s + sim_side.w, 2)
            << " s\n"
            << "recommendation: " << result.cores << " cores per analysis ("
            << (result.any_feasible
                    ? "minimizes makespan, maximizes E among feasible"
                    : "no feasible allocation; best-effort minimum sigma*")
            << ")\n";
  return 0;
}
