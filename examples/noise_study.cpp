// Noise study: is the indicator's verdict robust to machine variability?
//
// Uses the campaign API to replay the paper's Table 2 configuration set
// across seeded trials with lognormal stage-duration jitter (the paper
// itself averages 5 trials per configuration), then reports the
// F(P^{U,A,P}) distribution and the win counts.
//
// Usage:  ./noise_study [trials] [jitter_cv]
#include <cstdlib>
#include <iostream>

#include "support/str.hpp"
#include "support/table.hpp"
#include "workload/campaign.hpp"
#include "workload/presets.hpp"

int main(int argc, char** argv) {
  using namespace wfe;

  wl::CampaignOptions options;
  options.trials = argc > 1 ? std::atoi(argv[1]) : 9;
  options.jitter_cv = argc > 2 ? std::atof(argv[2]) : 0.05;
  options.n_steps = 10;

  std::cout << "campaign: " << options.trials << " trials, jitter CV "
            << fixed(options.jitter_cv, 3) << ", Table 2 set\n\n";

  const auto stats = wl::run_campaign(wl::paper_set1(),
                                      wl::cori_like_platform(), options);

  Table table({"config", "F mean", "F stddev", "makespan mean [s]",
               "min E mean", "wins"});
  for (const auto& s : stats) {
    table.add_row({s.name, sci(s.objective.mean, 3),
                   sci(s.objective.stddev, 2), fixed(s.makespan.mean, 1),
                   fixed(s.min_member_efficiency.mean, 3),
                   strprintf("%d/%d", s.wins, options.trials)});
  }
  std::cout << table.render();
  std::cout << "\nIf C1.5 wins every trial, the placement recommendation\n"
               "is robust at this noise level.\n";
  return 0;
}
