// Native in situ MD ensemble: really run it.
//
// Two ensemble members, each a Lennard-Jones MD simulation coupled with
// two in situ analyses (the bipartite-eigenvalue collective variable and
// the radius of gyration), executing on threads and exchanging frames
// through the in-memory DTL with the paper's synchronous no-buffering
// protocol. Prints the per-step collective variables and the measured
// stage decomposition.
//
// Build & run:  ./md_ensemble_native
#include <iostream>

#include "runtime/bridge.hpp"
#include "runtime/native_executor.hpp"
#include "support/str.hpp"
#include "support/table.hpp"
#include "workload/presets.hpp"

int main() {
  using namespace wfe;

  rt::EnsembleSpec spec;
  spec.name = "native-md-ensemble";
  spec.n_steps = 6;
  for (int i = 0; i < 2; ++i) {
    rt::MemberSpec member;
    member.sim.nodes = {0};
    member.sim.cores = 1;
    member.sim.stride = 25;  // MD steps per frame
    member.sim.native = wl::native_md_config(1000 + i);

    rt::AnalysisSpec eigen;
    eigen.nodes = {0};
    eigen.cores = 1;
    eigen.kernel = "bipartite-eigen";
    member.analyses.push_back(eigen);

    rt::AnalysisSpec rgyr = eigen;
    rgyr.kernel = "rgyr";
    member.analyses.push_back(rgyr);

    spec.members.push_back(member);
  }

  std::cout << "running " << spec.members.size()
            << " members x (1 simulation + 2 analyses) on threads...\n\n";
  const rt::ExecutionResult result = rt::NativeExecutor().run(spec);

  // Collective-variable series, per member.
  Table cv({"member", "kernel", "step", "value"});
  for (const auto& series : result.analysis_outputs) {
    for (const auto& r : series.results) {
      cv.add_row({strprintf("EM%u", series.component.member + 1), r.kernel,
                  strprintf("%llu", static_cast<unsigned long long>(r.step)),
                  fixed(r.values[0], 4)});
    }
  }
  std::cout << cv.render();

  // The same assessment pipeline the paper applies, on real timings.
  const rt::Assessment a = rt::assess(spec, result);
  std::cout << "\nmeasured stage profile (steady state):\n";
  for (std::size_t i = 0; i < a.members.size(); ++i) {
    const auto& m = a.members[i];
    std::cout << "  EM" << i + 1 << ": S*=" << human_seconds(m.steady.sim.s)
              << "  W*=" << human_seconds(m.steady.sim.w);
    for (std::size_t j = 0; j < m.steady.analyses.size(); ++j) {
      std::cout << "  [A" << j + 1
                << ": R*=" << human_seconds(m.steady.analyses[j].r)
                << " A*=" << human_seconds(m.steady.analyses[j].a) << "]";
    }
    std::cout << "  E=" << fixed(m.efficiency, 3) << "\n";
  }
  std::cout << "\nensemble makespan: "
            << human_seconds(a.ensemble_makespan_measured) << "\n";
  return 0;
}
