// Placement explorer: rank every placement of an ensemble on a node pool.
//
// The paper closes with "future work will consider leveraging the proposed
// indicators for scheduling". This tool does exactly that, offline:
// enumerate all distinct placements, replay each on the modelled platform
// and rank by the objective over P^{U,A,P}.
//
// Usage:  ./placement_explorer [members] [analyses_per_member] [nodes]
// Defaults reproduce the paper's 2 x (1+1) over 3 nodes space (Table 2).
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "runtime/bridge.hpp"
#include "runtime/simulated_executor.hpp"
#include "support/str.hpp"
#include "support/table.hpp"
#include "workload/generators.hpp"
#include "workload/presets.hpp"

int main(int argc, char** argv) {
  using namespace wfe;
  using core::IndicatorKind;

  wl::EnumerationOptions opt;
  opt.members = argc > 1 ? std::atoi(argv[1]) : 2;
  opt.analyses_per_member = argc > 2 ? std::atoi(argv[2]) : 1;
  opt.node_pool = argc > 3 ? std::atoi(argv[3]) : 3;

  const auto platform = wl::cori_like_platform();
  rt::SimulatedExecutor executor(platform);
  auto candidates = wl::enumerate_placements(platform, opt);
  std::cout << "exploring " << candidates.size()
            << " canonical feasible placements of " << opt.members
            << " members x (1 sim + " << opt.analyses_per_member
            << " analyses) over " << opt.node_pool << " nodes...\n\n";

  struct Row {
    std::string name;
    int nodes;
    double f, e_min, makespan;
  };
  std::vector<Row> rows;
  for (auto& c : candidates) {
    c.spec.n_steps = 6;
    const auto a = rt::assess(c.spec, executor.run(c.spec));
    double e_min = 1.0;
    for (const auto& m : a.members) e_min = std::min(e_min, m.efficiency);
    rows.push_back({c.name, c.nodes, a.objective(IndicatorKind::kUAP), e_min,
                    a.ensemble_makespan_measured});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& x, const Row& y) { return x.f > y.f; });

  Table table({"rank", "placement", "M", "F(P^{U,A,P})", "min E",
               "ensemble makespan [s]"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    table.add_row({strprintf("%zu", i + 1), rows[i].name,
                   strprintf("%d", rows[i].nodes), sci(rows[i].f, 3),
                   fixed(rows[i].e_min, 3), fixed(rows[i].makespan, 1)});
  }
  std::cout << table.render();
  std::cout << "\nrecommended placement: " << rows.front().name << "\n";
  return 0;
}
