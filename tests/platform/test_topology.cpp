// Tests for the dragonfly-inspired topology and transfer-time model.
#include "platform/topology.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace wfe::plat {
namespace {

InterconnectSpec net() {
  InterconnectSpec n;
  n.group_size = 4;
  n.intra_group_hops = 2;
  n.inter_group_hops = 5;
  n.latency_per_hop_s = 1e-6;
  n.link_bw_bytes_per_s = 10e9;
  n.per_message_overhead_s = 10e-6;
  n.message_bytes = 1024 * 1024;
  n.stream_efficiency = 0.5;
  return n;
}

TEST(Topology, SameNodeIsZeroHops) { EXPECT_EQ(hop_count(net(), 3, 3), 0); }

TEST(Topology, IntraGroupHops) {
  EXPECT_EQ(hop_count(net(), 0, 3), 2);  // nodes 0..3 share group 0
  EXPECT_EQ(hop_count(net(), 5, 6), 2);  // nodes 4..7 share group 1
}

TEST(Topology, InterGroupHops) {
  EXPECT_EQ(hop_count(net(), 0, 4), 5);
  EXPECT_EQ(hop_count(net(), 3, 12), 5);
}

TEST(Topology, HopCountIsSymmetric) {
  EXPECT_EQ(hop_count(net(), 1, 9), hop_count(net(), 9, 1));
}

TEST(Topology, RejectsNegativeNodes) {
  EXPECT_THROW((void)hop_count(net(), -1, 0), InvalidArgument);
}

TEST(Transfer, RejectsSameNode) {
  EXPECT_THROW((void)network_transfer_time(net(), 2, 2, 100.0),
               InvalidArgument);
}

TEST(Transfer, RejectsNegativeBytes) {
  EXPECT_THROW((void)network_transfer_time(net(), 0, 1, -1.0),
               InvalidArgument);
}

TEST(Transfer, ZeroBytesCostsOnlyLatency) {
  const double t = network_transfer_time(net(), 0, 1, 0.0);
  EXPECT_DOUBLE_EQ(t, 2 * 1e-6);
}

TEST(Transfer, MonotoneInSize) {
  double prev = 0.0;
  for (double bytes : {1e3, 1e5, 1e6, 1e7, 1e8}) {
    const double t = network_transfer_time(net(), 0, 1, bytes);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(Transfer, InterGroupCostsMoreThanIntraGroup) {
  EXPECT_GT(network_transfer_time(net(), 0, 4, 1e6),
            network_transfer_time(net(), 0, 1, 1e6));
}

TEST(Transfer, PerMessageOverheadCountsBlocks) {
  // 2.5 MiB at 1 MiB blocks -> 3 messages.
  const double bytes = 2.5 * 1024 * 1024;
  const double t = network_transfer_time(net(), 0, 1, bytes);
  const double expected =
      2e-6 + 3 * 10e-6 + bytes / (10e9 * 0.5);
  EXPECT_DOUBLE_EQ(t, expected);
}

TEST(Transfer, LocalCopyUsesCopyBandwidth) {
  NodeSpec node;
  node.copy_bw_bytes_per_s = 4e9;
  EXPECT_DOUBLE_EQ(local_copy_time(node, 8e9), 2.0);
  EXPECT_DOUBLE_EQ(local_copy_time(node, 0.0), 0.0);
}

TEST(Transfer, LocalCopyRejectsNegativeBytes) {
  NodeSpec node;
  EXPECT_THROW((void)local_copy_time(node, -5.0), InvalidArgument);
}

TEST(Transfer, RemoteIsSlowerThanLocalForStagingScales) {
  // The data-locality premise of in-memory staging: fetching a frame
  // across the network costs more than copying it within the node.
  NodeSpec node;
  const double frame = 10e6;
  EXPECT_GT(network_transfer_time(net(), 0, 1, frame),
            local_copy_time(node, frame));
}

}  // namespace
}  // namespace wfe::plat
