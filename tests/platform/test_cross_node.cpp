// Cross-node penalty spec validation and bandwidth-saturation behaviour.
#include <gtest/gtest.h>

#include "platform/interference.hpp"
#include "platform/spec.hpp"
#include "support/error.hpp"

namespace wfe::plat {
namespace {

TEST(CrossNode, RejectsNegativePenalty) {
  PlatformSpec s;
  s.interconnect.cross_node_compute_penalty = -0.1;
  EXPECT_THROW(s.validate(), SpecError);
}

TEST(CrossNode, ZeroAndPositivePenaltiesValidate) {
  PlatformSpec s;
  s.interconnect.cross_node_compute_penalty = 0.0;
  EXPECT_NO_THROW(s.validate());
  s.interconnect.cross_node_compute_penalty = 0.5;
  EXPECT_NO_THROW(s.validate());
}

TEST(BandwidthSaturation, ManyHungryNeighborsStretchStalls) {
  // Stack enough memory-hungry competitors and the aggregate miss traffic
  // exceeds the node bandwidth, so the stall term stretches beyond what
  // cache pressure alone explains.
  PlatformSpec s;
  s.node.mem_bw_bytes_per_s = 2.0e9;  // tiny bandwidth to force saturation
  ComputeProfile hungry;
  hungry.instructions = 1e9;
  hungry.base_ipc = 1.5;
  hungry.llc_refs_per_instr = 0.2;
  hungry.base_miss_ratio = 0.3;
  hungry.working_set_bytes = 200e6;
  hungry.cache_sensitivity = 0.5;
  hungry.parallel_fraction = 0.9;

  std::vector<ActiveStage> crowd;
  for (int i = 0; i < 3; ++i) crowd.push_back({hungry, 8});

  PlatformSpec roomy = s;
  roomy.node.mem_bw_bytes_per_s = 2.0e12;  // effectively infinite

  const StageCost saturated = compute_stage_cost(s, hungry, 8, crowd);
  const StageCost unsaturated = compute_stage_cost(roomy, hungry, 8, crowd);
  EXPECT_GT(saturated.seconds, 1.5 * unsaturated.seconds);
  // Same cache state in both (bandwidth does not change miss ratios).
  EXPECT_DOUBLE_EQ(saturated.effective_miss_ratio,
                   unsaturated.effective_miss_ratio);
}

TEST(BandwidthSaturation, SoloComputeBoundStageUnaffected) {
  PlatformSpec s;
  s.node.mem_bw_bytes_per_s = 2.0e9;
  ComputeProfile lean;
  lean.instructions = 1e9;
  lean.llc_refs_per_instr = 0.001;
  lean.base_miss_ratio = 0.02;
  lean.working_set_bytes = 1e6;
  const StageCost c = compute_stage_cost(s, lean, 4, {});
  EXPECT_DOUBLE_EQ(c.slowdown, 1.0);
}

}  // namespace
}  // namespace wfe::plat
