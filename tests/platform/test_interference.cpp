// Tests for the co-location interference model: the mechanisms behind the
// paper's Figure 3 (miss ratios / IPC under co-location).
#include "platform/interference.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace wfe::plat {
namespace {

PlatformSpec spec() {
  PlatformSpec s;
  s.node.llc_bytes = 64.0 * 1024 * 1024;
  return s;
}

ComputeProfile sim_like() {
  ComputeProfile p;
  p.instructions = 1e10;
  p.base_ipc = 1.8;
  p.llc_refs_per_instr = 0.004;
  p.base_miss_ratio = 0.04;
  p.working_set_bytes = 128e6;
  p.cache_sensitivity = 0.08;
  p.parallel_fraction = 0.97;
  return p;
}

ComputeProfile ana_like() {
  ComputeProfile p;
  p.instructions = 1e9;
  p.base_ipc = 1.4;
  p.llc_refs_per_instr = 0.10;
  p.base_miss_ratio = 0.10;
  p.working_set_bytes = 64e6;
  p.cache_sensitivity = 0.12;
  p.parallel_fraction = 0.92;
  return p;
}

TEST(Amdahl, OneCoreIsUnity) { EXPECT_EQ(amdahl_speedup(1, 0.9), 1.0); }

TEST(Amdahl, PerfectlyParallelScalesLinearly) {
  EXPECT_DOUBLE_EQ(amdahl_speedup(8, 1.0), 8.0);
}

TEST(Amdahl, FullySerialNeverScales) {
  EXPECT_DOUBLE_EQ(amdahl_speedup(16, 0.0), 1.0);
}

TEST(Amdahl, MonotoneInCores) {
  double prev = 0.0;
  for (int c : {1, 2, 4, 8, 16, 32}) {
    const double s = amdahl_speedup(c, 0.92);
    EXPECT_GT(s, prev);
    prev = s;
  }
}

TEST(Amdahl, BoundedBySerialFraction) {
  EXPECT_LT(amdahl_speedup(1'000'000, 0.9), 10.0 + 1e-6);
}

TEST(CachePressure, ZeroCompetitorsZeroPressure) {
  EXPECT_EQ(cache_pressure(spec(), 0.0), 0.0);
}

TEST(CachePressure, MonotoneInCompetitorWorkingSet) {
  double prev = -1.0;
  for (double ws : {0.0, 1e6, 1e7, 1e8, 1e9}) {
    const double p = cache_pressure(spec(), ws);
    EXPECT_GT(p, prev);
    EXPECT_LT(p, 1.0);
    prev = p;
  }
}

TEST(CachePressure, DisabledInterferenceGivesZero) {
  PlatformSpec s = spec();
  s.interference.enabled = false;
  EXPECT_EQ(cache_pressure(s, 1e9), 0.0);
}

TEST(CachePressure, HalfAtWorkingSetEqualLlc) {
  PlatformSpec s = spec();
  s.interference.capacity_sharing_strength = 1.0;
  EXPECT_DOUBLE_EQ(cache_pressure(s, s.node.llc_bytes), 0.5);
}

TEST(EffectiveMissRatio, BaseWithoutCompetitors) {
  EXPECT_DOUBLE_EQ(effective_miss_ratio(spec(), ana_like(), 0.0),
                   ana_like().base_miss_ratio);
}

TEST(EffectiveMissRatio, NeverExceedsMax) {
  PlatformSpec s = spec();
  s.interference.max_miss_ratio = 0.5;
  ComputeProfile victim = ana_like();
  victim.cache_sensitivity = 1.0;
  EXPECT_LE(effective_miss_ratio(s, victim, 1e12), 0.5);
}

TEST(EffectiveMissRatio, SensitiveVictimSuffersMore) {
  ComputeProfile sensitive = ana_like();
  sensitive.cache_sensitivity = 0.5;
  ComputeProfile tough = ana_like();
  tough.cache_sensitivity = 0.05;
  EXPECT_GT(effective_miss_ratio(spec(), sensitive, 1e8),
            effective_miss_ratio(spec(), tough, 1e8));
}

TEST(StageCost, RejectsZeroCores) {
  EXPECT_THROW(
      (void)compute_stage_cost(spec(), sim_like(), 0, {}),
      InvalidArgument);
}

TEST(StageCost, AloneMeansNoSlowdown) {
  const StageCost c = compute_stage_cost(spec(), sim_like(), 16, {});
  EXPECT_DOUBLE_EQ(c.slowdown, 1.0);
  EXPECT_DOUBLE_EQ(c.effective_miss_ratio, sim_like().base_miss_ratio);
}

TEST(StageCost, CompetitorsSlowTheVictim) {
  const std::vector<ActiveStage> comp{{sim_like(), 16}};
  const StageCost alone = compute_stage_cost(spec(), ana_like(), 8, {});
  const StageCost shared = compute_stage_cost(spec(), ana_like(), 8, comp);
  EXPECT_GT(shared.seconds, alone.seconds);
  EXPECT_GT(shared.slowdown, 1.0);
  EXPECT_GT(shared.effective_miss_ratio, alone.effective_miss_ratio);
}

TEST(StageCost, DisabledInterferenceIgnoresCompetitors) {
  PlatformSpec s = spec();
  s.interference.enabled = false;
  const std::vector<ActiveStage> comp{{sim_like(), 16}, {ana_like(), 8}};
  const StageCost alone = compute_stage_cost(s, ana_like(), 8, {});
  const StageCost shared = compute_stage_cost(s, ana_like(), 8, comp);
  EXPECT_DOUBLE_EQ(alone.seconds, shared.seconds);
}

TEST(StageCost, MoreCoresRunFaster) {
  const StageCost c8 = compute_stage_cost(spec(), ana_like(), 8, {});
  const StageCost c16 = compute_stage_cost(spec(), ana_like(), 16, {});
  EXPECT_LT(c16.seconds, c8.seconds);
}

TEST(StageCost, CountersAreConsistent) {
  const StageCost c = compute_stage_cost(spec(), ana_like(), 8, {});
  EXPECT_DOUBLE_EQ(c.counters.instructions, ana_like().instructions);
  EXPECT_DOUBLE_EQ(c.counters.llc_references,
                   ana_like().instructions * ana_like().llc_refs_per_instr);
  EXPECT_NEAR(c.counters.llc_miss_ratio(), c.effective_miss_ratio, 1e-12);
  EXPECT_GT(c.counters.ipc(), 0.0);
  EXPECT_LT(c.counters.ipc(), ana_like().base_ipc);
}

TEST(StageCost, IpcDropsUnderContention) {
  const std::vector<ActiveStage> comp{{sim_like(), 16}};
  const StageCost alone = compute_stage_cost(spec(), ana_like(), 8, {});
  const StageCost shared = compute_stage_cost(spec(), ana_like(), 8, comp);
  EXPECT_LT(shared.counters.ipc(), alone.counters.ipc());
}

TEST(StageCost, SimulationTimeIsContentionTolerant) {
  // The calibrated premise behind Figures 3 vs 4: co-location visibly
  // raises the simulation's miss ratio but barely stretches its time.
  const std::vector<ActiveStage> comp{{ana_like(), 8}};
  const StageCost alone = compute_stage_cost(spec(), sim_like(), 16, {});
  const StageCost shared = compute_stage_cost(spec(), sim_like(), 16, comp);
  EXPECT_GT(shared.effective_miss_ratio, 1.2 * alone.effective_miss_ratio);
  EXPECT_LT(shared.slowdown, 1.10);
}

TEST(StageCost, HwCountersAddUp) {
  HwCounters a{100.0, 200.0, 10.0, 2.0};
  HwCounters b{50.0, 100.0, 5.0, 1.0};
  const HwCounters c = a + b;
  EXPECT_DOUBLE_EQ(c.instructions, 150.0);
  EXPECT_DOUBLE_EQ(c.cycles, 300.0);
  EXPECT_DOUBLE_EQ(c.ipc(), 0.5);
  EXPECT_DOUBLE_EQ(c.llc_miss_ratio(), 0.2);
  EXPECT_DOUBLE_EQ(c.memory_intensity(), 3.0 / 150.0);
}

TEST(StageCost, EmptyCountersGiveZeroRatios) {
  HwCounters z;
  EXPECT_EQ(z.ipc(), 0.0);
  EXPECT_EQ(z.llc_miss_ratio(), 0.0);
  EXPECT_EQ(z.memory_intensity(), 0.0);
}

// -- batched kernel ----------------------------------------------------------

std::vector<ActiveStage> fuzzed_set(std::uint64_t seed, std::size_t n) {
  Xoshiro256 rng(seed);
  std::vector<ActiveStage> set;
  set.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ComputeProfile p = (rng.below(2) == 0) ? sim_like() : ana_like();
    // Perturb so no two stages are identical: exercises the per-victim
    // exclusion, not just symmetric sets.
    p.working_set_bytes *= 0.5 + rng.uniform01();
    p.llc_refs_per_instr *= 0.5 + rng.uniform01();
    p.cache_sensitivity *= rng.uniform01();
    set.push_back({p, static_cast<int>(1 + rng.below(16))});
  }
  return set;
}

TEST(StageCostBatch, BitIdenticalToScalarOnFuzzedSets) {
  // The contract Cluster::resident_cost relies on: batch pricing of a
  // node's whole co-location set must be BITWISE equal to pricing each
  // victim with the scalar entry point against the others. memcmp on the
  // full StageCost (all doubles, incl. synthesized counters) — any
  // re-associated FP expression in the batch kernel fails here.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const std::size_t n = 1 + seed % 7;
    const std::vector<ActiveStage> set = fuzzed_set(seed, n);
    std::vector<StageCost> batch(n);
    compute_stage_costs_batch(spec(), set, batch);
    for (std::size_t v = 0; v < n; ++v) {
      std::vector<ActiveStage> others;
      for (std::size_t i = 0; i < n; ++i) {
        if (i != v) others.push_back(set[i]);
      }
      const StageCost scalar =
          compute_stage_cost(spec(), set[v].profile, set[v].cores, others);
      EXPECT_EQ(std::memcmp(&batch[v], &scalar, sizeof(StageCost)), 0)
          << "seed " << seed << " victim " << v;
    }
  }
}

TEST(StageCostBatch, EmptyAndSingletonSets) {
  std::vector<StageCost> none;
  compute_stage_costs_batch(spec(), {}, none);  // no-op, must not crash
  const std::vector<ActiveStage> one{{ana_like(), 8}};
  std::vector<StageCost> out(1);
  compute_stage_costs_batch(spec(), one, out);
  const StageCost scalar = compute_stage_cost(spec(), ana_like(), 8, {});
  EXPECT_EQ(std::memcmp(&out[0], &scalar, sizeof(StageCost)), 0);
}

// Property sweep: slowdown grows monotonically with the number of
// co-located competitors.
class CompetitorSweep : public ::testing::TestWithParam<int> {};

TEST_P(CompetitorSweep, SlowdownMonotoneInCompetitorCount) {
  std::vector<ActiveStage> comp;
  double prev = 0.0;
  for (int i = 0; i <= GetParam(); ++i) {
    const StageCost c = compute_stage_cost(spec(), ana_like(), 8, comp);
    if (i > 0) EXPECT_GE(c.slowdown, prev - 1e-12);
    prev = c.slowdown;
    comp.push_back({ana_like(), 8});
  }
}

INSTANTIATE_TEST_SUITE_P(UpTo, CompetitorSweep, ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace wfe::plat
