// HealthTracker: the per-node health state machine behind node-level fault
// domains. Down is absorbing, repeats are no-ops, and the event log is the
// exact transition history tools replay.
#include <gtest/gtest.h>

#include "platform/health.hpp"
#include "support/error.hpp"

namespace wfe::plat {
namespace {

TEST(Health, StartsHealthyAndRecordsTransitions) {
  HealthTracker tracker(3);
  EXPECT_EQ(tracker.node_count(), 3);
  for (int n = 0; n < 3; ++n) {
    EXPECT_EQ(tracker.state(n), NodeHealth::kHealthy);
  }
  EXPECT_EQ(tracker.up_nodes(), (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(tracker.events().empty());

  tracker.transition(10.0, 1, NodeHealth::kDegraded);
  tracker.transition(20.0, 1, NodeHealth::kHealthy);
  tracker.transition(30.0, 2, NodeHealth::kDown);

  ASSERT_EQ(tracker.events().size(), 3u);
  const HealthEvent& down = tracker.events()[2];
  EXPECT_DOUBLE_EQ(down.t_s, 30.0);
  EXPECT_EQ(down.node, 2);
  EXPECT_EQ(down.from, NodeHealth::kHealthy);
  EXPECT_EQ(down.to, NodeHealth::kDown);
  EXPECT_EQ(tracker.down_count(), 1u);
  EXPECT_EQ(tracker.up_nodes(), (std::vector<int>{0, 1}));
}

TEST(Health, RepeatedStateIsANoOp) {
  HealthTracker tracker(2);
  tracker.transition(5.0, 0, NodeHealth::kDegraded);
  tracker.transition(6.0, 0, NodeHealth::kDegraded);
  EXPECT_EQ(tracker.events().size(), 1u);
}

TEST(Health, DownIsAbsorbing) {
  HealthTracker tracker(2);
  tracker.transition(5.0, 0, NodeHealth::kDown);
  EXPECT_THROW(tracker.transition(6.0, 0, NodeHealth::kHealthy),
               InvalidArgument);
  EXPECT_THROW(tracker.transition(6.0, 0, NodeHealth::kDegraded),
               InvalidArgument);
  // Re-recording down stays a no-op, not an error.
  tracker.transition(7.0, 0, NodeHealth::kDown);
  EXPECT_EQ(tracker.events().size(), 1u);
  EXPECT_EQ(tracker.down_count(), 1u);
}

TEST(Health, RejectsBadInputs) {
  EXPECT_THROW(HealthTracker(0), InvalidArgument);
  HealthTracker tracker(2);
  EXPECT_THROW(tracker.state(2), InvalidArgument);
  EXPECT_THROW(tracker.transition(-1.0, 0, NodeHealth::kDown),
               InvalidArgument);
  EXPECT_THROW(tracker.transition(1.0, 5, NodeHealth::kDown),
               InvalidArgument);
}

TEST(Health, StringNames) {
  EXPECT_STREQ(to_string(NodeHealth::kHealthy), "healthy");
  EXPECT_STREQ(to_string(NodeHealth::kDegraded), "degraded");
  EXPECT_STREQ(to_string(NodeHealth::kDown), "down");
}

}  // namespace
}  // namespace wfe::plat
