// Tests for the stateful cluster registry.
#include "platform/cluster.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "support/error.hpp"

namespace wfe::plat {
namespace {

PlatformSpec spec(int nodes = 4) {
  PlatformSpec s;
  s.node_count = nodes;
  return s;
}

ComputeProfile profile(double ws = 50e6) {
  ComputeProfile p;
  p.instructions = 1e9;
  p.working_set_bytes = ws;
  return p;
}

TEST(Cluster, ValidatesSpecOnConstruction) {
  PlatformSpec bad = spec();
  bad.node_count = 0;
  EXPECT_THROW(Cluster{bad}, SpecError);
}

TEST(Cluster, NodeCountExposed) {
  Cluster c(spec(6));
  EXPECT_EQ(c.node_count(), 6);
}

TEST(Cluster, RejectsOutOfRangeNode) {
  Cluster c(spec(2));
  EXPECT_THROW((void)c.stage_cost(2, profile(), 1), InvalidArgument);
  EXPECT_THROW((void)c.begin_compute(-1, profile(), 1), InvalidArgument);
  EXPECT_THROW((void)c.active_count(5), InvalidArgument);
}

TEST(Cluster, BeginEndTracksActiveCount) {
  Cluster c(spec());
  EXPECT_EQ(c.active_count(0), 0u);
  const auto h1 = c.begin_compute(0, profile(), 8);
  const auto h2 = c.begin_compute(0, profile(), 4);
  EXPECT_EQ(c.active_count(0), 2u);
  EXPECT_EQ(c.active_cores(0), 12);
  c.end_compute(h1);
  EXPECT_EQ(c.active_count(0), 1u);
  EXPECT_EQ(c.active_cores(0), 4);
  c.end_compute(h2);
  EXPECT_EQ(c.active_count(0), 0u);
}

TEST(Cluster, EndUnknownHandleThrows) {
  Cluster c(spec());
  EXPECT_THROW(c.end_compute(999), InvalidArgument);
}

TEST(Cluster, EndTwiceThrows) {
  Cluster c(spec());
  const auto h = c.begin_compute(0, profile(), 1);
  c.end_compute(h);
  EXPECT_THROW(c.end_compute(h), InvalidArgument);
}

TEST(Cluster, StageCostSeesCoLocatedCompetitors) {
  Cluster c(spec());
  const StageCost alone = c.stage_cost(0, profile(), 8);
  c.begin_compute(0, profile(100e6), 8);
  const StageCost shared = c.stage_cost(0, profile(), 8);
  EXPECT_GT(shared.seconds, alone.seconds);
}

TEST(Cluster, StageCostIgnoresOtherNodes) {
  Cluster c(spec());
  const StageCost alone = c.stage_cost(0, profile(), 8);
  c.begin_compute(1, profile(100e6), 8);
  const StageCost still_alone = c.stage_cost(0, profile(), 8);
  EXPECT_DOUBLE_EQ(alone.seconds, still_alone.seconds);
}

TEST(Cluster, StageCostExcludingSelfResidency) {
  Cluster c(spec());
  const auto self = c.begin_compute(0, profile(200e6), 8);
  // Excluding the residency handle prices as if the node were empty.
  const StageCost excl = c.stage_cost_excluding(0, profile(), 8, self);
  EXPECT_DOUBLE_EQ(excl.slowdown, 1.0);
  // Not excluding it prices against the own registered working set.
  const StageCost incl = c.stage_cost(0, profile(), 8);
  EXPECT_GT(incl.seconds, excl.seconds);
}

TEST(Cluster, TransferLocalUsesCopyBandwidth) {
  Cluster c(spec());
  const double bytes = 1e9;
  EXPECT_DOUBLE_EQ(c.transfer_time(2, 2, bytes),
                   bytes / c.spec().node.copy_bw_bytes_per_s);
}

TEST(Cluster, TransferRemoteCostsMoreThanLocal) {
  Cluster c(spec());
  const double bytes = 10e6;
  EXPECT_GT(c.transfer_time(0, 1, bytes), c.transfer_time(0, 0, bytes));
}

TEST(Cluster, OccupancyEpochMovesOnlyWhenTheNodeChanges) {
  Cluster c(spec());
  const auto e0 = c.occupancy_epoch(0);
  const auto e1 = c.occupancy_epoch(1);
  const auto h = c.begin_compute(0, profile(), 4);
  EXPECT_GT(c.occupancy_epoch(0), e0);
  EXPECT_EQ(c.occupancy_epoch(1), e1) << "other nodes stay untouched";
  const auto after_begin = c.occupancy_epoch(0);
  // Pricing reads never move the epoch.
  (void)c.stage_cost(0, profile(), 2);
  (void)c.resident_cost(h);
  EXPECT_EQ(c.occupancy_epoch(0), after_begin);
  c.end_compute(h);
  EXPECT_GT(c.occupancy_epoch(0), after_begin);
}

TEST(Cluster, ResidentCostMatchesScalarExcludingBitwise) {
  // The cached batch pricing must be bitwise equal to the scalar
  // stage_cost_excluding it replaces — across occupancy changes, which
  // invalidate the cache and force a re-price.
  Cluster c(spec());
  const auto h1 = c.begin_compute(0, profile(40e6), 8);
  const auto h2 = c.begin_compute(0, profile(90e6), 4);
  const auto check = [&](std::uint64_t h, double ws, int cores) {
    const StageCost& cached = c.resident_cost(h);
    const StageCost scalar = c.stage_cost_excluding(0, profile(ws), cores, h);
    EXPECT_EQ(std::memcmp(&cached, &scalar, sizeof(StageCost)), 0);
  };
  check(h1, 40e6, 8);
  check(h2, 90e6, 4);
  // Occupancy change: a third resident arrives, both cached prices must
  // re-price (and still match the scalar path).
  const auto h3 = c.begin_compute(0, profile(120e6), 2);
  check(h1, 40e6, 8);
  check(h2, 90e6, 4);
  check(h3, 120e6, 2);
  // And after a departure.
  c.end_compute(h2);
  check(h1, 40e6, 8);
  check(h3, 120e6, 2);
}

TEST(Cluster, ResidentCostIsServedFromCacheUntilTheEpochMoves) {
  Cluster c(spec());
  const auto h = c.begin_compute(0, profile(), 8);
  const StageCost* first = &c.resident_cost(h);
  const double alone_seconds = first->seconds;
  // Same storage on a cache hit: repeated lookups between occupancy
  // changes return the identical cached object, not a re-price.
  EXPECT_EQ(first, &c.resident_cost(h));
  c.begin_compute(0, profile(), 2);
  // After the epoch moved the entry is re-priced (value equality is
  // covered above; here we only require the lookup to stay valid —
  // `first` may dangle once the cache repopulates, so compare by value).
  const StageCost& repriced = c.resident_cost(h);
  EXPECT_GE(repriced.seconds, alone_seconds);
}

TEST(Cluster, OversubscriptionDetection) {
  PlatformSpec s = spec();
  s.node.cores = 16;
  Cluster c(s);
  c.begin_compute(0, profile(), 12);
  EXPECT_FALSE(c.would_oversubscribe(0, 4));
  EXPECT_TRUE(c.would_oversubscribe(0, 5));
  EXPECT_FALSE(c.would_oversubscribe(1, 16));
}

}  // namespace
}  // namespace wfe::plat
