// Validation tests for PlatformSpec.
#include "platform/spec.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace wfe::plat {
namespace {

PlatformSpec valid() { return PlatformSpec{}; }

TEST(PlatformSpec, DefaultIsValid) { EXPECT_NO_THROW(valid().validate()); }

TEST(PlatformSpec, RejectsZeroNodes) {
  PlatformSpec s = valid();
  s.node_count = 0;
  EXPECT_THROW(s.validate(), SpecError);
}

TEST(PlatformSpec, RejectsZeroCores) {
  PlatformSpec s = valid();
  s.node.cores = 0;
  EXPECT_THROW(s.validate(), SpecError);
}

TEST(PlatformSpec, RejectsNonPositiveFrequency) {
  PlatformSpec s = valid();
  s.node.core_freq_hz = 0.0;
  EXPECT_THROW(s.validate(), SpecError);
}

TEST(PlatformSpec, RejectsNonPositiveLlc) {
  PlatformSpec s = valid();
  s.node.llc_bytes = -1.0;
  EXPECT_THROW(s.validate(), SpecError);
}

TEST(PlatformSpec, RejectsNegativeMissPenalty) {
  PlatformSpec s = valid();
  s.node.llc_miss_penalty_cycles = -1.0;
  EXPECT_THROW(s.validate(), SpecError);
}

TEST(PlatformSpec, RejectsBadStreamEfficiency) {
  PlatformSpec s = valid();
  s.interconnect.stream_efficiency = 0.0;
  EXPECT_THROW(s.validate(), SpecError);
  s.interconnect.stream_efficiency = 1.5;
  EXPECT_THROW(s.validate(), SpecError);
}

TEST(PlatformSpec, RejectsBadHopCounts) {
  PlatformSpec s = valid();
  s.interconnect.intra_group_hops = 0;
  EXPECT_THROW(s.validate(), SpecError);
}

TEST(PlatformSpec, RejectsNegativeStagingOverheads) {
  PlatformSpec s = valid();
  s.staging.write_overhead_s = -1e-6;
  EXPECT_THROW(s.validate(), SpecError);
}

TEST(PlatformSpec, RejectsBadMaxMissRatio) {
  PlatformSpec s = valid();
  s.interference.max_miss_ratio = 0.0;
  EXPECT_THROW(s.validate(), SpecError);
  s.interference.max_miss_ratio = 1.1;
  EXPECT_THROW(s.validate(), SpecError);
}

TEST(PlatformSpec, AcceptsDisabledInterference) {
  PlatformSpec s = valid();
  s.interference.enabled = false;
  EXPECT_NO_THROW(s.validate());
}

}  // namespace
}  // namespace wfe::plat
