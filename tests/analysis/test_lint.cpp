// Self-tests of the wfens_lint rule engine (tools/wfens_lint) on fixture
// sources: every rule fires on a seeded violation, stays quiet on clean
// and annotated code, and the comment/string masker never lets prose
// trigger identifier rules.
#include "wfens_lint/lint.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace lint = wfe::lint;

namespace {

// -- banned identifiers ------------------------------------------------------

TEST(LintBannedIdent, RandCallCaught) {
  const auto fs = lint::lint_source("src/core/x.cpp", "int f(){return rand();}");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "banned-ident");
  EXPECT_EQ(fs[0].line, 1);
  EXPECT_EQ(fs[0].file, "src/core/x.cpp");
}

TEST(LintBannedIdent, SrandCaught) {
  const auto fs = lint::lint_source("src/core/x.cpp", "void f(){srand(7);}");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "banned-ident");
}

TEST(LintBannedIdent, RandomDeviceCaughtEvenUnqualified) {
  const auto fs = lint::lint_source(
      "src/sched/x.cpp", "#include <random>\nstd::random_device rd;\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].line, 2);
}

TEST(LintBannedIdent, TimeCallCaught) {
  const auto fs =
      lint::lint_source("tools/x.cpp", "long t = time(nullptr);\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "banned-ident");
}

TEST(LintBannedIdent, IdentifiersContainingTimeNotCaught) {
  const auto fs = lint::lint_source(
      "src/dtl/x.cpp",
      "double wait_time(int x);\n"       // declaration of OUR identifier
      "double timeout(int);\n"
      "int y = obj.time();\n"            // member call
      "int z = ptr->time();\n");
  // `wait_time(`/`timeout(` are different identifiers; `.time(`/`->time(`
  // are member calls. Only a free time() call is the wall clock.
  EXPECT_TRUE(fs.empty()) << fs[0].message;
}

TEST(LintBannedIdent, SystemClockBannedOutsideSupport) {
  const std::string src = "auto t = std::chrono::system_clock::now();\n";
  EXPECT_EQ(lint::lint_source("src/runtime/x.cpp", src).size(), 1u);
  EXPECT_TRUE(lint::lint_source("src/support/x.cpp", src).empty());
}

TEST(LintBannedIdent, SteadyClockIsFine) {
  const auto fs = lint::lint_source(
      "src/obs/x.cpp", "auto t = std::chrono::steady_clock::now();\n");
  EXPECT_TRUE(fs.empty());
}

// -- std::function in the event core -----------------------------------------

TEST(LintSimengine, StdFunctionBannedInSimengine) {
  const std::string src =
      "#include <functional>\n#pragma once\nstd::function<void()> cb;\n";
  const auto fs = lint::lint_source("src/simengine/x.hpp", src);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "simengine-std-function");
  EXPECT_EQ(fs[0].line, 3);
}

TEST(LintSimengine, StdFunctionFineElsewhere) {
  const auto fs = lint::lint_source(
      "src/exec/x.cpp", "#include <functional>\nstd::function<void()> cb;\n");
  EXPECT_TRUE(fs.empty());
}

TEST(LintSimengine, UnqualifiedFunctionIdentifierFine) {
  const auto fs = lint::lint_source(
      "src/simengine/x.cpp", "int function = 3;\nint y = function + 1;\n");
  EXPECT_TRUE(fs.empty());
}

// -- event queues outside the engine -----------------------------------------

TEST(LintEventQueue, PriorityQueueBannedOutsideSimengine) {
  const std::string src =
      "#include <queue>\n"
      "std::priority_queue<int> q;\n";
  const auto fs = lint::lint_source("src/sched/x.cpp", src);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "event-queue-outside-simengine");
  EXPECT_EQ(fs[0].line, 2);  // the include line is exempt
}

TEST(LintEventQueue, RawHeapAlgorithmsBannedOutsideSimengine) {
  const std::string src =
      "void f(std::vector<int>& v) {\n"
      "  std::push_heap(v.begin(), v.end());\n"
      "  std::pop_heap(v.begin(), v.end());\n"
      "  std::make_heap(v.begin(), v.end());\n"
      "  std::sort_heap(v.begin(), v.end());\n"
      "}\n";
  const auto fs = lint::lint_source("tools/x.cpp", src);
  ASSERT_EQ(fs.size(), 4u);
  for (const auto& f : fs) {
    EXPECT_EQ(f.rule, "event-queue-outside-simengine");
  }
}

TEST(LintEventQueue, FineInsideSimengine) {
  const auto fs = lint::lint_source(
      "src/simengine/engine.cpp",
      "void f(std::vector<int>& v) { std::push_heap(v.begin(), v.end()); }\n"
      "std::priority_queue<int> q;\n");
  EXPECT_TRUE(fs.empty());
}

// -- unordered containers in exporters ---------------------------------------

TEST(LintUnordered, UseInExporterCaught) {
  const std::string src =
      "#include <unordered_map>\n"
      "void g() { std::unordered_map<int, int> m; for (auto& kv : m) {} }\n";
  const auto fs = lint::lint_source("src/obs/x.cpp", src);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "unordered-iter");
  EXPECT_EQ(fs[0].line, 2);  // the include line is exempt
}

TEST(LintUnordered, TraceIoIsAnExporterTu) {
  const auto fs = lint::lint_source("src/metrics/trace_io.cpp",
                                    "std::unordered_set<int> s;\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "unordered-iter");
}

TEST(LintUnordered, FineOutsideExporters) {
  const auto fs = lint::lint_source("src/sched/x.cpp",
                                    "std::unordered_map<int, int> memo;\n");
  EXPECT_TRUE(fs.empty());
}

// -- StageRecord outside the recording layers --------------------------------

TEST(LintStageRecord, ConstructionOutsideRuntimeCaught) {
  const std::string brace = "auto r = met::StageRecord{c, 0, k, 1.0, 2.0};\n";
  const std::string decl = "met::StageRecord r;\n";
  for (const std::string& src : {brace, decl}) {
    const auto fs = lint::lint_source("src/sched/x.cpp", src);
    ASSERT_EQ(fs.size(), 1u) << src;
    EXPECT_EQ(fs[0].rule, "stage-record-outside-runtime");
  }
}

TEST(LintStageRecord, RuntimeAndMetricsMayConstruct) {
  const std::string src = "met::StageRecord r{};\n";
  EXPECT_TRUE(lint::lint_source("src/runtime/x.cpp", src).empty());
  EXPECT_TRUE(lint::lint_source("src/metrics/trace.cpp", src).empty());
  // tools/ and tests are out of scope entirely.
  EXPECT_TRUE(lint::lint_source("tools/wfens_x.cpp", src).empty());
}

TEST(LintStageRecord, ReadOnlyUsesAreFine) {
  // References, template arguments, and range-for reads never construct.
  const auto fs = lint::lint_source(
      "src/sched/x.cpp",
      "void f(const met::StageRecord& r);\n"
      "std::vector<met::StageRecord> v = trace.for_component(id);\n"
      "for (const met::StageRecord& r : v) { use(r); }\n"
      "#include \"metrics/StageRecord.hpp\"\n");
  EXPECT_TRUE(fs.empty()) << fs[0].message;
}

TEST(LintStageRecord, AllowAnnotationSuppresses) {
  const auto fs = lint::lint_source(
      "src/sched/x.cpp",
      "met::StageRecord r;  "
      "// wfens-lint: allow(stage-record-outside-runtime)\n");
  EXPECT_TRUE(fs.empty());
}

// -- LP-partition state outside the engine -----------------------------------

TEST(LintLpState, LaneUseOutsideSimengineCaught) {
  const std::string src =
      "#include \"simengine/parallel.hpp\"\n"
      "void f(wfe::sim::LpLane& lane) { lane.done.clear(); }\n";
  const auto fs = lint::lint_source("src/runtime/x.cpp", src);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "lp-state-outside-simengine");
  EXPECT_EQ(fs[0].line, 2);  // the include line is exempt
}

TEST(LintLpState, FiresInToolsToo) {
  const auto fs = lint::lint_source(
      "tools/wfens_x.cpp", "wfe::sim::LpLane lane;\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "lp-state-outside-simengine");
}

TEST(LintLpState, FineInsideSimengine) {
  EXPECT_TRUE(lint::lint_source("src/simengine/parallel.cpp",
                                "LpLane& lane = lanes_[lp];\n")
                  .empty());
}

TEST(LintLpState, ParallelEngineApiIsFineEverywhere) {
  const auto fs = lint::lint_source(
      "src/runtime/x.cpp",
      "wfe::sim::ParallelEngine pe(4);\n"
      "pe.schedule_root(0, 0.0, cb);\n");
  EXPECT_TRUE(fs.empty()) << fs[0].message;
}

TEST(LintLpState, AllowAnnotationSuppresses) {
  const auto fs = lint::lint_source(
      "src/runtime/x.cpp",
      "sim::LpLane lane;  // wfens-lint: allow(lp-state-outside-simengine)\n");
  EXPECT_TRUE(fs.empty());
}

// -- best-arm search state outside the scheduler ------------------------------

TEST(LintArmState, ArmStatsUseOutsideSchedCaught) {
  const std::string src =
      "#include \"sched/arm_stats.hpp\"\n"
      "void f() { wfe::sched::ArmStats s; s.add(0.5); }\n";
  const auto fs = lint::lint_source("src/runtime/x.cpp", src);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "arm-state-outside-sched");
  EXPECT_EQ(fs[0].line, 2);  // the include line is exempt
}

TEST(LintArmState, ExplorationLogCaughtInToolsToo) {
  const auto fs = lint::lint_source(
      "tools/wfens_x.cpp",
      "const double l = wfe::sched::exploration_log(10, 4);\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "arm-state-outside-sched");
}

TEST(LintArmState, FineInsideSched) {
  EXPECT_TRUE(lint::lint_source("src/sched/bai.cpp",
                                "ArmStats stats;\n"
                                "const double l = exploration_log(1, 2);\n")
                  .empty());
}

TEST(LintArmState, SchedulerApiIsFineEverywhere) {
  const auto fs = lint::lint_source(
      "src/runtime/x.cpp",
      "auto s = wfe::sched::make_scheduler(\"bai-search\");\n"
      "(void)s->plan(shape, platform, {3});\n");
  EXPECT_TRUE(fs.empty()) << fs[0].message;
}

TEST(LintArmState, AllowAnnotationSuppresses) {
  const auto fs = lint::lint_source(
      "tools/wfens_x.cpp",
      "sched::ArmStats s;  // wfens-lint: allow(arm-state-outside-sched)\n");
  EXPECT_TRUE(fs.empty());
}

// -- raw concurrency primitives ----------------------------------------------

TEST(LintRawMutex, StdMutexBannedInSrc) {
  const auto fs = lint::lint_source(
      "src/sched/x.cpp", "#include <mutex>\nstd::mutex m;\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "raw-mutex");
  EXPECT_EQ(fs[0].line, 2);
}

TEST(LintRawMutex, ConditionVariableAndVariantsBanned) {
  const auto fs = lint::lint_source(
      "src/runtime/x.cpp",
      "std::condition_variable cv;\nstd::shared_mutex sm;\n"
      "std::recursive_timed_mutex rtm;\n");
  ASSERT_EQ(fs.size(), 3u);
  for (const auto& f : fs) EXPECT_EQ(f.rule, "raw-mutex");
}

TEST(LintRawMutex, SupportAndToolsAndRankedTypesFine) {
  // support/ implements the ranked wrappers, tools/ is out of scope, and
  // unqualified identifiers (RankedMutex's own members, locals named
  // `mutex`) never fire.
  EXPECT_TRUE(lint::lint_source("src/support/lock_rank.hpp",
                                "#pragma once\nstd::mutex raw_;\n")
                  .empty());
  EXPECT_TRUE(
      lint::lint_source("tools/wfens_x.cpp", "std::mutex m;\n").empty());
  EXPECT_TRUE(lint::lint_source("src/sched/x.cpp",
                                "support::RankedMutex<3> mutex;\n")
                  .empty());
}

TEST(LintRawMutex, AllowAnnotationSuppresses) {
  const auto fs = lint::lint_source(
      "src/sched/x.cpp",
      "std::mutex m;  // wfens-lint: allow(raw-mutex)\n");
  EXPECT_TRUE(fs.empty());
}

// -- allow() escape hatch ----------------------------------------------------

TEST(LintAllow, SameLineAnnotationSuppresses) {
  const auto fs = lint::lint_source(
      "src/core/x.cpp",
      "int f(){return rand();}  // wfens-lint: allow(banned-ident)\n");
  EXPECT_TRUE(fs.empty());
}

TEST(LintAllow, StandaloneAnnotationCoversNextLine) {
  const auto fs = lint::lint_source(
      "src/obs/x.cpp",
      "// wfens-lint: allow(unordered-iter)\n"
      "std::unordered_map<int, int> lookup_only;\n");
  EXPECT_TRUE(fs.empty());
}

TEST(LintAllow, WrongRuleStillFires) {
  const auto fs = lint::lint_source(
      "src/core/x.cpp",
      "int f(){return rand();}  // wfens-lint: allow(unordered-iter)\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "banned-ident");
}

TEST(LintAllow, AnnotationDoesNotLeakPastNextLine) {
  const auto fs = lint::lint_source(
      "src/core/x.cpp",
      "// wfens-lint: allow(banned-ident)\n"
      "int a = 0;\n"
      "int f(){return rand();}\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].line, 3);
}

TEST(LintAllow, CommaSeparatedRules) {
  const auto fs = lint::lint_source(
      "src/obs/x.cpp",
      "// wfens-lint: allow(banned-ident, unordered-iter)\n"
      "std::unordered_map<int, long> m; long t = time(nullptr);\n");
  EXPECT_TRUE(fs.empty());
}

// -- masking: comments, strings, raw strings ---------------------------------

TEST(LintMask, CommentsAndStringsNeverFire) {
  const auto fs = lint::lint_source(
      "src/core/x.cpp",
      "// this comment mentions rand() and time() and system_clock\n"
      "/* block: std::random_device */\n"
      "const char* s = \"rand() time() unordered_map\";\n"
      "const char* r = R\"(srand(1) system_clock)\";\n");
  EXPECT_TRUE(fs.empty());
}

TEST(LintMask, CodeAfterCommentOnSameLineStillScanned) {
  const auto fs = lint::lint_source(
      "src/core/x.cpp", "/* note */ int f(){return rand();}\n");
  ASSERT_EQ(fs.size(), 1u);
}

TEST(LintMask, DigitSeparatorsAreNotCharLiterals) {
  // A buggy masker treats 1'000'000 as opening a char literal and blanks
  // the rest of the file — hiding the rand() on the next line.
  const auto fs = lint::lint_source(
      "src/core/x.cpp", "int big = 1'000'000;\nint f(){return rand();}\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].line, 2);
}

// -- include hygiene ---------------------------------------------------------

TEST(LintIncludes, PragmaOnceRequiredInHeaders) {
  EXPECT_EQ(lint::lint_source("src/core/x.hpp", "int x;\n").size(), 1u);
  EXPECT_TRUE(
      lint::lint_source("src/core/x.hpp", "#pragma once\nint x;\n").empty());
  // Not a header: no pragma needed.
  EXPECT_TRUE(lint::lint_source("src/core/x.cpp", "int x;\n").empty());
}

TEST(LintIncludes, ParentRelativeIncludeCaught) {
  const auto fs = lint::lint_source(
      "src/core/x.cpp", "#include \"../obs/recorder.hpp\"\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "include-parent");
}

TEST(LintIncludes, IostreamInHeaderCaught) {
  const auto fs = lint::lint_source(
      "src/core/x.hpp", "#pragma once\n#include <iostream>\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "iostream-in-header");
  // Fine in a TU.
  EXPECT_TRUE(
      lint::lint_source("src/core/x.cpp", "#include <iostream>\n").empty());
}

// -- classification / report / tree walker -----------------------------------

TEST(LintClassify, PathsScopeTheRules) {
  EXPECT_TRUE(lint::classify_path("src/support/rng.hpp").in_support);
  EXPECT_TRUE(lint::classify_path("src/simengine/engine.cpp").in_simengine);
  EXPECT_TRUE(lint::classify_path("src/obs/export.cpp").exporter);
  EXPECT_TRUE(lint::classify_path("src/metrics/trace_io.cpp").exporter);
  EXPECT_FALSE(lint::classify_path("src/metrics/trace.cpp").exporter);
  EXPECT_TRUE(lint::classify_path("src/runtime/x.cpp").in_runtime);
  EXPECT_TRUE(lint::classify_path("src/metrics/trace.cpp").in_metrics);
  EXPECT_FALSE(lint::classify_path("src/sched/x.cpp").in_runtime);
  EXPECT_TRUE(lint::classify_path("src/core/x.hpp").header);
  EXPECT_FALSE(lint::classify_path("src/core/x.cpp").header);
}

TEST(LintReport, JsonShape) {
  std::vector<lint::Finding> fs{
      {"src/a.cpp", 3, "banned-ident", "rand() is \"bad\""}};
  const std::string json = lint::findings_to_json(fs);
  EXPECT_NE(json.find("\"file\":\"src/a.cpp\""), std::string::npos);
  EXPECT_NE(json.find("\"line\":3"), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"banned-ident\""), std::string::npos);
  EXPECT_NE(json.find("\\\"bad\\\""), std::string::npos);
  EXPECT_EQ(lint::findings_to_json({}), "[]\n");
}

TEST(LintTree, WalksSrcAndToolsSortedAndScoped) {
  namespace fs = std::filesystem;
  const fs::path root =
      fs::path(::testing::TempDir()) / "wfens_lint_tree_fixture";
  fs::remove_all(root);
  fs::create_directories(root / "src/core");
  fs::create_directories(root / "tools");
  fs::create_directories(root / "bench");
  const auto write = [](const fs::path& p, const std::string& text) {
    std::ofstream out(p);
    out << text;
  };
  write(root / "src/core/bad.cpp", "int f(){return rand();}\n");
  write(root / "src/core/good.cpp", "int g(){return 4;}\n");
  write(root / "tools/also_bad.cpp", "long t = time(nullptr);\n");
  write(root / "bench/ignored.cpp", "int h(){return rand();}\n");  // not scanned
  // A manifest declaring both modules, so the whole-project layering pass
  // has nothing to add to the two banned-ident findings.
  fs::create_directories(root / "tools/wfens_lint");
  write(root / "tools/wfens_lint/layers.conf",
        "module core\nmodule tools\n");

  const auto findings = lint::lint_tree(root);
  ASSERT_EQ(findings.size(), 2u);
  // Sorted path order: src/... before tools/...
  EXPECT_EQ(findings[0].file, "src/core/bad.cpp");
  EXPECT_EQ(findings[1].file, "tools/also_bad.cpp");
  fs::remove_all(root);
}

TEST(LintTree, TheRealTreeIsClean) {
  // The same invariant the lint.tree ctest enforces, reachable from the
  // test binary so a violation names the culprit in this suite too.
  const std::filesystem::path root = WFENS_REPO_ROOT;
  const auto findings = lint::lint_tree(root);
  for (const auto& f : findings) {
    ADD_FAILURE() << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.message;
  }
}

}  // namespace
