// Analysis cost-model properties.
#include "analysis/cost_model.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace wfe::ana {
namespace {

TEST(AnalysisCost, RejectsZeroAtoms) {
  EXPECT_THROW((void)analysis_stage_profile(AnalysisCostParams{}, 0),
               InvalidArgument);
}

TEST(AnalysisCost, EffectiveAtomsHonorsSubsampling) {
  AnalysisCostParams p;
  p.subsample_stride = 4;
  EXPECT_EQ(effective_atoms(p, 1000), 250u);
  p.subsample_stride = 1;
  EXPECT_EQ(effective_atoms(p, 1000), 1000u);
}

TEST(AnalysisCost, InstructionsScaleQuadratically) {
  AnalysisCostParams p;
  p.subsample_stride = 1;
  const double i1 = analysis_stage_profile(p, 1000).instructions;
  const double i2 = analysis_stage_profile(p, 2000).instructions;
  EXPECT_NEAR(i2 / i1, 4.0, 0.01);
}

TEST(AnalysisCost, InstructionsScaleWithSweeps) {
  AnalysisCostParams p10;
  p10.power_iterations = 10;
  AnalysisCostParams p20;
  p20.power_iterations = 20;
  const double i10 = analysis_stage_profile(p10, 1000).instructions;
  const double i20 = analysis_stage_profile(p20, 1000).instructions;
  // (1 + 2*20) / (1 + 2*10) = 41/21.
  EXPECT_NEAR(i20 / i10, 41.0 / 21.0, 1e-9);
}

TEST(AnalysisCost, CacheFootprintIsCapped) {
  AnalysisCostParams p;
  p.subsample_stride = 1;
  p.max_cache_footprint_bytes = 64e6;
  p.fixed_working_set_bytes = 8e6;
  // 100k atoms -> matrix of 50k x 50k doubles = 20 GB >> cap.
  const auto prof = analysis_stage_profile(p, 100'000);
  EXPECT_DOUBLE_EQ(prof.working_set_bytes, 64e6 + 8e6);
}

TEST(AnalysisCost, SmallMatrixBelowCapNotClamped) {
  AnalysisCostParams p;
  p.subsample_stride = 1;
  p.fixed_working_set_bytes = 0.0;
  // 100 atoms -> 50x50 doubles = 20 kB.
  const auto prof = analysis_stage_profile(p, 100);
  EXPECT_DOUBLE_EQ(prof.working_set_bytes, 50.0 * 50.0 * sizeof(double));
}

TEST(AnalysisCost, ProfileIsDataIntensive) {
  // The analysis profile must be visibly more memory-intensive than an MD
  // profile (paper §2.3).
  const auto prof = analysis_stage_profile(AnalysisCostParams{}, 10'000);
  EXPECT_GT(prof.llc_refs_per_instr * prof.base_miss_ratio, 1e-3);
  EXPECT_GT(prof.cache_sensitivity, 0.05);
}

TEST(AnalysisCost, SubsamplingReducesInstructions) {
  AnalysisCostParams dense;
  dense.subsample_stride = 1;
  AnalysisCostParams sparse;
  sparse.subsample_stride = 8;
  EXPECT_GT(analysis_stage_profile(dense, 8000).instructions,
            analysis_stage_profile(sparse, 8000).instructions);
}

}  // namespace
}  // namespace wfe::ana
